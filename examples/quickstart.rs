//! Quickstart: train a small memory network on a synthetic bAbI-style task,
//! then answer a question with the baseline dataflow and with MnnFast —
//! same answer, a fraction of the work.
//!
//! Run with: `cargo run --example quickstart`

use mnn_dataset::babi::{BabiGenerator, TaskKind};
use mnn_memnn::inference::{baseline_forward, BaselineCounters};
use mnn_memnn::timing::OpTimes;
use mnn_memnn::train::Trainer;
use mnn_memnn::{MemNet, ModelConfig};
use mnnfast::{ColumnEngine, MnnFastConfig, SkipPolicy};

fn main() {
    // 1. Generate a toy world: stories about people moving between rooms.
    let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 7);
    let train_set = generator.dataset(80, 10, 3);
    let vocab = generator.vocab().clone();

    // 2. Train an end-to-end memory network (manual-backprop SGD).
    let config = ModelConfig::for_generator(&generator, 24, 10);
    let mut model = MemNet::new(config, 42);
    let report = Trainer::new().epochs(30).train(&mut model, &train_set);
    println!(
        "trained: final loss {:.4}, train accuracy {:.1}%",
        report.final_loss,
        report.train_accuracy * 100.0
    );

    // 3. Ask a fresh question.
    let story = generator.story(10, 1);
    println!("\nstory:");
    for s in &story.sentences {
        println!("  {}", vocab.decode(s));
    }
    let q = &story.questions[0];
    println!("question: {}?", vocab.decode(&q.tokens));
    println!("expected: {}", vocab.word(q.answer).unwrap_or("?"));

    let embedded = model.embed_story(&story);

    // 4a. Baseline inference (Fig 5(a) dataflow).
    let mut times = OpTimes::new();
    let mut counters = BaselineCounters::default();
    let rec = baseline_forward(&model, &embedded, 0, &mut times, &mut counters);
    println!(
        "\nbaseline answer:  {}  ({} intermediate bytes spilled)",
        vocab.word(rec.answer).unwrap_or("?"),
        counters.intermediate_bytes
    );

    // 4b. MnnFast: column-based + zero-skipping (Fig 5(b) dataflow).
    let engine = ColumnEngine::new(MnnFastConfig::new(4).with_skip(SkipPolicy::Probability(0.05)));
    let out = engine
        .forward(&embedded.m_in, &embedded.m_out, &embedded.questions[0])
        .expect("embedded shapes are consistent");
    let logits = model.output_logits(&out.o, &embedded.questions[0]);
    let answer = mnn_tensor::reduce::argmax(&logits).expect("non-empty vocab") as u32;
    println!(
        "MnnFast answer:   {}  ({} of {} weighted-sum rows skipped, peak intermediates {} bytes)",
        vocab.word(answer).unwrap_or("?"),
        out.stats.rows_skipped,
        out.stats.rows_total,
        out.stats.intermediate_bytes
    );
    assert_eq!(answer, rec.answer, "both dataflows agree");
    println!("\nboth dataflows produced the same answer.");
}

//! A stage-by-stage walkthrough of the paper's Fig 1/Fig 2 pipeline: one
//! story, one question, every intermediate printed — embedding, inner
//! product, softmax attention, weighted sum, and the output calculation —
//! first with the baseline dataflow, then with MnnFast's column-based
//! engine showing the identical result from chunked lazy-softmax passes.
//!
//! Run with: `cargo run --release --example paper_walkthrough`

use mnn_dataset::babi::{BabiGenerator, TaskKind};
use mnn_memnn::inference::{baseline_forward, BaselineCounters};
use mnn_memnn::timing::OpTimes;
use mnn_memnn::train::Trainer;
use mnn_memnn::{MemNet, ModelConfig};
use mnnfast::{ColumnEngine, MnnFastConfig};

fn norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

fn main() {
    // Train a model so the attention is meaningful.
    let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 2);
    let train_set = generator.dataset(200, 6, 3);
    let config = ModelConfig::for_generator(&generator, 24, 6);
    let mut model = MemNet::new(config, 10);
    let report = Trainer::new().epochs(60).train(&mut model, &train_set);
    let vocab = generator.vocab().clone();
    println!(
        "model: {} parameters, train accuracy {:.1}%\n",
        model.num_parameters(),
        report.train_accuracy * 100.0
    );

    // One fresh story, in the spirit of the paper's Fig 1.
    let story = generator.story(6, 1);
    let question = &story.questions[0];
    println!("story (the paper's Fig 1 setting):");
    for (i, s) in story.sentences.iter().enumerate() {
        let marker = if question.supporting.contains(&i) {
            "  <- supporting fact"
        } else {
            ""
        };
        println!("  [{i}] {}{marker}", vocab.decode(s));
    }
    println!("question: {}?", vocab.decode(&question.tokens));
    println!("expected: {}\n", vocab.word(question.answer).unwrap_or("?"));

    // --- Fig 2, step by step ---
    println!("== embedding operation ==");
    let emb = model.embed_story(&story);
    for i in 0..emb.m_in.rows() {
        println!(
            "  sentence {i}: |m_in| = {:.3}, |m_out| = {:.3}",
            norm(emb.m_in.row(i)),
            norm(emb.m_out.row(i))
        );
    }
    let u = &emb.questions[0];
    println!("  question state u: |u| = {:.3}\n", norm(u));

    println!("== inference: baseline dataflow (Fig 5a) ==");
    let mut times = OpTimes::new();
    let mut counters = BaselineCounters::default();
    let rec = baseline_forward(&model, &emb, 0, &mut times, &mut counters);
    println!("  inner product T_IN then softmax -> attention p:");
    for (i, p) in rec.p_per_hop[0].iter().enumerate() {
        let bar = "#".repeat((p * 40.0).round() as usize);
        println!("    p[{i}] = {p:.3} {bar}");
    }
    println!("  weighted sum o: |o| = {:.3}", norm(&rec.o));
    println!(
        "  output calculation W(o+u) -> answer: {}",
        vocab.word(rec.answer).unwrap_or("?")
    );
    println!(
        "  spills: {} intermediate bytes; {} softmax divisions\n",
        counters.intermediate_bytes, counters.divisions
    );

    println!("== inference: MnnFast column-based engine (Fig 5b) ==");
    let engine = ColumnEngine::new(MnnFastConfig::new(2)); // 3 chunks of 2
    let out = engine
        .forward(&emb.m_in, &emb.m_out, u)
        .expect("consistent shapes");
    println!(
        "  {} chunks, peak intermediates {} bytes, {} divisions (= ed)",
        out.stats.chunks, out.stats.intermediate_bytes, out.stats.divisions
    );
    println!(
        "  lazy softmax denominator: {:.3}; |o| = {:.3}",
        out.denominator,
        norm(&out.o)
    );
    let logits = model.output_logits(&out.o, u);
    let answer = mnn_tensor::reduce::argmax(&logits).expect("non-empty vocab") as u32;
    println!(
        "  answer: {} (same as baseline: {})",
        vocab.word(answer).unwrap_or("?"),
        answer == rec.answer
    );
    let max_diff = out
        .o
        .iter()
        .zip(&rec.o)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("  max |o_column - o_baseline| = {max_diff:.2e}");
    assert_eq!(answer, rec.answer);
}

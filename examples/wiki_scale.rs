//! Large-scale serving scenario: a Wikipedia-sized (scaled-down) story
//! memory served by the column-based algorithm with streaming, scale-out
//! threads, and zero-skipping — the Section 3.1 sizing argument made
//! concrete, plus the simulated off-chip picture.
//!
//! Run with: `cargo run --release --example wiki_scale`

use mnn_memsim::dataflow::{self, DataflowConfig};
use mnn_memsim::{SetAssocCache, Variant};
use mnn_tensor::Matrix;
use mnnfast::{EngineKind, ExecPlan, Executor, MnnFastConfig, Scratch, SkipPolicy, Trace};
use std::time::Instant;

fn main() {
    // 400k sentences × ed=48 ⇒ two 73 MiB memories (the paper's Wikipedia
    // example is 200M sentences; same algorithm, scaled to this machine).
    let ns = 400_000;
    let ed = 48;
    println!("building {ns}-sentence memories (ed={ed})...");
    let mut m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 31 + c) as f32 * 1e-3).sin() * 0.2);
    let m_out = Matrix::from_fn(ns, ed, |r, c| ((r * 7 + c) as f32 * 2e-3).cos() * 0.4);
    let u: Vec<f32> = (0..ed).map(|i| (i as f32 * 0.3).sin()).collect();
    // A handful of "relevant" sentences align with the query, giving the
    // spiky attention a trained model produces (Fig 6).
    for k in 0..40 {
        let row = m_in.row_mut(k * (ns / 40) + 17);
        row.copy_from_slice(&u);
    }

    // The baseline would spill three ns-length vectors per question:
    let spill = 3 * ns * 4;
    println!(
        "baseline intermediate spill per question: {:.1} MiB",
        spill as f64 / (1 << 20) as f64
    );

    // Every variant goes through the same Executor seam with one shared
    // scratch, exactly like the serving loop.
    let config = MnnFastConfig::new(1000);
    let engines = [
        (
            "column (chunk 1000)",
            ExecPlan::new(config)
                .with_kind(EngineKind::Column)
                .executor(),
        ),
        (
            "column + streaming",
            ExecPlan::new(config)
                .with_kind(EngineKind::Streaming)
                .executor(),
        ),
        (
            "column + 4-thread scale-out",
            ExecPlan::new(config.with_threads(4))
                .with_kind(EngineKind::Parallel)
                .executor(),
        ),
        // Raw-weight skipping (the paper's single-pass FPGA policy): skip
        // entries whose unnormalized weight e^{u·m} is below e^{1} — i.e.
        // everything except the strongly aligned "relevant" rows.
        (
            "MnnFast (stream + raw skip)",
            ExecPlan::new(config.with_skip(SkipPolicy::RawWeight(2.7)))
                .with_kind(EngineKind::Streaming)
                .executor(),
        ),
    ];

    let mut scratch = Scratch::new();
    let mut reference: Option<Vec<f32>> = None;
    for (name, exec) in &engines {
        let mut trace = Trace::disabled();
        let t0 = Instant::now();
        let out = exec
            .forward_prefix(&m_in, &m_out, ns, &u, &mut scratch, &mut trace)
            .unwrap();
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{name:>30}: {dt:.3}s, peak intermediates {} KiB, skipped {}/{} rows",
            out.stats.intermediate_bytes / 1024,
            out.stats.rows_skipped,
            out.stats.rows_total,
        );
        match &reference {
            None => reference = Some(out.o),
            Some(r) => {
                let max_diff = r
                    .iter()
                    .zip(&out.o)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f32, f32::max);
                // Skipping drops only near-zero-weight contributions.
                assert!(max_diff < 0.05, "{name}: diverged by {max_diff}");
            }
        }
    }

    // Simulated off-chip accesses for the same shape (Fig 11's view).
    println!("\nsimulated off-chip accesses (8 MiB LLC):");
    let df = DataflowConfig {
        ns,
        ed,
        chunk: 1000,
        questions: 1,
        skip_fraction: 0.9,
        hops: 1,
    };
    let mut baseline_misses = 1u64;
    for v in Variant::ALL {
        let mut llc = SetAssocCache::new(8 << 20, 16, 64).unwrap();
        let r = dataflow::replay(v, df, &mut llc).unwrap();
        if v == Variant::Baseline {
            baseline_misses = r.demand_misses.max(1);
        }
        println!(
            "{:>12}: {:>9} demand misses ({:.2}x of baseline)",
            v.to_string(),
            r.demand_misses,
            r.demand_misses as f64 / baseline_misses as f64
        );
    }
}

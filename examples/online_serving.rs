//! Online serving: a long-lived session that ingests story sentences as
//! they arrive and answers questions immediately — the paper's deployment
//! scenario (Section 4.1.1: questions are generated on-the-fly by users;
//! Fig 8: new story sentences are appended to the memories).
//!
//! Run with: `cargo run --release --example online_serving`

use mnn_dataset::babi::{BabiGenerator, TaskKind};
use mnn_memnn::train::Trainer;
use mnn_memnn::{MemNet, ModelConfig};
use mnn_serve::{Session, SessionConfig};
use mnnfast::{EngineKind, ExecPlan, MnnFastConfig, Phase, SkipPolicy};

fn main() {
    // Train a serving model (no age-indexed temporal encoding — position
    // encoding carries the order information instead).
    let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 23);
    let train_set = generator.dataset(150, 10, 3);
    let config = ModelConfig {
        temporal: false,
        ..ModelConfig::for_generator(&generator, 32, 10)
    }
    .with_position_encoding(true);
    let mut model = MemNet::new(config, 9);
    let report = Trainer::new().epochs(35).train(&mut model, &train_set);
    println!(
        "serving model ready (train accuracy {:.1}%)",
        report.train_accuracy * 100.0
    );
    let vocab = generator.vocab().clone();

    // A sliding-window session: at most 6 sentences of context, answered by
    // the streaming engine with zero-skipping.
    let session_config = SessionConfig {
        plan: ExecPlan::new(MnnFastConfig::new(4).with_skip(SkipPolicy::Probability(0.01)))
            .with_kind(EngineKind::Streaming),
        max_sentences: Some(6),
        trace: true,
        ..SessionConfig::default()
    };
    let mut session = Session::new(model, session_config).expect("serving-compatible model");

    // Interleave facts and questions, as a dialogue would.
    let story = generator.story(10, 0);
    for (i, sentence) in story.sentences.iter().enumerate() {
        let evicted = session.observe(sentence).expect("in-vocabulary sentence");
        println!(
            "observe: {:<40} (memory {} sentences{})",
            vocab.decode(sentence),
            session.memory_len(),
            if evicted > 0 { ", oldest evicted" } else { "" }
        );

        // After every few facts, ask where the most recent mover is.
        if i % 3 == 2 {
            let person = sentence[0];
            let question = vec![
                vocab.id("where").expect("vocab"),
                vocab.id("is").expect("vocab"),
                person,
            ];
            let answer = session.ask(&question).expect("valid question");
            println!(
                "  ask: where is {}? -> {} (p={:.2}, skipped {}/{} rows)",
                vocab.word(person).unwrap_or("?"),
                vocab.word(answer.word).unwrap_or("?"),
                answer.probability,
                answer.stats.rows_skipped,
                answer.stats.rows_total,
            );
        }
    }

    let totals = session.cumulative_stats();
    println!(
        "\nsession totals: {} questions, {} memory rows attended, {:.1}% of output computation skipped",
        session.questions_answered(),
        totals.rows_total,
        totals.computation_reduction() * 100.0
    );

    // The session traced every question; show where the time went and the
    // per-question latency distribution.
    println!("\nper-phase breakdown (all questions):");
    print!("{}", session.cumulative_trace().render());
    let hist = session.phase_histograms();
    println!(
        "question latency: mean {:.1} µs, p95 < {:.1} µs ({} questions, {:.1}% in {})",
        hist.total().mean_nanos() as f64 / 1e3,
        hist.total().quantile_upper_bound(0.95) as f64 / 1e3,
        hist.total().count(),
        session.cumulative_trace().nanos(Phase::FusedChunk) as f64 * 100.0
            / session.cumulative_trace().total_nanos().max(1) as f64,
        Phase::FusedChunk.label(),
    );
}

//! A tour of the accelerator models: FPGA pipeline latency per variant
//! (Fig 13), embedding-cache sweep (Fig 14), GPU stream/multi-GPU scaling
//! (Fig 12), and the CPU-vs-FPGA energy comparison (Section 5.5).
//!
//! Run with: `cargo run --release --example accelerator_tour`

use mnn_accel::energy::{self, PowerModel};
use mnn_accel::fpga::{self, FpgaConfig, FpgaWorkload};
use mnn_accel::gpu::{self, GpuConfig, GpuWorkload};
use mnn_dataset::zipf::ZipfSampler;
use mnn_memsim::roofline::MachineProfile;
use mnn_memsim::Variant;

fn main() {
    // --- FPGA: Fig 13 ---
    let cfg = FpgaConfig::zedboard();
    let work = FpgaWorkload::table1();
    println!(
        "FPGA latency (ns={}, ed={}, chunk={}):",
        work.ns, work.ed, work.chunk
    );
    let base = cfg.latency_cycles(Variant::Baseline, &work) as f64;
    for v in Variant::ALL {
        let c = cfg.latency_cycles(v, &work);
        println!(
            "  {:>10}: {:>7} cycles  ({:.2}x speedup, {:.1}% reduction)",
            v.to_string(),
            c,
            base / c as f64,
            100.0 * (1.0 - c as f64 / base)
        );
    }

    // --- FPGA: Fig 14 ---
    println!("\nembedding cache (ed=256, Zipf trace):");
    let mut zipf = ZipfSampler::new(10_000, 1.1, 42).unwrap();
    let trace = zipf.trace(100_000);
    for kb in [32usize, 64, 128, 256] {
        let (no_cache, cached, hit) = fpga::embedding_latency(&cfg, kb << 10, 256, &trace).unwrap();
        println!(
            "  {kb:>3} KiB: hit {:.1}%, embedding latency -{:.1}%",
            hit * 100.0,
            100.0 * (1.0 - cached as f64 / no_cache as f64)
        );
    }

    // --- GPU: Fig 12 ---
    let gcfg = GpuConfig::titan_xp_server();
    let gwork = GpuWorkload::scaled(10_000_000, 4);
    let one = gpu::single_gpu(&gcfg, &gwork, 1).total_seconds;
    println!("\nGPU scaling (10M sentences):");
    for s in [1usize, 2, 4] {
        let t = gpu::single_gpu(&gcfg, &gwork, s);
        println!(
            "  1 GPU, {s} stream(s): {:.1} ms ({:.2}x)",
            t.total_seconds * 1e3,
            one / t.total_seconds
        );
    }
    for g in [2usize, 4] {
        let worst = gpu::multi_gpu_latency(&gcfg, &gwork, g, true);
        let ideal = gpu::multi_gpu_latency(&gcfg, &gwork, g, false);
        println!(
            "  {g} GPUs: worst {:.1} ms ({:.2}x) / ideal {:.1} ms ({:.2}x)",
            worst * 1e3,
            one / worst,
            ideal * 1e3,
            one / ideal
        );
    }

    // --- Energy: Section 5.5 ---
    let report = energy::compare(
        &PowerModel::default(),
        20,
        &MachineProfile::xeon(4),
        &cfg,
        &work,
    )
    .unwrap();
    println!(
        "\nenergy: CPU {:.2} mJ/task @ {:.0} W vs FPGA {:.2} mJ/task @ {:.1} W",
        report.cpu_joules_per_task * 1e3,
        report.cpu_watts,
        report.fpga_joules_per_task * 1e3,
        report.fpga_watts
    );
    println!(
        "FPGA energy-efficiency gain: {:.2}x (paper: up to 6.54x)",
        report.fpga_efficiency_gain
    );
}

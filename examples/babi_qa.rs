//! End-to-end question answering on the synthetic bAbI tasks: trains one
//! model per task family, evaluates held-out accuracy, and sweeps the
//! zero-skipping threshold to show the Fig 7 tradeoff live.
//!
//! Run with: `cargo run --release --example babi_qa`

use mnn_dataset::babi::{BabiGenerator, TaskKind};
use mnn_memnn::train::Trainer;
use mnn_memnn::{eval, MemNet, ModelConfig};
use mnnfast::{ColumnEngine, InferenceStats, MnnFastConfig, SkipPolicy};

fn main() {
    for kind in TaskKind::ALL {
        let mut generator = BabiGenerator::new(kind, 11);
        let ns = 12;
        let train_set = generator.dataset(120, ns, 3);
        let test_set = generator.dataset(40, ns, 3);

        let hops = if kind == TaskKind::TwoSupportingFacts {
            2
        } else {
            1
        };
        let config = ModelConfig::for_generator(&generator, 32, ns).with_hops(hops);
        let mut model = MemNet::new(config, 5);
        let report = Trainer::new()
            .epochs(35)
            .momentum(0.5)
            .train(&mut model, &train_set);
        let test_acc = eval::accuracy(&model, &test_set);
        println!(
            "{kind:?}: train acc {:.1}%, test acc {:.1}%",
            report.train_accuracy * 100.0,
            test_acc * 100.0
        );

        // Zero-skipping sweep on the held-out set (hop-aware).
        for th in [0.01f32, 0.1] {
            let engine =
                ColumnEngine::new(MnnFastConfig::new(ns).with_skip(SkipPolicy::Probability(th)));
            let mut stats = InferenceStats::default();
            let acc = eval::accuracy_with(&model, &test_set, |emb, q| {
                let out = mnnfast::multi_hop_simple(
                    &engine,
                    &emb.m_in,
                    &emb.m_out,
                    &emb.questions[q],
                    hops,
                )
                .expect("embedded shapes are consistent");
                stats.merge(&out.stats);
                model.output_logits(&out.o, &out.u_last)
            });
            println!(
                "  skip th={th}: acc {:.1}% ({:+.2}pp), output computation cut {:.1}%",
                acc * 100.0,
                (acc - test_acc) * 100.0,
                stats.computation_reduction() * 100.0
            );
        }
        println!();
    }
}

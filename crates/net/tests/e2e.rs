//! End-to-end loopback tests: a real [`NetServer`] on an OS-assigned
//! port, real [`NetClient`] connections, and — crucially — bitwise
//! comparison of every served answer against the in-process
//! [`Session::ask`] path.

use mnn_dataset::babi::{BabiGenerator, Story, TaskKind};
use mnn_dataset::Vocabulary;
use mnn_memnn::train::Trainer;
use mnn_memnn::{MemNet, ModelConfig};
use mnn_net::{NetClient, NetErrorCode, NetServer, Response, ServerConfig, TenantAuth};
use mnn_serve::{AdmissionConfig, BatchConfig, Session, SessionConfig};
use mnnfast::Precision;
use std::collections::HashMap;
use std::time::Duration;

const NS: usize = 8;

/// One small deterministic model plus held-out stories, shared by every
/// test in the file. Serving-compatible shape (position encoding, no
/// temporal rows) so a sliding window is safe.
fn trained_model() -> (MemNet, Vocabulary, Vec<Story>) {
    let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 2019);
    let train_set = generator.dataset(60, NS, 3);
    let test_set = generator.dataset(6, NS, 3);
    let config = ModelConfig {
        temporal: false,
        position_encoding: true,
        ..ModelConfig::for_generator(&generator, 16, NS)
    };
    let mut model = MemNet::new(config, 61);
    Trainer::new()
        .epochs(25)
        .momentum(0.5)
        .train(&mut model, &train_set);
    (model, generator.vocab().clone(), test_set)
}

/// The session shape every test serves with: a sliding window the size
/// of one story, so replaying many stories stays within the model's
/// positional range.
fn session_config(precision: Precision) -> SessionConfig {
    SessionConfig {
        max_sentences: Some(NS),
        precision,
        ..SessionConfig::default()
    }
}

fn server_config(tenants: &[(&str, &str)]) -> ServerConfig {
    ServerConfig {
        tenants: tenants
            .iter()
            .map(|(token, tenant)| TenantAuth {
                token: (*token).to_owned(),
                tenant: (*tenant).to_owned(),
            })
            .collect(),
        batching: Some(BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(500),
        }),
        ..ServerConfig::default()
    }
}

/// Replays the stories through a loopback connection and through an
/// in-process session, and demands bit-identical words AND probability
/// bit patterns.
fn assert_loopback_parity(precision: Precision) {
    let (model, vocab, stories) = trained_model();
    let cfg = session_config(precision);
    let server = NetServer::spawn(
        model.clone(),
        vocab.clone(),
        cfg,
        server_config(&[("alpha", "alice")]),
    )
    .expect("server spawns");
    let (mut client, tenant) = NetClient::connect(server.addr(), "alpha").expect("connect");
    assert_eq!(tenant, "alice");
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");

    let mut reference = Session::new(model, cfg).expect("in-process session");
    let mut compared = 0usize;
    for story in &stories {
        for sentence in &story.sentences {
            let remote = client.observe_tokens(sentence).expect("observe");
            let local = reference.observe(sentence).expect("observe local");
            let _ = local;
            assert_eq!(remote as usize, reference.memory_len(), "memory in step");
        }
        // Pipeline the story's questions so the server actually batches.
        let mut ids = Vec::new();
        for q in &story.questions {
            ids.push(client.send_ask_tokens(&q.tokens).expect("send"));
        }
        let mut answers = HashMap::new();
        for _ in &ids {
            match client.recv().expect("recv") {
                Response::Answer(a) => {
                    answers.insert(a.id, a);
                }
                other => panic!("expected an answer, got {other:?}"),
            }
        }
        for (q, id) in story.questions.iter().zip(&ids) {
            let local = reference.ask(&q.tokens).expect("ask local");
            let remote = &answers[id];
            assert_eq!(remote.word, local.word, "answer word over loopback");
            assert_eq!(
                remote.probability.to_bits(),
                local.probability.to_bits(),
                "probability must cross the wire bit-exactly"
            );
            assert_eq!(remote.degraded, local.degraded);
            assert_eq!(remote.text, vocab.word(local.word).unwrap_or(""));
            compared += 1;
        }
    }
    assert!(compared >= 12, "enough questions compared: {compared}");
    server.shutdown();
}

#[test]
fn loopback_answers_match_in_process_f32() {
    assert_loopback_parity(Precision::F32);
}

#[test]
fn loopback_answers_match_in_process_int8() {
    assert_loopback_parity(Precision::Int8);
}

#[test]
fn concurrent_tenants_each_get_their_own_answers() {
    let (model, vocab, stories) = trained_model();
    let cfg = session_config(Precision::F32);
    let server = NetServer::spawn(
        model.clone(),
        vocab,
        cfg,
        server_config(&[("alpha", "alice"), ("beta", "bob")]),
    )
    .expect("server spawns");
    let addr = server.addr();

    // Each tenant serves a different story concurrently; answers must
    // match that tenant's in-process replay, proving coalescing across
    // tenants never leaks memory between them.
    let handles: Vec<_> = [("alpha", 0usize), ("beta", 1usize)]
        .into_iter()
        .map(|(token, story_idx)| {
            let story = stories[story_idx].clone();
            let model = model.clone();
            std::thread::spawn(move || {
                let (mut client, _) = NetClient::connect(addr, token).expect("connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(20)))
                    .expect("timeout");
                let mut reference = Session::new(model, cfg).expect("in-process session");
                for sentence in &story.sentences {
                    client.observe_tokens(sentence).expect("observe");
                    reference.observe(sentence).expect("observe local");
                }
                for q in &story.questions {
                    let remote = match client.ask_tokens(&q.tokens).expect("ask") {
                        Response::Answer(a) => a,
                        other => panic!("expected answer, got {other:?}"),
                    };
                    let local = reference.ask(&q.tokens).expect("ask local");
                    assert_eq!(remote.word, local.word);
                    assert_eq!(remote.probability.to_bits(), local.probability.to_bits());
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("tenant thread");
    }
    server.shutdown();
}

#[test]
fn overload_sheds_typed_frames_and_recovers() {
    let (model, vocab, stories) = trained_model();
    // Capacity covers one full coalesced batch (cost = sentences × hops
    // per question, NS per question here, 4·NS per batch) but not two;
    // the burst below must shed, and the refill restores service within
    // tens of milliseconds.
    let server = NetServer::spawn(
        model,
        vocab,
        session_config(Precision::F32),
        ServerConfig {
            admission: Some(AdmissionConfig {
                capacity: 5 * NS as u64,
                refill_per_sec: 400,
            }),
            ..server_config(&[("alpha", "alice")])
        },
    )
    .expect("server spawns");
    let (mut client, _) = NetClient::connect(server.addr(), "alpha").expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");
    let story = &stories[0];
    for sentence in &story.sentences {
        client.observe_tokens(sentence).expect("observe");
    }

    // Burst far past the bucket. Every response must decode (no dropped
    // connection, no malformed frame); the overflow must be typed
    // Overloaded with a positive retry hint.
    let burst = 16;
    for _ in 0..burst {
        client
            .send_ask_tokens(&story.questions[0].tokens)
            .expect("send");
    }
    let mut answered = 0;
    let mut shed = 0;
    for _ in 0..burst {
        match client.recv().expect("every frame decodes") {
            Response::Answer(_) => answered += 1,
            Response::Overloaded { retry_after_ms, .. } => {
                assert!(retry_after_ms > 0, "retry hint must be positive");
                shed += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(answered >= 1, "the bucket admits the first questions");
    assert!(shed >= 1, "the burst must overflow the bucket");
    assert_eq!(answered + shed, burst);

    // Recovery: after the bucket refills the same connection serves
    // again — overload never costs the client its connection.
    std::thread::sleep(Duration::from_millis(200));
    let mut recovered = false;
    for _ in 0..10 {
        match client.ask_tokens(&story.questions[0].tokens).expect("ask") {
            Response::Answer(_) => {
                recovered = true;
                break;
            }
            Response::Overloaded { retry_after_ms, .. } => {
                std::thread::sleep(Duration::from_millis(retry_after_ms.min(100)));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(recovered, "service must recover once the bucket refills");

    let stats = client.stats().expect("stats");
    assert!(stats.shed_questions >= shed as u64);
    assert!(
        stats
            .sheds_by_tenant
            .iter()
            .any(|(t, n)| t == "alice" && *n >= shed as u64),
        "sheds are attributed to the bursting tenant: {:?}",
        stats.sheds_by_tenant
    );
    server.shutdown();
}

#[test]
fn killed_client_mid_request_reclaims_the_slot() {
    let (model, vocab, stories) = trained_model();
    let server = NetServer::spawn(
        model,
        vocab,
        session_config(Precision::F32),
        ServerConfig {
            // A long max-wait parks the ask in the coalescing queue so the
            // client is guaranteed to die before the answer exists.
            batching: Some(BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(50),
            }),
            ..server_config(&[("alpha", "alice")])
        },
    )
    .expect("server spawns");
    let story = &stories[0];

    {
        let (mut doomed, _) = NetClient::connect(server.addr(), "alpha").expect("connect");
        doomed
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("timeout");
        for sentence in &story.sentences {
            doomed.observe_tokens(sentence).expect("observe");
        }
        doomed
            .send_ask_tokens(&story.questions[0].tokens)
            .expect("send");
        // Drop without reading the answer: the socket closes with the
        // request still queued server-side.
    }

    // The server must flush the orphaned question, drop the unroutable
    // answer, and keep serving new connections at full health.
    let (mut client, _) = NetClient::connect(server.addr(), "alpha").expect("reconnect");
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");
    match client.ask_tokens(&story.questions[0].tokens).expect("ask") {
        Response::Answer(_) => {}
        other => panic!("expected answer, got {other:?}"),
    }
    // Poll stats until the orphaned question has been flushed: the pool
    // must hold zero pending questions (the dead client's slot is
    // reclaimed, not leaked).
    let mut drained = false;
    for _ in 0..100 {
        let stats = client.stats().expect("stats");
        if stats.pending_questions == 0 && stats.questions_answered >= 2 {
            drained = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(drained, "orphaned ask must be flushed, not leaked");
    server.shutdown();
}

#[test]
fn bad_bytes_get_a_typed_error_not_a_hangup() {
    use std::io::{Read, Write};
    let (model, vocab, _) = trained_model();
    let server = NetServer::spawn(
        model,
        vocab,
        session_config(Precision::F32),
        server_config(&[("alpha", "alice")]),
    )
    .expect("server spawns");

    let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n")
        .expect("write garbage");
    // The server answers a typed error frame before closing.
    let mut reader = std::io::BufReader::new(raw);
    let frame = mnn_net::read_frame(&mut reader).expect("typed error frame");
    match frame {
        mnn_net::NetFrame::Error { id, code, .. } => {
            assert_eq!(id, mnn_net::NO_REQUEST);
            assert_eq!(code, NetErrorCode::BadRequest);
        }
        other => panic!("expected error frame, got {other:?}"),
    }
    // After the error the connection drains closed.
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "connection closes after the protocol error");

    // An honest client on a fresh connection is unaffected.
    let (_client, tenant) = NetClient::connect(server.addr(), "alpha").expect("connect");
    assert_eq!(tenant, "alice");
    server.shutdown();
}

#[test]
fn auth_is_required_and_tokens_are_checked() {
    let (model, vocab, stories) = trained_model();
    let server = NetServer::spawn(
        model,
        vocab,
        session_config(Precision::F32),
        server_config(&[("alpha", "alice")]),
    )
    .expect("server spawns");

    // Wrong token: typed auth rejection.
    match NetClient::connect(server.addr(), "wrong") {
        Err(mnn_net::NetError::Rejected { code, .. }) => assert_eq!(code, NetErrorCode::Auth),
        other => panic!("expected auth rejection, got {other:?}"),
    }

    // No hello at all: asks are refused with an auth error, not served.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let ask = mnn_net::NetFrame::AskTokens {
            id: 7,
            tokens: stories[0].questions[0].tokens.clone(),
        };
        raw.write_all(&ask.encode()).expect("write");
        let mut reader = std::io::BufReader::new(raw);
        match mnn_net::read_frame(&mut reader).expect("frame") {
            mnn_net::NetFrame::Error { id, code, .. } => {
                assert_eq!(id, 7);
                assert_eq!(code, NetErrorCode::Auth);
            }
            other => panic!("expected auth error, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn shutdown_drains_queued_questions_before_acking() {
    let (model, vocab, stories) = trained_model();
    let server = NetServer::spawn(
        model,
        vocab,
        session_config(Precision::F32),
        ServerConfig {
            // Max-wait far beyond the test duration: only the drain can
            // flush these questions.
            batching: Some(BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_secs(30),
            }),
            ..server_config(&[("alpha", "alice")])
        },
    )
    .expect("server spawns");
    let story = &stories[0];

    let (mut asker, _) = NetClient::connect(server.addr(), "alpha").expect("connect");
    asker
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");
    for sentence in &story.sentences {
        asker.observe_tokens(sentence).expect("observe");
    }
    let mut ids = Vec::new();
    for q in &story.questions {
        ids.push(asker.send_ask_tokens(&q.tokens).expect("send"));
    }

    // Give the scheduler a beat to accept the asks into the queue, then
    // shut down from a second connection.
    std::thread::sleep(Duration::from_millis(50));
    let (mut admin, _) = NetClient::connect(server.addr(), "alpha").expect("connect admin");
    admin
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");
    admin.shutdown_server().expect("shutdown acked");

    // Every queued ask was answered during the drain.
    let mut got = 0;
    for _ in &ids {
        match asker.recv().expect("drained answer") {
            Response::Answer(_) => got += 1,
            other => panic!("expected drained answer, got {other:?}"),
        }
    }
    assert_eq!(got, ids.len(), "no accepted question goes unanswered");
    server.wait();
}

//! End-to-end test of the `mnn-serve` binary: spawn the real daemon,
//! speak the real protocol over a real socket, drain it with a shutdown
//! frame, and check it exits cleanly.

use mnn_net::{NetClient, Response};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Kills the child on panic so a failing assertion cannot leak a daemon.
struct Reap(Child);

impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_binary_trains_listens_answers_and_drains() {
    let child = Command::new(env!("CARGO_BIN_EXE_mnn-serve"))
        .args([
            "--synthetic",
            "--listen",
            "127.0.0.1:0",
            "--window",
            "8",
            "--tenants",
            "sesame=alice",
            "--max-batch",
            "4",
            "--batch-wait-us",
            "500",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mnn-serve");
    let mut child = Reap(child);
    let stdout = child.0.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();

    // The daemon prints exactly `listening on ADDR` once it is serving
    // (after the synthetic training pass, which takes a few seconds).
    let banner = lines
        .next()
        .expect("daemon exited before listening")
        .expect("read banner");
    let addr: SocketAddr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .parse()
        .expect("banner address");

    let (mut client, tenant) = NetClient::connect(addr, "sesame").expect("connect");
    assert_eq!(tenant, "alice");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // A SingleSupportingFact story in the synthetic model's vocabulary.
    for s in ["mary went to the kitchen", "john went to the garden"] {
        client.observe(s).expect("observe");
    }
    let answer = match client.ask("where is mary").expect("ask") {
        Response::Answer(a) => a,
        other => panic!("expected an answer, got {other:?}"),
    };
    assert!(!answer.text.is_empty(), "answer should carry a word");
    assert!(answer.probability.is_finite());

    let stats = client.stats().expect("stats");
    assert!(stats.net_connections_accepted >= 1);
    assert!(stats.questions_answered >= 1);

    client.shutdown_server().expect("shutdown handshake");
    let status = child.0.wait().expect("wait for daemon");
    assert!(status.success(), "daemon exited with {status:?}");
    let rest: Vec<String> = lines.map_while(Result::ok).collect();
    assert!(
        rest.iter().any(|l| l == "drained and stopped"),
        "missing drain banner in {rest:?}"
    );
}

//! `mnn-serve` — the standalone network serving daemon.
//!
//! Loads a trained model (or trains a small synthetic one with
//! `--synthetic`), binds a listener, and serves the multi-tenant binary
//! protocol until a client sends a shutdown frame.
//!
//! ```text
//! mnn-serve --model model.bin --listen 127.0.0.1:7464 \
//!     --tenants alpha=alice,beta=bob --max-batch 16 --batch-wait-us 500
//! ```
//!
//! Flags (every one has a default; `--listen`, `--net-threads`, and
//! `--batch-wait-us` fall back to `MNNFAST_LISTEN`,
//! `MNNFAST_NET_THREADS`, and `MNNFAST_BATCH_WAIT_US`):
//!
//! | flag | meaning | default |
//! |------|---------|---------|
//! | `--model PATH` | model file (vocab sidecar at `PATH.vocab`) | — |
//! | `--synthetic` | train a tiny deterministic bAbI model instead | off |
//! | `--listen ADDR` | bind address (`:0` picks a free port) | `127.0.0.1:7464` |
//! | `--net-threads N` | connection-handling threads | `2` |
//! | `--tenants T=N,...` | token=tenant pairs | `default=default` |
//! | `--max-batch N` | coalescing flush occupancy | `8` |
//! | `--batch-wait-us N` | coalescing max-wait (µs) | `1000` |
//! | `--deadline-ms N` | per-question deadline (0 = none) | `0` |
//! | `--precision P` | `f32` or `int8` | `f32` |
//! | `--window N` | tenant memory window (0 = unbounded) | `0` |
//! | `--admission-capacity N` | token-bucket burst (0 = no admission) | `0` |
//! | `--admission-refill N` | token-bucket refill per second | `0` |
//! | `--max-inflight N` | per-connection in-flight cap | `64` |
//! | `--idle-timeout-ms N` | close quiet connections after | `60000` |

use mnn_dataset::babi::{BabiGenerator, TaskKind};
use mnn_dataset::Vocabulary;
use mnn_memnn::train::Trainer;
use mnn_memnn::{MemNet, ModelConfig};
use mnn_net::{NetServer, ServerConfig, TenantAuth};
use mnn_serve::{AdmissionConfig, BatchConfig, SessionConfig};
use mnnfast::Precision;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("mnn-serve: {e}");
        std::process::exit(1);
    }
}

/// `--key value` pairs plus switches, in the CLI crate's hand-rolled
/// idiom.
struct Options {
    flags: BTreeMap<String, String>,
}

impl Options {
    const SWITCHES: &'static [&'static str] = &["synthetic"];

    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{a}'"));
            };
            if Self::SWITCHES.contains(&key) {
                flags.insert(key.to_owned(), "true".to_owned());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("missing value for --{key}"))?;
            flags.insert(key.to_owned(), value.clone());
        }
        Ok(Options { flags })
    }

    fn switch(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value '{raw}' for --{key}")),
        }
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }
}

fn read_vocab(path: &str) -> Result<Vocabulary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(text.lines().map(str::to_owned).collect())
}

/// Loads `--model` (with its `.vocab` sidecar) or trains the small
/// deterministic synthetic model `--synthetic` asks for.
fn load_or_train(options: &Options) -> Result<(MemNet, Vocabulary), String> {
    if let Some(path) = options.get_str("model") {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        let model = MemNet::from_bytes(&bytes).map_err(|e| format!("loading {path}: {e}"))?;
        let vocab = read_vocab(&format!("{path}.vocab"))?;
        return Ok((model, vocab));
    }
    if !options.switch("synthetic") {
        return Err("pass --model PATH or --synthetic".to_owned());
    }
    let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 2019);
    let ns = 8;
    let train_set = generator.dataset(60, ns, 3);
    // The serving-compatible shape: position encoding instead of temporal
    // rows, so tenant memories can grow past the training window (pair
    // with `--window` to bound the working set).
    let config = ModelConfig {
        temporal: false,
        position_encoding: true,
        ..ModelConfig::for_generator(&generator, 16, ns)
    };
    let mut model = MemNet::new(config, 61);
    Trainer::new()
        .epochs(25)
        .momentum(0.5)
        .train(&mut model, &train_set);
    Ok((model, generator.vocab().clone()))
}

fn parse_tenants(raw: &str) -> Result<Vec<TenantAuth>, String> {
    let mut tenants = Vec::new();
    for pair in raw.split(',') {
        let (token, tenant) = pair
            .split_once('=')
            .ok_or_else(|| format!("tenant '{pair}' is not token=name"))?;
        if token.is_empty() || tenant.is_empty() {
            return Err(format!("tenant '{pair}' has an empty side"));
        }
        tenants.push(TenantAuth {
            token: token.to_owned(),
            tenant: tenant.to_owned(),
        });
    }
    Ok(tenants)
}

fn run(args: &[String]) -> Result<(), String> {
    mnn_net::env::validate_env().map_err(|e| e.to_string())?;
    let options = Options::parse(args)?;
    let (model, vocab) = load_or_train(&options)?;

    let listen: SocketAddr = match options.get_str("listen") {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid --listen '{raw}'"))?,
        None => mnn_net::env::listen_from_env()
            .map_err(|e| e.to_string())?
            .unwrap_or_else(|| "127.0.0.1:7464".parse().expect("literal address")),
    };
    let net_threads = match options.get("net-threads", 0usize)? {
        0 => mnn_net::env::net_threads_from_env()
            .map_err(|e| e.to_string())?
            .unwrap_or(2),
        n => n,
    };
    let max_wait = match options.flags.get("batch-wait-us") {
        Some(raw) => Duration::from_micros(
            raw.parse()
                .map_err(|_| format!("invalid --batch-wait-us '{raw}'"))?,
        ),
        None => mnn_net::env::batch_wait_from_env()
            .map_err(|e| e.to_string())?
            .unwrap_or(Duration::from_micros(1000)),
    };
    let tenants = parse_tenants(options.get_str("tenants").unwrap_or("default=default"))?;
    let max_batch = options.get("max-batch", 8usize)?;
    let deadline_ms = options.get("deadline-ms", 0u64)?;
    let window = options.get("window", 0usize)?;
    let precision = match options.get_str("precision").unwrap_or("f32") {
        "f32" => Precision::F32,
        "int8" => Precision::Int8,
        other => return Err(format!("unknown precision '{other}' (expected f32|int8)")),
    };
    let capacity = options.get("admission-capacity", 0u64)?;
    let refill = options.get("admission-refill", 0u64)?;

    let session = SessionConfig {
        max_sentences: (window > 0).then_some(window),
        deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        precision,
        ..SessionConfig::default()
    };
    let config = ServerConfig {
        listen,
        net_threads,
        tenants,
        max_inflight: options.get("max-inflight", 64u32)?,
        idle_timeout: Duration::from_millis(options.get("idle-timeout-ms", 60_000u64)?),
        admission: (capacity > 0).then_some(AdmissionConfig {
            capacity,
            refill_per_sec: refill,
        }),
        batching: (max_batch > 0).then_some(BatchConfig {
            max_batch,
            max_wait,
        }),
    };

    let server = NetServer::spawn(model, vocab, session, config).map_err(|e| e.to_string())?;
    // The test harness and quickstart scrape this exact line for the
    // resolved port, so keep its shape stable.
    println!("listening on {}", server.addr());
    server.wait();
    println!("drained and stopped");
    Ok(())
}

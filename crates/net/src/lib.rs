//! Asynchronous multi-tenant network front-end for the MnnFast serving
//! plane.
//!
//! MnnFast (ISCA 2019) optimizes the *compute* side of memory-augmented
//! inference; a deployment still needs a front door. This crate puts the
//! serving pool behind a TCP protocol without giving up the paper's
//! throughput story: asks arriving on different connections — even for
//! different tenants — land in the [`mnn_serve::SessionPool`]'s
//! coalescing queues, so the embedding and output layers run over
//! batches shaped by *aggregate* network traffic, not per-connection
//! trickles.
//!
//! The pieces:
//!
//! - [`proto`] — the length-prefixed, CRC-guarded binary protocol
//!   (shared envelope in `mnn-wire`, same idiom as the distributed
//!   plane's RPC but under its own magic);
//! - [`NetServer`] — accept loop, non-blocking connection threads, and a
//!   scheduler thread that owns the pool. Authentication is by tenant
//!   token; overload answers a typed [`NetFrame::Overloaded`] with a
//!   retry-after hint instead of dropping the connection;
//! - [`NetClient`] — a blocking client with strict and pipelined calls;
//! - [`env`] readers for `MNNFAST_LISTEN`, `MNNFAST_NET_THREADS`, and
//!   `MNNFAST_BATCH_WAIT_US`.
//!
//! Answers served over loopback are bitwise-identical to in-process
//! [`mnn_serve::Session::ask`]: tokenization, budgets, and batched
//! dispatch are the same code, and f32 probabilities cross the wire by
//! bit pattern, never reformatted.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod client;
pub mod env;
mod error;
mod proto;
mod server;

pub use client::{ClientAnswer, NetClient, Response};
pub use error::{NetError, NetErrorCode};
pub use proto::{read_frame, write_frame, NetFrame, NetStatsWire, MAGIC, NO_REQUEST, VERSION};
pub use server::{NetServer, ServerConfig, TenantAuth};

//! The multi-tenant serving front-end.
//!
//! Thread shape (no async runtime — non-blocking sockets on a polling
//! readiness loop, the repo's offline-shim discipline applied to I/O):
//!
//! - an **accept thread** blocks on the listener and deals new
//!   connections round-robin to the net threads;
//! - **N net threads** ([`ServerConfig::net_threads`]) each own their
//!   connections: non-blocking reads accumulate bytes per connection and
//!   [`mnn_wire::frame_len`] carves complete frames out zero-copy,
//!   non-blocking writes drain each connection's outbox, and a condvar
//!   park bounds the poll when nothing is ready. Authentication, text
//!   encoding, the per-connection in-flight cap, and idle timeouts all
//!   live here, off the scheduler's critical path;
//! - one **scheduler thread** owns the [`SessionPool`] and is the only
//!   thread that touches model state. Network asks feed the pool's
//!   coalescing queues via `enqueue_tracked` — batching **across tenants
//!   and connections** — and the thread sleeps precisely until the pool's
//!   `next_flush_due` instant, so partially filled batches still flush
//!   within [`BatchConfig::max_wait`] while full batches flush instantly.
//!
//! Overload never drops a connection: admission-control sheds and
//! in-flight-cap rejections both answer a typed [`NetFrame::Overloaded`]
//! with a retry-after hint derived from the token bucket's refill rate.
//! Shutdown drains: every queued question is flushed and answered before
//! the acknowledgement goes out and the threads exit.

use crate::error::{NetError, NetErrorCode};
use crate::proto::{NetFrame, NetStatsWire, MAGIC, NO_REQUEST, VERSION};
use mnn_dataset::text;
use mnn_dataset::{Vocabulary, WordId};
use mnn_memnn::MemNet;
use mnn_serve::{
    AdmissionConfig, BatchConfig, BatchedAnswer, PoolError, SessionConfig, SessionPool,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One tenant's authentication mapping: a client presenting `token` in
/// its [`NetFrame::Hello`] acts as `tenant` for the connection's life.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantAuth {
    /// The secret the client presents.
    pub token: String,
    /// The pool tenant the token maps to.
    pub tenant: String,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (port 0 picks a free port; the bound address is
    /// [`NetServer::addr`]).
    pub listen: SocketAddr,
    /// Connection-handling threads.
    pub net_threads: usize,
    /// Tenant authentication table. Every named tenant is created in the
    /// pool at startup.
    pub tenants: Vec<TenantAuth>,
    /// Requests a single connection may have in flight before further
    /// asks are answered [`NetFrame::Overloaded`] immediately.
    pub max_inflight: u32,
    /// Close a connection after this long with no traffic and nothing in
    /// flight.
    pub idle_timeout: Duration,
    /// Pool admission control (token bucket over work units); `None`
    /// admits everything.
    pub admission: Option<AdmissionConfig>,
    /// Coalescing-batch policy; `None` degenerates to batches of one.
    pub batching: Option<BatchConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            listen: SocketAddr::from(([127, 0, 0, 1], 0)),
            net_threads: 2,
            tenants: vec![TenantAuth {
                token: "default".into(),
                tenant: "default".into(),
            }],
            max_inflight: 64,
            idle_timeout: Duration::from_secs(60),
            admission: None,
            batching: Some(BatchConfig::default()),
        }
    }
}

/// How long a net thread parks when no connection made progress. The
/// loop is a polling readiness scan, so this bounds added latency.
const PARK_BUSY: Duration = Duration::from_micros(200);
/// Park bound when a net thread owns no connections at all.
const PARK_IDLE: Duration = Duration::from_millis(2);
/// Upper bound on the scheduler's sleep between flush checks.
const SCHED_IDLE: Duration = Duration::from_millis(5);
/// Grace period for draining outboxes at shutdown.
const DRAIN_GRACE: Duration = Duration::from_millis(500);
/// Retry hint when the per-connection in-flight cap rejects an ask.
const INFLIGHT_RETRY_MS: u64 = 1;
/// Retry hint when admission control sheds but the bucket never refills.
const NO_REFILL_RETRY_MS: u64 = 100;

/// Lifetime counters for the network plane, shared by every thread.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    active: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
}

/// A net thread's parking spot: `true` means "work arrived, wake up".
type Waker = Arc<(Mutex<bool>, Condvar)>;

fn wake(waker: &Waker) {
    let (flag, cv) = &**waker;
    *flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
    cv.notify_all();
}

/// Pending response bytes for one connection, drained by its net thread.
#[derive(Debug, Default)]
struct Outbox {
    queue: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written (non-blocking writes can
    /// land mid-frame).
    front_written: usize,
}

/// The connection state shared between its net thread and the scheduler.
#[derive(Debug)]
struct ConnShared {
    outbox: Mutex<Outbox>,
    closed: AtomicBool,
    inflight: AtomicU32,
    waker: Waker,
}

impl ConnShared {
    /// Queues one response frame; dropped silently when the connection is
    /// already closed (the socket is gone — there is nowhere to send it).
    fn push(&self, frame: &NetFrame) {
        if self.closed.load(Ordering::Acquire) {
            return;
        }
        self.outbox
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .push_back(frame.encode());
        wake(&self.waker);
    }

    fn settle(&self, frame: &NetFrame) {
        // An in-flight request is settled by exactly one response.
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        self.push(frame);
    }
}

/// A request forwarded from a net thread to the scheduler.
enum Request {
    Observe {
        conn: Arc<ConnShared>,
        tenant: String,
        id: u64,
        tokens: Vec<WordId>,
    },
    Ask {
        conn: Arc<ConnShared>,
        tenant: String,
        id: u64,
        tokens: Vec<WordId>,
    },
    Stats {
        conn: Arc<ConnShared>,
    },
    Shutdown {
        conn: Arc<ConnShared>,
    },
}

/// A running serving front-end.
///
/// Dropping the server shuts it down (draining queued work); call
/// [`NetServer::shutdown`] to do so explicitly.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wakers: Vec<Waker>,
    handles: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Boots the front-end: binds the listener, builds the pool (one
    /// session per configured tenant), and spawns the accept, net, and
    /// scheduler threads.
    ///
    /// # Errors
    ///
    /// [`NetError::Spawn`] when the bind or pool bootstrap fails;
    /// [`NetError::Env`] when an `MNNFAST_*` knob is malformed.
    pub fn spawn(
        model: MemNet,
        vocab: Vocabulary,
        session: SessionConfig,
        config: ServerConfig,
    ) -> Result<NetServer, NetError> {
        crate::env::validate_env()?;
        if config.net_threads == 0 {
            return Err(NetError::Spawn("net_threads must be at least 1".into()));
        }
        if config.tenants.is_empty() {
            return Err(NetError::Spawn("no tenants configured".into()));
        }
        let listener = TcpListener::bind(config.listen)
            .map_err(|e| NetError::Spawn(format!("bind {}: {e}", config.listen)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| NetError::Spawn(format!("local_addr: {e}")))?;

        let mut pool = SessionPool::new(model, session)
            .map_err(|e| NetError::Spawn(format!("session pool: {e}")))?;
        if let Some(batching) = config.batching {
            pool = pool.with_batching(batching);
        }
        if let Some(admission) = config.admission {
            pool = pool.with_admission(admission);
        }
        let mut auth = BTreeMap::new();
        for t in &config.tenants {
            pool.create_tenant(&t.tenant)
                .map_err(|e| NetError::Spawn(format!("tenant '{}': {e}", t.tenant)))?;
            if auth.insert(t.token.clone(), t.tenant.clone()).is_some() {
                return Err(NetError::Spawn(format!(
                    "token '{}' maps to two tenants",
                    t.token
                )));
            }
        }
        let auth = Arc::new(auth);
        let vocab = Arc::new(vocab);
        let counters = Arc::new(Counters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<Request>();

        let mut handles = Vec::new();
        let mut wakers = Vec::new();
        let mut registries: Vec<Arc<Mutex<Vec<TcpStream>>>> = Vec::new();
        for i in 0..config.net_threads {
            let waker: Waker = Arc::new((Mutex::new(false), Condvar::new()));
            let registry: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
            let thread = NetThread {
                registry: registry.clone(),
                waker: waker.clone(),
                auth: auth.clone(),
                vocab: vocab.clone(),
                counters: counters.clone(),
                shutdown: shutdown.clone(),
                tx: tx.clone(),
                max_inflight: config.max_inflight,
                idle_timeout: config.idle_timeout,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mnn-net-{i}"))
                    .spawn(move || thread.run())
                    .map_err(|e| NetError::Spawn(format!("net thread: {e}")))?,
            );
            wakers.push(waker);
            registries.push(registry);
        }
        drop(tx); // the scheduler's rx disconnects once every net thread exits

        let scheduler = Scheduler {
            pool,
            vocab,
            rx,
            admission: config.admission,
            shutdown: shutdown.clone(),
            counters: counters.clone(),
            wakers: wakers.clone(),
            addr,
            pending: HashMap::new(),
        };
        handles.push(
            std::thread::Builder::new()
                .name("mnn-net-sched".into())
                .spawn(move || scheduler.run())
                .map_err(|e| NetError::Spawn(format!("scheduler thread: {e}")))?,
        );

        let accept = AcceptLoop {
            listener,
            registries,
            wakers: wakers.clone(),
            counters,
            shutdown: shutdown.clone(),
        };
        handles.push(
            std::thread::Builder::new()
                .name("mnn-net-accept".into())
                .spawn(move || accept.run())
                .map_err(|e| NetError::Spawn(format!("accept thread: {e}")))?,
        );

        Ok(NetServer {
            addr,
            shutdown,
            wakers,
            handles,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: queued questions are flushed and answered, open
    /// connections closed, and every thread joined.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the server stops — i.e. until some client sends a
    /// [`NetFrame::Shutdown`]. This is what the `mnn-serve` binary parks
    /// on.
    pub fn wait(mut self) {
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for waker in &self.wakers {
            wake(waker);
        }
        // Unblock the accept thread's blocking accept.
        let _ = TcpStream::connect(self.addr);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.stop();
        }
    }
}

/// The accept loop: blocks on the listener, deals connections
/// round-robin to net threads.
struct AcceptLoop {
    listener: TcpListener,
    registries: Vec<Arc<Mutex<Vec<TcpStream>>>>,
    wakers: Vec<Waker>,
    counters: Arc<Counters>,
    shutdown: Arc<AtomicBool>,
}

impl AcceptLoop {
    fn run(self) {
        let mut next = 0usize;
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    continue;
                }
            };
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            self.counters.accepted.fetch_add(1, Ordering::Relaxed);
            self.counters.active.fetch_add(1, Ordering::Relaxed);
            self.registries[next]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(stream);
            wake(&self.wakers[next]);
            next = (next + 1) % self.registries.len();
        }
    }
}

/// One live connection as its net thread sees it.
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    inbuf: Vec<u8>,
    tenant: Option<String>,
    last_activity: Instant,
    /// Close once the outbox drains (set after an unrecoverable frame
    /// error — the byte stream can no longer be trusted to re-sync).
    draining: bool,
    dead: bool,
}

/// One connection-handling thread.
struct NetThread {
    registry: Arc<Mutex<Vec<TcpStream>>>,
    waker: Waker,
    auth: Arc<BTreeMap<String, String>>,
    vocab: Arc<Vocabulary>,
    counters: Arc<Counters>,
    shutdown: Arc<AtomicBool>,
    tx: mpsc::Sender<Request>,
    max_inflight: u32,
    idle_timeout: Duration,
}

impl NetThread {
    fn run(self) {
        let mut conns: Vec<Conn> = Vec::new();
        loop {
            // Adopt newly accepted connections.
            for stream in self
                .registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
            {
                conns.push(Conn {
                    stream,
                    shared: Arc::new(ConnShared {
                        outbox: Mutex::new(Outbox::default()),
                        closed: AtomicBool::new(false),
                        inflight: AtomicU32::new(0),
                        waker: self.waker.clone(),
                    }),
                    inbuf: Vec::new(),
                    tenant: None,
                    last_activity: Instant::now(),
                    draining: false,
                    dead: false,
                });
            }

            if self.shutdown.load(Ordering::Acquire) {
                self.drain_and_close(&mut conns);
                return;
            }

            let mut progress = false;
            for conn in &mut conns {
                progress |= self.write_conn(conn);
                if !conn.dead && !conn.draining {
                    progress |= self.read_conn(conn);
                }
                if conn.draining
                    && !conn.dead
                    && conn
                        .shared
                        .outbox
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .queue
                        .is_empty()
                {
                    Self::close(conn, &self.counters);
                }
                if !conn.dead
                    && conn.last_activity.elapsed() > self.idle_timeout
                    && conn.shared.inflight.load(Ordering::Acquire) == 0
                {
                    Self::close(conn, &self.counters);
                }
            }
            conns.retain(|c| !c.dead);

            if !progress {
                let park = if conns.is_empty() {
                    PARK_IDLE
                } else {
                    PARK_BUSY
                };
                let (flag, cv) = &*self.waker;
                let mut ready = flag.lock().unwrap_or_else(|e| e.into_inner());
                if !*ready {
                    let (guard, _) = cv
                        .wait_timeout(ready, park)
                        .unwrap_or_else(|e| e.into_inner());
                    ready = guard;
                }
                *ready = false;
            }
        }
    }

    fn close(conn: &mut Conn, counters: &Counters) {
        if conn.dead {
            return;
        }
        conn.dead = true;
        conn.shared.closed.store(true, Ordering::Release);
        counters.active.fetch_sub(1, Ordering::Relaxed);
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Drains response bytes into the socket; returns whether any byte
    /// moved.
    fn write_conn(&self, conn: &mut Conn) -> bool {
        if conn.dead {
            return false;
        }
        let mut progress = false;
        let mut outbox = conn.shared.outbox.lock().unwrap_or_else(|e| e.into_inner());
        while let Some(front) = outbox.queue.front() {
            let frame_len = front.len();
            let offset = outbox.front_written;
            match conn.stream.write(&front[offset..]) {
                Ok(0) => {
                    drop(outbox);
                    Self::close(conn, &self.counters);
                    return progress;
                }
                Ok(n) => {
                    progress = true;
                    outbox.front_written += n;
                    if outbox.front_written == frame_len {
                        outbox.queue.pop_front();
                        outbox.front_written = 0;
                        self.counters.frames_out.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    drop(outbox);
                    Self::close(conn, &self.counters);
                    return progress;
                }
            }
        }
        progress
    }

    /// Reads available bytes, carves complete frames out of the
    /// accumulation buffer, and handles each; returns whether any byte
    /// moved.
    fn read_conn(&self, conn: &mut Conn) -> bool {
        let mut progress = false;
        let mut tmp = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut tmp) {
                Ok(0) => {
                    Self::close(conn, &self.counters);
                    return progress;
                }
                Ok(n) => {
                    progress = true;
                    conn.last_activity = Instant::now();
                    conn.inbuf.extend_from_slice(&tmp[..n]);
                    if n < tmp.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    Self::close(conn, &self.counters);
                    return progress;
                }
            }
        }
        // Carve complete frames out of the buffer (zero-copy probe).
        loop {
            match mnn_wire::frame_len(&conn.inbuf, MAGIC, VERSION) {
                Ok(Some(end)) => {
                    let decoded = NetFrame::decode(&conn.inbuf[..end]);
                    conn.inbuf.drain(..end);
                    match decoded {
                        Ok(frame) => {
                            self.counters.frames_in.fetch_add(1, Ordering::Relaxed);
                            self.handle_frame(conn, frame);
                        }
                        Err(e) => {
                            // The envelope was whole but rotten (CRC or
                            // payload): answer typed, then drop the
                            // connection — the stream may be desynced.
                            conn.shared.push(&NetFrame::Error {
                                id: NO_REQUEST,
                                code: NetErrorCode::BadRequest,
                                message: e.to_string(),
                            });
                            conn.draining = true;
                            return true;
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Garbled header: there is no way to find the next
                    // frame boundary. Answer typed and drain.
                    conn.shared.push(&NetFrame::Error {
                        id: NO_REQUEST,
                        code: NetErrorCode::BadRequest,
                        message: NetError::from(e).to_string(),
                    });
                    conn.inbuf.clear();
                    conn.draining = true;
                    return true;
                }
            }
        }
        progress
    }

    fn handle_frame(&self, conn: &mut Conn, frame: NetFrame) {
        if self.shutdown.load(Ordering::Acquire) {
            conn.shared.push(&NetFrame::Error {
                id: NO_REQUEST,
                code: NetErrorCode::Shutdown,
                message: "server is shutting down".into(),
            });
            return;
        }
        match frame {
            NetFrame::Hello { token } => match self.auth.get(&token) {
                Some(tenant) => {
                    conn.tenant = Some(tenant.clone());
                    conn.shared.push(&NetFrame::HelloAck {
                        tenant: tenant.clone(),
                        max_inflight: self.max_inflight,
                    });
                }
                None => conn.shared.push(&NetFrame::Error {
                    id: NO_REQUEST,
                    code: NetErrorCode::Auth,
                    message: "unknown token".into(),
                }),
            },
            NetFrame::Observe { id, text } => match text::encode(&text, &self.vocab) {
                Ok(tokens) => self.submit(conn, id, tokens, false),
                Err(e) => conn.shared.push(&NetFrame::Error {
                    id,
                    code: NetErrorCode::BadRequest,
                    message: e,
                }),
            },
            NetFrame::ObserveTokens { id, tokens } => self.submit(conn, id, tokens, false),
            NetFrame::Ask { id, text } => match text::encode(&text, &self.vocab) {
                Ok(tokens) => self.submit(conn, id, tokens, true),
                Err(e) => conn.shared.push(&NetFrame::Error {
                    id,
                    code: NetErrorCode::BadRequest,
                    message: e,
                }),
            },
            NetFrame::AskTokens { id, tokens } => self.submit(conn, id, tokens, true),
            NetFrame::Stats => {
                let _ = self.tx.send(Request::Stats {
                    conn: conn.shared.clone(),
                });
            }
            NetFrame::Shutdown => {
                let _ = self.tx.send(Request::Shutdown {
                    conn: conn.shared.clone(),
                });
            }
            // Server-to-client frames arriving at the server are a
            // protocol violation.
            other => conn.shared.push(&NetFrame::Error {
                id: NO_REQUEST,
                code: NetErrorCode::BadRequest,
                message: format!("unexpected client frame: {other:?}"),
            }),
        }
    }

    /// Forwards an observe/ask to the scheduler, enforcing authentication
    /// and the per-connection in-flight cap.
    fn submit(&self, conn: &mut Conn, id: u64, tokens: Vec<WordId>, is_ask: bool) {
        let Some(tenant) = conn.tenant.clone() else {
            conn.shared.push(&NetFrame::Error {
                id,
                code: NetErrorCode::Auth,
                message: "authenticate with hello first".into(),
            });
            return;
        };
        // The in-flight cap bounds this connection's claim on scheduler
        // memory: beyond it the client is told to back off, not hung up.
        if conn.shared.inflight.load(Ordering::Acquire) >= self.max_inflight {
            conn.shared.push(&NetFrame::Overloaded {
                id,
                retry_after_ms: INFLIGHT_RETRY_MS,
            });
            return;
        }
        conn.shared.inflight.fetch_add(1, Ordering::AcqRel);
        let request = if is_ask {
            Request::Ask {
                conn: conn.shared.clone(),
                tenant,
                id,
                tokens,
            }
        } else {
            Request::Observe {
                conn: conn.shared.clone(),
                tenant,
                id,
                tokens,
            }
        };
        if self.tx.send(request).is_err() {
            conn.shared.settle(&NetFrame::Error {
                id,
                code: NetErrorCode::Shutdown,
                message: "scheduler is gone".into(),
            });
        }
    }

    /// Shutdown path: give each connection a grace period to flush its
    /// outbox, then close everything.
    fn drain_and_close(&self, conns: &mut Vec<Conn>) {
        let start = Instant::now();
        while start.elapsed() < DRAIN_GRACE {
            let mut outstanding = false;
            for conn in conns.iter_mut() {
                if conn.dead {
                    continue;
                }
                self.write_conn(conn);
                if !conn.dead
                    && !conn
                        .shared
                        .outbox
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .queue
                        .is_empty()
                {
                    outstanding = true;
                }
            }
            if !outstanding {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        for conn in conns.iter_mut() {
            Self::close(conn, &self.counters);
        }
        conns.clear();
    }
}

/// An ask the scheduler has accepted into the pool's coalescing queues,
/// keyed by pool request id.
struct PendingAsk {
    conn: Arc<ConnShared>,
    client_id: u64,
}

/// The scheduler thread: sole owner of the [`SessionPool`].
struct Scheduler {
    pool: SessionPool,
    vocab: Arc<Vocabulary>,
    rx: mpsc::Receiver<Request>,
    admission: Option<AdmissionConfig>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    wakers: Vec<Waker>,
    addr: SocketAddr,
    pending: HashMap<u64, PendingAsk>,
}

impl Scheduler {
    fn run(mut self) {
        let mut drained = false;
        loop {
            let timeout = match self.pool.next_flush_due() {
                Some(due) => due
                    .saturating_duration_since(Instant::now())
                    .min(SCHED_IDLE),
                None => SCHED_IDLE,
            };
            match self.rx.recv_timeout(timeout) {
                Ok(request) => self.handle(request, &mut drained),
                Err(RecvTimeoutError::Timeout) => {}
                // Every net thread has exited; nothing can submit again.
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if !drained {
                if self.shutdown.load(Ordering::Acquire) {
                    // Drain: flush every queue so no accepted question
                    // goes unanswered.
                    if let Ok(answers) = self.pool.flush_all() {
                        for ba in answers {
                            self.route(ba);
                        }
                    }
                    drained = true;
                } else if let Ok(answers) = self.pool.flush_due() {
                    for ba in answers {
                        self.route(ba);
                    }
                }
            }
        }
    }

    fn handle(&mut self, request: Request, drained: &mut bool) {
        let shutting_down = self.shutdown.load(Ordering::Acquire) || *drained;
        match request {
            Request::Observe {
                conn,
                tenant,
                id,
                tokens,
            } => {
                if shutting_down {
                    conn.settle(&NetFrame::Error {
                        id,
                        code: NetErrorCode::Shutdown,
                        message: "server is shutting down".into(),
                    });
                    return;
                }
                let frame = match self.pool.observe(&tenant, &tokens) {
                    Ok(_) => NetFrame::ObserveAck {
                        id,
                        sentences: self.pool.tenant_sentences(&tenant).unwrap_or(0) as u64,
                    },
                    Err(e) => NetFrame::Error {
                        id,
                        code: NetErrorCode::Session,
                        message: e.to_string(),
                    },
                };
                conn.settle(&frame);
            }
            Request::Ask {
                conn,
                tenant,
                id,
                tokens,
            } => {
                if shutting_down {
                    conn.settle(&NetFrame::Error {
                        id,
                        code: NetErrorCode::Shutdown,
                        message: "server is shutting down".into(),
                    });
                    return;
                }
                match self.pool.enqueue_tracked(&tenant, &tokens) {
                    Ok((request_id, flushed)) => {
                        self.pending.insert(
                            request_id,
                            PendingAsk {
                                conn,
                                client_id: id,
                            },
                        );
                        for ba in flushed {
                            self.route(ba);
                        }
                    }
                    Err(e) => conn.settle(&NetFrame::Error {
                        id,
                        code: NetErrorCode::Session,
                        message: e.to_string(),
                    }),
                }
            }
            Request::Stats { conn } => {
                conn.push(&NetFrame::StatsResp(self.stats()));
            }
            Request::Shutdown { conn } => {
                if !*drained {
                    if let Ok(answers) = self.pool.flush_all() {
                        for ba in answers {
                            self.route(ba);
                        }
                    }
                    *drained = true;
                }
                conn.push(&NetFrame::ShutdownAck);
                self.shutdown.store(true, Ordering::Release);
                for waker in &self.wakers {
                    wake(waker);
                }
                // Unblock the accept thread.
                let _ = TcpStream::connect(self.addr);
            }
        }
    }

    /// Routes one batched answer back to the connection that asked.
    fn route(&mut self, ba: BatchedAnswer) {
        let Some(PendingAsk { conn, client_id }) = self.pending.remove(&ba.request) else {
            return;
        };
        let frame = match ba.answer {
            Ok(answer) => NetFrame::Answer {
                id: client_id,
                word: answer.word,
                text: self.vocab.word(answer.word).unwrap_or("").to_owned(),
                probability: answer.probability,
                degraded: answer.degraded,
            },
            Err(PoolError::Overloaded { needed, available }) => NetFrame::Overloaded {
                id: client_id,
                retry_after_ms: retry_after_ms(needed, available, self.admission),
            },
            Err(e) => NetFrame::Error {
                id: client_id,
                code: NetErrorCode::Session,
                message: e.to_string(),
            },
        };
        // settle() drops the frame if the client hung up mid-request; the
        // in-flight slot is reclaimed either way.
        conn.settle(&frame);
    }

    fn stats(&self) -> NetStatsWire {
        let s = self.pool.stats();
        NetStatsWire {
            tenants: s.tenants as u64,
            total_sentences: s.total_sentences as u64,
            questions_answered: s.questions_answered,
            shed_questions: s.shed_questions,
            deadline_misses: s.deadline_misses,
            degraded_answers: s.degraded_answers,
            batches_dispatched: s.batches_dispatched,
            batched_questions: s.batched_questions,
            max_batch_occupancy: s.max_batch_occupancy as u64,
            pending_questions: s.pending_questions as u64,
            batch_occupancy: s.batch_occupancy,
            net_connections_accepted: self.counters.accepted.load(Ordering::Relaxed),
            net_connections_active: self.counters.active.load(Ordering::Relaxed),
            net_frames_in: self.counters.frames_in.load(Ordering::Relaxed),
            net_frames_out: self.counters.frames_out.load(Ordering::Relaxed),
            sheds_by_tenant: self
                .pool
                .sheds_by_tenant()
                .iter()
                .map(|(t, n)| (t.clone(), *n))
                .collect(),
        }
    }
}

/// Computes the retry-after hint for an admission-control shed: the time
/// the token bucket needs to refill the deficit, rounded up.
fn retry_after_ms(needed: u64, available: u64, admission: Option<AdmissionConfig>) -> u64 {
    match admission {
        Some(a) if a.refill_per_sec > 0 => {
            let deficit = needed.saturating_sub(available).max(1);
            (deficit.saturating_mul(1000))
                .div_ceil(a.refill_per_sec)
                .max(1)
        }
        _ => NO_REFILL_RETRY_MS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_hint_tracks_the_refill_rate() {
        let admission = Some(AdmissionConfig {
            capacity: 100,
            refill_per_sec: 50,
        });
        // Deficit 25 units at 50 units/s = 500 ms.
        assert_eq!(retry_after_ms(30, 5, admission), 500);
        // Rounds up, never zero.
        assert_eq!(retry_after_ms(6, 5, admission), 20);
        assert_eq!(
            retry_after_ms(10, 0, None),
            NO_REFILL_RETRY_MS,
            "no admission config: fixed hint"
        );
        assert_eq!(
            retry_after_ms(
                10,
                0,
                Some(AdmissionConfig {
                    capacity: 5,
                    refill_per_sec: 0
                })
            ),
            NO_REFILL_RETRY_MS,
            "bucket never refills: fixed hint"
        );
    }
}

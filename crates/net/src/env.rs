//! Strict typed parsing for the network front-end's `MNNFAST_*` knobs.
//!
//! | variable | meaning |
//! |----------|---------|
//! | `MNNFAST_LISTEN` | socket address the server binds (`host:port`) |
//! | `MNNFAST_NET_THREADS` | connection-handling threads |
//! | `MNNFAST_BATCH_WAIT_US` | coalescing max-wait in microseconds (0 = flush immediately) |
//!
//! Like the rest of the repo's env surface, readers are strict — a typo'd
//! value is a typed [`EnvVarError`], not a silent default — and unset or
//! empty always means "use the default". [`validate_env`] bundles these
//! three and then chains [`mnn_dist::validate_env`], so one call at a
//! serving entry point covers the whole `MNNFAST_*` namespace the network
//! plane can reach (the distributed fleet knobs apply whenever a session
//! is configured with workers).

use mnn_tensor::EnvVarError;
use std::net::SocketAddr;
use std::time::Duration;

/// Parses `MNNFAST_LISTEN` as a socket address (e.g. `127.0.0.1:7464`).
///
/// # Errors
///
/// [`EnvVarError`] unless the value parses as `host:port` (or is
/// unset/empty).
pub fn listen_from_env() -> Result<Option<SocketAddr>, EnvVarError> {
    match std::env::var("MNNFAST_LISTEN") {
        Ok(raw) if raw.is_empty() => Ok(None),
        Ok(raw) => raw.trim().parse::<SocketAddr>().map(Some).map_err(|_| {
            EnvVarError::new(
                "MNNFAST_LISTEN",
                raw,
                "a socket address such as 127.0.0.1:7464",
            )
        }),
        Err(_) => Ok(None),
    }
}

/// Parses `MNNFAST_NET_THREADS`.
///
/// # Errors
///
/// [`EnvVarError`] unless the value is a positive integer (or unset/empty).
pub fn net_threads_from_env() -> Result<Option<usize>, EnvVarError> {
    match std::env::var("MNNFAST_NET_THREADS") {
        Ok(raw) if raw.is_empty() => Ok(None),
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(EnvVarError::new(
                "MNNFAST_NET_THREADS",
                raw,
                "a positive integer",
            )),
        },
        Err(_) => Ok(None),
    }
}

/// Parses `MNNFAST_BATCH_WAIT_US`: the coalescing queue's max-wait in
/// microseconds. `0` is legal and means "flush on the next scheduler
/// pass" (occupancy-only batching).
///
/// # Errors
///
/// [`EnvVarError`] unless the value is a non-negative integer (or
/// unset/empty).
pub fn batch_wait_from_env() -> Result<Option<Duration>, EnvVarError> {
    match std::env::var("MNNFAST_BATCH_WAIT_US") {
        Ok(raw) if raw.is_empty() => Ok(None),
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(us) => Ok(Some(Duration::from_micros(us))),
            Err(_) => Err(EnvVarError::new(
                "MNNFAST_BATCH_WAIT_US",
                raw,
                "a non-negative integer of microseconds",
            )),
        },
        Err(_) => Ok(None),
    }
}

/// Validates every environment knob the network front-end can reach: the
/// three variables above, then the distributed plane's set (workers,
/// replicas, hedge, fault grammar) via [`mnn_dist::validate_env`].
///
/// # Errors
///
/// The first [`EnvVarError`] found.
pub fn validate_env() -> Result<(), EnvVarError> {
    listen_from_env()?;
    net_threads_from_env()?;
    batch_wait_from_env()?;
    mnn_dist::validate_env()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Env mutation is process-global; serialize the module.
    static SERIAL: Mutex<()> = Mutex::new(());

    const VARS: [&str; 3] = [
        "MNNFAST_LISTEN",
        "MNNFAST_NET_THREADS",
        "MNNFAST_BATCH_WAIT_US",
    ];

    #[test]
    fn strict_parsing_of_all_three_knobs() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        for var in VARS {
            std::env::remove_var(var);
        }
        assert_eq!(listen_from_env().unwrap(), None);
        assert_eq!(net_threads_from_env().unwrap(), None);
        assert_eq!(batch_wait_from_env().unwrap(), None);
        assert!(validate_env().is_ok());

        std::env::set_var("MNNFAST_LISTEN", "127.0.0.1:7464");
        std::env::set_var("MNNFAST_NET_THREADS", "4");
        std::env::set_var("MNNFAST_BATCH_WAIT_US", "250");
        assert_eq!(
            listen_from_env().unwrap(),
            Some("127.0.0.1:7464".parse().unwrap())
        );
        assert_eq!(net_threads_from_env().unwrap(), Some(4));
        assert_eq!(
            batch_wait_from_env().unwrap(),
            Some(Duration::from_micros(250))
        );
        assert!(validate_env().is_ok());

        std::env::set_var("MNNFAST_BATCH_WAIT_US", "0");
        assert_eq!(
            batch_wait_from_env().unwrap(),
            Some(Duration::ZERO),
            "0 = flush on the next pass"
        );
        for var in VARS {
            std::env::remove_var(var);
        }
    }

    #[test]
    fn malformed_values_are_typed_errors() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        for var in VARS {
            std::env::remove_var(var);
        }
        for (var, bad) in [
            ("MNNFAST_LISTEN", "localhost"),
            ("MNNFAST_LISTEN", "not an address"),
            ("MNNFAST_NET_THREADS", "0"),
            ("MNNFAST_NET_THREADS", "many"),
            ("MNNFAST_BATCH_WAIT_US", "-5"),
            ("MNNFAST_BATCH_WAIT_US", "soon"),
        ] {
            std::env::set_var(var, bad);
            let err = validate_env().unwrap_err();
            assert_eq!(err.var(), var, "{var}={bad}");
            std::env::remove_var(var);
        }
    }

    #[test]
    fn empty_values_mean_default() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        for var in VARS {
            std::env::set_var(var, "");
        }
        assert_eq!(listen_from_env().unwrap(), None);
        assert_eq!(net_threads_from_env().unwrap(), None);
        assert_eq!(batch_wait_from_env().unwrap(), None);
        for var in VARS {
            std::env::remove_var(var);
        }
    }
}

//! The serving front-end's wire protocol.
//!
//! Every message is one [`mnn_wire`] envelope frame (length-prefixed,
//! CRC-guarded, little-endian — see that crate for the offset table) with
//! this protocol's own magic `0x4E46` ("FN" on the wire) so a serving
//! client that dials a distributed-plane worker port (or vice versa) gets
//! a typed `BadMagic` instead of a confused session. The opcode table:
//!
//! | opcode | frame | direction |
//! |--------|-------|-----------|
//! | 1 | [`NetFrame::Hello`] | client → server |
//! | 2 | [`NetFrame::HelloAck`] | server → client |
//! | 3 | [`NetFrame::Observe`] | client → server |
//! | 4 | [`NetFrame::ObserveTokens`] | client → server |
//! | 5 | [`NetFrame::ObserveAck`] | server → client |
//! | 6 | [`NetFrame::Ask`] | client → server |
//! | 7 | [`NetFrame::AskTokens`] | client → server |
//! | 8 | [`NetFrame::Answer`] | server → client |
//! | 9 | [`NetFrame::Overloaded`] | server → client |
//! | 10 | [`NetFrame::Stats`] | client → server |
//! | 11 | [`NetFrame::StatsResp`] | server → client |
//! | 12 | [`NetFrame::Shutdown`] | client → server |
//! | 13 | [`NetFrame::ShutdownAck`] | server → client |
//! | 14 | [`NetFrame::Error`] | server → client |
//!
//! Requests carry a client-chosen `id` echoed by the matching response,
//! so a connection can pipeline many asks and match answers out of order
//! — the open-loop load generator depends on this.

use crate::error::{NetError, NetErrorCode};
use mnn_dataset::WordId;
use mnn_wire::{put_string, put_u32s, Reader};
use std::io::{Read, Write};

/// First two bytes of every serving frame ("FN" on the wire) — distinct
/// from the distributed plane's `0x4D46` so cross-plane dials fail typed.
pub const MAGIC: u16 = 0x4E46;
/// Protocol version emitted by this build.
pub const VERSION: u8 = 1;

/// Request id used by connection-level [`NetFrame::Error`] frames that
/// answer no particular request (e.g. a malformed frame).
pub const NO_REQUEST: u64 = u64::MAX;

/// The aggregate statistics snapshot a [`NetFrame::StatsResp`] carries:
/// the pool counters that matter to an operator watching the serving
/// plane, plus the network-plane counters the server maintains itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStatsWire {
    /// Tenants currently served.
    pub tenants: u64,
    /// Sentences resident across all tenant memories.
    pub total_sentences: u64,
    /// Questions answered pool-wide.
    pub questions_answered: u64,
    /// Questions shed by the admission controller.
    pub shed_questions: u64,
    /// Questions abandoned because their deadline expired.
    pub deadline_misses: u64,
    /// Answers produced by the safe path.
    pub degraded_answers: u64,
    /// Batched passes dispatched.
    pub batches_dispatched: u64,
    /// Questions that went through a dispatched batched pass.
    pub batched_questions: u64,
    /// Largest batch occupancy seen so far.
    pub max_batch_occupancy: u64,
    /// Questions currently waiting in coalescing queues.
    pub pending_questions: u64,
    /// Dispatched-batch occupancy histogram (buckets 1, 2, 3–4, 5–8,
    /// 9–16, 17–32, 33–64, 65+).
    pub batch_occupancy: [u64; mnn_serve::OCCUPANCY_BUCKETS],
    /// Connections accepted over the server's lifetime.
    pub net_connections_accepted: u64,
    /// Connections currently open.
    pub net_connections_active: u64,
    /// Request frames decoded.
    pub net_frames_in: u64,
    /// Response frames written.
    pub net_frames_out: u64,
    /// Admission sheds broken down by tenant, sorted by tenant name.
    pub sheds_by_tenant: Vec<(String, u64)>,
}

/// One decoded serving-protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum NetFrame {
    /// Client → server: authenticate. The token maps to a tenant on the
    /// server; every subsequent request on the connection acts as that
    /// tenant.
    Hello {
        /// The per-tenant authentication token.
        token: String,
    },
    /// Server → client: authentication accepted.
    HelloAck {
        /// The tenant this connection now acts as.
        tenant: String,
        /// Requests the connection may have in flight before the server
        /// answers [`NetFrame::Overloaded`] immediately.
        max_inflight: u32,
    },
    /// Client → server: append a story sentence (plain text, encoded
    /// against the server's vocabulary) to the tenant's memory.
    Observe {
        /// Client-chosen request id, echoed by the response.
        id: u64,
        /// The sentence.
        text: String,
    },
    /// Client → server: append a pre-encoded story sentence.
    ObserveTokens {
        /// Client-chosen request id, echoed by the response.
        id: u64,
        /// The sentence's word ids.
        tokens: Vec<WordId>,
    },
    /// Server → client: sentence appended.
    ObserveAck {
        /// The request this acknowledges.
        id: u64,
        /// Sentences now resident in the tenant's memory.
        sentences: u64,
    },
    /// Client → server: ask a question (plain text). The request joins
    /// the tenant's coalescing batch queue; the answer may arrive after
    /// other traffic has filled the batch or its max-wait expired.
    Ask {
        /// Client-chosen request id, echoed by the response.
        id: u64,
        /// The question.
        text: String,
    },
    /// Client → server: ask a pre-encoded question.
    AskTokens {
        /// Client-chosen request id, echoed by the response.
        id: u64,
        /// The question's word ids.
        tokens: Vec<WordId>,
    },
    /// Server → client: the answer. `probability` crosses the wire
    /// bit-exactly, so loopback answers are bitwise-comparable to
    /// in-process ones.
    Answer {
        /// The request this answers.
        id: u64,
        /// The predicted answer word id.
        word: WordId,
        /// The predicted word decoded against the server's vocabulary
        /// (empty when the id has no entry).
        text: String,
        /// Softmax probability of the predicted word.
        probability: f32,
        /// Whether the answer came from the degraded safe path.
        degraded: bool,
    },
    /// Server → client: the request was shed (admission control or the
    /// per-connection in-flight cap). The connection stays open; the
    /// client should retry after the hint.
    Overloaded {
        /// The request that was shed.
        id: u64,
        /// Suggested backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// Client → server: request a statistics snapshot.
    Stats,
    /// Server → client: the statistics snapshot.
    StatsResp(NetStatsWire),
    /// Client → server: drain every coalescing queue, answer what is in
    /// flight, and stop serving.
    Shutdown,
    /// Server → client: shutdown accepted; queued work was flushed.
    ShutdownAck,
    /// Server → client: the request failed.
    Error {
        /// The request that failed ([`NO_REQUEST`] for connection-level
        /// failures such as a malformed frame).
        id: u64,
        /// Failure class.
        code: NetErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl NetFrame {
    fn opcode(&self) -> u8 {
        match self {
            NetFrame::Hello { .. } => 1,
            NetFrame::HelloAck { .. } => 2,
            NetFrame::Observe { .. } => 3,
            NetFrame::ObserveTokens { .. } => 4,
            NetFrame::ObserveAck { .. } => 5,
            NetFrame::Ask { .. } => 6,
            NetFrame::AskTokens { .. } => 7,
            NetFrame::Answer { .. } => 8,
            NetFrame::Overloaded { .. } => 9,
            NetFrame::Stats => 10,
            NetFrame::StatsResp(_) => 11,
            NetFrame::Shutdown => 12,
            NetFrame::ShutdownAck => 13,
            NetFrame::Error { .. } => 14,
        }
    }

    /// Serializes the frame (header, payload, trailing CRC).
    pub fn encode(&self) -> Vec<u8> {
        mnn_wire::seal_frame(MAGIC, VERSION, self.opcode(), |buf| {
            self.encode_payload(buf)
        })
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            NetFrame::Hello { token } => put_string(buf, token),
            NetFrame::HelloAck {
                tenant,
                max_inflight,
            } => {
                put_string(buf, tenant);
                buf.extend_from_slice(&max_inflight.to_le_bytes());
            }
            NetFrame::Observe { id, text } | NetFrame::Ask { id, text } => {
                buf.extend_from_slice(&id.to_le_bytes());
                put_string(buf, text);
            }
            NetFrame::ObserveTokens { id, tokens } | NetFrame::AskTokens { id, tokens } => {
                buf.extend_from_slice(&id.to_le_bytes());
                put_u32s(buf, tokens);
            }
            NetFrame::ObserveAck { id, sentences } => {
                buf.extend_from_slice(&id.to_le_bytes());
                buf.extend_from_slice(&sentences.to_le_bytes());
            }
            NetFrame::Answer {
                id,
                word,
                text,
                probability,
                degraded,
            } => {
                buf.extend_from_slice(&id.to_le_bytes());
                buf.extend_from_slice(&word.to_le_bytes());
                put_string(buf, text);
                buf.extend_from_slice(&probability.to_le_bytes());
                buf.push(u8::from(*degraded));
            }
            NetFrame::Overloaded { id, retry_after_ms } => {
                buf.extend_from_slice(&id.to_le_bytes());
                buf.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            NetFrame::Stats | NetFrame::Shutdown | NetFrame::ShutdownAck => {}
            NetFrame::StatsResp(s) => {
                for v in [
                    s.tenants,
                    s.total_sentences,
                    s.questions_answered,
                    s.shed_questions,
                    s.deadline_misses,
                    s.degraded_answers,
                    s.batches_dispatched,
                    s.batched_questions,
                    s.max_batch_occupancy,
                    s.pending_questions,
                ] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                for v in s.batch_occupancy {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                for v in [
                    s.net_connections_accepted,
                    s.net_connections_active,
                    s.net_frames_in,
                    s.net_frames_out,
                ] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                buf.extend_from_slice(&(s.sheds_by_tenant.len() as u32).to_le_bytes());
                for (tenant, sheds) in &s.sheds_by_tenant {
                    put_string(buf, tenant);
                    buf.extend_from_slice(&sheds.to_le_bytes());
                }
            }
            NetFrame::Error { id, code, message } => {
                buf.extend_from_slice(&id.to_le_bytes());
                buf.push(code.to_byte());
                put_string(buf, message);
            }
        }
    }

    /// Decodes one complete frame from `bytes` (header through CRC).
    ///
    /// # Errors
    ///
    /// [`NetError::Wire`] for envelope problems (truncation, bad magic or
    /// version, CRC mismatch, malformed payload) and for unknown opcodes.
    pub fn decode(bytes: &[u8]) -> Result<NetFrame, NetError> {
        let (opcode, payload) = mnn_wire::open_frame(bytes, MAGIC, VERSION)?;
        let mut r = Reader::new(payload);
        let frame = Self::decode_payload(opcode, &mut r)?;
        if !r.is_exhausted() {
            return Err(NetError::Wire(mnn_wire::WireError::Malformed(
                "trailing bytes after payload",
            )));
        }
        Ok(frame)
    }

    fn decode_payload(opcode: u8, r: &mut Reader<'_>) -> Result<NetFrame, NetError> {
        match opcode {
            1 => Ok(NetFrame::Hello {
                token: r.string_prefixed()?,
            }),
            2 => Ok(NetFrame::HelloAck {
                tenant: r.string_prefixed()?,
                max_inflight: r.u32()?,
            }),
            3 => Ok(NetFrame::Observe {
                id: r.u64()?,
                text: r.string_prefixed()?,
            }),
            4 => Ok(NetFrame::ObserveTokens {
                id: r.u64()?,
                tokens: r.u32s_prefixed()?,
            }),
            5 => Ok(NetFrame::ObserveAck {
                id: r.u64()?,
                sentences: r.u64()?,
            }),
            6 => Ok(NetFrame::Ask {
                id: r.u64()?,
                text: r.string_prefixed()?,
            }),
            7 => Ok(NetFrame::AskTokens {
                id: r.u64()?,
                tokens: r.u32s_prefixed()?,
            }),
            8 => Ok(NetFrame::Answer {
                id: r.u64()?,
                word: r.u32()?,
                text: r.string_prefixed()?,
                probability: r.f32()?,
                degraded: r.flag()?,
            }),
            9 => Ok(NetFrame::Overloaded {
                id: r.u64()?,
                retry_after_ms: r.u64()?,
            }),
            10 => Ok(NetFrame::Stats),
            11 => {
                // Struct-literal fields evaluate in written order, which
                // is the wire order of the first ten counters.
                let mut s = NetStatsWire {
                    tenants: r.u64()?,
                    total_sentences: r.u64()?,
                    questions_answered: r.u64()?,
                    shed_questions: r.u64()?,
                    deadline_misses: r.u64()?,
                    degraded_answers: r.u64()?,
                    batches_dispatched: r.u64()?,
                    batched_questions: r.u64()?,
                    max_batch_occupancy: r.u64()?,
                    pending_questions: r.u64()?,
                    ..NetStatsWire::default()
                };
                for slot in &mut s.batch_occupancy {
                    *slot = r.u64()?;
                }
                s.net_connections_accepted = r.u64()?;
                s.net_connections_active = r.u64()?;
                s.net_frames_in = r.u64()?;
                s.net_frames_out = r.u64()?;
                let n = r.u32()? as usize;
                s.sheds_by_tenant = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let tenant = r.string_prefixed()?;
                    let sheds = r.u64()?;
                    s.sheds_by_tenant.push((tenant, sheds));
                }
                Ok(NetFrame::StatsResp(s))
            }
            12 => Ok(NetFrame::Shutdown),
            13 => Ok(NetFrame::ShutdownAck),
            14 => Ok(NetFrame::Error {
                id: r.u64()?,
                code: NetErrorCode::from_byte(r.u8()?)?,
                message: r.string_prefixed()?,
            }),
            other => Err(NetError::UnknownOpcode(other)),
        }
    }
}

/// Writes one encoded frame to `w` (single `write_all`, then flush).
///
/// # Errors
///
/// Propagates the stream's I/O error (including write-timeout expiry).
pub fn write_frame<W: Write>(w: &mut W, frame: &NetFrame) -> std::io::Result<()> {
    mnn_wire::write_frame_bytes(w, &frame.encode())
}

/// Reads exactly one frame from `r`, honouring the stream's read deadline.
///
/// # Errors
///
/// I/O errors as [`NetError::Io`]; codec errors as [`NetError::Wire`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<NetFrame, NetError> {
    let buf = mnn_wire::read_frame_bytes(r, MAGIC, VERSION)?;
    NetFrame::decode(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(frame: &NetFrame) {
        let bytes = frame.encode();
        let back = NetFrame::decode(&bytes).unwrap();
        assert_eq!(&back, frame);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(&NetFrame::Hello {
            token: "tok-alice".into(),
        });
        roundtrip(&NetFrame::HelloAck {
            tenant: "alice".into(),
            max_inflight: 64,
        });
        roundtrip(&NetFrame::Observe {
            id: 7,
            text: "mary went to the kitchen".into(),
        });
        roundtrip(&NetFrame::ObserveTokens {
            id: 8,
            tokens: vec![1, 5, 9, 2],
        });
        roundtrip(&NetFrame::ObserveAck {
            id: 7,
            sentences: 4,
        });
        roundtrip(&NetFrame::Ask {
            id: 9,
            text: "where is mary".into(),
        });
        roundtrip(&NetFrame::AskTokens {
            id: 10,
            tokens: vec![3, 1],
        });
        roundtrip(&NetFrame::Answer {
            id: 9,
            word: 17,
            text: "kitchen".into(),
            probability: 0.8125,
            degraded: false,
        });
        roundtrip(&NetFrame::Overloaded {
            id: 11,
            retry_after_ms: 42,
        });
        roundtrip(&NetFrame::Stats);
        roundtrip(&NetFrame::StatsResp(NetStatsWire {
            tenants: 8,
            total_sentences: 123,
            questions_answered: 456,
            shed_questions: 7,
            deadline_misses: 1,
            degraded_answers: 0,
            batches_dispatched: 99,
            batched_questions: 456,
            max_batch_occupancy: 32,
            pending_questions: 3,
            batch_occupancy: [1, 2, 3, 4, 5, 6, 7, 8],
            net_connections_accepted: 20,
            net_connections_active: 8,
            net_frames_in: 1000,
            net_frames_out: 990,
            sheds_by_tenant: vec![("alice".into(), 4), ("bob".into(), 3)],
        }));
        roundtrip(&NetFrame::Shutdown);
        roundtrip(&NetFrame::ShutdownAck);
        roundtrip(&NetFrame::Error {
            id: NO_REQUEST,
            code: NetErrorCode::Auth,
            message: "unknown token".into(),
        });
    }

    #[test]
    fn answers_cross_the_wire_bit_exactly() {
        for bits in [
            0x3f80_0000u32, // 1.0
            0x8000_0000,    // -0.0
            0x0000_0001,    // smallest subnormal
            0x7f7f_ffff,    // f32::MAX
        ] {
            let frame = NetFrame::Answer {
                id: 1,
                word: 2,
                text: String::new(),
                probability: f32::from_bits(bits),
                degraded: true,
            };
            match NetFrame::decode(&frame.encode()).unwrap() {
                NetFrame::Answer { probability, .. } => {
                    assert_eq!(probability.to_bits(), bits);
                }
                other => panic!("expected Answer, got {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_anywhere_are_rejected() {
        let pristine = NetFrame::Ask {
            id: 5,
            text: "where is the football".into(),
        }
        .encode();
        assert!(NetFrame::decode(&pristine).is_ok());
        for byte in 0..pristine.len() {
            let mut dented = pristine.clone();
            dented[byte] ^= 0x10;
            assert!(
                NetFrame::decode(&dented).is_err(),
                "flip at byte {byte} must not decode"
            );
        }
    }

    #[test]
    fn dist_frames_are_rejected_by_magic() {
        // A distributed-plane frame dialed into the serving port: typed
        // BadMagic, not a confused parse.
        let dist = mnn_wire::seal_frame(0x4D46, 1, 9, |_| {});
        assert!(matches!(
            NetFrame::decode(&dist),
            Err(NetError::Wire(mnn_wire::WireError::BadMagic(0x4D46)))
        ));
    }

    #[test]
    fn stream_reader_matches_buffer_decoder() {
        let frames = [
            NetFrame::Stats,
            NetFrame::Overloaded {
                id: 3,
                retry_after_ms: 10,
            },
            NetFrame::Hello {
                token: "tok".into(),
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = &wire[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
    }

    proptest! {
        #[test]
        fn ask_frames_roundtrip(id in any::<u64>(), tokens in proptest::collection::vec(any::<u32>(), 0..64)) {
            let frame = NetFrame::AskTokens { id, tokens };
            let bytes = frame.encode();
            prop_assert_eq!(NetFrame::decode(&bytes).unwrap(), frame);
            // The accumulation-buffer probe agrees on the frame boundary.
            prop_assert_eq!(
                mnn_wire::frame_len(&bytes, MAGIC, VERSION).unwrap(),
                Some(bytes.len())
            );
        }
    }
}

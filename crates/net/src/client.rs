//! A blocking client for the serving front-end.
//!
//! [`NetClient`] speaks the [`crate::proto`] protocol over one TCP
//! connection. The convenience calls ([`NetClient::ask`],
//! [`NetClient::observe`]) are strict request/response; the pipelined
//! pair ([`NetClient::send_ask`] / [`NetClient::recv`]) keeps many asks
//! in flight on one connection, which is what lets the server coalesce
//! them into batches.

use crate::error::{NetError, NetErrorCode};
use crate::proto::{self, NetFrame, NetStatsWire};
use mnn_dataset::WordId;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A successful answer as seen by a client.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientAnswer {
    /// Request id the answer settles (client-assigned).
    pub id: u64,
    /// The predicted word id.
    pub word: WordId,
    /// The predicted word's surface form (empty when the server's
    /// vocabulary has no entry for it).
    pub text: String,
    /// The answer's probability, bit-exact with the server's in-process
    /// [`mnn_serve::Session::ask`].
    pub probability: f32,
    /// Whether the answer was produced under a degraded policy.
    pub degraded: bool,
}

/// One response to a pipelined request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The ask completed.
    Answer(ClientAnswer),
    /// An observe completed; the tenant now holds `sentences` sentences.
    Observed {
        /// Request id the acknowledgement settles.
        id: u64,
        /// Tenant memory size after the write.
        sentences: u64,
    },
    /// The server shed the request; retry after the hinted delay.
    Overloaded {
        /// Request id the shed settles.
        id: u64,
        /// Suggested backoff before retrying.
        retry_after_ms: u64,
    },
    /// The server rejected the request with a typed error.
    Rejected {
        /// Request id the rejection settles ([`proto::NO_REQUEST`] when
        /// the failure is connection-scoped).
        id: u64,
        /// Failure class.
        code: NetErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The request id this response settles.
    pub fn id(&self) -> u64 {
        match self {
            Response::Answer(a) => a.id,
            Response::Observed { id, .. }
            | Response::Overloaded { id, .. }
            | Response::Rejected { id, .. } => *id,
        }
    }
}

/// A blocking connection to a [`crate::NetServer`].
#[derive(Debug)]
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl NetClient {
    /// Connects and authenticates as the tenant `token` maps to.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on connect failure, [`NetError::Rejected`] when
    /// the token is unknown.
    pub fn connect(addr: SocketAddr, token: &str) -> Result<(Self, String), NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        let mut client = NetClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
        };
        client.send(&NetFrame::Hello {
            token: token.to_owned(),
        })?;
        match client.read()? {
            NetFrame::HelloAck { tenant, .. } => Ok((client, tenant)),
            NetFrame::Error { code, message, .. } => Err(NetError::Rejected { code, message }),
            _ => Err(NetError::Protocol("expected hello-ack")),
        }
    }

    /// Bounds how long a blocking read waits for the server (`None`
    /// blocks forever).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the socket rejects the option.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    fn send(&mut self, frame: &NetFrame) -> Result<(), NetError> {
        proto::write_frame(&mut self.writer, frame)?;
        Ok(())
    }

    fn read(&mut self) -> Result<NetFrame, NetError> {
        proto::read_frame(&mut self.reader)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one ask (as text) without waiting; returns the request id.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on stream failure.
    pub fn send_ask(&mut self, question: &str) -> Result<u64, NetError> {
        let id = self.fresh_id();
        self.send(&NetFrame::Ask {
            id,
            text: question.to_owned(),
        })?;
        Ok(id)
    }

    /// Sends one ask (as token ids) without waiting; returns the request
    /// id.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on stream failure.
    pub fn send_ask_tokens(&mut self, tokens: &[WordId]) -> Result<u64, NetError> {
        let id = self.fresh_id();
        self.send(&NetFrame::AskTokens {
            id,
            tokens: tokens.to_vec(),
        })?;
        Ok(id)
    }

    /// Sends one observe (as token ids) without waiting; returns the
    /// request id.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on stream failure.
    pub fn send_observe_tokens(&mut self, tokens: &[WordId]) -> Result<u64, NetError> {
        let id = self.fresh_id();
        self.send(&NetFrame::ObserveTokens {
            id,
            tokens: tokens.to_vec(),
        })?;
        Ok(id)
    }

    /// Blocks for the next response to any in-flight request.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on stream failure or read timeout;
    /// [`NetError::Protocol`] when the server sends a frame that is not a
    /// request response.
    pub fn recv(&mut self) -> Result<Response, NetError> {
        match self.read()? {
            NetFrame::Answer {
                id,
                word,
                text,
                probability,
                degraded,
            } => Ok(Response::Answer(ClientAnswer {
                id,
                word,
                text,
                probability,
                degraded,
            })),
            NetFrame::ObserveAck { id, sentences } => Ok(Response::Observed { id, sentences }),
            NetFrame::Overloaded { id, retry_after_ms } => {
                Ok(Response::Overloaded { id, retry_after_ms })
            }
            NetFrame::Error { id, code, message } => Ok(Response::Rejected { id, code, message }),
            _ => Err(NetError::Protocol("expected a request response")),
        }
    }

    /// Writes one sentence into the tenant's memory and waits for the
    /// acknowledgement.
    ///
    /// # Errors
    ///
    /// [`NetError::Rejected`] when the server refuses the write,
    /// [`NetError::Io`]/[`NetError::Protocol`] on transport failures.
    pub fn observe(&mut self, sentence: &str) -> Result<u64, NetError> {
        let id = self.fresh_id();
        self.send(&NetFrame::Observe {
            id,
            text: sentence.to_owned(),
        })?;
        match self.recv()? {
            Response::Observed { sentences, .. } => Ok(sentences),
            Response::Rejected { code, message, .. } => Err(NetError::Rejected { code, message }),
            Response::Overloaded { .. } => Err(NetError::Protocol("observe was shed")),
            Response::Answer(_) => Err(NetError::Protocol("expected observe-ack")),
        }
    }

    /// Writes one tokenized sentence and waits for the acknowledgement.
    ///
    /// # Errors
    ///
    /// As [`NetClient::observe`].
    pub fn observe_tokens(&mut self, tokens: &[WordId]) -> Result<u64, NetError> {
        let id = self.send_observe_tokens(tokens)?;
        match self.recv()? {
            Response::Observed { sentences, .. } => Ok(sentences),
            Response::Rejected { code, message, .. } => Err(NetError::Rejected { code, message }),
            r => Err(NetError::Protocol(if r.id() == id {
                "expected observe-ack"
            } else {
                "response for a different request"
            })),
        }
    }

    /// Asks one question and waits for the answer.
    ///
    /// # Errors
    ///
    /// [`NetError::Rejected`] on typed refusal; the `Overloaded` response
    /// surfaces as a [`Response::Overloaded`] via [`NetClient::recv`] —
    /// this strict helper converts it into [`NetError::Protocol`] only if
    /// the server violates request/response ordering.
    pub fn ask(&mut self, question: &str) -> Result<Response, NetError> {
        self.send_ask(question)?;
        self.recv()
    }

    /// Asks one tokenized question and waits for the answer.
    ///
    /// # Errors
    ///
    /// As [`NetClient::ask`].
    pub fn ask_tokens(&mut self, tokens: &[WordId]) -> Result<Response, NetError> {
        self.send_ask_tokens(tokens)?;
        self.recv()
    }

    /// Fetches the server's statistics snapshot.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`]/[`NetError::Protocol`] on transport failures.
    pub fn stats(&mut self) -> Result<NetStatsWire, NetError> {
        self.send(&NetFrame::Stats)?;
        loop {
            match self.read()? {
                NetFrame::StatsResp(stats) => return Ok(stats),
                // Pipelined responses may land first; stats callers that
                // interleave should drain with recv() beforehand.
                NetFrame::Answer { .. }
                | NetFrame::ObserveAck { .. }
                | NetFrame::Overloaded { .. }
                | NetFrame::Error { .. } => continue,
                _ => return Err(NetError::Protocol("expected stats response")),
            }
        }
    }

    /// Asks the server to drain and stop, waiting for the
    /// acknowledgement.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`]/[`NetError::Protocol`] on transport failures.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        self.send(&NetFrame::Shutdown)?;
        loop {
            match self.read()? {
                NetFrame::ShutdownAck => return Ok(()),
                // Drained answers for in-flight requests arrive first.
                NetFrame::Answer { .. }
                | NetFrame::ObserveAck { .. }
                | NetFrame::Overloaded { .. }
                | NetFrame::Error { .. } => continue,
                _ => return Err(NetError::Protocol("expected shutdown-ack")),
            }
        }
    }
}

//! Typed errors for the serving front-end.

use mnn_tensor::EnvVarError;
use mnn_wire::WireError;
use std::error::Error;
use std::fmt;

/// Failure classes a server reports in a [`crate::NetFrame::Error`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetErrorCode {
    /// The connection has not authenticated, or the token is unknown.
    Auth,
    /// The request was malformed or inconsistent (e.g. a word outside the
    /// server's vocabulary).
    BadRequest,
    /// The tenant's session failed the request (engine error, deadline,
    /// unknown token id).
    Session,
    /// The server is shutting down and will not serve further requests.
    Shutdown,
}

impl NetErrorCode {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            NetErrorCode::Auth => 1,
            NetErrorCode::BadRequest => 2,
            NetErrorCode::Session => 3,
            NetErrorCode::Shutdown => 4,
        }
    }

    pub(crate) fn from_byte(b: u8) -> Result<Self, NetError> {
        match b {
            1 => Ok(NetErrorCode::Auth),
            2 => Ok(NetErrorCode::BadRequest),
            3 => Ok(NetErrorCode::Session),
            4 => Ok(NetErrorCode::Shutdown),
            _ => Err(NetError::Wire(WireError::Malformed("unknown error code"))),
        }
    }
}

impl fmt::Display for NetErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetErrorCode::Auth => write!(f, "auth"),
            NetErrorCode::BadRequest => write!(f, "bad-request"),
            NetErrorCode::Session => write!(f, "session"),
            NetErrorCode::Shutdown => write!(f, "shutdown"),
        }
    }
}

/// A serving-protocol operation failed.
#[derive(Debug)]
pub enum NetError {
    /// The frame envelope failed to seal or open (truncation, bad magic
    /// or version, CRC mismatch, malformed payload).
    Wire(WireError),
    /// The opcode byte names no known frame kind.
    UnknownOpcode(u8),
    /// The underlying stream failed (connect, timeout, reset).
    Io(std::io::Error),
    /// The peer answered with a frame the protocol does not allow here
    /// (e.g. an [`crate::NetFrame::Answer`] before any ask).
    Protocol(&'static str),
    /// The server rejected the request with a typed error frame.
    Rejected {
        /// Failure class from the server.
        code: NetErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// An `MNNFAST_*` environment knob failed validation.
    Env(EnvVarError),
    /// The server failed to start (bind, tenant bootstrap, session
    /// construction).
    Spawn(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "frame: {e}"),
            NetError::UnknownOpcode(op) => write!(f, "unknown opcode {op}"),
            NetError::Io(e) => write!(f, "stream: {e}"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::Rejected { code, message } => {
                write!(f, "server rejected ({code}): {message}")
            }
            NetError::Env(e) => write!(f, "{e}"),
            NetError::Spawn(m) => write!(f, "server startup: {m}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Wire(e) => Some(e),
            NetError::Io(e) => Some(e),
            NetError::Env(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => NetError::Io(io),
            other => NetError::Wire(other),
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<EnvVarError> for NetError {
    fn from(e: EnvVarError) -> Self {
        NetError::Env(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_and_chain() {
        let wire: NetError = WireError::BadMagic(0x1234).into();
        assert!(wire.to_string().contains("0x1234"));
        assert!(wire.source().is_some());
        // Stream-level wire errors collapse into the Io variant.
        let io: NetError = WireError::Io(std::io::Error::from(std::io::ErrorKind::TimedOut)).into();
        assert!(matches!(io, NetError::Io(_)));
        let rejected = NetError::Rejected {
            code: NetErrorCode::Auth,
            message: "unknown token".into(),
        };
        let msg = rejected.to_string();
        assert!(
            msg.contains("auth") && msg.contains("unknown token"),
            "{msg}"
        );
        assert!(rejected.source().is_none());
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            NetErrorCode::Auth,
            NetErrorCode::BadRequest,
            NetErrorCode::Session,
            NetErrorCode::Shutdown,
        ] {
            assert_eq!(NetErrorCode::from_byte(code.to_byte()).unwrap(), code);
        }
        assert!(NetErrorCode::from_byte(0).is_err());
        assert!(NetErrorCode::from_byte(99).is_err());
    }
}

//! Plain-text experiment tables (the harness's output format).

use std::fmt;

/// A titled, column-aligned table with optional footnotes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExperimentTable {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (ragged rows are padded on display).
    pub rows: Vec<Vec<String>>,
    /// Footnotes printed under the table.
    pub notes: Vec<String>,
}

impl ExperimentTable {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Looks up a cell as `f64` (row, col), for tests.
    pub fn cell_f64(&self, row: usize, col: usize) -> Option<f64> {
        self.rows
            .get(row)?
            .get(col)?
            .trim_end_matches(['x', '%', '×'])
            .parse()
            .ok()
    }
}

impl fmt::Display for ExperimentTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }

        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut out = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&format!("{cell:>w$}  ", w = w));
            }
            writeln!(f, "{}", out.trim_end())
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "{}", "-".repeat(total.min(120)))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with 3 significant decimals.
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a ratio as `N.NNx`.
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = ExperimentTable::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn cell_f64_parses_decorated_numbers() {
        let mut t = ExperimentTable::new("x", &["v"]);
        t.row(vec!["1.50x".into()]);
        t.row(vec!["75.0%".into()]);
        assert_eq!(t.cell_f64(0, 0), Some(1.5));
        assert_eq!(t.cell_f64(1, 0), Some(75.0));
        assert_eq!(t.cell_f64(5, 0), None);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(speedup(2.0), "2.00x");
        assert_eq!(pct(0.345), "34.5%");
    }
}

//! Distributed-serving overhead and tail latency: what the coordinator /
//! worker plane costs when nothing fails, and what hedged re-dispatch
//! buys back when one worker turns into a straggler.
//!
//! Two acceptance bounds, both emitted into `BENCH_dist.json`:
//!
//! 1. **Fault-free overhead** — median per-question latency through a
//!    four-worker loopback fleet divided by the same pass in-process.
//!    The fleet answers bitwise-identically (checked here), so the only
//!    cost is framing + TCP + the fan-out/fold seam; bound
//!    [`OVERHEAD_BOUND`].
//! 2. **Straggler p99** — one worker armed with a persistent
//!    `delay` RPC fault far above the hedge trigger; the coordinator's
//!    hedged duplicate must keep the p99 within [`P99_BOUND_RATIO`]
//!    of the fault-free distributed p99 instead of eating the full
//!    injected delay on every question that touches the slow shard.

use crate::table::{f, ExperimentTable};
use crate::Scale;
use mnn_dist::{
    Coordinator, DistConfig, ForwardOpts, RpcFaultKind, RpcFaultPlan, WorkerConfig, WorkerServer,
};
use mnn_tensor::Matrix;
use mnnfast::{Budget, ColumnEngine, Executor, MnnFastConfig, Scratch, Trace};
use std::time::{Duration, Instant};

/// Largest tolerated `distributed p50 / in-process p50` ratio at four
/// workers, fault-free. The acceptance bound for `BENCH_dist.json`.
pub const OVERHEAD_BOUND: f64 = 1.15;

/// Largest tolerated `hedged straggler p99 / fault-free p99` ratio.
pub const P99_BOUND_RATIO: f64 = 2.0;

/// A full distributed-overhead run.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Memory rows pushed to the fleet.
    pub ns: usize,
    /// Embedding dimension.
    pub ed: usize,
    /// Rows per chunk (also the shard fan-out granularity).
    pub chunk: usize,
    /// Workers in the fleet.
    pub workers: usize,
    /// Questions timed per flavor.
    pub questions: usize,
    /// Whether the distributed answer matched the in-process answer
    /// bit-for-bit before any timing started.
    pub bitwise_match: bool,
    /// In-process median seconds per question.
    pub single_p50: f64,
    /// Fault-free distributed median seconds per question.
    pub dist_p50: f64,
    /// Fault-free distributed p99 seconds per question.
    pub dist_p99: f64,
    /// Median of the per-question `distributed / in-process` latency
    /// ratios. The two flavors are timed back-to-back in one loop, so
    /// machine-level throughput swings hit numerator and denominator
    /// alike instead of whichever flavor ran during the slow spell.
    pub overhead_ratio: f64,
    /// Acceptance bound on [`DistReport::overhead_ratio`].
    pub overhead_bound: f64,
    /// Injected straggler delay, milliseconds.
    pub straggler_delay_ms: u64,
    /// Hedge trigger used against the straggler, milliseconds.
    pub hedge_ms: f64,
    /// p99 seconds per question through the hedged coordinator with no
    /// fault armed — the like-for-like baseline for the straggler tail
    /// (hedged dispatch opens per-request connections, so the pooled
    /// fault-free numbers would understate it).
    pub faultfree_hedged_p99: f64,
    /// p99 seconds per question with one straggling worker and hedging.
    pub straggler_p99: f64,
    /// `straggler_p99 / faultfree_hedged_p99`; how much of the injected
    /// delay leaked past the hedge into the tail.
    pub p99_ratio: f64,
    /// Acceptance bound on [`DistReport::p99_ratio`].
    pub p99_bound: f64,
    /// Hedged re-dispatches observed during the straggler pass.
    pub hedges_fired: u64,
}

/// Sorts `samples` and returns `(p50, p99)` in place.
fn percentiles(samples: &mut [f64]) -> (f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let p = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
    (p(0.50), p(0.99))
}

/// Runs the overhead + straggler measurement on a four-worker loopback
/// fleet against the in-process column engine.
pub fn run(scale: Scale) -> DistReport {
    let ed = 64;
    // Coarse chunks keep the per-question partial count (and so the
    // framing + CRC cost) small relative to the dot-product work; the
    // row count is sized so the in-process pass takes milliseconds and
    // the fixed RPC seam amortizes below the overhead bound even on a
    // single-core machine where the fan-out cannot overlap compute.
    let chunk = scale.pick(4_096, 1_024);
    let workers = 4;
    let ns = scale.pick(262_144, 16_384);
    let questions = scale.pick(300, 40);
    let straggler_delay = Duration::from_millis(scale.pick(50, 20));

    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    let m_in = Matrix::from_fn(ns, ed, |_, _| next());
    let m_out = Matrix::from_fn(ns, ed, |_, _| next());
    let u: Vec<f32> = (0..ed).map(|_| next()).collect();

    // In-process reference: the same column pass the workers run.
    let config = MnnFastConfig::new(chunk);
    let engine = ColumnEngine::new(config);
    let mut scratch = Scratch::new();
    let mut trace = Trace::disabled();
    let reference = engine
        .forward_prefix_budgeted(
            &m_in,
            &m_out,
            ns,
            &u,
            &mut scratch,
            &mut trace,
            &Budget::unlimited(),
        )
        .expect("in-process reference");
    // Loopback fleet, two replicas per shard so the straggler pass has a
    // live backup to hedge to.
    let fleet: Vec<WorkerServer> = (0..workers)
        .map(|_| WorkerServer::spawn(WorkerConfig::new(ed, chunk)).expect("spawn worker"))
        .collect();
    let addrs: Vec<_> = fleet.iter().map(WorkerServer::addr).collect();
    let dist_config = DistConfig {
        replicas: 2,
        rpc_timeout: Duration::from_secs(10),
        ..DistConfig::default()
    };
    let mut coordinator =
        Coordinator::connect(&addrs, ed, chunk, false, dist_config).expect("connect");
    for r in 0..ns {
        coordinator.push(m_in.row(r), m_out.row(r)).expect("push");
    }
    let opts = ForwardOpts::from_config(&config).expect("column opts");

    let answer = coordinator
        .forward(&u, opts, &Budget::unlimited(), false)
        .expect("distributed pass");
    let bitwise_match = answer
        .o
        .iter()
        .zip(&reference.o)
        .all(|(a, b)| a.to_bits() == b.to_bits())
        && answer.denominator.to_bits() == reference.denominator.to_bits();

    // Interleave the two flavors so shared-machine throughput swings
    // (which dwarf the framing seam being measured) hit each pair alike.
    let mut single_samples = Vec::with_capacity(questions);
    let mut dist_samples = Vec::with_capacity(questions);
    let mut ratios = Vec::with_capacity(questions);
    for _ in 0..questions {
        let t0 = Instant::now();
        let out = engine
            .forward_prefix_budgeted(
                &m_in,
                &m_out,
                ns,
                &u,
                &mut scratch,
                &mut trace,
                &Budget::unlimited(),
            )
            .expect("in-process pass");
        let single = t0.elapsed().as_secs_f64();
        scratch.recycle(out.o);
        let t0 = Instant::now();
        coordinator
            .forward(&u, opts, &Budget::unlimited(), false)
            .expect("distributed pass");
        let dist = t0.elapsed().as_secs_f64();
        single_samples.push(single);
        dist_samples.push(dist);
        ratios.push(dist / single);
    }

    let (single_p50, _) = percentiles(&mut single_samples);
    let (dist_p50, dist_p99) = percentiles(&mut dist_samples);
    let (overhead_ratio, _) = percentiles(&mut ratios);

    // Straggler pass: a fresh coordinator with the hedge armed at the
    // fault-free median (clamped away from zero). A spurious duplicate on
    // a healthy shard costs one redundant shard pass; a missing one costs
    // the full injected delay, so the trigger leans low.
    let hedge = Duration::from_secs_f64(dist_p50.max(0.001));
    let hedged_config = DistConfig {
        hedge: Some(hedge),
        ..dist_config
    };
    let mut coordinator =
        Coordinator::connect(&addrs, ed, chunk, false, hedged_config).expect("reconnect");
    // A coordinator only knows about rows pushed through it: wipe the
    // fleet and reload so the hedged one owns the placement.
    coordinator.clear().expect("clear fleet");
    for r in 0..ns {
        coordinator.push(m_in.row(r), m_out.row(r)).expect("push");
    }
    // Same interleaving as above, toggling only the fault: both sample
    // sets run through the identical hedged dispatch path (per-request
    // connections and all), so the ratio isolates what the injected
    // delay costs, not what arming a hedge costs.
    let plan = RpcFaultPlan {
        kind: RpcFaultKind::Delay(straggler_delay),
        after: 0,
        fires: u64::MAX,
    };
    coordinator
        .forward(&u, opts, &Budget::unlimited(), false)
        .expect("hedged warmup");
    let mut baseline_samples = Vec::with_capacity(questions);
    let mut straggler_samples = Vec::with_capacity(questions);
    for _ in 0..questions {
        fleet[0].disarm_fault();
        let t0 = Instant::now();
        coordinator
            .forward(&u, opts, &Budget::unlimited(), false)
            .expect("hedged fault-free pass");
        baseline_samples.push(t0.elapsed().as_secs_f64());
        fleet[0].arm_fault(plan);
        let t0 = Instant::now();
        coordinator
            .forward(&u, opts, &Budget::unlimited(), false)
            .expect("hedged straggler pass");
        straggler_samples.push(t0.elapsed().as_secs_f64());
    }
    fleet[0].disarm_fault();
    let (_, faultfree_hedged_p99) = percentiles(&mut baseline_samples);
    let (_, straggler_p99) = percentiles(&mut straggler_samples);
    let (_, _, hedges_fired, _) = coordinator.counters().snapshot();

    DistReport {
        ns,
        ed,
        chunk,
        workers,
        questions,
        bitwise_match,
        single_p50,
        dist_p50,
        dist_p99,
        overhead_ratio,
        overhead_bound: OVERHEAD_BOUND,
        straggler_delay_ms: straggler_delay.as_millis() as u64,
        hedge_ms: hedge.as_secs_f64() * 1e3,
        faultfree_hedged_p99,
        straggler_p99,
        p99_ratio: straggler_p99 / faultfree_hedged_p99,
        p99_bound: P99_BOUND_RATIO,
        hedges_fired,
    }
}

impl DistReport {
    /// `true` when the answers matched bitwise and both latency bounds
    /// held.
    pub fn within_bounds(&self) -> bool {
        self.bitwise_match
            && self.overhead_ratio <= self.overhead_bound
            && self.p99_ratio <= self.p99_bound
    }

    /// Human-readable companion table.
    pub fn table(&self) -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "Distributed serving: fault-free overhead and hedged straggler p99",
            &["flavor", "p50 us", "p99 us", "ratio", "bound"],
        );
        t.row(vec![
            "in-process".into(),
            f(self.single_p50 * 1e6),
            "-".into(),
            "1.00".into(),
            "-".into(),
        ]);
        t.row(vec![
            format!("distributed x{}", self.workers),
            f(self.dist_p50 * 1e6),
            f(self.dist_p99 * 1e6),
            format!("{:.3}", self.overhead_ratio),
            format!("{:.2}", self.overhead_bound),
        ]);
        t.row(vec![
            "hedged fault-free".into(),
            "-".into(),
            f(self.faultfree_hedged_p99 * 1e6),
            "1.00".into(),
            "-".into(),
        ]);
        t.row(vec![
            format!("straggler+hedge {}ms", self.straggler_delay_ms),
            "-".into(),
            f(self.straggler_p99 * 1e6),
            format!("{:.3}", self.p99_ratio),
            format!("{:.2}", self.p99_bound),
        ]);
        t.note(format!(
            "ns={}, ed={}, chunk={}, {} workers x2 replicas, {} questions/flavor",
            self.ns, self.ed, self.chunk, self.workers, self.questions
        ));
        t.note(format!(
            "bitwise vs in-process: {}; hedge at {:.2}ms fired {} times — {}",
            if self.bitwise_match {
                "MATCH"
            } else {
                "MISMATCH"
            },
            self.hedge_ms,
            self.hedges_fired,
            if self.within_bounds() {
                "within bounds"
            } else {
                "EXCEEDED"
            }
        ));
        t
    }

    /// Serializes the report as JSON (hand-rolled: the workspace builds
    /// offline with no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"ns\": {}, \"ed\": {}, \"chunk\": {}, \"workers\": {}, \"questions\": {},\n",
            self.ns, self.ed, self.chunk, self.workers, self.questions
        ));
        out.push_str(&format!(
            "  \"bitwise_match\": {}, \"within_bounds\": {},\n",
            self.bitwise_match,
            self.within_bounds()
        ));
        out.push_str(&format!(
            "  \"single_p50_seconds\": {:.12},\n  \"dist_p50_seconds\": {:.12},\n  \"dist_p99_seconds\": {:.12},\n",
            self.single_p50, self.dist_p50, self.dist_p99
        ));
        out.push_str(&format!(
            "  \"overhead_ratio\": {:.4}, \"overhead_bound\": {:.2},\n",
            self.overhead_ratio, self.overhead_bound
        ));
        out.push_str(&format!(
            "  \"straggler_delay_ms\": {}, \"hedge_ms\": {:.3}, \"hedges_fired\": {},\n",
            self.straggler_delay_ms, self.hedge_ms, self.hedges_fired
        ));
        out.push_str(&format!(
            "  \"faultfree_hedged_p99_seconds\": {:.12},\n  \"straggler_p99_seconds\": {:.12},\n  \"p99_ratio\": {:.4}, \"p99_bound\": {:.2}\n",
            self.faultfree_hedged_p99, self.straggler_p99, self.p99_ratio, self.p99_bound
        ));
        out.push_str("}\n");
        out
    }

    /// Writes [`DistReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_matches_bitwise_and_hedges() {
        let report = run(Scale::Smoke);
        assert!(report.bitwise_match, "distributed answer drifted");
        assert!(report.single_p50 > 0.0);
        assert!(report.dist_p50 > 0.0);
        assert!(report.straggler_p99 > 0.0);
        assert!(
            report.hedges_fired > 0,
            "straggler pass never hedged: {report:?}"
        );
        assert!(report.faultfree_hedged_p99 > 0.0);
        assert!(report.overhead_ratio.is_finite());
        // No absolute latency assertion here: the smoke run shares a
        // contended core with the rest of the suite in a debug build.
        // The latency bounds are enforced by `bench_dist --check` on the
        // release binary.
        assert!(report.p99_ratio.is_finite());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(Scale::Smoke);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"overhead_ratio\"",
            "\"p99_ratio\"",
            "\"bitwise_match\"",
            "\"within_bounds\"",
            "\"hedges_fired\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}

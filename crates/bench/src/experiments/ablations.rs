//! Ablations of the design choices DESIGN.md §5 calls out — beyond the
//! paper's own evaluation.

use crate::table::{f, pct, speedup, ExperimentTable};
use crate::Scale;
use mnn_accel::fpga::{FpgaConfig, FpgaWorkload};
use mnn_accel::fpga_pipeline;
use mnn_accel::fpga_resources::{self, Device};
use mnn_dataset::zipf::ZipfSampler;
use mnn_memsim::hierarchy::{replay_hierarchy, CacheHierarchy};
use mnn_memsim::{EmbeddingCache, Variant};
use mnn_tensor::Matrix;
use mnnfast::{BatchEngine, ColumnEngine, EngineError, MnnFastConfig, SoftmaxMode};
use std::time::Instant;

fn memories(ns: usize, ed: usize) -> (Matrix, Matrix, Vec<f32>) {
    let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 17 + c) as f32 * 1e-3).sin() * 0.4);
    let m_out = Matrix::from_fn(ns, ed, |r, c| ((r + 9 * c) as f32 * 2e-3).cos() * 0.4);
    let u: Vec<f32> = (0..ed).map(|i| (i as f32 * 0.31).sin()).collect();
    (m_in, m_out, u)
}

/// Chunk-size sweep: native latency and peak intermediate footprint.
pub fn chunk_sweep(scale: Scale) -> ExperimentTable {
    let ns = scale.pick(200_000, 5_000);
    let ed = 48;
    let (m_in, m_out, u) = memories(ns, ed);
    let mut t = ExperimentTable::new(
        "Ablation: chunk-size sweep (column engine)",
        &["chunk", "seconds", "peak intermediates (B)", "chunks"],
    );
    for chunk in [64usize, 256, 1024, 4096, 16384] {
        let engine = ColumnEngine::new(MnnFastConfig::new(chunk.min(ns)));
        let t0 = Instant::now();
        let out = engine.forward(&m_in, &m_out, &u).expect("valid shapes");
        t.row(vec![
            chunk.to_string(),
            f(t0.elapsed().as_secs_f64()),
            out.stats.intermediate_bytes.to_string(),
            out.stats.chunks.to_string(),
        ]);
    }
    t.note(format!(
        "ns={ns}, ed={ed}; intermediates grow linearly with chunk"
    ));
    t
}

/// Lazy vs online softmax: agreement on realistic logits, and the overflow
/// regime where only the online formulation survives.
pub fn softmax_modes(scale: Scale) -> ExperimentTable {
    let ns = scale.pick(50_000, 2_000);
    let ed = 16;
    let (m_in, m_out, u) = memories(ns, ed);
    let mut t = ExperimentTable::new(
        "Ablation: lazy vs online softmax",
        &["regime", "lazy finite", "online finite", "max |diff|"],
    );

    // Realistic logits (|x| small): both finite and equal.
    let lazy = ColumnEngine::new(MnnFastConfig::new(1000))
        .forward(&m_in, &m_out, &u)
        .expect("valid shapes");
    let online = ColumnEngine::new(MnnFastConfig::new(1000).with_softmax(SoftmaxMode::Online))
        .forward(&m_in, &m_out, &u)
        .expect("valid shapes");
    let diff = lazy
        .o
        .iter()
        .zip(&online.o)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    t.row(vec![
        "trained-scale logits".into(),
        lazy.o.iter().all(|v| v.is_finite()).to_string(),
        online.o.iter().all(|v| v.is_finite()).to_string(),
        format!("{diff:.2e}"),
    ]);

    // Overflow regime: logits near 120 ⇒ e^x overflows f32 in lazy mode.
    // The engine refuses to return the non-finite response — the overflow
    // surfaces as a NumericFault rather than as Inf in the output.
    let hot_u: Vec<f32> = vec![60.0; ed];
    let hot_in = Matrix::from_fn(256, ed, |r, _| 0.12 + (r as f32) * 1e-5);
    let hot_out = Matrix::from_fn(256, ed, |_, c| c as f32 * 0.1);
    let lazy_hot_finite =
        match ColumnEngine::new(MnnFastConfig::new(64)).forward(&hot_in, &hot_out, &hot_u) {
            Ok(out) => out.o.iter().all(|v| v.is_finite()),
            Err(EngineError::NumericFault { .. }) => false,
            Err(e) => panic!("unexpected engine error: {e}"),
        };
    let online_hot = ColumnEngine::new(MnnFastConfig::new(64).with_softmax(SoftmaxMode::Online))
        .forward(&hot_in, &hot_out, &hot_u)
        .expect("valid shapes");
    t.row(vec![
        "overflow logits (~115)".into(),
        lazy_hot_finite.to_string(),
        online_hot.o.iter().all(|v| v.is_finite()).to_string(),
        "-".into(),
    ]);
    t.note("the paper's lazy softmax (Eq. 4) is exact for trained models;");
    t.note("the online variant additionally survives unbounded logits");
    t.note("lazy overflow is caught at chunk-merge time (NumericFault), not returned");
    t
}

/// Embedding-cache associativity sweep at fixed capacity.
pub fn embedding_cache_ways(scale: Scale) -> ExperimentTable {
    let trace_len = scale.pick(200_000, 20_000);
    let mut z = ZipfSampler::new(10_000, 1.1, 42).expect("valid Zipf");
    let trace = z.trace(trace_len);
    let mut t = ExperimentTable::new(
        "Ablation: embedding-cache associativity (128 KiB, ed=256)",
        &["ways", "hit ratio"],
    );
    for ways in [1usize, 2, 4, 8] {
        let mut c =
            EmbeddingCache::set_associative(128 << 10, 256, ways).expect("valid cache geometry");
        let s = c.run_trace(&trace);
        t.row(vec![ways.to_string(), pct(s.hit_ratio())]);
    }
    t.note("the paper builds the cache direct-mapped (1-way)");
    t
}

/// FPGA streaming-depth sweep (double vs triple buffering).
pub fn streaming_depth(_scale: Scale) -> ExperimentTable {
    let cfg = FpgaConfig::zedboard();
    let work = FpgaWorkload::table1();
    let mut t = ExperimentTable::new(
        "Ablation: FPGA streaming buffer depth (MnnFast variant)",
        &["depth", "cycles", "vs depth 1"],
    );
    let d1 = fpga_pipeline::simulate(&cfg, &work, Variant::MnnFast, 1).makespan;
    for depth in [1usize, 2, 3, 4] {
        let c = fpga_pipeline::simulate(&cfg, &work, Variant::MnnFast, depth).makespan;
        t.row(vec![
            depth.to_string(),
            c.to_string(),
            speedup(d1 as f64 / c as f64),
        ]);
    }
    t.note("gains saturate once the bottleneck stage is fully covered");
    t
}

/// Write-back traffic through a two-level hierarchy: the baseline's spill
/// writes leave dirty lines that must return to DRAM, which the single-LLC
/// miss counting of Fig 11 does not capture.
pub fn writeback_traffic(scale: Scale) -> ExperimentTable {
    let config = mnn_memsim::dataflow::DataflowConfig {
        ns: scale.pick(300_000, 30_000),
        ed: 48,
        chunk: 1000,
        questions: 4,
        skip_fraction: 0.9,
        hops: 1,
    };
    let mut t = ExperimentTable::new(
        "Ablation: write-back traffic (1 MiB L2 + 8 MiB LLC)",
        &["variant", "LLC misses", "writebacks", "DRAM MiB"],
    );
    for v in Variant::ALL {
        let mut h = CacheHierarchy::xeon_like();
        let r = replay_hierarchy(v, config, &mut h).expect("valid config");
        t.row(vec![
            v.to_string(),
            r.llc.misses.to_string(),
            r.writebacks.to_string(),
            f(r.dram_bytes(64) as f64 / (1 << 20) as f64),
        ]);
    }
    t.note("the baseline's ns-length spills dirty lines; chunked buffers stay resident");
    t
}

/// FPGA resource fit: why Table 1 scales the network down for the
/// ZedBoard (Section 5.1 "we use a similar configuration ... but scale it
/// down for FPGA due to the lack of available logic cells").
pub fn fpga_fit(_scale: Scale) -> ExperimentTable {
    let cfg = FpgaConfig::zedboard();
    let device = Device::zynq_7020();
    let mut t = ExperimentTable::new(
        "Ablation: FPGA resource fit (Zynq-7020: 220 DSP, 4.9 Mb BRAM)",
        &["configuration", "DSP", "BRAM Mb", "fits", "peak util"],
    );
    let configs = [
        (
            "Table 1 FPGA (ed=25, chunk=25, 32KB cache)",
            FpgaWorkload::table1(),
            32u64 << 10,
        ),
        (
            "CPU-sized (ed=48, chunk=1000, 256KB cache)",
            FpgaWorkload {
                ns: 100_000,
                ed: 48,
                chunk: 1000,
                skip_fraction: 0.9,
            },
            256 << 10,
        ),
        (
            "GPU-sized (ed=64, chunk=1000, 256KB cache)",
            FpgaWorkload {
                ns: 100_000,
                ed: 64,
                chunk: 1000,
                skip_fraction: 0.9,
            },
            256 << 10,
        ),
    ];
    for (label, work, cache) in configs {
        let est = fpga_resources::estimate(&cfg, &work, cache);
        t.row(vec![
            label.into(),
            est.dsp_slices.to_string(),
            f(est.bram_bits as f64 / 1e6),
            est.fits(&device).to_string(),
            pct(est.peak_utilization(&device)),
        ]);
    }
    t.note("only the scaled-down configuration fits the ZedBoard — Table 1's rationale");
    t
}

/// Question batching: per-question vs batched column engine memory traffic.
pub fn batching(scale: Scale) -> ExperimentTable {
    let ns = scale.pick(100_000, 4_000);
    let ed = 48;
    let (m_in, m_out, _) = memories(ns, ed);
    let questions: Vec<Vec<f32>> = (0..8)
        .map(|q| {
            (0..ed)
                .map(|k| ((q * ed + k) as f32 * 0.17).sin())
                .collect()
        })
        .collect();
    let config = MnnFastConfig::new(1000);

    let mut t = ExperimentTable::new(
        "Ablation: per-question vs batched engine (8 questions)",
        &["engine", "seconds", "memory bytes"],
    );
    let single = ColumnEngine::new(config);
    let t0 = Instant::now();
    let mut per_q_bytes = 0u64;
    for q in &questions {
        per_q_bytes += single
            .forward(&m_in, &m_out, q)
            .expect("valid shapes")
            .stats
            .memory_bytes;
    }
    t.row(vec![
        "per-question".into(),
        f(t0.elapsed().as_secs_f64()),
        per_q_bytes.to_string(),
    ]);
    let batched = BatchEngine::new(config);
    let t1 = Instant::now();
    let out = batched
        .forward(&m_in, &m_out, &questions)
        .expect("valid shapes");
    t.row(vec![
        "batched".into(),
        f(t1.elapsed().as_secs_f64()),
        out.stats.memory_bytes.to_string(),
    ]);
    t.note("batched chunk residency cuts memory traffic by ~nq");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_sweep_intermediates_grow_with_chunk() {
        let t = chunk_sweep(Scale::Smoke);
        let bytes: Vec<u64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        for pair in bytes.windows(2) {
            assert!(pair[1] >= pair[0], "{bytes:?}");
        }
    }

    #[test]
    fn softmax_modes_report_expected_finiteness() {
        let t = softmax_modes(Scale::Smoke);
        assert_eq!(t.rows[0][1], "true");
        assert_eq!(t.rows[0][2], "true");
        // Lazy overflows on hot logits; online survives.
        assert_eq!(t.rows[1][1], "false");
        assert_eq!(t.rows[1][2], "true");
    }

    #[test]
    fn associativity_helps_monotonically() {
        let t = embedding_cache_ways(Scale::Smoke);
        let hits: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[1].trim_end_matches('%').parse().unwrap())
            .collect();
        for pair in hits.windows(2) {
            assert!(pair[1] >= pair[0] - 0.5, "{hits:?}");
        }
    }

    #[test]
    fn streaming_depth_two_beats_one() {
        let t = streaming_depth(Scale::Smoke);
        let c1: u64 = t.rows[0][1].parse().unwrap();
        let c2: u64 = t.rows[1][1].parse().unwrap();
        assert!(c2 < c1);
    }

    #[test]
    fn only_the_scaled_config_fits() {
        let t = fpga_fit(Scale::Smoke);
        assert_eq!(t.rows[0][3], "true");
        assert_eq!(t.rows[1][3], "false");
        assert_eq!(t.rows[2][3], "false");
    }

    #[test]
    fn writebacks_rank_the_variants() {
        let t = writeback_traffic(Scale::Smoke);
        let wb: Vec<u64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(wb[0] >= wb[1], "{wb:?}");
        assert!(wb[1] >= wb[2], "{wb:?}");
    }

    #[test]
    fn batching_cuts_memory_traffic() {
        let t = batching(Scale::Smoke);
        let per_q: u64 = t.rows[0][2].parse().unwrap();
        let batched: u64 = t.rows[1][2].parse().unwrap();
        assert!(batched * 4 < per_q, "batched {batched} vs per-q {per_q}");
    }
}

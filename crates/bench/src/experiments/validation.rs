//! Model validation: every closed-form performance model in the
//! reproduction is cross-checked against an independent discrete-event
//! simulation, and the native engines against the simulators' byte
//! accounting. This is the evidence that the Fig 3/9/10/12/13 curves rest
//! on more than algebra.

use crate::table::{f, pct, ExperimentTable};
use crate::Scale;
use mnn_accel::fpga::{FpgaConfig, FpgaWorkload};
use mnn_accel::fpga_pipeline;
use mnn_accel::gpu::{self, GpuConfig, GpuWorkload};
use mnn_accel::gpu_timeline;
use mnn_memsim::dram_queue::{self, ClientProfile};
use mnn_memsim::{DramConfig, Variant};

/// Relative difference `|a-b| / b`.
fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}

/// Cross-checks each analytic model against its event-driven twin.
pub fn model_validation(scale: Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "Model validation: closed form vs discrete-event simulation",
        &[
            "model",
            "configuration",
            "closed form",
            "simulated",
            "rel diff",
        ],
    );

    // 1. Roofline throughput vs DRAM queue simulation.
    let dram = DramConfig::ddr4_2400(1);
    let profile = ClientProfile {
        compute_seconds: 5e-6,
        burst_bytes: 256 << 10,
        bursts: scale.pick(200, 50),
        overlapped: false,
    };
    for clients in [2usize, 4, 8] {
        let r = dram_queue::simulate(&dram, clients, profile);
        let simulated = (clients * profile.bursts) as f64 / r.makespan;
        let bw = dram.bandwidth_bytes_per_sec();
        let closed = clients as f64
            / (profile.compute_seconds
                + dram.latency_ns * 1e-9
                + clients as f64 * profile.burst_bytes as f64 / bw);
        t.row(vec![
            "roofline".into(),
            format!("{clients} clients, 1ch DDR4"),
            format!("{closed:.0}/s"),
            format!("{simulated:.0}/s"),
            pct(rel(simulated, closed)),
        ]);
    }

    // 2. FPGA closed-form latency vs event-stepped pipeline.
    let cfg = FpgaConfig::zedboard();
    let work = FpgaWorkload::table1();
    for (variant, depth) in [
        (Variant::Column, 1usize),
        (Variant::ColumnStreaming, 2),
        (Variant::MnnFast, 2),
    ] {
        let closed = cfg.latency_cycles(variant, &work) as f64;
        let sim = fpga_pipeline::simulate(&cfg, &work, variant, depth).makespan as f64;
        t.row(vec![
            "fpga".into(),
            format!("{variant}, depth {depth}"),
            f(closed),
            f(sim),
            pct(rel(sim, closed)),
        ]);
    }

    // 3. GPU analytic stream model vs event timeline.
    let gcfg = GpuConfig::titan_xp_server();
    let gwork = GpuWorkload::scaled(scale.pick(10_000_000, 100_000), 4);
    for streams in [1usize, 2, 4] {
        let closed = gpu::single_gpu(&gcfg, &gwork, streams).total_seconds;
        let sim = gpu_timeline::simulate_streams(&gcfg, &gwork, streams).makespan;
        t.row(vec![
            "gpu".into(),
            format!("{streams} stream(s)"),
            format!("{:.1} ms", closed * 1e3),
            format!("{:.1} ms", sim * 1e3),
            pct(rel(sim, closed)),
        ]);
    }

    t.note("every pair should agree within a few percent");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_agree_within_tolerance() {
        let t = model_validation(Scale::Smoke);
        for row in &t.rows {
            let diff: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(diff < 25.0, "{} ({}) diverges by {diff}%", row[0], row[1]);
        }
        // The FPGA and GPU rows should be tight (< 5%).
        for row in t.rows.iter().filter(|r| r[0] == "fpga" || r[0] == "gpu") {
            let diff: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(diff < 5.0, "{} ({}) diverges by {diff}%", row[0], row[1]);
        }
    }
}

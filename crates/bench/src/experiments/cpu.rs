//! CPU-side experiments: Fig 9 (performance of the column-based algorithm),
//! Fig 10 (thread scalability per channel count), Fig 11 (off-chip access
//! counts).

use crate::table::{f, speedup, ExperimentTable};
use crate::Scale;
use mnn_memnn::inference::BaselineCounters;
use mnn_memnn::timing::{OpKind, OpTimes};
use mnn_memnn::{model::EmbeddedStory, MemNet, ModelConfig};
use mnn_memsim::dataflow::DataflowConfig;
use mnn_memsim::roofline::{self, MachineProfile};
use mnn_memsim::{SetAssocCache, Variant};
use mnn_tensor::Matrix;
use mnnfast::{
    BatchEngine, EngineKind, ExecPlan, Executor, MnnFastConfig, Phase, Scratch, SkipPolicy, Trace,
};
use std::time::Instant;

/// Builds synthetic memories shaped like a Table 1 CPU run scaled to `ns`.
fn synthetic_story(ns: usize, ed: usize, nq: usize) -> EmbeddedStory {
    let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 31 + c * 7) as f32 * 0.001).sin() * 0.3);
    let m_out = Matrix::from_fn(ns, ed, |r, c| ((r * 13 + c * 5) as f32 * 0.002).cos() * 0.3);
    let questions = (0..nq)
        .map(|q| {
            (0..ed)
                .map(|i| ((q * ed + i) as f32 * 0.1).sin() * 0.5)
                .collect()
        })
        .collect();
    EmbeddedStory {
        m_in,
        m_out,
        questions,
        answers: vec![0; nq],
    }
}

/// Fig 9(a): native per-variant wall-clock on this machine, with the
/// baseline's per-operation breakdown.
///
/// Note: this host executes the real kernels; the paper's 20-thread speedups
/// additionally need the multi-channel memory system modelled in
/// [`fig09_modelled`].
pub fn fig09_native(scale: Scale) -> ExperimentTable {
    let ns = scale.pick(400_000, 5_000);
    let ed = 48;
    let nq = scale.pick(5, 2);
    let story = synthetic_story(ns, ed, nq);
    // A throwaway model supplies the FC layer for the baseline path.
    let model_cfg = ModelConfig {
        vocab_size: 64,
        embedding_dim: ed,
        max_sentences: 1,
        hops: 1,
        temporal: false,
        position_encoding: false,
    };
    let model = MemNet::new(model_cfg, 3);

    // Baseline with op breakdown.
    let mut times = OpTimes::new();
    let mut counters = BaselineCounters::default();
    let t0 = Instant::now();
    for q in 0..nq {
        let _ =
            mnn_memnn::inference::baseline_forward(&model, &story, q, &mut times, &mut counters);
    }
    let baseline_s = t0.elapsed().as_secs_f64();

    // Every MnnFast variant runs through the same Executor seam the serving
    // layer uses: one reused scratch, untraced timing pass, then a traced
    // pass for the per-phase columns.
    let chunk = 1000;
    let mut scratch = Scratch::new();
    let mut run = |exec: &dyn Executor| {
        let mut timing = Trace::disabled();
        let t = Instant::now();
        for u in &story.questions {
            let out = exec
                .forward_prefix(&story.m_in, &story.m_out, ns, u, &mut scratch, &mut timing)
                .expect("valid shapes");
            scratch.recycle(out.o);
        }
        let secs = t.elapsed().as_secs_f64();
        let mut trace = Trace::enabled();
        for u in &story.questions {
            let out = exec
                .forward_prefix(&story.m_in, &story.m_out, ns, u, &mut scratch, &mut trace)
                .expect("valid shapes");
            scratch.recycle(out.o);
        }
        (secs, trace)
    };
    let column = ExecPlan::new(MnnFastConfig::new(chunk))
        .with_kind(EngineKind::Column)
        .executor();
    let (column_s, column_tr) = run(&column);
    let streaming = ExecPlan::new(MnnFastConfig::new(chunk))
        .with_kind(EngineKind::Streaming)
        .executor();
    let (stream_s, stream_tr) = run(&streaming);
    let mnnfast = ExecPlan::new(MnnFastConfig::new(chunk).with_skip(SkipPolicy::RawWeight(1.0)))
        .with_kind(EngineKind::Streaming)
        .executor();
    let (mnnfast_s, mnnfast_tr) = run(&mnnfast);

    let mut t = ExperimentTable::new(
        "Fig 9(a): native single-thread latency per variant",
        &[
            "variant",
            "seconds",
            "speedup vs baseline",
            "inner-product",
            "exp/acc",
            "fused",
            "skip",
            "merge",
            "divide",
        ],
    );
    let phase_cells = |trace: Option<&Trace>| -> Vec<String> {
        match trace {
            None => Phase::ALL.iter().map(|_| "-".into()).collect(),
            Some(tr) => {
                let total = tr.total_nanos().max(1) as f64;
                Phase::ALL
                    .iter()
                    .map(|p| format!("{:.1}%", tr.nanos(*p) as f64 * 100.0 / total))
                    .collect()
            }
        }
    };
    for (name, secs, trace) in [
        ("baseline", baseline_s, None),
        ("column", column_s, Some(&column_tr)),
        ("column+S", stream_s, Some(&stream_tr)),
        ("MnnFast", mnnfast_s, Some(&mnnfast_tr)),
    ] {
        let mut row = vec![name.into(), f(secs), speedup(baseline_s / secs)];
        row.extend(phase_cells(trace));
        t.row(row);
    }
    for k in OpKind::ALL {
        t.note(format!(
            "baseline {k}: {:.3} ms",
            times.get(k).as_secs_f64() * 1e3
        ));
    }
    t.note(format!(
        "ns={ns}, ed={ed}, nq={nq}, chunk={chunk}; single host thread"
    ));

    // Batched comparison (the paper's GEMM formulation): the baseline's
    // nq × ns intermediates exceed the LLC, the column engine's chunk
    // buffers do not — so the cache effect is measurable natively.
    let nq_batch = scale.pick(8, 2);
    let batch_story = synthetic_story(ns, ed, nq_batch);
    let mut bt = OpTimes::new();
    let mut bc = BaselineCounters::default();
    let t0 = Instant::now();
    let _ = mnn_memnn::inference::baseline_forward_batch(&model, &batch_story, &mut bt, &mut bc);
    let base_batch_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let _ = BatchEngine::new(MnnFastConfig::new(chunk))
        .forward(
            &batch_story.m_in,
            &batch_story.m_out,
            &batch_story.questions,
        )
        .expect("valid shapes");
    let col_batch_s = t1.elapsed().as_secs_f64();
    t.note(format!(
        "batched ({nq_batch} questions): baseline GEMM {base_batch_s:.3}s vs batched column {col_batch_s:.3}s ({:.2}x; baseline spills {} MiB)",
        base_batch_s / col_batch_s,
        bc.intermediate_bytes >> 20,
    ));
    t
}

/// Fig 9(b): modelled MnnFast-vs-baseline speedup as threads grow (4-channel
/// machine) — the paper's 4.02× average / 5.38× at 20 threads.
pub fn fig09_modelled(scale: Scale) -> ExperimentTable {
    // Scaled-proportional simulation: the paper's ns=100M against a 30 MiB
    // LLC keeps the same memory:LLC ratio as ns=1M against 2 MiB, which the
    // trace replay can cover in seconds.
    let ns = scale.pick(1_000_000, 50_000);
    let mut machine = MachineProfile::xeon(4);
    machine.llc_bytes = scale.pick(2 << 20, 1 << 20);
    let config = DataflowConfig {
        ns,
        ed: 48,
        chunk: 1000,
        questions: 4,
        skip_fraction: 0.9,
        hops: 1,
    };
    let workloads: Vec<_> = Variant::ALL
        .iter()
        .map(|&v| roofline::variant_workload(v, config, &machine).expect("valid config"))
        .collect();

    let mut t = ExperimentTable::new(
        "Fig 9(b): modelled speedup over baseline vs thread count (4 channels)",
        &["threads", "column", "column+S", "MnnFast"],
    );
    let mut mnnfast_speedups = Vec::new();
    for threads in [1usize, 2, 4, 8, 12, 16, 20] {
        let base = roofline::throughput(&machine, &workloads[0], threads);
        let mut row = vec![threads.to_string()];
        for w in &workloads[1..] {
            let s = roofline::throughput(&machine, w, threads) / base;
            row.push(speedup(s));
            if std::ptr::eq(w, workloads.last().unwrap()) {
                mnnfast_speedups.push(s);
            }
        }
        t.row(row);
    }
    let avg = mnnfast_speedups.iter().sum::<f64>() / mnnfast_speedups.len() as f64;
    let max = mnnfast_speedups.iter().cloned().fold(0.0, f64::max);
    t.note(format!("MnnFast speedup: avg {avg:.2}x, max {max:.2}x"));
    t.note("paper: 4.02x average, 5.38x at 20 threads");
    t
}

/// Fig 10: speedup-vs-threads for every variant at 1/2/4 memory channels.
pub fn fig10(scale: Scale) -> ExperimentTable {
    let ns = scale.pick(1_000_000, 50_000);
    let config = DataflowConfig {
        ns,
        ed: 48,
        chunk: 1000,
        questions: 4,
        skip_fraction: 0.9,
        hops: 1,
    };
    let mut t = ExperimentTable::new(
        "Fig 10: thread scalability per memory-channel count",
        &["channels", "variant", "S@4", "S@10", "S@20"],
    );
    for ch in [1usize, 2, 4] {
        let mut machine = MachineProfile::xeon(ch);
        machine.llc_bytes = scale.pick(2 << 20, 1 << 20);
        for v in [Variant::Baseline, Variant::Column, Variant::ColumnStreaming] {
            let w = roofline::variant_workload(v, config, &machine).expect("valid config");
            let curve = roofline::speedup_curve(&machine, &w, 20);
            t.row(vec![
                ch.to_string(),
                v.to_string(),
                f(curve[3]),
                f(curve[9]),
                f(curve[19]),
            ]);
        }
    }
    t.note("S@n = speedup at n threads relative to 1 thread of the same variant");
    t.note("paper: baseline saturates ~4 threads, column ~10 (4ch), column+S near-ideal");
    t
}

/// Fig 11: off-chip memory accesses normalized to the baseline.
pub fn fig11(scale: Scale) -> ExperimentTable {
    let ns = scale.pick(400_000, 20_000);
    // The LLC is scaled so the ns-length spill vectors exceed it, as the
    // paper's ns=100M does against a real 30 MiB LLC.
    let llc_bytes = scale.pick(1 << 20, 256 << 10);
    let config = DataflowConfig {
        ns,
        ed: 48,
        chunk: 1000,
        questions: 8,
        skip_fraction: 0.9,
        hops: 1,
    };
    let mut t = ExperimentTable::new(
        "Fig 11: off-chip memory accesses (normalized to baseline)",
        &["variant", "demand misses", "normalized", "DRAM bytes"],
    );
    let mut baseline_misses = 0u64;
    for v in Variant::ALL {
        let mut llc = SetAssocCache::new(llc_bytes, 16, 64).expect("valid LLC geometry");
        let r = mnn_memsim::dataflow::replay(v, config, &mut llc).expect("valid config");
        if v == Variant::Baseline {
            baseline_misses = r.demand_misses.max(1);
        }
        t.row(vec![
            v.to_string(),
            r.demand_misses.to_string(),
            f(r.demand_misses as f64 / baseline_misses as f64),
            r.dram_bytes.to_string(),
        ]);
    }
    t.note("paper: column+streaming eliminates >60% of off-chip accesses");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig09_native_smoke_runs_and_orders() {
        let t = fig09_native(Scale::Smoke);
        assert_eq!(t.rows.len(), 4);
        // MnnFast (skip-everything threshold) should not be slower than
        // plain column by a large factor.
        let col: f64 = t.rows[1][1].parse().unwrap();
        let mf: f64 = t.rows[3][1].parse().unwrap();
        assert!(mf < col * 3.0, "MnnFast {mf} vs column {col}");
    }

    #[test]
    fn fig09_modelled_smoke_has_speedup_above_one() {
        let t = fig09_modelled(Scale::Smoke);
        let last = t.rows.last().unwrap();
        let s: f64 = last[3].trim_end_matches('x').parse().unwrap();
        assert!(s > 1.5, "MnnFast modelled speedup at 20 threads: {s}");
    }

    #[test]
    fn fig10_smoke_streaming_scales_best() {
        let t = fig10(Scale::Smoke);
        // For each channel count, column+S S@20 >= column S@20 >= baseline.
        for ch_rows in t.rows.chunks(3) {
            let s: Vec<f64> = ch_rows.iter().map(|r| r[4].parse().unwrap()).collect();
            assert!(s[2] >= s[1] - 1e-6, "{s:?}");
            assert!(s[1] >= s[0] - 1e-6, "{s:?}");
        }
    }

    #[test]
    fn fig11_smoke_reduction_over_60_percent() {
        let t = fig11(Scale::Smoke);
        let cs_norm: f64 = t.rows[2][2].parse().unwrap();
        assert!(cs_norm < 0.4, "column+S normalized misses {cs_norm}");
        let mf_norm: f64 = t.rows[3][2].parse().unwrap();
        assert!(mf_norm <= cs_norm + 1e-9);
    }
}

//! Motivational experiments: Fig 3 (bandwidth-limited scaling) and Fig 4
//! (cache contention).

use crate::table::{f, ExperimentTable};
use crate::Scale;
use mnn_memsim::contention::{self, ContentionConfig, EmbeddingIsolation};
use mnn_memsim::dataflow::DataflowConfig;
use mnn_memsim::roofline::{self, MachineProfile};
use mnn_memsim::Variant;

/// Fig 3: baseline speedup vs threads for 1/2/4/8 memory channels.
///
/// Reproduces the saturation behaviour: fewer channels ⇒ earlier plateau.
pub fn fig03(scale: Scale) -> ExperimentTable {
    // Scaled-proportional simulation (see fig09_modelled).
    let ns = scale.pick(1_000_000, 50_000);
    let max_threads = 20;
    let config = DataflowConfig {
        ns,
        ed: 48,
        chunk: 1000,
        questions: 4,
        skip_fraction: 0.0,
        hops: 1,
    };
    let channel_counts = [1usize, 2, 4, 8];
    let mut t = ExperimentTable::new(
        "Fig 3: baseline speedup vs threads per channel count",
        &["threads", "1ch", "2ch", "4ch", "8ch"],
    );
    let mut curves = Vec::new();
    for &ch in &channel_counts {
        let mut machine = MachineProfile::xeon(ch);
        machine.llc_bytes = scale.pick(2 << 20, 1 << 20);
        let workload = roofline::variant_workload(Variant::Baseline, config, &machine)
            .expect("valid dataflow config");
        curves.push(roofline::speedup_curve(&machine, &workload, max_threads));
    }
    for th in 1..=max_threads {
        let mut row = vec![th.to_string()];
        for curve in &curves {
            row.push(f(curve[th - 1]));
        }
        t.row(row);
    }
    t.note("speedup normalized to 1 thread; baseline dataflow, ed=48");
    t.note(format!(
        "ns={ns}, scaled-proportional LLC (memories and spills exceed it)"
    ));
    t
}

/// Fig 4: inference-thread performance vs co-executed embedding threads, at
/// two network scales (working-set sizes), with and without the embedding
/// cache fix.
pub fn fig04(scale: Scale) -> ExperimentTable {
    let steps = scale.pick(60_000, 5_000);
    let scales = [
        ("small (256KiB ws)", 256 << 10),
        ("large (1.8MiB ws)", 1800 << 10),
    ];
    let embed_counts = [1usize, 2, 4, 8];
    let mut t = ExperimentTable::new(
        "Fig 4: inference performance vs co-executed embedding threads",
        &["config", "1 thr", "2 thr", "4 thr", "8 thr"],
    );
    for (label, ws) in scales {
        let mut row = vec![label.to_string()];
        for &e in &embed_counts {
            let cfg = ContentionConfig {
                inference_ws_bytes: ws,
                embedding_threads: e,
                steps,
                ..ContentionConfig::fig4_default()
            };
            let r = contention::simulate(cfg).expect("valid contention config");
            row.push(f(r.relative_performance));
        }
        t.row(row);
    }
    // MnnFast fix: same worst case but with the embedding cache isolated.
    let mut row = vec!["large + embedding cache".to_string()];
    for &e in &embed_counts {
        let cfg = ContentionConfig {
            inference_ws_bytes: 1800 << 10,
            embedding_threads: e,
            steps,
            isolate_embedding: Some(EmbeddingIsolation {
                cache_bytes: 256 << 10,
            }),
            ..ContentionConfig::fig4_default()
        };
        let r = contention::simulate(cfg).expect("valid contention config");
        row.push(f(r.relative_performance));
    }
    t.row(row);
    t.note("performance relative to the same setup with no embedding threads");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_smoke_shows_channel_ordering() {
        let t = fig03(Scale::Smoke);
        assert_eq!(t.rows.len(), 20);
        // At 20 threads, more channels ⇒ more speedup.
        let last = &t.rows[19];
        let s1: f64 = last[1].parse().unwrap();
        let s8: f64 = last[4].parse().unwrap();
        assert!(s8 > s1, "8ch {s8} vs 1ch {s1}");
        // 1-channel curve saturates well below ideal.
        assert!(s1 < 10.0);
    }

    #[test]
    fn fig04_smoke_shows_contention_and_fix() {
        let t = fig04(Scale::Smoke);
        assert_eq!(t.rows.len(), 3);
        // Degradation grows with embedding threads on the large config.
        let large = &t.rows[1];
        let one: f64 = large[1].parse().unwrap();
        let eight: f64 = large[4].parse().unwrap();
        assert!(eight <= one + 0.05, "8 threads {eight} vs 1 thread {one}");
        // The embedding-cache row stays near 1.0.
        let fixed: f64 = t.rows[2][4].parse().unwrap();
        assert!(fixed > 0.95, "fix should restore performance: {fixed}");
    }
}

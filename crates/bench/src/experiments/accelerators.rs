//! Accelerator experiments: Fig 12 (GPU scaling), Fig 13 (FPGA latency),
//! Fig 14 (embedding cache), Section 5.5 (energy efficiency).

use crate::table::{f, pct, speedup, ExperimentTable};
use crate::Scale;
use mnn_accel::energy::{self, PowerModel};
use mnn_accel::fpga::{self, FpgaConfig, FpgaWorkload};
use mnn_accel::fpga_pipeline;
use mnn_accel::gpu::{self, GpuConfig, GpuWorkload};
use mnn_accel::gpu_timeline::{self, EventKind};
use mnn_dataset::zipf::ZipfSampler;
use mnn_memsim::roofline::MachineProfile;
use mnn_memsim::Variant;

/// Fig 12: GPU scalability — (a) CUDA streams on one GPU, (b) multi-GPU
/// with worst-case (shared PCIe) vs ideal copies.
pub fn fig12(scale: Scale) -> ExperimentTable {
    let ns = scale.pick(10_000_000, 100_000);
    let config = GpuConfig::titan_xp_server();
    let work = GpuWorkload::scaled(ns, 4);

    let mut t = ExperimentTable::new(
        "Fig 12: GPU scalability",
        &["config", "H2D ms", "kernel ms", "total ms", "speedup"],
    );
    let one_stream = gpu::single_gpu(&config, &work, 1).total_seconds;
    for s in [1usize, 2, 4] {
        let r = gpu::single_gpu(&config, &work, s);
        t.row(vec![
            format!("1 GPU, {s} stream(s)"),
            f(r.h2d_seconds * 1e3),
            f(r.kernel_seconds * 1e3),
            f(r.total_seconds * 1e3),
            speedup(one_stream / r.total_seconds),
        ]);
    }
    for g in [1usize, 2, 3, 4] {
        for (label, contended) in [("worst", true), ("ideal", false)] {
            let r = gpu::multi_gpu(&config, &work, g, contended)[0];
            t.row(vec![
                format!("{g} GPU(s), {label}"),
                f(r.h2d_seconds * 1e3),
                f(r.kernel_seconds * 1e3),
                f(r.total_seconds * 1e3),
                speedup(one_stream / r.total_seconds),
            ]);
        }
    }
    // Multi-node rows (Section 5.3: isolate PCIe per node).
    for nodes in [2usize, 4] {
        let latency = gpu::multi_node_latency(&config, &work, nodes, 4, 1e-4);
        t.row(vec![
            format!("{nodes} nodes x 4 GPUs"),
            "-".into(),
            "-".into(),
            f(latency * 1e3),
            speedup(one_stream / latency),
        ]);
    }
    t.note("paper: 1.33x from streams on one GPU; ~4.34x on 4 GPUs");
    t.note("worst = all H2D copies share the host PCIe; ideal = case (B)");
    t.note("multi-node: per-node PCIe complexes, log2(nodes) reduction steps");
    // Per-function breakdown from the event-driven timeline (the stacked
    // bars of Fig 12(a)).
    for s in [1usize, 2, 4] {
        let timeline = gpu_timeline::simulate_streams(&config, &work, s);
        t.note(format!(
            "timeline {s} stream(s): H2D {:.1} ms, IP {:.1} ms, softmax {:.2} ms, WS {:.1} ms (busy), makespan {:.1} ms",
            timeline.busy_seconds(EventKind::H2d) * 1e3,
            timeline.busy_seconds(EventKind::InnerProduct) * 1e3,
            timeline.busy_seconds(EventKind::Softmax) * 1e3,
            timeline.busy_seconds(EventKind::WeightedSum) * 1e3,
            timeline.makespan * 1e3,
        ));
    }
    t
}

/// Fig 13: FPGA latency per variant, normalized to the baseline.
pub fn fig13(_scale: Scale) -> ExperimentTable {
    let cfg = FpgaConfig::zedboard();
    let work = FpgaWorkload::table1();
    let base = cfg.latency_cycles(Variant::Baseline, &work) as f64;

    let mut t = ExperimentTable::new(
        "Fig 13: FPGA latency per variant (Zynq-7020 model)",
        &["variant", "cycles", "normalized", "reduction", "speedup"],
    );
    for v in Variant::ALL {
        let c = cfg.latency_cycles(v, &work) as f64;
        t.row(vec![
            v.to_string(),
            (c as u64).to_string(),
            f(c / base),
            pct(1.0 - c / base),
            speedup(base / c),
        ]);
    }
    t.note("paper: column -27.6%, column+S -38.2%, MnnFast 2.01x");
    t.note(format!(
        "effective zero-skip after group gating: {}",
        pct(cfg.effective_skip(work.skip_fraction))
    ));
    // Buffer-depth ablation from the event-stepped pipeline (DESIGN.md §5).
    for depth in [1usize, 2, 3] {
        let sim = fpga_pipeline::simulate(&cfg, &work, Variant::MnnFast, depth);
        t.note(format!(
            "pipeline depth {depth}: {} cycles (load busy {}, compute busy {})",
            sim.makespan,
            sim.stages.load,
            sim.stages.inner_product + sim.stages.exp + sim.stages.weighted_sum,
        ));
    }
    t
}

/// Fig 14: embedding-cache latency reduction vs capacity (ed = 256,
/// Zipf word trace standing in for COCA).
pub fn fig14(scale: Scale) -> ExperimentTable {
    let cfg = FpgaConfig::zedboard();
    let trace_len = scale.pick(200_000, 20_000);
    let mut zipf = ZipfSampler::new(10_000, 1.1, 42).expect("valid Zipf parameters");
    let trace = zipf.trace(trace_len);

    let mut t = ExperimentTable::new(
        "Fig 14: embedding-cache effectiveness (ed=256)",
        &["cache size", "hit ratio", "latency reduction", "paper"],
    );
    for (kb, paper) in [
        (32usize, "34.5%"),
        (64, "41.7%"),
        (128, "47.7%"),
        (256, "53.1%"),
    ] {
        let (no_cache, cached, hit) =
            fpga::embedding_latency(&cfg, kb << 10, 256, &trace).expect("valid cache geometry");
        t.row(vec![
            format!("{kb}KB"),
            pct(hit),
            pct(1.0 - cached as f64 / no_cache as f64),
            paper.into(),
        ]);
    }
    t.note(format!(
        "Zipf(s=1.1) over 10k words, {trace_len}-lookup trace (COCA substitute)"
    ));
    t
}

/// Section 5.5: CPU vs FPGA energy efficiency on size-matched networks.
pub fn sec55(_scale: Scale) -> ExperimentTable {
    let report = energy::compare(
        &PowerModel::default(),
        20,
        &MachineProfile::xeon(4),
        &FpgaConfig::zedboard(),
        &FpgaWorkload::table1(),
    )
    .expect("valid energy configuration");

    let mut t = ExperimentTable::new(
        "Section 5.5: energy efficiency, CPU vs FPGA MnnFast",
        &["platform", "tasks/s", "watts", "mJ/task"],
    );
    t.row(vec![
        "CPU (20 threads)".into(),
        f(report.cpu_tasks_per_sec),
        f(report.cpu_watts),
        f(report.cpu_joules_per_task * 1e3),
    ]);
    t.row(vec![
        "FPGA (Zynq-7020)".into(),
        f(report.fpga_tasks_per_sec),
        f(report.fpga_watts),
        f(report.fpga_joules_per_task * 1e3),
    ]);
    // Extension beyond the paper: the GPU point on the same (small) task.
    let g = energy::gpu_energy(
        &PowerModel::default(),
        &GpuConfig::titan_xp_server(),
        FpgaWorkload::table1().ns,
        64,
    );
    t.row(vec![
        "GPU (TITAN Xp)*".into(),
        f(g.tasks_per_sec),
        f(g.watts),
        f(g.joules_per_task * 1e3),
    ]);
    t.note(format!(
        "FPGA energy-efficiency gain over CPU: {} (paper: up to 6.54x)",
        speedup(report.fpga_efficiency_gain)
    ));
    t.note("*GPU row is an extension; the paper compares CPU and FPGA only");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_smoke_stream_speedup_in_range() {
        let t = fig12(Scale::Smoke);
        let s4: f64 = t.rows[2][4].trim_end_matches('x').parse().unwrap();
        assert!((1.1..2.0).contains(&s4), "4-stream speedup {s4}");
        // 4-GPU ideal beats 4-GPU worst.
        let worst: f64 = t.rows[9][4].trim_end_matches('x').parse().unwrap();
        let ideal: f64 = t.rows[10][4].trim_end_matches('x').parse().unwrap();
        assert!(ideal > worst, "ideal {ideal} vs worst {worst}");
    }

    #[test]
    fn fig13_ordering_and_speedup() {
        let t = fig13(Scale::Smoke);
        let norms: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(norms[0] == 1.0);
        assert!(norms[1] < norms[0] && norms[2] < norms[1] && norms[3] < norms[2]);
        let final_speedup: f64 = t.rows[3][4].trim_end_matches('x').parse().unwrap();
        assert!((1.5..3.0).contains(&final_speedup), "{final_speedup}");
    }

    #[test]
    fn fig14_reductions_monotone() {
        let t = fig14(Scale::Smoke);
        let reds: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[2].trim_end_matches('%').parse().unwrap())
            .collect();
        for w in reds.windows(2) {
            assert!(w[1] >= w[0], "{reds:?}");
        }
        assert!(reds[3] > 30.0, "256KB reduction {}", reds[3]);
    }

    #[test]
    fn sec55_fpga_wins() {
        let t = sec55(Scale::Smoke);
        let cpu_mj: f64 = t.rows[0][3].parse().unwrap();
        let fpga_mj: f64 = t.rows[1][3].parse().unwrap();
        assert!(cpu_mj > fpga_mj, "cpu {cpu_mj} vs fpga {fpga_mj}");
    }
}

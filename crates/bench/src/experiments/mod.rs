//! Experiment runners, one per table/figure.

pub mod ablations;
pub mod accelerators;
pub mod accuracy;
pub mod cpu;
pub mod motivation;
pub mod validation;

use crate::table::ExperimentTable;
use mnn_dataset::{MemNNConfig, Platform};

/// Table 1: the memory-network configurations per platform.
pub fn table1() -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "Table 1: memory network configurations",
        &["entry", "CPU", "GPU", "FPGA"],
    );
    let configs = [
        MemNNConfig::for_platform(Platform::Cpu),
        MemNNConfig::for_platform(Platform::Gpu),
        MemNNConfig::for_platform(Platform::Fpga),
    ];
    t.row(
        std::iter::once("Embedding dimension (# entry)".to_string())
            .chain(configs.iter().map(|c| c.embedding_dim.to_string()))
            .collect(),
    );
    t.row(
        std::iter::once("Database size (# sentences)".to_string())
            .chain(configs.iter().map(|c| c.num_sentences.to_string()))
            .collect(),
    );
    t.row(
        std::iter::once("Chunk-size (# sentences)".to_string())
            .chain(configs.iter().map(|c| c.chunk_size.to_string()))
            .collect(),
    );
    t.note("GPU chunk size is variable in the paper; the preset uses 1e6.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_columns() {
        let t = table1();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][1], "48");
        assert_eq!(t.rows[0][3], "25");
        assert_eq!(t.rows[1][3], "1000");
        assert_eq!(t.rows[2][1], "1000");
    }
}

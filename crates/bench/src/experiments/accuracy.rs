//! Accuracy-side experiments on the trained model: Fig 6 (attention
//! sparsity) and Fig 7 (zero-skipping accuracy/computation tradeoff).

use crate::table::{f, pct, ExperimentTable};
use crate::Scale;
use mnn_dataset::babi::{BabiGenerator, Story, TaskKind};
use mnn_memnn::{eval, model::ModelConfig, train::Trainer, MemNet};
use mnnfast::{ColumnEngine, InferenceStats, MnnFastConfig, SkipPolicy};

/// Trains a MemN2N on the synthetic bAbI task and returns the model with a
/// held-out test set — shared by Fig 6 and Fig 7.
pub fn trained_babi_model(scale: Scale) -> (MemNet, Vec<Story>) {
    let ns = scale.pick(50, 8);
    let (train_stories, epochs, ed) = match scale {
        Scale::Full => (240, 60, 40),
        Scale::Smoke => (60, 25, 16),
    };
    let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 2019);
    let train_set = generator.dataset(train_stories, ns, 3);
    let test_set = generator.dataset(scale.pick(40, 10), ns, 3);
    let config = ModelConfig::for_generator(&generator, ed, ns);
    let mut model = MemNet::new(config, 61);
    Trainer::new()
        .epochs(epochs)
        .momentum(0.5)
        .train(&mut model, &train_set);
    (model, test_set)
}

/// Fig 6: probability-value distribution over the test questions.
///
/// The paper shows a heat map of 100 questions × 50 sentences with only a
/// few activated entries per column; this runner reports the summary
/// statistics plus an ASCII rendering of the first questions.
pub fn fig06(scale: Scale) -> ExperimentTable {
    let (model, test_set) = trained_babi_model(scale);
    let max_q = scale.pick(100, 20);
    let ps = eval::collect_p_vectors(&model, &test_set, max_q);

    let mut t = ExperimentTable::new(
        "Fig 6: probability value distribution (trained model)",
        &["threshold", "mean entries above", "active fraction"],
    );
    for th in [0.5f32, 0.1, 0.01, 0.001] {
        let s = eval::sparsity(&ps, th);
        t.row(vec![
            th.to_string(),
            f(s.mean_active as f64),
            pct(s.active_fraction as f64),
        ]);
    }
    let s01 = eval::sparsity(&ps, 0.1);
    t.note(format!(
        "{} questions x {} sentences; max probability {:.3}",
        ps.len(),
        ps.first().map(Vec::len).unwrap_or(0),
        s01.max_probability
    ));
    // ASCII heat map: rows = sentence index, columns = questions.
    if let Some(ns) = ps.first().map(Vec::len) {
        let q_shown = ps.len().min(40);
        for row in 0..ns.min(50) {
            let mut line = String::with_capacity(q_shown);
            for p in ps.iter().take(q_shown) {
                let v = p[row];
                line.push(match v {
                    v if v > 0.5 => '#',
                    v if v > 0.1 => '+',
                    v if v > 0.01 => '.',
                    _ => ' ',
                });
            }
            t.note(format!("s{row:02} |{line}|"));
        }
    }
    t
}

/// Runs the zero-skipping engine over the test set at `threshold`, returning
/// `(accuracy, merged stats)`.
pub fn zero_skip_eval(model: &MemNet, stories: &[Story], threshold: f32) -> (f32, InferenceStats) {
    let skip = if threshold > 0.0 {
        SkipPolicy::Probability(threshold)
    } else {
        SkipPolicy::None
    };
    let engine = ColumnEngine::new(MnnFastConfig::new(16).with_skip(skip));
    let mut stats = InferenceStats::default();
    let accuracy = eval::accuracy_with(model, stories, |emb, q| {
        let out = engine
            .forward(&emb.m_in, &emb.m_out, &emb.questions[q])
            .expect("shapes from embed_story are consistent");
        stats.merge(&out.stats);
        model.output_logits(&out.o, &emb.questions[q])
    });
    (accuracy, stats)
}

/// Fig 7: accuracy loss and computation reduction vs skip threshold.
///
/// Paper values: 97% output-computation reduction at 0.87% accuracy loss
/// for threshold 0.1; 81% reduction with no loss at threshold 0.01.
pub fn fig07(scale: Scale) -> ExperimentTable {
    let (model, test_set) = trained_babi_model(scale);
    let (base_acc, _) = zero_skip_eval(&model, &test_set, 0.0);

    let mut t = ExperimentTable::new(
        "Fig 7: zero-skipping threshold tradeoff",
        &[
            "threshold",
            "accuracy",
            "accuracy loss",
            "computation reduction",
        ],
    );
    for th in [0.0f32, 0.001, 0.01, 0.05, 0.1, 0.2, 0.5] {
        let (acc, stats) = zero_skip_eval(&model, &test_set, th);
        let loss = ((base_acc - acc) / base_acc.max(1e-6)).max(0.0);
        t.row(vec![
            th.to_string(),
            pct(acc as f64),
            pct(loss as f64),
            pct(stats.computation_reduction()),
        ]);
    }
    t.note(format!("baseline accuracy {}", pct(base_acc as f64)));
    t.note("paper: 97% reduction / 0.87% loss at th=0.1; 81% / 0% at th=0.01");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig06_smoke_attention_is_sparse() {
        let t = fig06(Scale::Smoke);
        // At threshold 0.01 the active fraction should be well below 1.
        let frac = t
            .rows
            .iter()
            .find(|r| r[0] == "0.1")
            .and_then(|r| r[2].trim_end_matches('%').parse::<f64>().ok())
            .unwrap();
        assert!(frac < 90.0, "active fraction {frac}%");
    }

    #[test]
    fn fig07_smoke_tradeoff_is_monotone() {
        let t = fig07(Scale::Smoke);
        // Computation reduction grows with threshold.
        let reductions: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[3].trim_end_matches('%').parse::<f64>().unwrap())
            .collect();
        for pair in reductions.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9, "{reductions:?}");
        }
        // Threshold 0 has zero reduction and zero loss.
        assert_eq!(reductions[0], 0.0);
        let loss0: f64 = t.rows[0][2].trim_end_matches('%').parse().unwrap();
        assert_eq!(loss0, 0.0);
    }
}

//! Embedding fast path: sentence-cache hit rate and speedup under Zipfian
//! sentence traffic.
//!
//! The paper's embedding cache (Section 4.3) exploits the Zipfian skew of
//! word IDs to short-circuit the memory-bound embedding phase. The serving
//! layer lifts the same idea one level: whole sentences and questions
//! recur across requests, so `mnn_serve`'s [`mnn_serve::SentenceCache`]
//! memoizes the entire gather-sum result. This report measures it two
//! ways and emits `BENCH_embedding.json`:
//!
//! 1. **Embedding-phase sweep** — Zipf skew × cache capacity: a warm
//!    cached session replays an observe stream against an identical
//!    uncached session (the PR-4-equivalent baseline code path, already on
//!    the SIMD gather-sum kernels, so the reported speedup is the *cache's*
//!    contribution alone and a lower bound on the gain over the old scalar
//!    loops). Each repetition times both flavors back-to-back and the
//!    speedup is the median per-rep ratio, the same pairing discipline as
//!    `BENCH_batch.json`.
//! 2. **End-to-end mixed workload** — observe-heavy traffic (8 observes
//!    per ask, the paper's online-serving shape) at s = 1.0, measuring
//!    whole-serve throughput with and without the cache.

use crate::table::{f, ExperimentTable};
use crate::Scale;
use mnn_dataset::zipf::ZipfSampler;
use mnn_memnn::{MemNet, ModelConfig};
use mnn_serve::{Session, SessionConfig};
use std::hint::black_box;
use std::time::Instant;

/// Zipf skews swept (the simulator cross-validation uses the same set).
pub const SKEWS: [f64; 3] = [0.7, 1.0, 1.3];

/// Cache capacities swept, in entries.
pub const CAPACITIES: [usize; 3] = [64, 256, 1024];

/// Required warm-cache embedding-phase speedup at s = 1.0 (largest
/// capacity) for a full-scale run.
pub const EMBED_SPEEDUP_TARGET: f64 = 2.0;

/// Required end-to-end mixed-workload speedup for a full-scale run.
pub const E2E_SPEEDUP_TARGET: f64 = 1.15;

/// One (skew, capacity) embedding-phase measurement.
#[derive(Debug, Clone)]
pub struct EmbedEntry {
    /// Zipf skew of the sentence stream.
    pub skew: f64,
    /// Sentence-cache capacity in entries.
    pub capacity: usize,
    /// Warm-cache hit rate over the timed repetitions.
    pub hit_rate: f64,
    /// Best observed seconds for the uncached observe stream.
    pub uncached_seconds: f64,
    /// Best observed seconds for the warm cached observe stream.
    pub cached_seconds: f64,
    /// Median per-repetition uncached/cached time ratio.
    pub speedup: f64,
}

/// The end-to-end mixed-workload measurement.
#[derive(Debug, Clone)]
pub struct E2eEntry {
    /// Warm-cache hit rate over the timed repetitions.
    pub hit_rate: f64,
    /// Questions per second without the cache (best rep).
    pub uncached_qps: f64,
    /// Questions per second with the warm cache (best rep).
    pub cached_qps: f64,
    /// Median per-repetition uncached/cached time ratio.
    pub speedup: f64,
}

/// A full embedding-fast-path run.
#[derive(Debug, Clone)]
pub struct EmbeddingReport {
    /// Embedding dimension.
    pub ed: usize,
    /// Words per sentence.
    pub nw: usize,
    /// Distinct sentences in the Zipf-sampled pool.
    pub pool_sentences: usize,
    /// Observes per timed stream.
    pub stream_len: usize,
    /// Acceptance target for the embedding phase at s = 1.0.
    pub embed_target: f64,
    /// Acceptance target for end-to-end throughput.
    pub e2e_target: f64,
    /// One entry per (skew, capacity), skew-major in [`SKEWS`] ×
    /// [`CAPACITIES`] order.
    pub entries: Vec<EmbedEntry>,
    /// The mixed-workload measurement at s = 1.0.
    pub e2e: E2eEntry,
}

/// Deterministic sentence pool: `n` distinct `nw`-token sentences over
/// `vocab` words (LCG-filled, no RNG dependency).
fn sentence_pool(n: usize, nw: usize, vocab: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            let mut state = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            (0..nw)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % vocab as u64) as u32
                })
                .collect()
        })
        .collect()
}

fn serving_model(vocab: usize, ed: usize) -> MemNet {
    let config = ModelConfig {
        vocab_size: vocab,
        embedding_dim: ed,
        max_sentences: 64,
        hops: 2,
        temporal: false,
        position_encoding: true,
    };
    MemNet::new(config, 11)
}

fn session_config(cache: Option<usize>, window: usize) -> SessionConfig {
    SessionConfig {
        max_sentences: Some(window),
        embed_cache: cache,
        ..SessionConfig::default()
    }
}

/// Replays the Zipf-selected observe stream; returns elapsed seconds.
fn observe_stream(session: &mut Session, pool: &[Vec<u32>], ids: &[u32]) -> f64 {
    let t0 = Instant::now();
    for &i in ids {
        black_box(
            session
                .observe(black_box(&pool[i as usize]))
                .expect("observe"),
        );
    }
    t0.elapsed().as_secs_f64()
}

/// Replays a mixed stream: every 9th event asks a Zipf-selected question,
/// the rest observe. Returns (elapsed seconds, questions asked).
fn mixed_stream(
    session: &mut Session,
    pool: &[Vec<u32>],
    questions: &[Vec<u32>],
    obs_ids: &[u32],
    q_ids: &[u32],
) -> (f64, usize) {
    let mut asked = 0;
    let t0 = Instant::now();
    for (n, &i) in obs_ids.iter().enumerate() {
        session
            .observe(black_box(&pool[i as usize]))
            .expect("observe");
        if n % 8 == 7 {
            let q = &questions[q_ids[asked % q_ids.len()] as usize];
            black_box(session.ask(black_box(q)).expect("ask"));
            asked += 1;
        }
    }
    (t0.elapsed().as_secs_f64(), asked)
}

/// Runs the sweep and the mixed workload on the serving shape
/// (ed 64, 32-word sentences, position encoding on).
pub fn run(scale: Scale) -> EmbeddingReport {
    let ed = 64;
    let nw = 32;
    let vocab = 512;
    let window = 64;
    let pool_n = scale.pick(2000, 300);
    let stream_len = scale.pick(30_000, 1_500);
    let reps = scale.pick(7, 3);

    let model = serving_model(vocab, ed);
    let pool = sentence_pool(pool_n, nw, vocab);

    let mut entries = Vec::with_capacity(SKEWS.len() * CAPACITIES.len());
    for (si, &skew) in SKEWS.iter().enumerate() {
        let ids = ZipfSampler::new(pool_n, skew, 0xBEEF + si as u64)
            .expect("valid sampler")
            .trace(stream_len);
        for &capacity in &CAPACITIES {
            let mut plain = Session::new(model.clone(), session_config(None, window))
                .expect("uncached session");
            let mut cached = Session::new(model.clone(), session_config(Some(capacity), window))
                .expect("cached session");
            // Warm-up: grows buffers on both and fills the cache's hot set.
            observe_stream(&mut plain, &pool, &ids);
            observe_stream(&mut cached, &pool, &ids);

            let warm = cached.embed_cache_stats().expect("cache enabled");
            let (mut best_plain, mut best_cached) = (f64::INFINITY, f64::INFINITY);
            let mut ratios = Vec::with_capacity(reps);
            for _ in 0..reps {
                let p = observe_stream(&mut plain, &pool, &ids);
                let c = observe_stream(&mut cached, &pool, &ids);
                best_plain = best_plain.min(p);
                best_cached = best_cached.min(c);
                ratios.push(p / c);
            }
            let delta_hits = cached.embed_cache_stats().expect("cache enabled").hits - warm.hits;
            let hit_rate = delta_hits as f64 / (reps * stream_len) as f64;

            entries.push(EmbedEntry {
                skew,
                capacity,
                hit_rate,
                uncached_seconds: best_plain,
                cached_seconds: best_cached,
                speedup: median(&mut ratios),
            });
        }
    }

    // End-to-end mixed workload at s = 1.0, largest swept capacity.
    let e2e_cap = *CAPACITIES.last().expect("non-empty capacity sweep");
    let obs_ids = ZipfSampler::new(pool_n, 1.0, 0xE2E)
        .expect("valid sampler")
        .trace(stream_len);
    let n_questions = 256.min(pool_n);
    let questions = sentence_pool(n_questions, 6, vocab);
    let q_ids = ZipfSampler::new(n_questions, 1.0, 0xA5C)
        .expect("valid sampler")
        .trace(stream_len / 8 + 1);
    let mut plain =
        Session::new(model.clone(), session_config(None, window)).expect("uncached session");
    let mut cached =
        Session::new(model, session_config(Some(e2e_cap), window)).expect("cached session");
    mixed_stream(&mut plain, &pool, &questions, &obs_ids, &q_ids);
    mixed_stream(&mut cached, &pool, &questions, &obs_ids, &q_ids);

    let warm = cached.embed_cache_stats().expect("cache enabled");
    let warm_lookups = warm.hits + warm.misses;
    let (mut best_plain, mut best_cached) = (f64::INFINITY, f64::INFINITY);
    let mut asked_total = 0usize;
    let mut ratios = Vec::with_capacity(reps);
    for _ in 0..reps {
        let (p, _) = mixed_stream(&mut plain, &pool, &questions, &obs_ids, &q_ids);
        let (c, asked) = mixed_stream(&mut cached, &pool, &questions, &obs_ids, &q_ids);
        best_plain = best_plain.min(p);
        best_cached = best_cached.min(c);
        asked_total = asked;
        ratios.push(p / c);
    }
    let after = cached.embed_cache_stats().expect("cache enabled");
    let e2e = E2eEntry {
        hit_rate: (after.hits - warm.hits) as f64
            / ((after.hits + after.misses) - warm_lookups) as f64,
        uncached_qps: asked_total as f64 / best_plain,
        cached_qps: asked_total as f64 / best_cached,
        speedup: median(&mut ratios),
    };

    EmbeddingReport {
        ed,
        nw,
        pool_sentences: pool_n,
        stream_len,
        embed_target: EMBED_SPEEDUP_TARGET,
        e2e_target: E2E_SPEEDUP_TARGET,
        entries,
        e2e,
    }
}

/// Median of a non-empty sample (sorts in place).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

impl EmbeddingReport {
    /// The acceptance-point entry: s = 1.0 at the largest swept capacity.
    pub fn acceptance_entry(&self) -> &EmbedEntry {
        self.entries
            .iter()
            .filter(|e| e.skew == 1.0)
            .max_by_key(|e| e.capacity)
            .expect("sweep covers s=1.0")
    }

    /// `true` when the full-scale acceptance bounds hold: warm-cache
    /// embedding-phase speedup at s = 1.0 and end-to-end mixed-workload
    /// speedup. Only meaningful for [`Scale::Full`] runs.
    pub fn meets_target(&self) -> bool {
        self.acceptance_entry().speedup >= self.embed_target && self.e2e.speedup >= self.e2e_target
    }

    /// Sanity gate for CI smoke runs: finite, positive measurements,
    /// hit rates within [0, 1], and real locality at the acceptance point.
    /// Deliberately conservative — no timing-ratio bounds, so a loaded CI
    /// runner cannot flake the job on scheduling noise.
    pub fn sane(&self) -> bool {
        let entries_ok = self.entries.iter().all(|e| {
            e.uncached_seconds > 0.0
                && e.cached_seconds > 0.0
                && e.speedup.is_finite()
                && e.speedup > 0.0
                && (0.0..=1.0).contains(&e.hit_rate)
        });
        let e2e_ok = self.e2e.uncached_qps > 0.0
            && self.e2e.cached_qps > 0.0
            && self.e2e.speedup.is_finite()
            && (0.0..=1.0).contains(&self.e2e.hit_rate);
        entries_ok && e2e_ok && self.acceptance_entry().hit_rate >= 0.3
    }

    /// Human-readable companion table.
    pub fn table(&self) -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "Embedding fast path: sentence-cache hit rate and speedup",
            &[
                "skew",
                "capacity",
                "hit rate",
                "uncached s",
                "cached s",
                "speedup",
            ],
        );
        for e in &self.entries {
            t.row(vec![
                format!("{:.1}", e.skew),
                e.capacity.to_string(),
                format!("{:.3}", e.hit_rate),
                f(e.uncached_seconds),
                f(e.cached_seconds),
                format!("{:.2}x", e.speedup),
            ]);
        }
        t.note(format!(
            "observe streams: {} sentences of {} words (ed {}) from a {}-sentence Zipf pool",
            self.stream_len, self.nw, self.ed, self.pool_sentences
        ));
        t.note(format!(
            "e2e mixed workload (8 observes : 1 ask, s=1.0): {:.0} -> {:.0} q/s, {:.2}x at {:.3} hit rate",
            self.e2e.uncached_qps, self.e2e.cached_qps, self.e2e.speedup, self.e2e.hit_rate
        ));
        t.note(format!(
            "targets: embed {:.1}x @ s=1.0, e2e {:.2}x — {}",
            self.embed_target,
            self.e2e_target,
            if self.meets_target() {
                "met"
            } else {
                "NOT met (expected for smoke shapes)"
            }
        ));
        t
    }

    /// Serializes the report as JSON (hand-rolled: the workspace builds
    /// offline with no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"ed\": {}, \"nw\": {}, \"pool_sentences\": {}, \"stream_len\": {},\n",
            self.ed, self.nw, self.pool_sentences, self.stream_len
        ));
        out.push_str(&format!(
            "  \"embed_target\": {:.2}, \"e2e_target\": {:.2}, \"meets_target\": {},\n",
            self.embed_target,
            self.e2e_target,
            self.meets_target()
        ));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"skew\": {:.2}, \"capacity\": {},\n",
                e.skew, e.capacity
            ));
            out.push_str(&format!("      \"hit_rate\": {:.4},\n", e.hit_rate));
            out.push_str(&format!(
                "      \"uncached_seconds\": {:.12},\n",
                e.uncached_seconds
            ));
            out.push_str(&format!(
                "      \"cached_seconds\": {:.12},\n",
                e.cached_seconds
            ));
            out.push_str(&format!("      \"speedup\": {:.4}\n", e.speedup));
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"e2e\": {\n");
        out.push_str(&format!("    \"hit_rate\": {:.4},\n", self.e2e.hit_rate));
        out.push_str(&format!(
            "    \"uncached_qps\": {:.3},\n",
            self.e2e.uncached_qps
        ));
        out.push_str(&format!(
            "    \"cached_qps\": {:.3},\n",
            self.e2e.cached_qps
        ));
        out.push_str(&format!("    \"speedup\": {:.4}\n", self.e2e.speedup));
        out.push_str("  }\n}\n");
        out
    }

    /// Writes [`EmbeddingReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_full_sweep() {
        let report = run(Scale::Smoke);
        assert_eq!(report.entries.len(), SKEWS.len() * CAPACITIES.len());
        for e in &report.entries {
            assert!(e.uncached_seconds > 0.0);
            assert!(e.cached_seconds > 0.0);
            assert!(e.speedup.is_finite() && e.speedup > 0.0);
            assert!((0.0..=1.0).contains(&e.hit_rate), "hit rate {}", e.hit_rate);
        }
        // Hit rate grows (weakly) with capacity at fixed skew.
        for skew_chunk in report.entries.chunks(CAPACITIES.len()) {
            for pair in skew_chunk.windows(2) {
                assert!(
                    pair[1].hit_rate >= pair[0].hit_rate - 0.02,
                    "hit rate fell with capacity: {pair:?}"
                );
            }
        }
        assert!(report.e2e.uncached_qps > 0.0);
        assert!(report.e2e.cached_qps > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(Scale::Smoke);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"entries\"",
            "\"e2e\"",
            "\"hit_rate\"",
            "\"embed_target\"",
            "\"meets_target\"",
            "\"cached_qps\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}

//! Experiment harness for the MnnFast reproduction.
//!
//! One runner per table/figure of the paper's evaluation section; each
//! binary under `src/bin` is a thin wrapper that calls the corresponding
//! runner and prints its [`table::ExperimentTable`]. The runners accept a
//! [`Scale`] so integration tests can smoke-run them in milliseconds while
//! the binaries default to paper-shaped sizes.
//!
//! | Binary | Paper artifact | Runner |
//! |---|---|---|
//! | `table1` | Table 1 | [`experiments::table1`] |
//! | `fig03_membw_scaling` | Fig 3 | [`experiments::motivation::fig03`] |
//! | `fig04_cache_contention` | Fig 4 | [`experiments::motivation::fig04`] |
//! | `fig06_pvector` | Fig 6 | [`experiments::accuracy::fig06`] |
//! | `fig07_zeroskip_tradeoff` | Fig 7 | [`experiments::accuracy::fig07`] |
//! | `fig09_cpu_perf` | Fig 9 | [`experiments::cpu::fig09_native`] |
//! | `fig10_cpu_scalability` | Fig 10 | [`experiments::cpu::fig10`] |
//! | `fig11_offchip_accesses` | Fig 11 | [`experiments::cpu::fig11`] |
//! | `fig12_gpu_scaling` | Fig 12 | [`experiments::accelerators::fig12`] |
//! | `fig13_fpga_latency` | Fig 13 | [`experiments::accelerators::fig13`] |
//! | `fig14_embedding_cache` | Fig 14 | [`experiments::accelerators::fig14`] |
//! | `sec55_energy` | Section 5.5 | [`experiments::accelerators::sec55`] |
//! | `bench_kernels` | kernel backend (BENCH_kernels.json) | [`kernel_report`] |
//! | `bench_robustness` | budget-check overhead (BENCH_robustness.json) | [`robustness_report`] |
//! | `bench_batch` | batched serving throughput (BENCH_batch.json) | [`batch_report`] |
//! | `bench_embedding` | embedding fast path (BENCH_embedding.json) | [`embedding_report`] |
//! | `bench_segment` | segmented plane overhead + pruning (BENCH_segment.json) | [`segment_report`] |
//! | `bench_quant` | int8 memory plane speedup + parity (BENCH_quant.json) | [`quant_report`] |
//! | `bench_dist` | distributed fleet overhead + hedged p99 (BENCH_dist.json) | [`dist_report`] |
//! | `bench_sparse` | top-K candidate attention crossover + recall (BENCH_sparse.json) | [`sparse_report`] |
//! | `bench_serving` | open-loop network serving, coalesced vs batch-1 (BENCH_serving.json) | [`serving_report`] |

pub mod batch_report;
pub mod dist_report;
pub mod embedding_report;
pub mod engine_report;
pub mod experiments;
pub mod kernel_report;
pub mod quant_report;
pub mod robustness_report;
pub mod segment_report;
pub mod serving_report;
pub mod sparse_report;
pub mod table;

/// How large an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long, paper-shaped runs (the binaries' default).
    Full,
    /// Milliseconds-long smoke runs for tests.
    Smoke,
}

impl Scale {
    /// Reads the scale from the process arguments (`--smoke` selects
    /// [`Scale::Smoke`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--smoke") {
            Scale::Smoke
        } else {
            Scale::Full
        }
    }

    /// Picks `full` or `smoke` by variant.
    pub fn pick<T>(self, full: T, smoke: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Smoke => smoke,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Full.pick(10, 1), 10);
        assert_eq!(Scale::Smoke.pick(10, 1), 1);
    }
}

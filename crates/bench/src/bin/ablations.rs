//! Runs the design-choice ablations of DESIGN.md §5 (beyond the paper's
//! own figures): chunk-size sweep, lazy-vs-online softmax, embedding-cache
//! associativity, FPGA streaming depth, question batching.
use mnn_bench::experiments::ablations;
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    for t in [
        ablations::chunk_sweep(scale),
        ablations::softmax_modes(scale),
        ablations::embedding_cache_ways(scale),
        ablations::streaming_depth(scale),
        ablations::fpga_fit(scale),
        ablations::writeback_traffic(scale),
        ablations::batching(scale),
    ] {
        println!("{t}");
    }
}

//! Embedding fast path: sentence-cache hit rate and speedup under Zipfian
//! sentence traffic, plus end-to-end mixed-workload throughput. Emits the
//! machine-readable `BENCH_embedding.json`; with `--check` the process
//! exits nonzero when the run fails the conservative sanity gate (finite
//! measurements, sane hit rates, real locality at the acceptance point).
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = mnn_bench::embedding_report::run(scale);
    print!("{}", report.table());
    match report.write_json("BENCH_embedding.json") {
        Ok(()) => println!("wrote BENCH_embedding.json"),
        Err(e) => eprintln!("{e}"),
    }
    if std::env::args().any(|a| a == "--check") && !report.sane() {
        eprintln!("embedding fast-path run failed its sanity gate");
        std::process::exit(1);
    }
}

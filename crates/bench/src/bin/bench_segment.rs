//! Segmented execution plane: merge-plane overhead at one segment and the
//! zone-map pruning win on a skewed memory. Emits the machine-readable
//! `BENCH_segment.json`; with `--check` the process exits nonzero when the
//! run fails the conservative sanity gate (finite measurements, rows
//! actually pruned, pruning not slower at the largest segment count).
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = mnn_bench::segment_report::run(scale);
    print!("{}", report.table());
    match report.write_json("BENCH_segment.json") {
        Ok(()) => println!("wrote BENCH_segment.json"),
        Err(e) => eprintln!("{e}"),
    }
    if std::env::args().any(|a| a == "--check") && !report.sane() {
        eprintln!("segmented-plane run failed its sanity gate");
        std::process::exit(1);
    }
}

//! Fig 3: baseline speedup vs threads for 1/2/4/8 memory channels.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!("{}", mnn_bench::experiments::motivation::fig03(scale));
}

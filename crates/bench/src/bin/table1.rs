//! Prints Table 1 (memory-network configurations).
fn main() {
    print!("{}", mnn_bench::experiments::table1());
}

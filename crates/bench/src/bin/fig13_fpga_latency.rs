//! Fig 13: FPGA latency per variant.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!("{}", mnn_bench::experiments::accelerators::fig13(scale));
}

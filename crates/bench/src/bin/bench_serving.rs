//! Network-serving bench: open-loop Poisson load from eight tenants in
//! two rate profiles against a loopback `mnn-net` server, swept upward
//! until the server stops sustaining, once with cross-tenant batch
//! coalescing and once at batch size 1. Emits the machine-readable
//! `BENCH_serving.json`; with `--check` the process exits nonzero when
//! the coalesced flavor fails to sustain the required speedup with p99
//! under the SLO and shed under the bound.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = mnn_bench::serving_report::run(scale);
    print!("{}", report.table());
    match report.write_json("BENCH_serving.json") {
        Ok(()) => println!("wrote BENCH_serving.json"),
        Err(e) => eprintln!("{e}"),
    }
    if std::env::args().any(|a| a == "--check") && !report.within_bounds() {
        eprintln!(
            "serving bounds violated (speedup >= {}, shed < {}, p99 <= SLO)",
            mnn_bench::serving_report::SPEEDUP_BOUND,
            mnn_bench::serving_report::SHED_BOUND
        );
        std::process::exit(1);
    }
}

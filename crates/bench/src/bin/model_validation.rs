//! Cross-checks every closed-form performance model against its
//! discrete-event simulation twin.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!(
        "{}",
        mnn_bench::experiments::validation::model_validation(scale)
    );
}

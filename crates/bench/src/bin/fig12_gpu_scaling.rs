//! Fig 12: GPU stream/multi-GPU scalability.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!("{}", mnn_bench::experiments::accelerators::fig12(scale));
}

//! Section 5.5: CPU vs FPGA energy efficiency.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!("{}", mnn_bench::experiments::accelerators::sec55(scale));
}

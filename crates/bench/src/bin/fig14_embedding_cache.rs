//! Fig 14: embedding-cache effectiveness.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!("{}", mnn_bench::experiments::accelerators::fig14(scale));
}

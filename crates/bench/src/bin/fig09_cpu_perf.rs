//! Fig 9: performance of the column-based algorithm on CPU — native
//! single-thread measurements plus the modelled multi-thread speedups.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!("{}", mnn_bench::experiments::cpu::fig09_native(scale));
    println!();
    print!("{}", mnn_bench::experiments::cpu::fig09_modelled(scale));
}

//! Fig 9: performance of the column-based algorithm on CPU — native
//! single-thread measurements plus the modelled multi-thread speedups.
//! Also emits the machine-readable `BENCH_engine.json` engine report.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!("{}", mnn_bench::experiments::cpu::fig09_native(scale));
    println!();
    print!("{}", mnn_bench::experiments::cpu::fig09_modelled(scale));
    println!();

    let report = mnn_bench::engine_report::run(scale);
    print!("{}", report.table());
    match report.write_json("BENCH_engine.json") {
        Ok(()) => println!("wrote BENCH_engine.json"),
        Err(e) => eprintln!("{e}"),
    }
}

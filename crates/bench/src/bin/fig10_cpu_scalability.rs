//! Fig 10: thread scalability per memory-channel count.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!("{}", mnn_bench::experiments::cpu::fig10(scale));
}

//! Kernel backend benchmark: scalar vs SIMD for dot / gemv_chunk / exp at
//! the paper's embedding dimension, plus the fused chunk kernel vs the
//! two-pass dataflow end-to-end. Emits the machine-readable
//! `BENCH_kernels.json` consumed by CI.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = mnn_bench::kernel_report::run(scale);
    print!("{}", report.table());
    match report.write_json("BENCH_kernels.json") {
        Ok(()) => println!("wrote BENCH_kernels.json"),
        Err(e) => eprintln!("{e}"),
    }
}

//! Fig 6: probability-vector sparsity of the trained model.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!("{}", mnn_bench::experiments::accuracy::fig06(scale));
}

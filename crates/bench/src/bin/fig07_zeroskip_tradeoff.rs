//! Fig 7: zero-skipping accuracy/computation tradeoff.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!("{}", mnn_bench::experiments::accuracy::fig07(scale));
}

//! Fig 11: off-chip access counts normalized to baseline.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!("{}", mnn_bench::experiments::cpu::fig11(scale));
}

//! Runs every experiment in order (the EXPERIMENTS.md generator).
use mnn_bench::experiments as e;
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("{}", e::table1());
    for t in [
        e::motivation::fig03(scale),
        e::motivation::fig04(scale),
        e::accuracy::fig06(scale),
        e::accuracy::fig07(scale),
        e::cpu::fig09_native(scale),
        e::cpu::fig09_modelled(scale),
        e::cpu::fig10(scale),
        e::cpu::fig11(scale),
        e::accelerators::fig12(scale),
        e::accelerators::fig13(scale),
        e::accelerators::fig14(scale),
        e::accelerators::sec55(scale),
        e::ablations::chunk_sweep(scale),
        e::ablations::fpga_fit(scale),
        e::ablations::softmax_modes(scale),
        e::ablations::embedding_cache_ways(scale),
        e::ablations::streaming_depth(scale),
        e::ablations::writeback_traffic(scale),
        e::ablations::batching(scale),
        e::validation::model_validation(scale),
    ] {
        println!("{t}");
    }

    let report = mnn_bench::engine_report::run(scale);
    println!("{}", report.table());
    match report.write_json("BENCH_engine.json") {
        Ok(()) => println!("wrote BENCH_engine.json"),
        Err(e) => eprintln!("{e}"),
    }
}

//! Fault-free overhead of the per-chunk budget checks (deadline and
//! cancellation) on the column hot path. Emits the machine-readable
//! `BENCH_robustness.json`; with `--check` the process exits nonzero when
//! the measured overhead exceeds the 2% acceptance bound.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = mnn_bench::robustness_report::run(scale);
    print!("{}", report.table());
    match report.write_json("BENCH_robustness.json") {
        Ok(()) => println!("wrote BENCH_robustness.json"),
        Err(e) => eprintln!("{e}"),
    }
    if std::env::args().any(|a| a == "--check") && !report.within_bound() {
        eprintln!(
            "budget-check overhead exceeds {}%",
            mnn_bench::robustness_report::OVERHEAD_BOUND_PERCENT
        );
        std::process::exit(1);
    }
}

//! Sublinear top-K candidate attention: paired exact-vs-sparse crossover
//! sweep, probe recall against the brute-force top-K, and bAbI answer
//! parity. Emits the machine-readable `BENCH_sparse.json`; with `--check`
//! the process exits nonzero when the run fails the conservative sanity
//! gate (finite measurements, rows really skipped, accounting conserved,
//! no answer changed).
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = mnn_bench::sparse_report::run(scale);
    print!("{}", report.table());
    match report.write_json("BENCH_sparse.json") {
        Ok(()) => println!("wrote BENCH_sparse.json"),
        Err(e) => eprintln!("{e}"),
    }
    if std::env::args().any(|a| a == "--check") && !report.sane() {
        eprintln!("sparse-attention run failed its sanity gate");
        std::process::exit(1);
    }
}

//! Distributed-serving bench: fault-free overhead of the four-worker
//! loopback fleet vs the in-process column pass, plus the hedged p99
//! under one injected straggler. Emits the machine-readable
//! `BENCH_dist.json`; with `--check` the process exits nonzero when the
//! answers drift bitwise or either latency bound is exceeded.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = mnn_bench::dist_report::run(scale);
    print!("{}", report.table());
    match report.write_json("BENCH_dist.json") {
        Ok(()) => println!("wrote BENCH_dist.json"),
        Err(e) => eprintln!("{e}"),
    }
    if std::env::args().any(|a| a == "--check") && !report.within_bounds() {
        eprintln!(
            "distributed bounds violated (overhead <= {}, straggler p99 <= {}x)",
            mnn_bench::dist_report::OVERHEAD_BOUND,
            mnn_bench::dist_report::P99_BOUND_RATIO
        );
        std::process::exit(1);
    }
}

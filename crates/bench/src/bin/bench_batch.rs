//! Cross-request batched throughput on the tiled GEMM fast path. Emits
//! the machine-readable `BENCH_batch.json`; with `--check` the process
//! exits nonzero when the run fails the conservative sanity gate (finite
//! measurements, batched not slower than sequential at the largest batch).
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = mnn_bench::batch_report::run(scale);
    print!("{}", report.table());
    match report.write_json("BENCH_batch.json") {
        Ok(()) => println!("wrote BENCH_batch.json"),
        Err(e) => eprintln!("{e}"),
    }
    if std::env::args().any(|a| a == "--check") && !report.sane() {
        eprintln!("batched throughput run failed its sanity gate");
        std::process::exit(1);
    }
}

//! Fig 4: inference slowdown under co-executed embedding threads.
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    print!("{}", mnn_bench::experiments::motivation::fig04(scale));
}

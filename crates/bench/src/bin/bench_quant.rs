//! Int8 quantized memory plane: paired f32-vs-int8 inference timings, the
//! worst quantized-logit error against the published bound, and bAbI
//! answer parity. Emits the machine-readable `BENCH_quant.json`; with
//! `--check` the process exits nonzero when the run fails the conservative
//! sanity gate (finite measurements, error within bound, no answer
//! changed).
use mnn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = mnn_bench::quant_report::run(scale);
    print!("{}", report.table());
    match report.write_json("BENCH_quant.json") {
        Ok(()) => println!("wrote BENCH_quant.json"),
        Err(e) => eprintln!("{e}"),
    }
    if std::env::args().any(|a| a == "--check") && !report.sane() {
        eprintln!("quantized-plane run failed its sanity gate");
        std::process::exit(1);
    }
}

//! Segmented execution plane: merge-plane overhead and zone-map pruning.
//!
//! Two questions, one report (`BENCH_segment.json`):
//!
//! 1. **Overhead** — every engine now routes through the segment merge
//!    plane even for the classic prefix pass. Routing a 1-segment plan
//!    must cost within noise of the unsegmented entry point (the
//!    acceptance bound is [`OVERHEAD_LIMIT`], ≤ 2% at full scale).
//! 2. **Pruning win** — on a skewed memory (all the attention mass in the
//!    first rows, tiny norms everywhere else) the online-softmax engines
//!    skip whole segments whose zone-map logit bound cannot survive the
//!    running max, bitwise-identically. The report measures the wall-clock
//!    speedup and the fraction of rows provably skipped.
//!
//! Each repetition times the two flavors back-to-back and the reported
//! ratio is the per-rep median, the same pairing discipline as
//! `BENCH_batch.json`.

use crate::table::{f, ExperimentTable};
use crate::Scale;
use mnn_tensor::Matrix;
use mnnfast::{
    Budget, EngineKind, ExecPlan, Executor, MnnFastConfig, Scratch, SegmentMap, SegmentPlan,
    SoftmaxMode, Trace,
};
use std::hint::black_box;
use std::time::Instant;

/// Segment counts measured in the pruning section, smallest first.
pub const PRUNE_SEGMENTS: [usize; 3] = [2, 4, 8];

/// Acceptance bound on the 1-segment routed/unsegmented time ratio at full
/// scale (≤ 2% merge-plane overhead).
pub const OVERHEAD_LIMIT: f64 = 1.02;

/// Required pruning speedup at the largest segment count for a full-scale
/// run on the skewed memory.
pub const PRUNE_SPEEDUP_TARGET: f64 = 1.2;

/// One merge-plane overhead measurement (1-segment routed plan vs the
/// unsegmented prefix entry point, same memory, same softmax mode).
#[derive(Debug, Clone)]
pub struct OverheadEntry {
    /// Softmax mode measured (`"lazy"` = fused fast path, `"online"` =
    /// running-max formulation).
    pub mode: &'static str,
    /// Best observed seconds for the unsegmented prefix pass.
    pub prefix_seconds: f64,
    /// Best observed seconds for the routed 1-segment pass.
    pub routed_seconds: f64,
    /// Median per-rep routed/prefix time ratio (1.00 = free).
    pub overhead: f64,
}

/// One zone-map pruning measurement on the skewed memory (online mode).
#[derive(Debug, Clone)]
pub struct PruneEntry {
    /// Segments the memory is routed over.
    pub n_segments: usize,
    /// Best observed seconds for the unsegmented pass.
    pub unsegmented_seconds: f64,
    /// Best observed seconds for the routed pass with pruning on.
    pub pruned_seconds: f64,
    /// Median per-rep unsegmented/pruned time ratio.
    pub speedup: f64,
    /// Fraction of memory rows skipped by the zone map (0.0–1.0).
    pub rows_pruned_frac: f64,
}

/// A full segmented-plane run.
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// Memory rows.
    pub ns: usize,
    /// Embedding dimension.
    pub ed: usize,
    /// Rows per chunk (segments are chunk-aligned).
    pub chunk: usize,
    /// Acceptance bound on the overhead entries at full scale.
    pub overhead_limit: f64,
    /// Required speedup at the largest segment count at full scale.
    pub prune_speedup_target: f64,
    /// Merge-plane overhead, one entry per softmax mode.
    pub overhead: Vec<OverheadEntry>,
    /// Pruning wins, one entry per [`PRUNE_SEGMENTS`] count.
    pub pruning: Vec<PruneEntry>,
}

/// Runs both measurements on the paper-shaped column path.
pub fn run(scale: Scale) -> SegmentReport {
    let ed = 64;
    let chunk = 1000;
    let ns = scale.pick(200_000, 20_000);
    let reps = scale.pick(9, 5);

    // Uniform memory for the overhead section: nothing is prunable, so the
    // comparison isolates the routing machinery itself.
    let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 31 + c * 7) as f32 * 0.001).sin() * 0.3);
    let m_out = Matrix::from_fn(ns, ed, |r, c| ((r * 13 + c * 5) as f32 * 0.002).cos() * 0.3);
    let u: Vec<f32> = (0..ed).map(|i| ((i as f32) * 0.013 + 0.4).sin()).collect();

    let budget = Budget::unlimited();
    let mut trace = Trace::disabled();
    let mut overhead = Vec::new();
    for (label, mode) in [("lazy", SoftmaxMode::Lazy), ("online", SoftmaxMode::Online)] {
        let exec = ExecPlan::new(MnnFastConfig::new(chunk).with_softmax(mode))
            .with_kind(EngineKind::Column)
            .executor();
        let map = SegmentMap::from_matrix(&m_in, ns, 1, chunk);
        let plan = SegmentPlan::routed(&map, true);
        let mut scratch = Scratch::new();

        let prefix_pass = |scratch: &mut Scratch, trace: &mut Trace| {
            let t0 = Instant::now();
            let out = exec
                .forward_prefix_budgeted(&m_in, &m_out, ns, black_box(&u), scratch, trace, &budget)
                .expect("prefix pass");
            let dt = t0.elapsed().as_secs_f64();
            scratch.recycle(black_box(out).o);
            dt
        };
        let routed_pass = |scratch: &mut Scratch, trace: &mut Trace| {
            let t0 = Instant::now();
            let out = exec
                .forward_segmented_budgeted(
                    &m_in,
                    &m_out,
                    &plan,
                    black_box(&u),
                    scratch,
                    trace,
                    &budget,
                )
                .expect("routed pass");
            let dt = t0.elapsed().as_secs_f64();
            scratch.recycle(black_box(out).o);
            dt
        };

        prefix_pass(&mut scratch, &mut trace);
        routed_pass(&mut scratch, &mut trace);
        let (mut best_prefix, mut best_routed) = (f64::INFINITY, f64::INFINITY);
        let mut ratios = Vec::with_capacity(reps);
        for _ in 0..reps {
            let p = prefix_pass(&mut scratch, &mut trace);
            let r = routed_pass(&mut scratch, &mut trace);
            best_prefix = best_prefix.min(p);
            best_routed = best_routed.min(r);
            ratios.push(r / p);
        }
        overhead.push(OverheadEntry {
            mode: label,
            prefix_seconds: best_prefix,
            routed_seconds: best_routed,
            overhead: median(&mut ratios),
        });
    }

    // Skewed memory for the pruning section: the first chunk carries all
    // the attention mass (one dominant coordinate aligned with the query),
    // every later row has a tiny norm, so the zone-map gap exceeds the
    // 110-logit prune margin and whole segments skip.
    let m_in_skew = Matrix::from_fn(ns, ed, |r, c| {
        if r < chunk && c == 0 {
            15.0
        } else {
            ((r * 31 + c * 7) as f32 * 0.001).sin() * 1e-3
        }
    });
    let mut u_skew = vec![0.0f32; ed];
    u_skew[0] = 15.0;
    let exec = ExecPlan::new(MnnFastConfig::new(chunk).with_softmax(SoftmaxMode::Online))
        .with_kind(EngineKind::Column)
        .executor();
    let mut pruning = Vec::new();
    for n_segments in PRUNE_SEGMENTS {
        let map = SegmentMap::from_matrix(&m_in_skew, ns, n_segments, chunk);
        let plan = SegmentPlan::routed(&map, true);
        let mut scratch = Scratch::new();

        let unsegmented_pass = |scratch: &mut Scratch, trace: &mut Trace| {
            let t0 = Instant::now();
            let out = exec
                .forward_prefix_budgeted(
                    &m_in_skew,
                    &m_out,
                    ns,
                    black_box(&u_skew),
                    scratch,
                    trace,
                    &budget,
                )
                .expect("unsegmented pass");
            let dt = t0.elapsed().as_secs_f64();
            scratch.recycle(black_box(out).o);
            dt
        };
        let pruned_pass = |scratch: &mut Scratch, trace: &mut Trace| {
            let t0 = Instant::now();
            let out = exec
                .forward_segmented_budgeted(
                    &m_in_skew,
                    &m_out,
                    &plan,
                    black_box(&u_skew),
                    scratch,
                    trace,
                    &budget,
                )
                .expect("pruned pass");
            let dt = t0.elapsed().as_secs_f64();
            scratch.recycle(black_box(out).o);
            dt
        };

        unsegmented_pass(&mut scratch, &mut trace);
        pruned_pass(&mut scratch, &mut trace);
        // One counted pass for the pruned-row fraction.
        let counted = exec
            .forward_segmented_budgeted(
                &m_in_skew,
                &m_out,
                &plan,
                &u_skew,
                &mut scratch,
                &mut trace,
                &budget,
            )
            .expect("counted pass");
        let rows_pruned_frac = counted.stats.rows_pruned as f64 / ns as f64;
        scratch.recycle(counted.o);

        let (mut best_unseg, mut best_pruned) = (f64::INFINITY, f64::INFINITY);
        let mut ratios = Vec::with_capacity(reps);
        for _ in 0..reps {
            let a = unsegmented_pass(&mut scratch, &mut trace);
            let b = pruned_pass(&mut scratch, &mut trace);
            best_unseg = best_unseg.min(a);
            best_pruned = best_pruned.min(b);
            ratios.push(a / b);
        }
        pruning.push(PruneEntry {
            n_segments,
            unsegmented_seconds: best_unseg,
            pruned_seconds: best_pruned,
            speedup: median(&mut ratios),
            rows_pruned_frac,
        });
    }

    SegmentReport {
        ns,
        ed,
        chunk,
        overhead_limit: OVERHEAD_LIMIT,
        prune_speedup_target: PRUNE_SPEEDUP_TARGET,
        overhead,
        pruning,
    }
}

/// Median of a non-empty sample (sorts in place).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

impl SegmentReport {
    /// `true` when the full-scale acceptance bounds hold: every overhead
    /// entry within [`OVERHEAD_LIMIT`] and the largest segment count at or
    /// above [`PRUNE_SPEEDUP_TARGET`] with a real pruned fraction. Only
    /// meaningful for [`Scale::Full`] runs.
    pub fn meets_target(&self) -> bool {
        let overhead_ok = self
            .overhead
            .iter()
            .all(|e| e.overhead <= self.overhead_limit);
        let prune_ok = self
            .pruning
            .last()
            .is_some_and(|e| e.speedup >= self.prune_speedup_target && e.rows_pruned_frac > 0.0);
        overhead_ok && prune_ok
    }

    /// Sanity gate for CI smoke runs: finite positive measurements, the
    /// zone map actually pruned rows at every segment count, and pruning
    /// was not slower than the unsegmented pass at the largest count.
    /// Deliberately looser than [`SegmentReport::meets_target`] — a loaded
    /// CI runner must not flake the job on a noisy ratio.
    pub fn sane(&self) -> bool {
        let overhead_finite = self.overhead.iter().all(|e| {
            e.prefix_seconds > 0.0
                && e.routed_seconds > 0.0
                && e.overhead.is_finite()
                && e.overhead > 0.0
        });
        let prune_finite = self.pruning.iter().all(|e| {
            e.unsegmented_seconds > 0.0
                && e.pruned_seconds > 0.0
                && e.speedup.is_finite()
                && e.speedup > 0.0
                && e.rows_pruned_frac > 0.0
        });
        let last_not_slower = self.pruning.last().is_some_and(|e| e.speedup >= 1.0);
        overhead_finite && prune_finite && last_not_slower
    }

    /// Human-readable companion table.
    pub fn table(&self) -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "Segmented plane: merge-plane overhead and zone-map pruning",
            &[
                "measurement",
                "baseline s",
                "segmented s",
                "ratio",
                "rows pruned",
            ],
        );
        for e in &self.overhead {
            t.row(vec![
                format!("overhead ({}, N=1)", e.mode),
                f(e.prefix_seconds),
                f(e.routed_seconds),
                format!("{:.3}x", e.overhead),
                "-".into(),
            ]);
        }
        for e in &self.pruning {
            t.row(vec![
                format!("pruning (online, N={})", e.n_segments),
                f(e.unsegmented_seconds),
                f(e.pruned_seconds),
                format!("{:.2}x", e.speedup),
                format!("{:.1}%", e.rows_pruned_frac * 100.0),
            ]);
        }
        t.note(format!(
            "ns={}, ed={}, chunk={}: routed plans are bitwise-identical to the prefix pass",
            self.ns, self.ed, self.chunk
        ));
        t.note(format!(
            "targets: overhead <= {:.2}x, pruning >= {:.1}x at N={} — {}",
            self.overhead_limit,
            self.prune_speedup_target,
            PRUNE_SEGMENTS[PRUNE_SEGMENTS.len() - 1],
            if self.meets_target() {
                "met"
            } else {
                "NOT met (expected for smoke shapes)"
            }
        ));
        t
    }

    /// Serializes the report as JSON (hand-rolled: the workspace builds
    /// offline with no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"ns\": {}, \"ed\": {}, \"chunk\": {},\n",
            self.ns, self.ed, self.chunk
        ));
        out.push_str(&format!(
            "  \"overhead_limit\": {:.2}, \"prune_speedup_target\": {:.1}, \"meets_target\": {},\n",
            self.overhead_limit,
            self.prune_speedup_target,
            self.meets_target()
        ));
        out.push_str("  \"overhead\": [\n");
        for (i, e) in self.overhead.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"mode\": \"{}\",\n", e.mode));
            out.push_str(&format!(
                "      \"prefix_seconds\": {:.12},\n",
                e.prefix_seconds
            ));
            out.push_str(&format!(
                "      \"routed_seconds\": {:.12},\n",
                e.routed_seconds
            ));
            out.push_str(&format!("      \"overhead\": {:.4}\n", e.overhead));
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.overhead.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"pruning\": [\n");
        for (i, e) in self.pruning.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"n_segments\": {},\n", e.n_segments));
            out.push_str(&format!(
                "      \"unsegmented_seconds\": {:.12},\n",
                e.unsegmented_seconds
            ));
            out.push_str(&format!(
                "      \"pruned_seconds\": {:.12},\n",
                e.pruned_seconds
            ));
            out.push_str(&format!("      \"speedup\": {:.4},\n", e.speedup));
            out.push_str(&format!(
                "      \"rows_pruned_frac\": {:.6}\n",
                e.rows_pruned_frac
            ));
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.pruning.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`SegmentReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_modes_and_segment_counts() {
        let report = run(Scale::Smoke);
        let modes: Vec<_> = report.overhead.iter().map(|e| e.mode).collect();
        assert_eq!(modes, ["lazy", "online"]);
        let counts: Vec<_> = report.pruning.iter().map(|e| e.n_segments).collect();
        assert_eq!(counts, PRUNE_SEGMENTS);
        assert!(report.sane(), "smoke run failed its own sanity gate");
        for e in &report.pruning {
            // The skewed memory prunes everything outside the hot segment.
            assert!(
                e.rows_pruned_frac > 0.3,
                "N={}: only {:.1}% pruned",
                e.n_segments,
                e.rows_pruned_frac * 100.0
            );
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(Scale::Smoke);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"overhead\"",
            "\"pruning\"",
            "\"n_segments\": 8",
            "\"rows_pruned_frac\"",
            "\"meets_target\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}

//! Open-loop network-serving benchmark: what cross-tenant batch
//! coalescing buys at the front door, measured end to end through real
//! sockets instead of in-process calls.
//!
//! The load generator drives a loopback [`mnn_net::NetServer`] with
//! Poisson arrivals from eight concurrent tenants in two rate profiles
//! (heavy tenants offer 3x the load of light ones), sweeping the total
//! offered rate upward until the server stops sustaining it. A load
//! point *sustains* when nothing was lost, the client-observed shed rate
//! stays under [`SHED_BOUND`], the open-loop p99 (measured from the
//! *scheduled* arrival instant, so queueing delay is never hidden by a
//! slow sender) stays under the SLO, and the achieved rate tracks the
//! offered rate. The sweep runs twice: once with the coalescing queues
//! enabled (`max_batch` 32) and once degenerated to batch-size-1
//! dispatch, same protocol, same scheduler, same everything else.
//!
//! The acceptance bound emitted into `BENCH_serving.json`: the coalesced
//! front-end must sustain at least [`SPEEDUP_BOUND`]x the q/s of
//! batch-size-1 serving, with p99 under the SLO and shed rate under
//! [`SHED_BOUND`] at its reported sustained point.

use crate::table::{f, ExperimentTable};
use crate::Scale;
use mnn_dataset::babi::{BabiGenerator, TaskKind};
use mnn_dataset::{Vocabulary, WordId};
use mnn_memnn::{MemNet, ModelConfig};
use mnn_net::{read_frame, write_frame, NetClient, NetFrame, NetServer, ServerConfig, TenantAuth};
use mnn_serve::{BatchConfig, SessionConfig, OCCUPANCY_BUCKETS};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Minimum `coalesced sustained q/s / batch-1 sustained q/s`. The
/// acceptance bound for `BENCH_serving.json`.
pub const SPEEDUP_BOUND: f64 = 2.0;

/// Largest tolerated client-observed shed rate at a sustained point.
pub const SHED_BOUND: f64 = 0.01;

/// One offered-load point of a sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Total offered rate across every tenant, questions per second.
    pub offered_qps: f64,
    /// Answered questions divided by the timed window.
    pub achieved_qps: f64,
    /// Questions sent by the generators.
    pub sent: u64,
    /// Questions answered.
    pub answered: u64,
    /// Questions shed with a typed `Overloaded` frame.
    pub shed: u64,
    /// Questions answered with an `Error` frame.
    pub errors: u64,
    /// Questions never answered before the drain deadline.
    pub lost: u64,
    /// Open-loop p50 latency, milliseconds (scheduled send → answer).
    pub p50_ms: f64,
    /// Open-loop p99 latency, milliseconds.
    pub p99_ms: f64,
    /// Open-loop p99.9 latency, milliseconds.
    pub p999_ms: f64,
    /// Mean questions per dispatched batch during this point, from the
    /// server's own counters.
    pub mean_occupancy: f64,
    /// Whether this point met every sustain criterion.
    pub sustained: bool,
}

/// A full serving-throughput run: both sweeps plus the derived speedup.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Concurrent tenants (each on its own connection).
    pub tenants: usize,
    /// Tenants in the heavy profile (3x the per-tenant rate).
    pub heavy_tenants: usize,
    /// Sentences resident per tenant memory during the timed phase.
    pub window: usize,
    /// Embedding dimension.
    pub ed: usize,
    /// Latency SLO the p99 is held to, milliseconds.
    pub slo_ms: f64,
    /// Coalescing max-wait, microseconds (both flavors share it).
    pub max_wait_us: u64,
    /// Coalescing flush occupancy of the coalesced flavor.
    pub coalesced_max_batch: usize,
    /// Seconds each load point generates traffic for.
    pub point_seconds: f64,
    /// The batch-size-1 sweep, in offered-load order.
    pub batch1: Vec<LoadPoint>,
    /// The coalesced sweep, in offered-load order.
    pub coalesced: Vec<LoadPoint>,
    /// Highest sustained q/s of the batch-size-1 flavor.
    pub batch1_sustained_qps: f64,
    /// Highest sustained q/s of the coalesced flavor.
    pub coalesced_sustained_qps: f64,
    /// `coalesced_sustained_qps / batch1_sustained_qps`.
    pub speedup: f64,
    /// Acceptance bound on [`ServingReport::speedup`].
    pub speedup_bound: f64,
    /// Acceptance bound on the sustained-point shed rate.
    pub shed_bound: f64,
    /// Server-side batch-occupancy histogram over the coalesced flavor's
    /// sustained point (buckets per `mnn_serve::OCCUPANCY_BOUNDS`).
    pub sustained_occupancy: Vec<u64>,
}

/// Deterministic LCG in the workspace's bench idiom; `next_f64` yields a
/// uniform in `(0, 1]` so `ln` never sees zero.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// Sorts `samples` (milliseconds) and returns `(p50, p99, p999)`.
fn percentiles(samples: &mut [f64]) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
    (p(0.50), p(0.99), p(0.999))
}

/// The knobs one [`run`] derives from its [`Scale`].
struct Shape {
    tenants: usize,
    heavy: usize,
    window: usize,
    ed: usize,
    slo_ms: f64,
    max_wait: Duration,
    max_batch: usize,
    point: Duration,
    drain: Duration,
    base_qps: f64,
    step: f64,
    max_points: usize,
}

/// A tenant's connection plus everything its generator threads need.
struct Tenant {
    stream: TcpStream,
    weight: f64,
    questions: Vec<Vec<WordId>>,
    seed: u64,
}

/// Per-point tally folded across every tenant.
#[derive(Default)]
struct Tally {
    sent: u64,
    answered: u64,
    shed: u64,
    errors: u64,
    latencies_ms: Vec<f64>,
}

fn hello(stream: &mut TcpStream, token: &str) {
    write_frame(
        stream,
        &NetFrame::Hello {
            token: token.into(),
        },
    )
    .expect("hello");
    match read_frame(stream).expect("hello ack") {
        NetFrame::HelloAck { .. } => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }
}

/// Fills a tenant's memory with `window` pre-encoded story sentences,
/// pipelined in chunks so neither socket buffer fills up.
fn observe_window(stream: &mut TcpStream, sentences: &[Vec<WordId>], window: usize) {
    const CHUNK: usize = 64;
    let mut sent = 0usize;
    while sent < window {
        let n = CHUNK.min(window - sent);
        for i in 0..n {
            let tokens = sentences[(sent + i) % sentences.len()].clone();
            write_frame(
                stream,
                &NetFrame::ObserveTokens {
                    id: (sent + i) as u64,
                    tokens,
                },
            )
            .expect("observe");
        }
        for _ in 0..n {
            match read_frame(stream).expect("observe ack") {
                NetFrame::ObserveAck { .. } => {}
                other => panic!("expected ObserveAck, got {other:?}"),
            }
        }
        sent += n;
    }
}

/// Runs one open-loop load point against an already-seeded server.
///
/// Every tenant gets a Poisson sender and a blocking receiver on a
/// cloned socket handle. Latency is measured from the *scheduled*
/// arrival instant, so a sender that falls behind (the catch-up send is
/// immediate) still charges the queueing delay to the server.
fn run_point(tenants: &[Tenant], offered_qps: f64, point: Duration, drain: Duration) -> Tally {
    let total_weight: f64 = tenants.iter().map(|t| t.weight).sum();
    let start = Instant::now();
    let t_end = start + point;
    let hard_deadline = t_end + drain;

    let mut handles = Vec::new();
    for tenant in tenants {
        let lambda = offered_qps * tenant.weight / total_weight;
        let send_times: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));
        let done = Arc::new(AtomicBool::new(false));
        let sent = Arc::new(AtomicU64::new(0));

        let mut w = tenant.stream.try_clone().expect("clone for sender");
        let questions = tenant.questions.clone();
        let mut lcg = Lcg(tenant.seed);
        let (st, dn, sn) = (send_times.clone(), done.clone(), sent.clone());
        let sender = std::thread::spawn(move || {
            let mut t_next = 0f64;
            let mut n = 0u64;
            loop {
                t_next += -lcg.next_f64().ln() / lambda;
                let target = start + Duration::from_secs_f64(t_next);
                if target >= t_end {
                    break;
                }
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                st.lock().unwrap_or_else(|e| e.into_inner()).push(target);
                let frame = NetFrame::AskTokens {
                    id: n,
                    tokens: questions[n as usize % questions.len()].clone(),
                };
                if write_frame(&mut w, &frame).is_err() {
                    break;
                }
                n += 1;
            }
            sn.store(n, Ordering::Release);
            dn.store(true, Ordering::Release);
        });

        let mut r = tenant.stream.try_clone().expect("clone for receiver");
        r.set_read_timeout(Some(Duration::from_millis(500)))
            .expect("read timeout");
        let receiver = std::thread::spawn(move || {
            let mut tally = Tally::default();
            let mut received = 0u64;
            loop {
                if done.load(Ordering::Acquire) && received == sent.load(Ordering::Acquire) {
                    break;
                }
                match read_frame(&mut r) {
                    Ok(NetFrame::Answer { id, .. }) => {
                        let scheduled =
                            send_times.lock().unwrap_or_else(|e| e.into_inner())[id as usize];
                        tally
                            .latencies_ms
                            .push(scheduled.elapsed().as_secs_f64() * 1e3);
                        tally.answered += 1;
                        received += 1;
                    }
                    Ok(NetFrame::Overloaded { .. }) => {
                        tally.shed += 1;
                        received += 1;
                    }
                    Ok(NetFrame::Error { .. }) => {
                        tally.errors += 1;
                        received += 1;
                    }
                    Ok(_) => {}
                    // Timeouts keep polling until the drain deadline;
                    // anything unanswered past it counts as lost.
                    Err(_) => {
                        if Instant::now() > hard_deadline {
                            break;
                        }
                    }
                }
            }
            tally.sent = sent.load(Ordering::Acquire);
            tally
        });
        handles.push((sender, receiver));
    }

    let mut total = Tally::default();
    for (sender, receiver) in handles {
        sender.join().expect("sender thread");
        let tally = receiver.join().expect("receiver thread");
        total.sent += tally.sent;
        total.answered += tally.answered;
        total.shed += tally.shed;
        total.errors += tally.errors;
        total.latencies_ms.extend(tally.latencies_ms);
    }
    total
}

/// Occupancy-relevant counters from a stats scrape.
struct OccSnapshot {
    batches: u64,
    batched: u64,
    histogram: [u64; OCCUPANCY_BUCKETS],
}

fn scrape(addr: std::net::SocketAddr, token: &str) -> OccSnapshot {
    let (mut client, _) = NetClient::connect(addr, token).expect("stats connect");
    let stats = client.stats().expect("stats");
    OccSnapshot {
        batches: stats.batches_dispatched,
        batched: stats.batched_questions,
        histogram: stats.batch_occupancy,
    }
}

/// Sweeps offered load against one server flavor until it stops
/// sustaining, returning the points plus the sustained-point occupancy
/// histogram delta.
#[allow(clippy::too_many_lines)]
fn sweep(
    shape: &Shape,
    max_batch: usize,
    model: &MemNet,
    vocab: &Vocabulary,
    sentences: &[Vec<WordId>],
    questions: &[Vec<WordId>],
) -> (Vec<LoadPoint>, f64, Vec<u64>) {
    let auth: Vec<TenantAuth> = (0..shape.tenants)
        .map(|i| TenantAuth {
            token: format!("t{i}"),
            tenant: format!("tenant{i}"),
        })
        .collect();
    let session = SessionConfig {
        max_sentences: Some(shape.window),
        ..SessionConfig::default()
    };
    let config = ServerConfig {
        tenants: auth,
        batching: Some(BatchConfig {
            max_batch,
            max_wait: shape.max_wait,
        }),
        ..ServerConfig::default()
    };
    let server = NetServer::spawn(model.clone(), vocab.clone(), session, config).expect("spawn");
    let addr = server.addr();

    let mut tenants = Vec::with_capacity(shape.tenants);
    for i in 0..shape.tenants {
        let mut stream = TcpStream::connect(addr).expect("tenant connect");
        stream.set_nodelay(true).expect("nodelay");
        hello(&mut stream, &format!("t{i}"));
        observe_window(&mut stream, sentences, shape.window);
        tenants.push(Tenant {
            stream,
            weight: if i < shape.heavy { 3.0 } else { 1.0 },
            questions: questions.to_vec(),
            seed: 0x5EED_0001 + i as u64 * 0x9E37_79B9,
        });
    }

    let mut points = Vec::new();
    let mut sustained_qps = 0.0;
    let mut sustained_hist = vec![0u64; OCCUPANCY_BUCKETS];
    // Geometric ramp until the first failure, then bisection between the
    // bracketing loads: the sustained capacity is localized to a few
    // percent instead of a whole ramp step, so the reported speedup is
    // the ratio of capacities, not of grid points.
    let mut lo = 0.0f64;
    let mut hi = f64::INFINITY;
    let mut offered = shape.base_qps;
    let mut before = scrape(addr, "t0");
    for _ in 0..shape.max_points {
        let tally = run_point(&tenants, offered, shape.point, shape.drain);
        let after = scrape(addr, "t0");
        let d_batches = after.batches - before.batches;
        let d_batched = after.batched - before.batched;
        let hist: Vec<u64> = after
            .histogram
            .iter()
            .zip(&before.histogram)
            .map(|(a, b)| a - b)
            .collect();
        before = after;

        let lost = tally.sent - tally.answered - tally.shed - tally.errors;
        let mut lat = tally.latencies_ms.clone();
        let (p50, p99, p999) = percentiles(&mut lat);
        let achieved = tally.answered as f64 / shape.point.as_secs_f64();
        let shed_rate = if tally.sent > 0 {
            tally.shed as f64 / tally.sent as f64
        } else {
            1.0
        };
        // Sustaining means everything sent came back (nothing lost or
        // errored), shedding stayed under the bound, and the open-loop
        // p99 held the SLO. The nominal rate is not compared against:
        // a Poisson realization legitimately under- or over-shoots it,
        // and a server that falls behind shows up in p99 or shed long
        // before it shows up in the answered count.
        let sustained =
            lost == 0 && tally.errors == 0 && shed_rate < SHED_BOUND && p99 <= shape.slo_ms;
        let point = LoadPoint {
            offered_qps: offered,
            achieved_qps: achieved,
            sent: tally.sent,
            answered: tally.answered,
            shed: tally.shed,
            errors: tally.errors,
            lost,
            p50_ms: p50,
            p99_ms: p99,
            p999_ms: p999,
            mean_occupancy: if d_batches > 0 {
                d_batched as f64 / d_batches as f64
            } else {
                0.0
            },
            sustained,
        };
        if point.sustained {
            if offered > lo {
                lo = offered;
                sustained_qps = achieved;
                sustained_hist = hist;
            }
        } else if offered < hi {
            hi = offered;
        }
        points.push(point);
        if lo == 0.0 && hi.is_finite() {
            // Not even the base load sustained; probing lower would just
            // shrink the failure, not find a capacity.
            break;
        }
        if hi.is_finite() && hi / lo < 1.06 {
            break;
        }
        offered = if hi.is_finite() {
            (lo * hi).sqrt()
        } else {
            offered * shape.step
        };
        // Let the scheduler go idle between points so queue residue from
        // one load never bleeds into the next point's latencies.
        std::thread::sleep(Duration::from_millis(50));
    }

    drop(tenants);
    server.shutdown();
    (points, sustained_qps, sustained_hist)
}

/// Encodes `words` against `vocab`, panicking on any miss (the surface
/// forms below are the generator's own).
fn encode(vocab: &Vocabulary, words: &[&str]) -> Vec<WordId> {
    words
        .iter()
        .map(|w| vocab.id(w).unwrap_or_else(|| panic!("'{w}' not in vocab")))
        .collect()
}

/// Runs the full serving measurement: both sweeps on a loopback server.
pub fn run(scale: Scale) -> ServingReport {
    let shape = match scale {
        // The full shape keeps the fleet's combined memory planes
        // (tenants x window x ed f32 rows, twice over for M_IN/M_OUT)
        // far larger than the last-level cache — a server-class LLC runs
        // to hundreds of MB, so this must be sized against the *fleet*,
        // not one tenant — ensuring a batch-size-1 question re-streams
        // its tenant's plane from DRAM every time while a coalesced
        // batch streams it once for every occupant, the per-chunk
        // re-reads staying cache-resident. The same regime `bench_batch`
        // measures in-process.
        // max_wait is the amortization lever: a tenant's batch occupancy
        // is its arrival rate times the hold window, so the hold must be
        // long enough for batches to actually fill at rates past the
        // batch-1 saturation point. The SLO budgets for that hold plus
        // the full-fleet flush cycle — and sits OFF the coalesced p99
        // plateau: coalesced p99 flattens near 700 ms across a wide load
        // band (the hold plus a full flush cycle), so an SLO at 700
        // turns the capacity search into a coin flip on ±50 ms p99
        // noise, while 800 puts both flavors' boundaries in regions
        // where p99 moves steeply with load.
        Scale::Full => Shape {
            tenants: 8,
            heavy: 4,
            window: 131_072,
            ed: 64,
            slo_ms: 800.0,
            max_wait: Duration::from_millis(100),
            max_batch: 48,
            // Long enough that an offered load above the true capacity
            // fails decisively: an open-loop backlog grows linearly with
            // the window, so a supercritical point cannot sneak under
            // the SLO on a short transient. 6 s windows still let a
            // barely-supercritical batch-1 point win a p99 coin flip
            // (observed: p99 420 ms and 1200 ms on back-to-back runs of
            // the same offered load); 12 s makes the boundary decisive.
            point: Duration::from_secs(12),
            drain: Duration::from_secs(8),
            base_qps: 40.0,
            step: 1.5,
            max_points: 18,
        },
        Scale::Smoke => Shape {
            tenants: 2,
            heavy: 1,
            window: 96,
            ed: 32,
            slo_ms: 2_000.0,
            max_wait: Duration::from_millis(5),
            max_batch: 8,
            point: Duration::from_millis(250),
            drain: Duration::from_secs(2),
            base_qps: 30.0,
            step: 1.5,
            max_points: 2,
        },
    };

    // An untrained model in the serving shape: throughput and latency do
    // not care about the weights, only the arithmetic volume, and the
    // bitwise loopback-parity claim is proven by the e2e tests, not
    // here.
    let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 2019);
    let _ = generator.dataset(4, 4, 2);
    let model_config = ModelConfig {
        temporal: false,
        position_encoding: true,
        ..ModelConfig::for_generator(&generator, shape.ed, 8)
    };
    let model = MemNet::new(model_config, 7);
    let vocab = generator.vocab().clone();

    // Story sentences and questions in the generator's surface forms.
    let persons = [
        "mary", "john", "sandra", "daniel", "fred", "bill", "julie", "emma",
    ];
    let locations = [
        "kitchen", "garden", "hallway", "office", "bathroom", "bedroom", "park", "cinema",
    ];
    let verbs = ["went", "journeyed", "travelled", "moved"];
    let mut sentences = Vec::new();
    for (i, p) in persons.iter().enumerate() {
        for (j, l) in locations.iter().enumerate() {
            let v = verbs[(i + j) % verbs.len()];
            sentences.push(encode(&vocab, &[p, v, "to", "the", l]));
        }
    }
    let questions: Vec<Vec<WordId>> = persons
        .iter()
        .map(|p| encode(&vocab, &["where", "is", p]))
        .collect();

    let (coalesced, coalesced_sustained_qps, sustained_occupancy) = sweep(
        &shape,
        shape.max_batch,
        &model,
        &vocab,
        &sentences,
        &questions,
    );
    let (batch1, batch1_sustained_qps, _) =
        sweep(&shape, 1, &model, &vocab, &sentences, &questions);

    let speedup = if batch1_sustained_qps > 0.0 {
        coalesced_sustained_qps / batch1_sustained_qps
    } else {
        0.0
    };
    ServingReport {
        tenants: shape.tenants,
        heavy_tenants: shape.heavy,
        window: shape.window,
        ed: shape.ed,
        slo_ms: shape.slo_ms,
        max_wait_us: shape.max_wait.as_micros() as u64,
        coalesced_max_batch: shape.max_batch,
        point_seconds: shape.point.as_secs_f64(),
        batch1,
        coalesced,
        batch1_sustained_qps,
        coalesced_sustained_qps,
        speedup,
        speedup_bound: SPEEDUP_BOUND,
        shed_bound: SHED_BOUND,
        sustained_occupancy,
    }
}

impl ServingReport {
    /// The coalesced flavor's sustained point: the highest-load point
    /// that met every criterion (points are in probe order, which the
    /// bisection phase makes non-monotonic).
    fn sustained_point(&self) -> Option<&LoadPoint> {
        self.coalesced
            .iter()
            .filter(|p| p.sustained)
            .max_by(|a, b| a.offered_qps.total_cmp(&b.offered_qps))
    }

    /// `true` when the coalesced front-end sustained
    /// [`ServingReport::speedup_bound`]x batch-size-1 with p99 under the
    /// SLO and shed under [`ServingReport::shed_bound`].
    pub fn within_bounds(&self) -> bool {
        let Some(point) = self.sustained_point() else {
            return false;
        };
        self.batch1_sustained_qps > 0.0
            && self.speedup >= self.speedup_bound
            && point.p99_ms <= self.slo_ms
            && (point.shed as f64) < self.shed_bound * point.sent.max(1) as f64
    }

    /// Human-readable companion table.
    pub fn table(&self) -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "Network serving: open-loop sustained throughput, coalesced vs batch-1",
            &[
                "flavor",
                "offered q/s",
                "achieved q/s",
                "p50 ms",
                "p99 ms",
                "p99.9 ms",
                "occupancy",
                "shed",
                "ok",
            ],
        );
        for (flavor, points) in [("batch-1", &self.batch1), ("coalesced", &self.coalesced)] {
            for p in points {
                t.row(vec![
                    flavor.into(),
                    f(p.offered_qps),
                    f(p.achieved_qps),
                    format!("{:.2}", p.p50_ms),
                    format!("{:.2}", p.p99_ms),
                    format!("{:.2}", p.p999_ms),
                    format!("{:.2}", p.mean_occupancy),
                    format!("{}", p.shed),
                    if p.sustained { "yes" } else { "NO" }.into(),
                ]);
            }
        }
        t.note(format!(
            "{} tenants ({} heavy at 3x), window={} sentences, ed={}, max_wait={}us, \
             coalesced max_batch={}, SLO p99<={}ms",
            self.tenants,
            self.heavy_tenants,
            self.window,
            self.ed,
            self.max_wait_us,
            self.coalesced_max_batch,
            self.slo_ms
        ));
        t.note(format!(
            "sustained: batch-1 {} q/s, coalesced {} q/s -> {:.2}x (bound {:.1}x) — {}",
            f(self.batch1_sustained_qps),
            f(self.coalesced_sustained_qps),
            self.speedup,
            self.speedup_bound,
            if self.within_bounds() {
                "within bounds"
            } else {
                "EXCEEDED"
            }
        ));
        t
    }

    /// Serializes the report as JSON (hand-rolled: the workspace builds
    /// offline with no serde).
    pub fn to_json(&self) -> String {
        fn points(out: &mut String, key: &str, points: &[LoadPoint]) {
            out.push_str(&format!("  \"{key}\": [\n"));
            for (i, p) in points.iter().enumerate() {
                out.push_str(&format!(
                    "    {{ \"offered_qps\": {:.1}, \"achieved_qps\": {:.1}, \"sent\": {}, \
                     \"answered\": {}, \"shed\": {}, \"errors\": {}, \"lost\": {}, \
                     \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \
                     \"mean_occupancy\": {:.2}, \"sustained\": {} }}{}\n",
                    p.offered_qps,
                    p.achieved_qps,
                    p.sent,
                    p.answered,
                    p.shed,
                    p.errors,
                    p.lost,
                    p.p50_ms,
                    p.p99_ms,
                    p.p999_ms,
                    p.mean_occupancy,
                    p.sustained,
                    if i + 1 < points.len() { "," } else { "" }
                ));
            }
            out.push_str("  ],\n");
        }
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"tenants\": {}, \"heavy_tenants\": {}, \"window\": {}, \"ed\": {},\n",
            self.tenants, self.heavy_tenants, self.window, self.ed
        ));
        out.push_str(&format!(
            "  \"slo_ms\": {:.1}, \"max_wait_us\": {}, \"coalesced_max_batch\": {}, \
             \"point_seconds\": {:.2},\n",
            self.slo_ms, self.max_wait_us, self.coalesced_max_batch, self.point_seconds
        ));
        points(&mut out, "batch1", &self.batch1);
        points(&mut out, "coalesced", &self.coalesced);
        out.push_str(&format!(
            "  \"batch1_sustained_qps\": {:.1}, \"coalesced_sustained_qps\": {:.1},\n",
            self.batch1_sustained_qps, self.coalesced_sustained_qps
        ));
        out.push_str(&format!(
            "  \"speedup\": {:.4}, \"speedup_bound\": {:.1}, \"shed_bound\": {:.3},\n",
            self.speedup, self.speedup_bound, self.shed_bound
        ));
        let hist: Vec<String> = self
            .sustained_occupancy
            .iter()
            .map(u64::to_string)
            .collect();
        out.push_str(&format!(
            "  \"sustained_occupancy\": [{}],\n",
            hist.join(", ")
        ));
        out.push_str(&format!("  \"within_bounds\": {}\n", self.within_bounds()));
        out.push_str("}\n");
        out
    }

    /// Writes [`ServingReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_answers_and_tallies() {
        let report = run(Scale::Smoke);
        assert_eq!(report.tenants, 2);
        assert!(!report.coalesced.is_empty());
        assert!(!report.batch1.is_empty());
        for p in report.coalesced.iter().chain(&report.batch1) {
            assert_eq!(
                p.sent,
                p.answered + p.shed + p.errors + p.lost,
                "tally must balance: {p:?}"
            );
            assert!(p.sent > 0, "generator sent nothing: {p:?}");
            assert!(p.errors == 0, "server errored: {p:?}");
            assert!(p.p50_ms >= 0.0 && p.p99_ms >= p.p50_ms);
        }
        // No throughput or speedup assertion here: the smoke run shares
        // one contended core with the whole suite in a debug build. The
        // speedup bound is enforced by `bench_serving --check` on the
        // release binary.
        assert!(report.speedup.is_finite());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(Scale::Smoke);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"speedup\"",
            "\"speedup_bound\"",
            "\"batch1_sustained_qps\"",
            "\"coalesced_sustained_qps\"",
            "\"sustained_occupancy\"",
            "\"within_bounds\"",
            "\"p999_ms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}

//! Machine-readable engine benchmark: per-[`EngineKind`] latency and
//! per-phase breakdown measured through the [`Executor`] seam.
//!
//! The human-readable tables (Fig 9 and friends) are for eyeballs; this
//! module produces the same measurements as structured data so dashboards
//! and regression tooling can diff runs. The binaries write it next to
//! their stdout tables as `BENCH_engine.json`.

use crate::table::{f, ExperimentTable};
use crate::Scale;
use mnn_tensor::Matrix;
use mnnfast::{EngineKind, ExecPlan, Executor, MnnFastConfig, Phase, Scratch, Trace};
use std::time::Instant;

/// Measurements for one engine kind.
#[derive(Debug, Clone, Copy)]
pub struct EngineEntry {
    /// The kind requested in the plan.
    pub kind: EngineKind,
    /// What the plan resolved to (differs from `kind` only for `Auto`).
    pub resolved: EngineKind,
    /// Mean untraced wall-clock per question, in seconds.
    pub mean_seconds: f64,
    /// Per-phase timings accumulated over the traced questions.
    pub trace: Trace,
}

/// A full engine benchmark run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Memory rows.
    pub ns: usize,
    /// Embedding dimension.
    pub ed: usize,
    /// Chunk size.
    pub chunk: usize,
    /// Worker threads for the parallel engine.
    pub threads: usize,
    /// Questions timed per engine kind.
    pub questions: usize,
    /// One entry per benchmarked kind.
    pub entries: Vec<EngineEntry>,
}

/// Runs every engine kind over the same synthetic memories, timing an
/// untraced pass (latency) and a traced pass (phase breakdown) per kind.
pub fn run(scale: Scale) -> EngineReport {
    let ns = scale.pick(200_000, 4_000);
    let ed = 48;
    let chunk = 1000;
    let threads = 4;
    let questions = scale.pick(8, 2);

    let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 31 + c * 7) as f32 * 0.001).sin() * 0.3);
    let m_out = Matrix::from_fn(ns, ed, |r, c| ((r * 13 + c * 5) as f32 * 0.002).cos() * 0.3);
    let us: Vec<Vec<f32>> = (0..questions)
        .map(|q| {
            (0..ed)
                .map(|i| ((q * ed + i) as f32 * 0.1).sin() * 0.5)
                .collect()
        })
        .collect();

    let config = MnnFastConfig::new(chunk).with_threads(threads);
    let mut entries = Vec::new();
    for kind in [
        EngineKind::Column,
        EngineKind::Streaming,
        EngineKind::Parallel,
        EngineKind::Auto,
    ] {
        let plan = ExecPlan::new(config).with_kind(kind);
        let exec = plan.executor();
        let mut scratch = Scratch::new();

        // Warm-up grows the scratch buffers so the timed loop reuses them.
        let mut warm = Trace::disabled();
        let out = exec
            .forward_prefix(&m_in, &m_out, ns, &us[0], &mut scratch, &mut warm)
            .expect("valid shapes");
        scratch.recycle(out.o);

        let mut untraced = Trace::disabled();
        let t0 = Instant::now();
        for u in &us {
            let out = exec
                .forward_prefix(&m_in, &m_out, ns, u, &mut scratch, &mut untraced)
                .expect("valid shapes");
            scratch.recycle(out.o);
        }
        let mean_seconds = t0.elapsed().as_secs_f64() / questions as f64;

        let mut trace = Trace::enabled();
        for u in &us {
            let out = exec
                .forward_prefix(&m_in, &m_out, ns, u, &mut scratch, &mut trace)
                .expect("valid shapes");
            scratch.recycle(out.o);
        }

        entries.push(EngineEntry {
            kind,
            resolved: plan.resolve(ns, ed),
            mean_seconds,
            trace,
        });
    }

    EngineReport {
        ns,
        ed,
        chunk,
        threads,
        questions,
        entries,
    }
}

impl EngineReport {
    /// Human-readable companion table: latency plus per-phase time shares.
    pub fn table(&self) -> ExperimentTable {
        let mut headers = vec!["engine", "resolved", "ms/question"];
        for phase in Phase::ALL {
            headers.push(phase.label());
        }
        let mut t = ExperimentTable::new(
            "Engine latency and per-phase time share (Executor seam)",
            &headers,
        );
        for e in &self.entries {
            let total = e.trace.total_nanos().max(1) as f64;
            let mut row = vec![
                e.kind.label().to_string(),
                e.resolved.label().to_string(),
                f(e.mean_seconds * 1e3),
            ];
            for phase in Phase::ALL {
                row.push(format!(
                    "{:.1}%",
                    e.trace.nanos(phase) as f64 * 100.0 / total
                ));
            }
            t.row(row);
        }
        t.note(format!(
            "ns={}, ed={}, chunk={}, threads={}, {} questions; shares from a separate traced pass",
            self.ns, self.ed, self.chunk, self.threads, self.questions
        ));
        t.note("parallel phase times are summed worker CPU time, so shares describe work, not wall-clock");
        t
    }

    /// Serializes the report as JSON (hand-rolled: the workspace builds
    /// offline with no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"ns\": {}, \"ed\": {}, \"chunk\": {}, \"threads\": {}, \"questions\": {},\n",
            self.ns, self.ed, self.chunk, self.threads, self.questions
        ));
        out.push_str("  \"engines\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"kind\": \"{}\",\n", e.kind.label()));
            out.push_str(&format!(
                "      \"resolved\": \"{}\",\n",
                e.resolved.label()
            ));
            out.push_str(&format!("      \"mean_seconds\": {:.9},\n", e.mean_seconds));
            out.push_str(&format!(
                "      \"traced_total_nanos\": {},\n",
                e.trace.total_nanos()
            ));
            out.push_str("      \"phases\": [\n");
            for (j, phase) in Phase::ALL.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"phase\": \"{}\", \"nanos\": {}, \"count\": {}}}{}\n",
                    phase.label(),
                    e.trace.nanos(*phase),
                    e.trace.count(*phase),
                    if j + 1 < Phase::ALL.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`EngineReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_kinds_with_phases() {
        let report = run(Scale::Smoke);
        assert_eq!(report.entries.len(), 4);
        for e in &report.entries {
            assert!(e.mean_seconds > 0.0, "{:?}", e.kind);
            assert!(e.trace.total_nanos() > 0, "{:?}", e.kind);
            // Every question touched every row in the fused-chunk phase.
            assert_eq!(
                e.trace.count(Phase::FusedChunk),
                (report.ns * report.questions) as u64
            );
        }
        assert_ne!(
            report.entries[3].resolved,
            EngineKind::Auto,
            "auto must resolve to a concrete kind"
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(Scale::Smoke);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"engines\"",
            "\"kind\": \"column\"",
            "\"kind\": \"streaming\"",
            "\"kind\": \"parallel\"",
            "\"kind\": \"auto\"",
            "\"phase\": \"inner_product\"",
            "\"phase\": \"divide\"",
            "\"mean_seconds\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn table_has_phase_columns() {
        let report = run(Scale::Smoke);
        let t = report.table();
        assert_eq!(t.headers.len(), 3 + Phase::ALL.len());
        assert!(t.headers.iter().any(|h| h == "fused_chunk"));
        assert_eq!(t.rows.len(), 4);
    }
}

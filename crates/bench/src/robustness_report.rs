//! Fault-free overhead of the robustness layer: how much the per-chunk
//! [`Budget`] checks cost when nothing ever cancels, expires, or faults.
//!
//! The budgeted seam is on the hot path of every engine variant, so the
//! check must be near-free in the common case. This report times the same
//! fault-free column forward pass three ways — unlimited budget (two
//! predicted branches per chunk), armed deadline (one `Instant::now()` per
//! chunk), armed cancellation token (one relaxed atomic load per chunk) —
//! and emits `BENCH_robustness.json` with the measured overhead against a
//! 2% bound. CI smoke-runs it with `--check`, which fails the job when the
//! bound is exceeded.

use crate::table::{f, ExperimentTable};
use crate::Scale;
use mnn_tensor::Matrix;
use mnnfast::{Budget, CancelToken, EngineKind, ExecPlan, Executor, MnnFastConfig, Scratch, Trace};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Overhead the fault-free hot path may pay for per-chunk budget checks,
/// in percent. The acceptance bound for `BENCH_robustness.json`.
pub const OVERHEAD_BOUND_PERCENT: f64 = 2.0;

/// One baseline-vs-budgeted timing pair.
#[derive(Debug, Clone)]
pub struct RobustnessEntry {
    /// Stable entry name (`column_deadline`, ...).
    pub name: &'static str,
    /// What kind of budget the candidate ran under.
    pub budget: &'static str,
    /// Best observed seconds per question, unlimited budget.
    pub baseline_seconds: f64,
    /// Best observed seconds per question, armed budget.
    pub budgeted_seconds: f64,
    /// Median of the per-repetition budgeted/baseline ratios, minus one,
    /// in percent. Each repetition times both flavors back-to-back, so the
    /// ratio is robust against machine-level throughput shifts that dwarf
    /// the per-chunk check itself; negative values mean the check was
    /// below the noise floor.
    pub overhead_percent: f64,
}

/// A full robustness-overhead run.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Memory rows.
    pub ns: usize,
    /// Embedding dimension.
    pub ed: usize,
    /// Rows per chunk (the granularity of the budget checks).
    pub chunk: usize,
    /// The acceptance bound, percent.
    pub bound_percent: f64,
    /// One entry per budget flavor.
    pub entries: Vec<RobustnessEntry>,
}

/// Times `op` over `iters` calls and returns mean seconds per call.
fn per_call(iters: usize, mut op: impl FnMut()) -> f64 {
    op();
    let t0 = Instant::now();
    for _ in 0..iters {
        op();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Runs the fault-free overhead measurement on the paper-shaped column
/// path (chunk 1000, ed 64).
pub fn run(scale: Scale) -> RobustnessReport {
    let ed = 64;
    let chunk = 1000;
    let ns = scale.pick(200_000, 20_000);
    let reps = scale.pick(12, 10);
    let questions = scale.pick(4, 2);

    let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 31 + c * 7) as f32 * 0.001).sin() * 0.3);
    let m_out = Matrix::from_fn(ns, ed, |r, c| ((r * 13 + c * 5) as f32 * 0.002).cos() * 0.3);
    let u: Vec<f32> = (0..ed).map(|i| ((i as f32) * 0.37 + 0.9).sin()).collect();

    let exec = ExecPlan::new(MnnFastConfig::new(chunk))
        .with_kind(EngineKind::Column)
        .executor();
    let mut scratch = Scratch::new();
    let mut trace = Trace::disabled();
    let mut time_budget = |budget: &Budget, iters: usize| {
        per_call(iters, || {
            let out = exec
                .forward_prefix_budgeted(
                    &m_in,
                    &m_out,
                    ns,
                    &u,
                    &mut scratch,
                    &mut trace,
                    black_box(budget),
                )
                .expect("fault-free run");
            scratch.recycle(black_box(out).o);
        })
    };

    let unlimited = Budget::unlimited();
    let deadline_budget = Budget::with_deadline(Duration::from_secs(3600));
    let cancel_budget = Budget::unlimited().with_cancel(CancelToken::new());

    // Warm the caches, TLBs and the scratch arena before any timed pass.
    time_budget(&unlimited, 2);
    // Each repetition times the three flavors back-to-back and the
    // overhead is taken per pair: shared-machine throughput swings (which
    // can dwarf the check being measured by orders of magnitude) then hit
    // numerator and denominator alike instead of whichever flavor happened
    // to run during the slow spell.
    let (mut baseline, mut deadline, mut cancel) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut deadline_ratios = Vec::with_capacity(reps);
    let mut cancel_ratios = Vec::with_capacity(reps);
    for _ in 0..reps {
        let b = time_budget(&unlimited, questions);
        let d = time_budget(&deadline_budget, questions);
        let c = time_budget(&cancel_budget, questions);
        baseline = baseline.min(b);
        deadline = deadline.min(d);
        cancel = cancel.min(c);
        deadline_ratios.push(d / b);
        cancel_ratios.push(c / b);
    }

    RobustnessReport {
        ns,
        ed,
        chunk,
        bound_percent: OVERHEAD_BOUND_PERCENT,
        entries: vec![
            RobustnessEntry {
                name: "column_deadline",
                budget: "deadline_1h",
                baseline_seconds: baseline,
                budgeted_seconds: deadline,
                overhead_percent: (median(&mut deadline_ratios) - 1.0) * 100.0,
            },
            RobustnessEntry {
                name: "column_cancel_token",
                budget: "cancel_token",
                baseline_seconds: baseline,
                budgeted_seconds: cancel,
                overhead_percent: (median(&mut cancel_ratios) - 1.0) * 100.0,
            },
        ],
    }
}

/// Median of a non-empty sample (sorts in place).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

impl RobustnessReport {
    /// `true` when every entry's measured overhead is within the bound.
    pub fn within_bound(&self) -> bool {
        self.entries
            .iter()
            .all(|e| e.overhead_percent <= self.bound_percent)
    }

    /// Human-readable companion table.
    pub fn table(&self) -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "Robustness layer: fault-free overhead of per-chunk budget checks",
            &["path", "budget", "baseline us", "budgeted us", "overhead %"],
        );
        for e in &self.entries {
            t.row(vec![
                e.name.to_string(),
                e.budget.to_string(),
                f(e.baseline_seconds * 1e6),
                f(e.budgeted_seconds * 1e6),
                format!("{:+.3}", e.overhead_percent),
            ]);
        }
        t.note(format!(
            "ns={}, ed={}, chunk={}: one budget check per chunk ({} checks/question)",
            self.ns,
            self.ed,
            self.chunk,
            self.ns.div_ceil(self.chunk)
        ));
        t.note(format!(
            "bound: {}% — {}",
            self.bound_percent,
            if self.within_bound() {
                "within bound"
            } else {
                "EXCEEDED"
            }
        ));
        t
    }

    /// Serializes the report as JSON (hand-rolled: the workspace builds
    /// offline with no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"ns\": {}, \"ed\": {}, \"chunk\": {},\n",
            self.ns, self.ed, self.chunk
        ));
        out.push_str(&format!(
            "  \"bound_percent\": {:.1}, \"within_bound\": {},\n",
            self.bound_percent,
            self.within_bound()
        ));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", e.name));
            out.push_str(&format!("      \"budget\": \"{}\",\n", e.budget));
            out.push_str(&format!(
                "      \"baseline_seconds\": {:.12},\n",
                e.baseline_seconds
            ));
            out.push_str(&format!(
                "      \"budgeted_seconds\": {:.12},\n",
                e.budgeted_seconds
            ));
            out.push_str(&format!(
                "      \"overhead_percent\": {:.4}\n",
                e.overhead_percent
            ));
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`RobustnessReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_times_both_budget_flavors() {
        let report = run(Scale::Smoke);
        let names: Vec<_> = report.entries.iter().map(|e| e.name).collect();
        assert_eq!(names, ["column_deadline", "column_cancel_token"]);
        for e in &report.entries {
            assert!(e.baseline_seconds > 0.0, "{}", e.name);
            assert!(e.budgeted_seconds > 0.0, "{}", e.name);
            assert!(e.overhead_percent.is_finite(), "{}", e.name);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(Scale::Smoke);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"entries\"",
            "\"name\": \"column_deadline\"",
            "\"bound_percent\"",
            "\"within_bound\"",
            "\"overhead_percent\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}

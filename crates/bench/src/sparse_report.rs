//! Sublinear top-K candidate attention: crossover sweep, recall, parity.
//!
//! Three questions, one report (`BENCH_sparse.json`):
//!
//! 1. **Crossover** — at which memory size does probing the clustered
//!    index and exactly rescoring only the candidates beat the tiled
//!    full pass? The sweep times both flavors back-to-back at each `ns`
//!    and reports the per-rep median speedup; at
//!    [`HEADLINE_ROWS`] rows and above the sparse pass must win by
//!    [`SPEEDUP_TARGET`].
//! 2. **Recall@K** — the index only picks *which* rows the exact kernels
//!    see, so its sole failure mode is missing a true top-K row. Each
//!    sweep point compares the probe's candidate set against the
//!    brute-force top-K of the exact logits; every point must reach
//!    [`RECALL_TARGET`] at full scale.
//! 3. **Answer parity** — a trained bAbI model served through a sparse
//!    session must answer every test question with the same word as the
//!    exact session.
//!
//! Pairing and medians follow the `BENCH_quant.json` discipline.

use crate::table::{f, ExperimentTable};
use crate::Scale;
use mnn_dataset::babi::{BabiGenerator, TaskKind};
use mnn_memnn::{model::ModelConfig, train::Trainer, MemNet};
use mnn_serve::{Session, SessionConfig};
use mnn_tensor::Matrix;
use mnnfast::{
    Budget, ClusterIndex, EngineKind, ExecPlan, Executor, MnnFastConfig, Scratch, SegmentPlan,
    Trace,
};
use std::hint::black_box;
use std::time::Instant;

/// Required exact/sparse time ratio at and above [`HEADLINE_ROWS`].
pub const SPEEDUP_TARGET: f64 = 3.0;

/// Required candidate recall against the brute-force top-K, per sweep
/// point, at full scale.
pub const RECALL_TARGET: f64 = 0.99;

/// Memory size from which the speedup target applies (the sweep's
/// large-memory regime; smaller points only locate the crossover).
pub const HEADLINE_ROWS: usize = 65_536;

/// One sweep point: paired exact-vs-sparse timing plus probe quality on
/// the same memory and question.
#[derive(Debug, Clone)]
pub struct CrossoverEntry {
    /// Memory rows.
    pub ns: usize,
    /// Clusters the index trained (`~sqrt(ns)`).
    pub clusters: usize,
    /// Best observed seconds for the exact full pass.
    pub exact_seconds: f64,
    /// Best observed seconds for the probe + exact-rescore pass.
    pub sparse_seconds: f64,
    /// Median per-rep exact/sparse time ratio (higher = sparse wins).
    pub speedup: f64,
    /// Rows the sparse pass exactly rescored (covered rows in plan mode,
    /// candidates in gather mode).
    pub rows_rescored: u64,
    /// Rows the index excluded from the exact pass.
    pub rows_skipped: u64,
    /// `|candidates ∩ true top-K| / K` against the brute-force logits.
    pub recall_at_k: f64,
}

/// A full sparse-attention run.
#[derive(Debug, Clone)]
pub struct SparseReport {
    /// Embedding dimension.
    pub ed: usize,
    /// Rows per chunk (shared by both flavors).
    pub chunk: usize,
    /// Candidate rows requested per question.
    pub topk: usize,
    /// Cluster probe floor per question.
    pub nprobe: usize,
    /// Required speedup at and above [`HEADLINE_ROWS`].
    pub speedup_target: f64,
    /// Required recall per sweep point.
    pub recall_target: f64,
    /// Memory size from which the speedup target applies.
    pub headline_rows: usize,
    /// The sweep, ascending in `ns`.
    pub crossover: Vec<CrossoverEntry>,
    /// Smallest swept `ns` where the sparse pass won (`speedup > 1`).
    pub crossover_ns: Option<usize>,
    /// bAbI test questions answered by both sessions.
    pub answers_total: usize,
    /// Questions where the sparse session's answer word differed.
    pub answers_changed: usize,
}

/// Runs the sweep and the parity measurement on the column path.
pub fn run(scale: Scale) -> SparseReport {
    let ed = 64;
    let chunk = scale.pick(128, 32);
    let topk = scale.pick(64, 8);
    let nprobe = scale.pick(8, 4);
    let reps = scale.pick(9, 5);
    let sweep: &[usize] = scale.pick(&[4_096, 16_384, 65_536, 262_144], &[512, 2_048]);

    let exec = ExecPlan::new(MnnFastConfig::new(chunk))
        .with_kind(EngineKind::Column)
        .executor();
    let budget = Budget::unlimited();
    let mut trace = Trace::disabled();
    let mut scratch = Scratch::new();

    let mut crossover = Vec::with_capacity(sweep.len());
    for &ns in sweep {
        let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 31 + c * 7) as f32 * 0.001).sin() * 0.3);
        let m_out = Matrix::from_fn(ns, ed, |r, c| ((r * 13 + c * 5) as f32 * 0.002).cos() * 0.3);
        let u: Vec<f32> = (0..ed).map(|i| ((i as f32) * 0.013 + 0.4).sin()).collect();
        let index = ClusterIndex::build(&m_in, ns, 0);
        let plan = SegmentPlan::unsegmented(ns);

        // Probe quality: the candidate set against the brute-force top-K
        // of the exact logits (ties broken toward the lower row, the same
        // order the kernels use).
        let probe = index.probe(&u, topk, nprobe, chunk);
        let mut ranked: Vec<usize> = (0..ns).collect();
        let score = |r: usize| m_in.row(r).iter().zip(&u).map(|(a, b)| a * b).sum::<f32>();
        ranked.sort_by(|&a, &b| {
            score(b)
                .partial_cmp(&score(a))
                .expect("finite logits")
                .then(a.cmp(&b))
        });
        let hit = ranked[..topk.min(ns)]
            .iter()
            .filter(|&&r| probe.candidates.binary_search(&(r as u32)).is_ok())
            .count();
        let recall_at_k = hit as f64 / topk.min(ns) as f64;

        let exact_pass = |scratch: &mut Scratch, trace: &mut Trace| {
            let t0 = Instant::now();
            let out = exec
                .forward_segmented_budgeted(
                    &m_in,
                    &m_out,
                    &plan,
                    black_box(&u),
                    scratch,
                    trace,
                    &budget,
                )
                .expect("exact pass");
            let dt = t0.elapsed().as_secs_f64();
            scratch.recycle(black_box(out).o);
            dt
        };
        let sparse_pass = |scratch: &mut Scratch, trace: &mut Trace| {
            let t0 = Instant::now();
            let out = exec
                .forward_topk_segmented_budgeted(
                    &m_in,
                    &m_out,
                    &index,
                    black_box(&u),
                    topk,
                    nprobe,
                    scratch,
                    trace,
                    &budget,
                )
                .expect("sparse pass");
            let dt = t0.elapsed().as_secs_f64();
            let stats = out.stats;
            scratch.recycle(black_box(out).o);
            (dt, stats.candidates_scored, stats.rows_skipped_by_index)
        };

        exact_pass(&mut scratch, &mut trace);
        let (_, rows_rescored, rows_skipped) = sparse_pass(&mut scratch, &mut trace);
        let (mut best_exact, mut best_sparse) = (f64::INFINITY, f64::INFINITY);
        let mut ratios = Vec::with_capacity(reps);
        for _ in 0..reps {
            let a = exact_pass(&mut scratch, &mut trace);
            let (b, _, _) = sparse_pass(&mut scratch, &mut trace);
            best_exact = best_exact.min(a);
            best_sparse = best_sparse.min(b);
            ratios.push(a / b);
        }
        crossover.push(CrossoverEntry {
            ns,
            clusters: index.k(),
            exact_seconds: best_exact,
            sparse_seconds: best_sparse,
            speedup: median(&mut ratios),
            rows_rescored,
            rows_skipped,
            recall_at_k,
        });
    }
    let crossover_ns = crossover.iter().find(|e| e.speedup > 1.0).map(|e| e.ns);

    let (answers_total, answers_changed) = answer_parity(scale);

    SparseReport {
        ed,
        chunk,
        topk,
        nprobe,
        speedup_target: SPEEDUP_TARGET,
        recall_target: RECALL_TARGET,
        headline_rows: HEADLINE_ROWS,
        crossover,
        crossover_ns,
        answers_total,
        answers_changed,
    }
}

/// Trains a small MemN2N, then replays every test story through an exact
/// session and a sparse (`topk`/`nprobe`) session and counts answer-word
/// mismatches. Stories carry more sentences than `topk`, so the sparse
/// session really serves through the index.
fn answer_parity(scale: Scale) -> (usize, usize) {
    let sentences = 20;
    let (topk, nprobe) = (10, 3);
    let (train_stories, epochs, ed) = match scale {
        Scale::Full => (240, 60, 40),
        Scale::Smoke => (60, 25, 16),
    };
    let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 2019);
    let train_set = generator.dataset(train_stories, sentences, 3);
    let test_set = generator.dataset(scale.pick(40, 10), sentences, 3);
    let config = ModelConfig::for_generator(&generator, ed, sentences);
    let mut model = MemNet::new(config, 61);
    Trainer::new()
        .epochs(epochs)
        .momentum(0.5)
        .train(&mut model, &train_set);

    let mut exact = Session::new(model.clone(), SessionConfig::default()).expect("exact session");
    let mut sparse = Session::new(
        model,
        SessionConfig {
            topk,
            nprobe,
            ..SessionConfig::default()
        },
    )
    .expect("sparse session");

    let mut total = 0;
    let mut changed = 0;
    for story in &test_set {
        exact.reset();
        sparse.reset();
        for s in &story.sentences {
            exact.observe(s).expect("observe exact");
            sparse.observe(s).expect("observe sparse");
        }
        for q in &story.questions {
            let a = exact.ask(&q.tokens).expect("ask exact");
            let b = sparse.ask(&q.tokens).expect("ask sparse");
            total += 1;
            if a.word != b.word {
                changed += 1;
            }
        }
    }
    (total, changed)
}

/// Median of a non-empty sample (sorts in place).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

impl SparseReport {
    /// `true` when the full-scale acceptance bounds hold: every sweep
    /// point at or above [`HEADLINE_ROWS`] beats [`SPEEDUP_TARGET`],
    /// every point reaches [`RECALL_TARGET`], and no bAbI answer changed.
    /// Only meaningful for [`Scale::Full`] runs.
    pub fn meets_target(&self) -> bool {
        let headline = self
            .crossover
            .iter()
            .filter(|e| e.ns >= self.headline_rows)
            .collect::<Vec<_>>();
        let speed_ok =
            !headline.is_empty() && headline.iter().all(|e| e.speedup >= self.speedup_target);
        let recall_ok = self
            .crossover
            .iter()
            .all(|e| e.recall_at_k >= self.recall_target);
        let answers_ok = self.answers_total > 0 && self.answers_changed == 0;
        speed_ok && recall_ok && answers_ok
    }

    /// Sanity gate for CI smoke runs: finite positive measurements, the
    /// sparse pass really excluded rows, the per-question row accounting
    /// conserves (`rescored + skipped = ns`), the probe found at least
    /// most of the true top-K, and answer parity holds. Deliberately
    /// ignores the speedup ratio — a loaded CI runner must not flake the
    /// job on a noisy timing.
    pub fn sane(&self) -> bool {
        let sweep_ok = !self.crossover.is_empty()
            && self.crossover.iter().all(|e| {
                e.exact_seconds > 0.0
                    && e.sparse_seconds > 0.0
                    && e.speedup.is_finite()
                    && e.speedup > 0.0
                    && e.rows_skipped > 0
                    && e.rows_rescored + e.rows_skipped == e.ns as u64
                    && e.recall_at_k > 0.5
                    && e.recall_at_k <= 1.0
            });
        sweep_ok && self.answers_total > 0 && self.answers_changed == 0
    }

    /// Human-readable companion table.
    pub fn table(&self) -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "Sublinear top-K attention: crossover sweep vs exact tiled pass",
            &[
                "ns", "exact s", "sparse s", "speedup", "recall@K", "rescored",
            ],
        );
        for e in &self.crossover {
            t.row(vec![
                format!("{}", e.ns),
                f(e.exact_seconds),
                f(e.sparse_seconds),
                format!("{:.2}x", e.speedup),
                format!("{:.4}", e.recall_at_k),
                format!("{}", e.rows_rescored),
            ]);
        }
        t.note(format!(
            "ed={}, chunk={}, topk={}, nprobe={}; crossover at ns={}",
            self.ed,
            self.chunk,
            self.topk,
            self.nprobe,
            self.crossover_ns
                .map_or_else(|| "none".to_string(), |n| n.to_string())
        ));
        t.note(format!(
            "{} bAbI answers, {} changed (sparse topk=10 nprobe=3 vs exact)",
            self.answers_total, self.answers_changed
        ));
        t.note(format!(
            "targets: speedup >= {:.1}x at ns >= {}, recall >= {:.2} everywhere, answers unchanged — {}",
            self.speedup_target,
            self.headline_rows,
            self.recall_target,
            if self.meets_target() {
                "met"
            } else {
                "NOT met (expected for smoke shapes)"
            }
        ));
        t
    }

    /// Serializes the report as JSON (hand-rolled: the workspace builds
    /// offline with no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"ed\": {}, \"chunk\": {}, \"topk\": {}, \"nprobe\": {},\n",
            self.ed, self.chunk, self.topk, self.nprobe
        ));
        out.push_str(&format!(
            "  \"speedup_target\": {:.1}, \"recall_target\": {:.2}, \"headline_rows\": {}, \"meets_target\": {},\n",
            self.speedup_target,
            self.recall_target,
            self.headline_rows,
            self.meets_target()
        ));
        out.push_str(&format!(
            "  \"crossover_ns\": {},\n",
            self.crossover_ns
                .map_or_else(|| "null".to_string(), |n| n.to_string())
        ));
        out.push_str("  \"crossover\": [\n");
        for (i, e) in self.crossover.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"ns\": {}, \"clusters\": {},\n",
                e.ns, e.clusters
            ));
            out.push_str(&format!(
                "      \"exact_seconds\": {:.12},\n",
                e.exact_seconds
            ));
            out.push_str(&format!(
                "      \"sparse_seconds\": {:.12},\n",
                e.sparse_seconds
            ));
            out.push_str(&format!("      \"speedup\": {:.4},\n", e.speedup));
            out.push_str(&format!(
                "      \"rows_rescored\": {}, \"rows_skipped\": {},\n",
                e.rows_rescored, e.rows_skipped
            ));
            out.push_str(&format!("      \"recall_at_k\": {:.6}\n", e.recall_at_k));
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.crossover.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"answers_total\": {}, \"answers_changed\": {}\n",
            self.answers_total, self.answers_changed
        ));
        out.push_str("}\n");
        out
    }

    /// Writes [`SparseReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sweeps_and_holds_its_bounds() {
        let report = run(Scale::Smoke);
        assert_eq!(report.crossover.len(), 2);
        assert!(report.sane(), "smoke run failed its own sanity gate");
        assert_eq!(report.answers_changed, 0, "sparse changed a bAbI answer");
        for e in &report.crossover {
            assert!(e.rows_skipped > 0, "ns={}: index excluded nothing", e.ns);
            assert_eq!(
                e.rows_rescored + e.rows_skipped,
                e.ns as u64,
                "ns={}: rows leaked",
                e.ns
            );
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(Scale::Smoke);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"crossover\"",
            "\"recall_at_k\"",
            "\"answers_changed\"",
            "\"crossover_ns\"",
            "\"meets_target\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}

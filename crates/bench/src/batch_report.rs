//! Cross-request batched throughput: questions/sec of the batched GEMM
//! fast path against answering the same questions sequentially.
//!
//! The batched engine answers `nq` concurrent questions in one streaming
//! pass — every chunk of `M_IN`/`M_OUT` is touched once per *batch*
//! (a register-tiled GEMM) instead of once per question (`nq` GEMVs), so
//! memory traffic stays flat while arithmetic per loaded byte grows with
//! `nq`. This report measures that effect on the paper-shaped column path
//! and emits `BENCH_batch.json`. Each repetition times the sequential and
//! batched flavor back-to-back and the speedup is the median per-rep
//! ratio, so shared-machine throughput swings hit both flavors alike
//! (the same pairing discipline as `BENCH_robustness.json`).

use crate::table::{f, ExperimentTable};
use crate::Scale;
use mnn_tensor::Matrix;
use mnnfast::{Budget, EngineKind, ExecPlan, Executor, MnnFastConfig, Scratch, Trace};
use std::hint::black_box;
use std::time::Instant;

/// Batch sizes measured, smallest first.
pub const BATCH_SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Required speedup over the sequential baseline at `nq >= 8` for a
/// full-scale run (the acceptance bound recorded in `BENCH_batch.json`).
pub const SPEEDUP_TARGET_AT_8: f64 = 2.0;

/// One batch-size measurement.
#[derive(Debug, Clone)]
pub struct BatchEntry {
    /// Questions per batch.
    pub nq: usize,
    /// Best observed seconds to answer all `nq` questions sequentially.
    pub sequential_seconds: f64,
    /// Best observed seconds to answer all `nq` questions in one batched
    /// pass.
    pub batched_seconds: f64,
    /// Questions per second, sequential baseline (from the best rep).
    pub sequential_qps: f64,
    /// Questions per second, batched fast path (from the best rep).
    pub batched_qps: f64,
    /// Median of the per-repetition sequential/batched time ratios.
    pub speedup: f64,
}

/// A full batched-throughput run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Memory rows.
    pub ns: usize,
    /// Embedding dimension.
    pub ed: usize,
    /// Rows per chunk.
    pub chunk: usize,
    /// Acceptance target for entries with `nq >= 8`.
    pub target_speedup: f64,
    /// One entry per batch size, in [`BATCH_SIZES`] order.
    pub entries: Vec<BatchEntry>,
}

/// Runs the batched-vs-sequential measurement on the paper-shaped column
/// path (chunk 1000, ed 64).
pub fn run(scale: Scale) -> BatchReport {
    let ed = 64;
    let chunk = 1000;
    let ns = scale.pick(200_000, 20_000);
    let reps = scale.pick(9, 5);

    let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 31 + c * 7) as f32 * 0.001).sin() * 0.3);
    let m_out = Matrix::from_fn(ns, ed, |r, c| ((r * 13 + c * 5) as f32 * 0.002).cos() * 0.3);

    let exec = ExecPlan::new(MnnFastConfig::new(chunk))
        .with_kind(EngineKind::Column)
        .executor();
    let mut scratch = Scratch::new();
    let mut trace = Trace::disabled();

    let mut entries = Vec::with_capacity(BATCH_SIZES.len());
    for nq in BATCH_SIZES {
        let questions: Vec<Vec<f32>> = (0..nq)
            .map(|q| {
                (0..ed)
                    .map(|i| ((q * ed + i) as f32 * 0.013 + 0.4).sin())
                    .collect()
            })
            .collect();
        let budgets = vec![Budget::unlimited(); nq];

        let sequential_pass = |scratch: &mut Scratch, trace: &mut Trace| {
            let t0 = Instant::now();
            for u in &questions {
                let out = exec
                    .forward_prefix_budgeted(
                        &m_in,
                        &m_out,
                        ns,
                        black_box(u),
                        scratch,
                        trace,
                        &budgets[0],
                    )
                    .expect("sequential pass");
                scratch.recycle(black_box(out).o);
            }
            t0.elapsed().as_secs_f64()
        };
        let batched_pass = |scratch: &mut Scratch, trace: &mut Trace| {
            let t0 = Instant::now();
            let results = exec
                .forward_batch_budgeted(
                    &m_in,
                    &m_out,
                    ns,
                    black_box(&questions),
                    scratch,
                    trace,
                    &budgets,
                )
                .expect("batched pass");
            let elapsed = t0.elapsed().as_secs_f64();
            for r in results {
                scratch.recycle(r.expect("fault-free question").o);
            }
            elapsed
        };

        // Warm both flavors: grows the scratch arena (including the batch
        // tile) so timed passes are allocation-free.
        sequential_pass(&mut scratch, &mut trace);
        batched_pass(&mut scratch, &mut trace);

        let (mut best_seq, mut best_batch) = (f64::INFINITY, f64::INFINITY);
        let mut ratios = Vec::with_capacity(reps);
        for _ in 0..reps {
            let s = sequential_pass(&mut scratch, &mut trace);
            let b = batched_pass(&mut scratch, &mut trace);
            best_seq = best_seq.min(s);
            best_batch = best_batch.min(b);
            ratios.push(s / b);
        }

        entries.push(BatchEntry {
            nq,
            sequential_seconds: best_seq,
            batched_seconds: best_batch,
            sequential_qps: nq as f64 / best_seq,
            batched_qps: nq as f64 / best_batch,
            speedup: median(&mut ratios),
        });
    }

    BatchReport {
        ns,
        ed,
        chunk,
        target_speedup: SPEEDUP_TARGET_AT_8,
        entries,
    }
}

/// Median of a non-empty sample (sorts in place).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

impl BatchReport {
    /// `true` when every entry with `nq >= 8` meets the full-scale speedup
    /// target. Only meaningful for [`Scale::Full`] runs: smoke shapes are
    /// too small to amortize per-pass overheads.
    pub fn meets_target(&self) -> bool {
        self.entries
            .iter()
            .filter(|e| e.nq >= 8)
            .all(|e| e.speedup >= self.target_speedup)
    }

    /// Sanity gate for CI smoke runs: every measurement is finite and
    /// positive, and at the largest batch size the batched path is at
    /// least not slower than sequential. Deliberately conservative — a
    /// loaded CI runner must not flake the job on a noisy ratio.
    pub fn sane(&self) -> bool {
        let all_finite = self.entries.iter().all(|e| {
            e.sequential_seconds > 0.0
                && e.batched_seconds > 0.0
                && e.speedup.is_finite()
                && e.speedup > 0.0
        });
        let last_not_slower = self.entries.last().is_some_and(|e| e.speedup >= 1.0);
        all_finite && last_not_slower
    }

    /// Human-readable companion table.
    pub fn table(&self) -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "Batched serving: questions/sec on the tiled GEMM fast path",
            &["nq", "seq q/s", "batched q/s", "speedup"],
        );
        for e in &self.entries {
            t.row(vec![
                e.nq.to_string(),
                f(e.sequential_qps),
                f(e.batched_qps),
                format!("{:.2}x", e.speedup),
            ]);
        }
        t.note(format!(
            "ns={}, ed={}, chunk={}: each batched pass streams the memories once for all nq questions",
            self.ns, self.ed, self.chunk
        ));
        t.note(format!(
            "target at nq>=8: {:.1}x — {}",
            self.target_speedup,
            if self.meets_target() {
                "met"
            } else {
                "NOT met (expected for smoke shapes)"
            }
        ));
        t
    }

    /// Serializes the report as JSON (hand-rolled: the workspace builds
    /// offline with no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"ns\": {}, \"ed\": {}, \"chunk\": {},\n",
            self.ns, self.ed, self.chunk
        ));
        out.push_str(&format!(
            "  \"target_speedup\": {:.1}, \"meets_target\": {},\n",
            self.target_speedup,
            self.meets_target()
        ));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"nq\": {},\n", e.nq));
            out.push_str(&format!(
                "      \"sequential_seconds\": {:.12},\n",
                e.sequential_seconds
            ));
            out.push_str(&format!(
                "      \"batched_seconds\": {:.12},\n",
                e.batched_seconds
            ));
            out.push_str(&format!(
                "      \"sequential_qps\": {:.3},\n",
                e.sequential_qps
            ));
            out.push_str(&format!("      \"batched_qps\": {:.3},\n", e.batched_qps));
            out.push_str(&format!("      \"speedup\": {:.4}\n", e.speedup));
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`BatchReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_every_batch_size() {
        let report = run(Scale::Smoke);
        let sizes: Vec<_> = report.entries.iter().map(|e| e.nq).collect();
        assert_eq!(sizes, BATCH_SIZES);
        for e in &report.entries {
            assert!(e.sequential_qps > 0.0, "nq={}", e.nq);
            assert!(e.batched_qps > 0.0, "nq={}", e.nq);
            assert!(e.speedup.is_finite() && e.speedup > 0.0, "nq={}", e.nq);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(Scale::Smoke);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"entries\"",
            "\"nq\": 32",
            "\"target_speedup\"",
            "\"meets_target\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}

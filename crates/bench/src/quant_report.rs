//! Int8 quantized memory plane: inference-phase speedup and accuracy.
//!
//! Three questions, one report (`BENCH_quant.json`):
//!
//! 1. **Speedup** — the inference phase is bandwidth-bound, and the int8
//!    mirror moves `ed + 4` bytes per row against the f32 plane's
//!    `4 * ed`. On the paper-shaped memory the quantized column pass must
//!    beat the f32 pass by [`SPEEDUP_TARGET`] at full scale.
//! 2. **Logit error** — the quantized logits must stay within the bound
//!    the kernel layer publishes ([`mnn_tensor::simd::I8_LOGIT_MAX_REL_ERROR`],
//!    relative to the logit inf-norm). The report measures the worst
//!    observed error on the benchmark memory.
//! 3. **Answer parity** — a trained bAbI model served end-to-end at
//!    [`Precision::Int8`] must answer every test question with the same
//!    word as the f32 session.
//!
//! Each repetition times the two flavors back-to-back and the reported
//! speedup is the per-rep median, the same pairing discipline as
//! `BENCH_segment.json`.

use crate::table::{f, ExperimentTable};
use crate::Scale;
use mnn_dataset::babi::{BabiGenerator, TaskKind};
use mnn_memnn::{model::ModelConfig, train::Trainer, MemNet};
use mnn_serve::{Session, SessionConfig};
use mnn_tensor::quant::{quantize_row, QuantMatrix};
use mnn_tensor::Matrix;
use mnnfast::{
    Budget, EngineKind, ExecPlan, Executor, MnnFastConfig, Precision, Scratch, SegmentPlan,
    SoftmaxMode, Trace,
};
use std::hint::black_box;
use std::time::Instant;

/// Required f32/int8 time ratio on the paper-shaped memory at full scale.
pub const SPEEDUP_TARGET: f64 = 1.5;

/// One paired speedup measurement (f32 plane vs int8 mirror, same memory,
/// same softmax mode, same unsegmented plan).
#[derive(Debug, Clone)]
pub struct SpeedupEntry {
    /// Softmax mode measured (`"lazy"` = fused fast path, `"online"` =
    /// running-max formulation).
    pub mode: &'static str,
    /// Best observed seconds for the f32 pass.
    pub f32_seconds: f64,
    /// Best observed seconds for the quantized pass.
    pub int8_seconds: f64,
    /// Median per-rep f32/int8 time ratio (higher = quant wins).
    pub speedup: f64,
}

/// A full quantized-plane run.
#[derive(Debug, Clone)]
pub struct QuantReport {
    /// Memory rows.
    pub ns: usize,
    /// Embedding dimension.
    pub ed: usize,
    /// Rows per chunk.
    pub chunk: usize,
    /// Required speedup at full scale.
    pub speedup_target: f64,
    /// Published per-logit relative error bound.
    pub error_limit: f64,
    /// Bytes one question streams from both f32 planes (`2 * ns * ed * 4`).
    pub f32_bytes: u64,
    /// Bytes one question streams from both int8 mirrors
    /// (`2 * ns * (ed + 4)`, codes plus one f32 scale per row).
    pub int8_bytes: u64,
    /// `int8_bytes / f32_bytes` (approaches 1/4 as `ed` grows).
    pub bytes_ratio: f64,
    /// Paired timings, one entry per softmax mode.
    pub speedup: Vec<SpeedupEntry>,
    /// Worst observed quantized-logit error relative to the logit
    /// inf-norm on the benchmark memory.
    pub logit_max_rel_error: f64,
    /// bAbI test questions answered by both sessions.
    pub answers_total: usize,
    /// Questions where the int8 session's answer word differed.
    pub answers_changed: usize,
}

/// Runs all three measurements on the paper-shaped column path.
pub fn run(scale: Scale) -> QuantReport {
    let ed = 64;
    let chunk = 1000;
    let ns = scale.pick(200_000, 20_000);
    let reps = scale.pick(9, 5);

    let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 31 + c * 7) as f32 * 0.001).sin() * 0.3);
    let m_out = Matrix::from_fn(ns, ed, |r, c| ((r * 13 + c * 5) as f32 * 0.002).cos() * 0.3);
    let u: Vec<f32> = (0..ed).map(|i| ((i as f32) * 0.013 + 0.4).sin()).collect();
    let q_in = QuantMatrix::from_matrix(&m_in);
    let q_out = QuantMatrix::from_matrix(&m_out);
    let plan = SegmentPlan::unsegmented(ns);

    let budget = Budget::unlimited();
    let mut trace = Trace::disabled();
    let mut speedup = Vec::new();
    for (label, mode) in [("lazy", SoftmaxMode::Lazy), ("online", SoftmaxMode::Online)] {
        let exec = ExecPlan::new(MnnFastConfig::new(chunk).with_softmax(mode))
            .with_kind(EngineKind::Column)
            .executor();
        let mut scratch = Scratch::new();

        let f32_pass = |scratch: &mut Scratch, trace: &mut Trace| {
            let t0 = Instant::now();
            let out = exec
                .forward_segmented_budgeted(
                    &m_in,
                    &m_out,
                    &plan,
                    black_box(&u),
                    scratch,
                    trace,
                    &budget,
                )
                .expect("f32 pass");
            let dt = t0.elapsed().as_secs_f64();
            scratch.recycle(black_box(out).o);
            dt
        };
        let int8_pass = |scratch: &mut Scratch, trace: &mut Trace| {
            let t0 = Instant::now();
            let out = exec
                .forward_quant_segmented_budgeted(
                    &q_in,
                    &q_out,
                    &plan,
                    black_box(&u),
                    scratch,
                    trace,
                    &budget,
                )
                .expect("int8 pass");
            let dt = t0.elapsed().as_secs_f64();
            scratch.recycle(black_box(out).o);
            dt
        };

        f32_pass(&mut scratch, &mut trace);
        int8_pass(&mut scratch, &mut trace);
        let (mut best_f32, mut best_int8) = (f64::INFINITY, f64::INFINITY);
        let mut ratios = Vec::with_capacity(reps);
        for _ in 0..reps {
            let a = f32_pass(&mut scratch, &mut trace);
            let b = int8_pass(&mut scratch, &mut trace);
            best_f32 = best_f32.min(a);
            best_int8 = best_int8.min(b);
            ratios.push(a / b);
        }
        speedup.push(SpeedupEntry {
            mode: label,
            f32_seconds: best_f32,
            int8_seconds: best_int8,
            speedup: median(&mut ratios),
        });
    }

    // Worst quantized-logit error on the benchmark memory, measured against
    // the exact contract the kernels implement: an exact integer dot scaled
    // by `u_scale * row_scale`.
    let mut u_q = vec![0i8; ed];
    let u_scale = quantize_row(&u, &mut u_q);
    let mut z_norm = 0.0f64;
    let mut worst_abs = 0.0f64;
    for r in 0..ns {
        let row = m_in.row(r);
        let z: f64 = row.iter().zip(&u).map(|(a, b)| f64::from(a * b)).sum();
        let acc: i32 = q_in
            .row(r)
            .iter()
            .zip(&u_q)
            .map(|(&a, &b)| i32::from(a) * i32::from(b))
            .sum();
        let zq = f64::from((acc as f32) * (u_scale * q_in.scale(r)));
        z_norm = z_norm.max(z.abs());
        worst_abs = worst_abs.max((zq - z).abs());
    }
    let logit_max_rel_error = worst_abs / z_norm.max(1e-12);

    // End-to-end answer parity on a trained bAbI model.
    let (answers_total, answers_changed) = answer_parity(scale);

    let f32_bytes = (2 * ns * ed * 4) as u64;
    let int8_bytes = (2 * ns * (ed + 4)) as u64;
    QuantReport {
        ns,
        ed,
        chunk,
        speedup_target: SPEEDUP_TARGET,
        error_limit: f64::from(mnn_tensor::simd::I8_LOGIT_MAX_REL_ERROR),
        f32_bytes,
        int8_bytes,
        bytes_ratio: int8_bytes as f64 / f32_bytes as f64,
        speedup,
        logit_max_rel_error,
        answers_total,
        answers_changed,
    }
}

/// Trains a small MemN2N, then replays every test story through an f32
/// session and an int8 session and counts answer-word mismatches.
fn answer_parity(scale: Scale) -> (usize, usize) {
    let ns = scale.pick(50, 8);
    let (train_stories, epochs, ed) = match scale {
        Scale::Full => (240, 60, 40),
        Scale::Smoke => (60, 25, 16),
    };
    let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 2019);
    let train_set = generator.dataset(train_stories, ns, 3);
    let test_set = generator.dataset(scale.pick(40, 10), ns, 3);
    let config = ModelConfig::for_generator(&generator, ed, ns);
    let mut model = MemNet::new(config, 61);
    Trainer::new()
        .epochs(epochs)
        .momentum(0.5)
        .train(&mut model, &train_set);

    let mut s32 = Session::new(model.clone(), SessionConfig::default()).expect("f32 session");
    let mut s8 = Session::new(
        model,
        SessionConfig {
            precision: Precision::Int8,
            ..SessionConfig::default()
        },
    )
    .expect("int8 session");

    let mut total = 0;
    let mut changed = 0;
    for story in &test_set {
        s32.reset();
        s8.reset();
        for s in &story.sentences {
            s32.observe(s).expect("observe f32");
            s8.observe(s).expect("observe int8");
        }
        for q in &story.questions {
            let a32 = s32.ask(&q.tokens).expect("ask f32");
            let a8 = s8.ask(&q.tokens).expect("ask int8");
            total += 1;
            if a32.word != a8.word {
                changed += 1;
            }
        }
    }
    (total, changed)
}

/// Median of a non-empty sample (sorts in place).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

impl QuantReport {
    /// `true` when the full-scale acceptance bounds hold: every softmax
    /// mode at or above [`SPEEDUP_TARGET`], the worst logit error within
    /// the published bound, and no bAbI answer changed. Only meaningful
    /// for [`Scale::Full`] runs.
    pub fn meets_target(&self) -> bool {
        let speed_ok = self
            .speedup
            .iter()
            .all(|e| e.speedup >= self.speedup_target);
        let error_ok = self.logit_max_rel_error <= self.error_limit;
        let answers_ok = self.answers_total > 0 && self.answers_changed == 0;
        speed_ok && error_ok && answers_ok
    }

    /// Sanity gate for CI smoke runs: finite positive measurements, the
    /// error bound holds (it is shape-independent, unlike the timings),
    /// and answer parity holds. Deliberately ignores the speedup ratio —
    /// a loaded CI runner must not flake the job on a noisy timing.
    pub fn sane(&self) -> bool {
        let timings_finite = self.speedup.iter().all(|e| {
            e.f32_seconds > 0.0 && e.int8_seconds > 0.0 && e.speedup.is_finite() && e.speedup > 0.0
        });
        timings_finite
            && self.logit_max_rel_error.is_finite()
            && self.logit_max_rel_error <= self.error_limit
            && self.answers_total > 0
            && self.answers_changed == 0
    }

    /// Human-readable companion table.
    pub fn table(&self) -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "Int8 quantized memory plane: inference-phase speedup",
            &["measurement", "f32 s", "int8 s", "speedup"],
        );
        for e in &self.speedup {
            t.row(vec![
                format!("column forward ({})", e.mode),
                f(e.f32_seconds),
                f(e.int8_seconds),
                format!("{:.2}x", e.speedup),
            ]);
        }
        t.note(format!(
            "ns={}, ed={}, chunk={}: {} bytes/question f32 vs {} int8 ({:.3}x)",
            self.ns, self.ed, self.chunk, self.f32_bytes, self.int8_bytes, self.bytes_ratio
        ));
        t.note(format!(
            "logit max-rel-error {:.2e} (bound {:.0e}); {} bAbI answers, {} changed",
            self.logit_max_rel_error, self.error_limit, self.answers_total, self.answers_changed
        ));
        t.note(format!(
            "targets: speedup >= {:.1}x per mode, error <= bound, answers unchanged — {}",
            self.speedup_target,
            if self.meets_target() {
                "met"
            } else {
                "NOT met (expected for smoke shapes)"
            }
        ));
        t
    }

    /// Serializes the report as JSON (hand-rolled: the workspace builds
    /// offline with no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"ns\": {}, \"ed\": {}, \"chunk\": {},\n",
            self.ns, self.ed, self.chunk
        ));
        out.push_str(&format!(
            "  \"speedup_target\": {:.1}, \"error_limit\": {:.6}, \"meets_target\": {},\n",
            self.speedup_target,
            self.error_limit,
            self.meets_target()
        ));
        out.push_str(&format!(
            "  \"f32_bytes\": {}, \"int8_bytes\": {}, \"bytes_ratio\": {:.6},\n",
            self.f32_bytes, self.int8_bytes, self.bytes_ratio
        ));
        out.push_str("  \"speedup\": [\n");
        for (i, e) in self.speedup.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"mode\": \"{}\",\n", e.mode));
            out.push_str(&format!("      \"f32_seconds\": {:.12},\n", e.f32_seconds));
            out.push_str(&format!(
                "      \"int8_seconds\": {:.12},\n",
                e.int8_seconds
            ));
            out.push_str(&format!("      \"speedup\": {:.4}\n", e.speedup));
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.speedup.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"logit_max_rel_error\": {:.9},\n",
            self.logit_max_rel_error
        ));
        out.push_str(&format!(
            "  \"answers_total\": {}, \"answers_changed\": {}\n",
            self.answers_total, self.answers_changed
        ));
        out.push_str("}\n");
        out
    }

    /// Writes [`QuantReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_modes_and_holds_its_bounds() {
        let report = run(Scale::Smoke);
        let modes: Vec<_> = report.speedup.iter().map(|e| e.mode).collect();
        assert_eq!(modes, ["lazy", "online"]);
        assert!(report.sane(), "smoke run failed its own sanity gate");
        assert!(
            report.logit_max_rel_error <= report.error_limit,
            "logit error {} above bound {}",
            report.logit_max_rel_error,
            report.error_limit
        );
        assert_eq!(report.answers_changed, 0, "int8 changed a bAbI answer");
        assert!(report.bytes_ratio < 0.5, "ratio {}", report.bytes_ratio);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(Scale::Smoke);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"speedup\"",
            "\"logit_max_rel_error\"",
            "\"answers_changed\"",
            "\"bytes_ratio\"",
            "\"meets_target\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}

//! Machine-readable kernel-backend benchmark: scalar vs SIMD for the
//! hot-path kernels, plus the fused chunk kernel vs the two-pass dataflow
//! end-to-end.
//!
//! Companion to [`crate::engine_report`]: the Criterion benches are for
//! interactive exploration; this module produces one structured artifact
//! (`BENCH_kernels.json`) that CI uploads so backend regressions are
//! diffable. All kernel timings go through the explicit
//! [`mnn_tensor::simd`] `_with` entry points, so the report never mutates
//! the process-global backend.

use crate::table::{f, ExperimentTable};
use crate::Scale;
use mnn_tensor::simd::{self, Backend};
use mnn_tensor::Matrix;
use mnnfast::{EngineKind, ExecPlan, Executor, MnnFastConfig, Scratch, Trace};
use std::hint::black_box;
use std::time::Instant;

/// One baseline-vs-candidate timing pair.
#[derive(Debug, Clone)]
pub struct KernelEntry {
    /// Stable kernel name (`dot_64`, `gemv_chunk_256x64`, ...).
    pub name: &'static str,
    /// What the baseline column measures (e.g. `scalar`).
    pub baseline: String,
    /// What the candidate column measures (e.g. `avx2`, `fused`).
    pub candidate: String,
    /// Mean seconds per operation, baseline implementation.
    pub baseline_seconds: f64,
    /// Mean seconds per operation, candidate implementation.
    pub candidate_seconds: f64,
}

impl KernelEntry {
    /// Baseline time over candidate time (> 1.0 means the candidate wins).
    pub fn speedup(&self) -> f64 {
        self.baseline_seconds / self.candidate_seconds.max(1e-12)
    }
}

/// A full kernel benchmark run.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Embedding dimension the micro-kernels ran at (the paper's BoW dim).
    pub ed: usize,
    /// The SIMD backend the candidate columns used.
    pub backend: Backend,
    /// Memory rows for the end-to-end fused-vs-two-pass comparison.
    pub ns: usize,
    /// One entry per benchmarked kernel.
    pub entries: Vec<KernelEntry>,
}

/// Times `op` over `iters` calls and returns mean seconds per call.
fn per_call(iters: usize, mut op: impl FnMut()) -> f64 {
    // Untimed warm-up settles caches and branch predictors.
    op();
    let t0 = Instant::now();
    for _ in 0..iters {
        op();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Best-of-`reps` wrapper around [`per_call`]: on a busy single core the
/// minimum is the least noisy estimator of the kernel's true cost.
fn best_of(reps: usize, iters: usize, mut op: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| per_call(iters, &mut op))
        .fold(f64::INFINITY, f64::min)
}

fn deterministic_vec(n: usize, seed: f32) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * 0.37 + seed).sin()).collect()
}

/// Runs the scalar-vs-SIMD kernel comparison at embedding dim 64 plus the
/// fused-vs-two-pass end-to-end comparison on the fig 9 engine shape.
///
/// The candidate backend is whatever [`simd::backend`] resolved to; when it
/// is [`Backend::Scalar`] (forced, or no AVX2) the kernel speedups are ~1
/// by construction and the JSON records that via the `backend` field.
pub fn run(scale: Scale) -> KernelReport {
    let ed = 64;
    let be = simd::backend();
    let reps = scale.pick(5, 2);
    let mut entries = Vec::new();

    // dot at the paper's embedding dimension.
    {
        let a = deterministic_vec(ed, 0.0);
        let b = deterministic_vec(ed, 1.0);
        let iters = scale.pick(400_000, 4_000);
        let scalar = best_of(reps, iters, || {
            black_box(simd::dot_with(Backend::Scalar, black_box(&a), &b));
        });
        let vector = best_of(reps, iters, || {
            black_box(simd::dot_with(be, black_box(&a), &b));
        });
        entries.push(KernelEntry {
            name: "dot_64",
            baseline: Backend::Scalar.label().to_string(),
            candidate: be.label().to_string(),
            baseline_seconds: scalar,
            candidate_seconds: vector,
        });
    }

    // One chunk of the inner-product phase: 256 rows x 64 cols.
    {
        let rows = 256;
        let chunk = deterministic_vec(rows * ed, 0.3);
        let u = deterministic_vec(ed, 0.7);
        let mut out = vec![0.0f32; rows];
        let iters = scale.pick(4_000, 40);
        let scalar = best_of(reps, iters, || {
            simd::gemv_chunk_with(Backend::Scalar, black_box(&chunk), rows, &u, &mut out);
            black_box(&mut out);
        });
        let vector = best_of(reps, iters, || {
            simd::gemv_chunk_with(be, black_box(&chunk), rows, &u, &mut out);
            black_box(&mut out);
        });
        entries.push(KernelEntry {
            name: "gemv_chunk_256x64",
            baseline: Backend::Scalar.label().to_string(),
            candidate: be.label().to_string(),
            baseline_seconds: scalar,
            candidate_seconds: vector,
        });
    }

    // Exponentiation of a chunk of logits: libm vs the polynomial kernel.
    {
        let n = 4096;
        let logits = deterministic_vec(n, 0.5);
        let mut buf = vec![0.0f32; n];
        let iters = scale.pick(2_000, 20);
        let scalar = best_of(reps, iters, || {
            buf.copy_from_slice(&logits);
            black_box(simd::exp_slice_with(Backend::Scalar, black_box(&mut buf)));
        });
        let vector = best_of(reps, iters, || {
            buf.copy_from_slice(&logits);
            black_box(simd::exp_slice_with(be, black_box(&mut buf)));
        });
        entries.push(KernelEntry {
            name: "exp_slice_4096",
            baseline: "scalar_libm".to_string(),
            candidate: be.label().to_string(),
            baseline_seconds: scalar,
            candidate_seconds: vector,
        });
    }

    // End-to-end: the fig 9 column engine with the fused chunk kernel vs
    // the two-pass reference dataflow, both on the active backend.
    let ns = scale.pick(200_000, 4_000);
    {
        let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 31 + c * 7) as f32 * 0.001).sin() * 0.3);
        let m_out = Matrix::from_fn(ns, ed, |r, c| ((r * 13 + c * 5) as f32 * 0.002).cos() * 0.3);
        let u = deterministic_vec(ed, 0.9);
        let questions = scale.pick(4, 2);
        let time_config = |config: MnnFastConfig| {
            let exec = ExecPlan::new(config)
                .with_kind(EngineKind::Column)
                .executor();
            let mut scratch = Scratch::new();
            let mut trace = Trace::disabled();
            best_of(reps.min(3), questions, || {
                let out = exec
                    .forward_prefix(&m_in, &m_out, ns, &u, &mut scratch, &mut trace)
                    .expect("valid shapes");
                scratch.recycle(black_box(out).o);
            })
        };
        let two_pass = time_config(MnnFastConfig::new(1000).with_fused(false));
        let fused = time_config(MnnFastConfig::new(1000));
        entries.push(KernelEntry {
            name: "column_forward_fig09",
            baseline: "two_pass".to_string(),
            candidate: "fused".to_string(),
            baseline_seconds: two_pass,
            candidate_seconds: fused,
        });
    }

    KernelReport {
        ed,
        backend: be,
        ns,
        entries,
    }
}

impl KernelReport {
    /// Human-readable companion table.
    pub fn table(&self) -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "Kernel backend: scalar vs SIMD, and fused vs two-pass",
            &[
                "kernel",
                "baseline",
                "candidate",
                "baseline us",
                "candidate us",
                "speedup",
            ],
        );
        for e in &self.entries {
            t.row(vec![
                e.name.to_string(),
                e.baseline.clone(),
                e.candidate.clone(),
                f(e.baseline_seconds * 1e6),
                f(e.candidate_seconds * 1e6),
                format!("{:.2}x", e.speedup()),
            ]);
        }
        t.note(format!(
            "ed={}, ns={}, active backend={}; best-of-N mean per call",
            self.ed,
            self.ns,
            self.backend.label()
        ));
        t.note(format!(
            "fast-exp max relative error bound: {:e}",
            simd::EXP_MAX_REL_ERROR
        ));
        t
    }

    /// Serializes the report as JSON (hand-rolled: the workspace builds
    /// offline with no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"ed\": {}, \"ns\": {}, \"backend\": \"{}\",\n",
            self.ed,
            self.ns,
            self.backend.label()
        ));
        out.push_str(&format!(
            "  \"exp_max_rel_error\": {:e},\n",
            simd::EXP_MAX_REL_ERROR
        ));
        out.push_str("  \"kernels\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", e.name));
            out.push_str(&format!("      \"baseline\": \"{}\",\n", e.baseline));
            out.push_str(&format!("      \"candidate\": \"{}\",\n", e.candidate));
            out.push_str(&format!(
                "      \"baseline_seconds\": {:.12},\n",
                e.baseline_seconds
            ));
            out.push_str(&format!(
                "      \"candidate_seconds\": {:.12},\n",
                e.candidate_seconds
            ));
            out.push_str(&format!("      \"speedup\": {:.4}\n", e.speedup()));
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`KernelReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_every_kernel_with_positive_times() {
        let report = run(Scale::Smoke);
        let names: Vec<_> = report.entries.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            [
                "dot_64",
                "gemv_chunk_256x64",
                "exp_slice_4096",
                "column_forward_fig09"
            ]
        );
        for e in &report.entries {
            assert!(e.baseline_seconds > 0.0, "{}", e.name);
            assert!(e.candidate_seconds > 0.0, "{}", e.name);
            assert!(e.speedup().is_finite(), "{}", e.name);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(Scale::Smoke);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"kernels\"",
            "\"name\": \"dot_64\"",
            "\"name\": \"column_forward_fig09\"",
            "\"exp_max_rel_error\"",
            "\"backend\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn table_lists_all_kernels() {
        let report = run(Scale::Smoke);
        let t = report.table();
        assert_eq!(t.headers.len(), 6);
        assert_eq!(t.rows.len(), 4);
    }
}

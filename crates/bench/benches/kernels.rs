//! Criterion micro-benchmarks of the tensor substrate: the kernels whose
//! cost structure underlies every experiment (dot/GEMV/softmax).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mnn_tensor::simd::{self, Backend};
use mnn_tensor::softmax::{softmax_in_place, LazyAccumulator, OnlineSoftmax};
use mnn_tensor::{kernels, Matrix};
use std::hint::black_box;

/// Backends to compare: the scalar reference always, AVX2 when this CPU
/// has it (each is benchmarked through the explicit `_with` entry points,
/// so the process-global backend is never touched).
fn backends() -> Vec<Backend> {
    if Backend::detect() == Backend::Avx2 {
        vec![Backend::Scalar, Backend::Avx2]
    } else {
        vec![Backend::Scalar]
    }
}

fn make_vec(n: usize, seed: f32) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * 0.37 + seed).sin()).collect()
}

fn bench_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot");
    for &n in &[64usize, 1024, 16384] {
        let a = make_vec(n, 0.0);
        let b = make_vec(n, 1.0);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| kernels::dot(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemv");
    for &(rows, cols) in &[(1000usize, 48usize), (10_000, 48), (1000, 256)] {
        let m = Matrix::from_fn(rows, cols, |r, col| ((r + col) as f32 * 0.01).sin());
        let x = make_vec(cols, 0.5);
        let mut out = vec![0.0f32; rows];
        g.throughput(Throughput::Elements((rows * cols) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &rows,
            |bench, _| {
                bench.iter(|| {
                    kernels::gemv(black_box(&m), black_box(&x), black_box(&mut out)).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_softmax_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("softmax");
    let n = 10_000usize;
    let logits = make_vec(n, 0.2);
    let rows: Vec<Vec<f32>> = (0..n).map(|i| make_vec(48, i as f32)).collect();

    g.bench_function("baseline_softmax_in_place", |b| {
        b.iter(|| {
            let mut x = logits.clone();
            softmax_in_place(black_box(&mut x));
            x
        })
    });
    g.bench_function("lazy_accumulate_48d", |b| {
        b.iter(|| {
            let mut acc = LazyAccumulator::new(48);
            for (l, row) in logits.iter().zip(&rows) {
                acc.add_weighted(l.exp(), row);
            }
            acc.finish()
        })
    });
    g.bench_function("online_accumulate_48d", |b| {
        b.iter(|| {
            let mut acc = OnlineSoftmax::new(48);
            for (l, row) in logits.iter().zip(&rows) {
                acc.add(*l, row);
            }
            acc.finish()
        })
    });
    g.finish();
}

/// Scalar vs AVX2 `dot` at the paper's embedding dimensions.
fn bench_dot_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot_backend");
    for &n in &[64usize, 1024] {
        let a = make_vec(n, 0.0);
        let b = make_vec(n, 1.0);
        g.throughput(Throughput::Elements(n as u64));
        for be in backends() {
            g.bench_with_input(BenchmarkId::new(be.label(), n), &n, |bench, _| {
                bench.iter(|| simd::dot_with(be, black_box(&a), black_box(&b)))
            });
        }
    }
    g.finish();
}

/// Scalar vs AVX2 row-chunk GEMV (the inner-product phase's kernel).
fn bench_gemv_chunk_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemv_chunk_backend");
    let (rows, cols) = (1000usize, 64usize);
    let chunk: Vec<f32> = (0..rows * cols).map(|i| (i as f32 * 0.013).sin()).collect();
    let x = make_vec(cols, 0.5);
    let mut out = vec![0.0f32; rows];
    g.throughput(Throughput::Elements((rows * cols) as u64));
    for be in backends() {
        g.bench_with_input(
            BenchmarkId::new(be.label(), format!("{rows}x{cols}")),
            &rows,
            |bench, _| {
                bench.iter(|| {
                    simd::gemv_chunk_with(be, black_box(&chunk), rows, black_box(&x), &mut out);
                    black_box(&mut out);
                })
            },
        );
    }
    g.finish();
}

/// libm exp (scalar backend) vs the polynomial fast exp (AVX2 backend)
/// over a chunk of logits.
fn bench_exp_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_backend");
    let n = 4096usize;
    let logits = make_vec(n, 0.2);
    let mut buf = vec![0.0f32; n];
    g.throughput(Throughput::Elements(n as u64));
    for be in backends() {
        g.bench_with_input(BenchmarkId::new(be.label(), n), &n, |bench, _| {
            bench.iter(|| {
                buf.copy_from_slice(&logits);
                simd::exp_slice_with(be, black_box(&mut buf))
            })
        });
    }
    g.finish();
}

/// Scalar vs AVX2 fused chunk kernel (inner product + exp + weighted
/// accumulate in one pass) on a fig 9-shaped chunk.
fn bench_fused_chunk_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("fused_chunk_backend");
    let (rows, cols) = (1000usize, 64usize);
    let in_flat: Vec<f32> = (0..rows * cols).map(|i| (i as f32 * 0.011).sin()).collect();
    let out_flat: Vec<f32> = (0..rows * cols).map(|i| (i as f32 * 0.017).cos()).collect();
    let u = make_vec(cols, 0.4);
    let mut ws = vec![0.0f32; cols];
    g.throughput(Throughput::Elements((rows * cols) as u64));
    for be in backends() {
        g.bench_with_input(
            BenchmarkId::new(be.label(), format!("{rows}x{cols}")),
            &rows,
            |bench, _| {
                bench.iter(|| {
                    ws.iter_mut().for_each(|w| *w = 0.0);
                    simd::fused_chunk_lazy_with(
                        be,
                        black_box(&in_flat),
                        black_box(&out_flat),
                        rows,
                        black_box(&u),
                        None,
                        &mut ws,
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dot, bench_gemv, bench_softmax_variants,
        bench_dot_backends, bench_gemv_chunk_backends, bench_exp_backends,
        bench_fused_chunk_backends
}
criterion_main!(benches);

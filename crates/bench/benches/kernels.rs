//! Criterion micro-benchmarks of the tensor substrate: the kernels whose
//! cost structure underlies every experiment (dot/GEMV/softmax).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mnn_tensor::softmax::{softmax_in_place, LazyAccumulator, OnlineSoftmax};
use mnn_tensor::{kernels, Matrix};
use std::hint::black_box;

fn make_vec(n: usize, seed: f32) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * 0.37 + seed).sin()).collect()
}

fn bench_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot");
    for &n in &[64usize, 1024, 16384] {
        let a = make_vec(n, 0.0);
        let b = make_vec(n, 1.0);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| kernels::dot(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemv");
    for &(rows, cols) in &[(1000usize, 48usize), (10_000, 48), (1000, 256)] {
        let m = Matrix::from_fn(rows, cols, |r, col| ((r + col) as f32 * 0.01).sin());
        let x = make_vec(cols, 0.5);
        let mut out = vec![0.0f32; rows];
        g.throughput(Throughput::Elements((rows * cols) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &rows,
            |bench, _| {
                bench.iter(|| {
                    kernels::gemv(black_box(&m), black_box(&x), black_box(&mut out)).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_softmax_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("softmax");
    let n = 10_000usize;
    let logits = make_vec(n, 0.2);
    let rows: Vec<Vec<f32>> = (0..n).map(|i| make_vec(48, i as f32)).collect();

    g.bench_function("baseline_softmax_in_place", |b| {
        b.iter(|| {
            let mut x = logits.clone();
            softmax_in_place(black_box(&mut x));
            x
        })
    });
    g.bench_function("lazy_accumulate_48d", |b| {
        b.iter(|| {
            let mut acc = LazyAccumulator::new(48);
            for (l, row) in logits.iter().zip(&rows) {
                acc.add_weighted(l.exp(), row);
            }
            acc.finish()
        })
    });
    g.bench_function("online_accumulate_48d", |b| {
        b.iter(|| {
            let mut acc = OnlineSoftmax::new(48);
            for (l, row) in logits.iter().zip(&rows) {
                acc.add(*l, row);
            }
            acc.finish()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dot, bench_gemv, bench_softmax_variants
}
criterion_main!(benches);

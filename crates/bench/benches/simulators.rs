//! Criterion benchmarks of the simulation substrates themselves: LLC
//! replay throughput, embedding-cache lookups, and the scale-out engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mnn_dataset::zipf::ZipfSampler;
use mnn_memsim::cache::SetAssocCache;
use mnn_memsim::dataflow::{replay, DataflowConfig, Variant};
use mnn_memsim::EmbeddingCache;
use mnn_tensor::Matrix;
use mnnfast::parallel::ParallelEngine;
use mnnfast::MnnFastConfig;
use std::hint::black_box;

fn bench_llc_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("llc_replay");
    let config = DataflowConfig {
        ns: 20_000,
        ed: 48,
        chunk: 1000,
        questions: 2,
        skip_fraction: 0.9,
        hops: 1,
    };
    for v in Variant::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, &v| {
            b.iter(|| {
                let mut llc = SetAssocCache::new(256 << 10, 16, 64).unwrap();
                replay(v, black_box(config), &mut llc).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_embedding_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("embedding_cache");
    let mut z = ZipfSampler::new(10_000, 1.1, 7).unwrap();
    let trace = z.trace(100_000);
    g.throughput(Throughput::Elements(trace.len() as u64));
    for ways in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("lookup", ways), &ways, |b, &ways| {
            b.iter(|| {
                let mut cache = EmbeddingCache::set_associative(128 << 10, 256, ways).unwrap();
                cache.run_trace(black_box(&trace))
            })
        });
    }
    g.finish();
}

fn bench_parallel_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("scale_out");
    let ns = 50_000;
    let ed = 48;
    let m_in = Matrix::from_fn(ns, ed, |r, col| ((r + col) as f32 * 1e-3).sin());
    let m_out = Matrix::from_fn(ns, ed, |r, col| ((r * col) as f32 * 1e-3).cos());
    let u: Vec<f32> = (0..ed).map(|i| (i as f32 * 0.2).sin()).collect();
    g.throughput(Throughput::Elements((ns * ed) as u64));
    for threads in [1usize, 2, 4] {
        let engine = ParallelEngine::new(MnnFastConfig::new(1000).with_threads(threads));
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                engine
                    .forward(black_box(&m_in), black_box(&m_out), &u)
                    .unwrap()
                    .o
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_llc_replay, bench_embedding_cache, bench_parallel_engine
}
criterion_main!(benches);

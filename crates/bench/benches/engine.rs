//! Criterion benchmarks of the inference engines: baseline vs column-based
//! vs streaming vs zero-skipping, plus the chunk-size ablation of
//! DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mnn_tensor::softmax::softmax_in_place;
use mnn_tensor::{kernels, Matrix};
use mnnfast::streaming::StreamingEngine;
use mnnfast::{ColumnEngine, Executor, MnnFastConfig, Scratch, SkipPolicy, SoftmaxMode, Trace};
use std::hint::black_box;

const NS: usize = 50_000;
const ED: usize = 48;

fn memories() -> (Matrix, Matrix, Vec<f32>) {
    let m_in = Matrix::from_fn(NS, ED, |r, c| ((r * 31 + c) as f32 * 0.001).sin() * 0.4);
    let m_out = Matrix::from_fn(NS, ED, |r, c| ((r * 7 + c) as f32 * 0.002).cos() * 0.4);
    let u: Vec<f32> = (0..ED).map(|i| (i as f32 * 0.3).sin()).collect();
    (m_in, m_out, u)
}

/// The baseline dataflow: full-length T_IN / P spill between layers.
fn baseline_forward(m_in: &Matrix, m_out: &Matrix, u: &[f32]) -> Vec<f32> {
    let mut p = vec![0.0f32; m_in.rows()];
    kernels::gemv(m_in, u, &mut p).unwrap();
    softmax_in_place(&mut p);
    let mut o = vec![0.0f32; m_out.cols()];
    kernels::gevm(&p, m_out, &mut o).unwrap();
    o
}

fn bench_variants(c: &mut Criterion) {
    let (m_in, m_out, u) = memories();
    let mut g = c.benchmark_group("variants");
    g.throughput(Throughput::Elements((NS * ED) as u64));

    g.bench_function("baseline", |b| {
        b.iter(|| baseline_forward(black_box(&m_in), black_box(&m_out), black_box(&u)))
    });
    let column = ColumnEngine::new(MnnFastConfig::new(1000));
    g.bench_function("column", |b| {
        b.iter(|| {
            column
                .forward(black_box(&m_in), black_box(&m_out), &u)
                .unwrap()
                .o
        })
    });
    let two_pass = ColumnEngine::new(MnnFastConfig::new(1000).with_fused(false));
    g.bench_function("column_twopass", |b| {
        b.iter(|| {
            two_pass
                .forward(black_box(&m_in), black_box(&m_out), &u)
                .unwrap()
                .o
        })
    });
    let streaming = StreamingEngine::new(MnnFastConfig::new(1000));
    g.bench_function("column_streaming", |b| {
        b.iter(|| {
            streaming
                .forward(black_box(&m_in), black_box(&m_out), &u)
                .unwrap()
                .o
        })
    });
    let skip = ColumnEngine::new(MnnFastConfig::new(1000).with_skip(SkipPolicy::RawWeight(1.0)));
    g.bench_function("column_zero_skip", |b| {
        b.iter(|| {
            skip.forward(black_box(&m_in), black_box(&m_out), &u)
                .unwrap()
                .o
        })
    });
    let online = ColumnEngine::new(MnnFastConfig::new(1000).with_softmax(SoftmaxMode::Online));
    g.bench_function("column_online_softmax", |b| {
        b.iter(|| {
            online
                .forward(black_box(&m_in), black_box(&m_out), &u)
                .unwrap()
                .o
        })
    });
    g.finish();
}

/// Disabled tracing must cost nothing measurable: the same executor and
/// scratch run with a disabled and an enabled trace, so any gap between the
/// two bars is the observability overhead.
fn bench_trace_overhead(c: &mut Criterion) {
    let (m_in, m_out, u) = memories();
    let engine = ColumnEngine::new(MnnFastConfig::new(1000));
    let mut g = c.benchmark_group("trace_overhead");
    g.throughput(Throughput::Elements((NS * ED) as u64));

    let mut scratch = Scratch::new();
    g.bench_function("disabled", |b| {
        b.iter(|| {
            let mut trace = Trace::disabled();
            let out = engine
                .forward_prefix(
                    black_box(&m_in),
                    black_box(&m_out),
                    NS,
                    &u,
                    &mut scratch,
                    &mut trace,
                )
                .unwrap();
            scratch.recycle(black_box(out).o);
        })
    });
    g.bench_function("enabled", |b| {
        b.iter(|| {
            let mut trace = Trace::enabled();
            let out = engine
                .forward_prefix(
                    black_box(&m_in),
                    black_box(&m_out),
                    NS,
                    &u,
                    &mut scratch,
                    &mut trace,
                )
                .unwrap();
            scratch.recycle(black_box(out).o);
        })
    });
    g.finish();
}

fn bench_chunk_sweep(c: &mut Criterion) {
    let (m_in, m_out, u) = memories();
    let mut g = c.benchmark_group("chunk_sweep");
    for &chunk in &[64usize, 256, 1024, 4096, 16384] {
        let engine = ColumnEngine::new(MnnFastConfig::new(chunk));
        g.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, _| {
            b.iter(|| {
                engine
                    .forward(black_box(&m_in), black_box(&m_out), &u)
                    .unwrap()
                    .o
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_variants, bench_trace_overhead, bench_chunk_sweep
}
criterion_main!(benches);

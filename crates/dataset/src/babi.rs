//! Synthetic bAbI-style story/question generator.
//!
//! Facebook's bAbI tasks [Weston et al. 2015] are procedurally generated
//! text: agents move between locations and manipulate objects; questions ask
//! about the resulting world state and are answerable from one or two
//! *supporting* sentences. This module regenerates that structure directly:
//! a simulated world emits natural-language-shaped token sequences while the
//! generator records the ground-truth supporting facts.
//!
//! Fidelity to the paper's use of bAbI:
//! - attention should concentrate on the few supporting sentences (Fig 6),
//! - a trained MemNN should reach high accuracy so the zero-skipping
//!   accuracy-loss sweep (Fig 7) is meaningful,
//! - stories have up to 50 sentences and a bounded sentence length `nw`,
//!   matching Section 3.2's evaluation setup.

use crate::vocab::{Vocabulary, WordId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Which bAbI-style task family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Task 1: "Where is *person*?" — one supporting fact (the person's most
    /// recent movement).
    SingleSupportingFact,
    /// Task 2: "Where is the *object*?" — two supporting facts (who holds or
    /// dropped the object, and where that happened).
    TwoSupportingFacts,
    /// Task 6-style: "Is *person* in the *location*?" — yes/no answer with
    /// one supporting fact.
    YesNo,
    /// Task 7-style: "How many objects is *person* carrying?" — counting
    /// over the person's grab/drop history.
    Counting,
    /// Task 9-style: stories contain negated facts ("*person* is not in the
    /// *location*"); questions are yes/no/maybe about locations.
    Negation,
    /// Inverse object lookup: "Who has the *object*?" — answer is a person.
    WhoHas,
    /// Task 14-style time reasoning: "Where was *person* before the
    /// *location*?" — answer is the previous location.
    BeforeLocation,
}

impl TaskKind {
    /// All task kinds, for sweep-style experiments.
    pub const ALL: [TaskKind; 7] = [
        TaskKind::SingleSupportingFact,
        TaskKind::TwoSupportingFacts,
        TaskKind::YesNo,
        TaskKind::Counting,
        TaskKind::Negation,
        TaskKind::WhoHas,
        TaskKind::BeforeLocation,
    ];
}

/// A question over a story: its token sequence, the expected answer word,
/// and the indices of the supporting sentences.
#[derive(Debug, Clone, PartialEq)]
pub struct Question {
    /// Question tokens (BoW input to the embedding operation).
    pub tokens: Vec<WordId>,
    /// The single-word answer.
    pub answer: WordId,
    /// Indices into `Story::sentences` of the ground-truth supporting facts.
    pub supporting: Vec<usize>,
}

/// A story: an ordered list of sentences plus questions about it.
#[derive(Debug, Clone, PartialEq)]
pub struct Story {
    /// Sentences in narrative order; each is a token sequence.
    pub sentences: Vec<Vec<WordId>>,
    /// Questions asked after the full story has been observed.
    pub questions: Vec<Question>,
}

impl Story {
    /// Length of the longest sentence (the paper's `nw`).
    pub fn max_sentence_words(&self) -> usize {
        self.sentences.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Internal world state tracked while a story unfolds.
#[derive(Debug, Default, Clone)]
struct World {
    /// person -> (location, sentence index that establishes it)
    person_at: BTreeMap<WordId, (WordId, usize)>,
    /// object -> holder person (and the grab sentence index)
    held_by: BTreeMap<WordId, (WordId, usize)>,
    /// object -> (location, drop sentence index) once dropped
    dropped_at: BTreeMap<WordId, (WordId, usize)>,
    /// person -> (excluded location, sentence index) from a negated fact
    /// more recent than any positive location fact.
    person_not_at: BTreeMap<WordId, (WordId, usize)>,
    /// person -> (previous location, index of the move that LEFT it), set
    /// when a person moves while already having a known location.
    person_was_at: BTreeMap<WordId, (WordId, usize)>,
}

/// Generator of bAbI-style stories with ground-truth supporting facts.
///
/// Deterministic for a given `(kind, seed)` pair, so every experiment in the
/// harness is reproducible.
#[derive(Debug)]
pub struct BabiGenerator {
    kind: TaskKind,
    rng: StdRng,
    vocab: Vocabulary,
    object_action_rate: f32,
    pronoun_rate: f32,
    she: WordId,
    /// Subject of the previous emitted sentence (for pronoun coreference).
    last_subject: Option<WordId>,
    persons: Vec<WordId>,
    locations: Vec<WordId>,
    objects: Vec<WordId>,
    move_verbs: Vec<WordId>,
    to: WordId,
    the: WordId,
    grabbed: WordId,
    dropped: WordId,
    where_w: WordId,
    is_w: WordId,
    in_w: WordId,
    yes: WordId,
    no: WordId,
    how: WordId,
    many: WordId,
    objects_w: WordId,
    carrying: WordId,
    counts: Vec<WordId>,
    not_w: WordId,
    maybe: WordId,
    who: WordId,
    has: WordId,
    was: WordId,
    before: WordId,
    nobody: WordId,
    nowhere: WordId,
}

/// World-shape knobs for the generator.
///
/// Larger worlds make tasks harder (more entities to track, lower prior
/// per answer) and grow the vocabulary the embedding matrices must cover.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Number of person entities (max 8).
    pub persons: usize,
    /// Number of locations (max 8).
    pub locations: usize,
    /// Number of objects (max 6).
    pub objects: usize,
    /// Probability that an object-task sentence manipulates objects rather
    /// than moving a person.
    pub object_action_rate: f32,
    /// Probability that a movement sentence refers to the previous
    /// sentence's subject with a pronoun ("she went to the park") instead
    /// of the name — bAbI task 11-style basic coreference. Resolution is
    /// exact in the world model; only the surface form changes.
    pub pronoun_rate: f32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            persons: PERSONS.len(),
            locations: LOCATIONS.len(),
            objects: OBJECTS.len(),
            object_action_rate: 0.3,
            pronoun_rate: 0.0,
        }
    }
}

impl GeneratorConfig {
    /// Validates the configuration against the available word lists.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if self.persons == 0 || self.persons > PERSONS.len() {
            return Err(format!("persons must be in 1..={}", PERSONS.len()));
        }
        if self.locations < 2 || self.locations > LOCATIONS.len() {
            return Err(format!("locations must be in 2..={}", LOCATIONS.len()));
        }
        if self.objects == 0 || self.objects > OBJECTS.len() {
            return Err(format!("objects must be in 1..={}", OBJECTS.len()));
        }
        if !(0.0..=1.0).contains(&self.object_action_rate) {
            return Err("object_action_rate must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.pronoun_rate) {
            return Err("pronoun_rate must be in [0,1]".into());
        }
        Ok(())
    }
}

const PERSONS: &[&str] = &[
    "mary", "john", "sandra", "daniel", "fred", "bill", "julie", "emma",
];
const LOCATIONS: &[&str] = &[
    "kitchen", "garden", "hallway", "office", "bathroom", "bedroom", "park", "cinema",
];
const OBJECTS: &[&str] = &["apple", "football", "milk", "book", "key", "lamp"];
const MOVE_VERBS: &[&str] = &["went", "journeyed", "travelled", "moved"];

impl BabiGenerator {
    /// Creates a generator for `kind`, deterministic in `seed`, with the
    /// default world shape.
    pub fn new(kind: TaskKind, seed: u64) -> Self {
        Self::with_config(kind, seed, GeneratorConfig::default()).expect("default config is valid")
    }

    /// Creates a generator with an explicit world shape.
    ///
    /// The full word lists are interned regardless of the configured counts
    /// so vocabularies stay identical across configurations (models trained
    /// on one world evaluate on another).
    ///
    /// # Errors
    ///
    /// Returns the validation error of an invalid `config`.
    pub fn with_config(kind: TaskKind, seed: u64, config: GeneratorConfig) -> Result<Self, String> {
        config.validate()?;
        let mut vocab = Vocabulary::new();
        let persons: Vec<WordId> = PERSONS.iter().map(|w| vocab.intern(w)).collect();
        let locations: Vec<WordId> = LOCATIONS.iter().map(|w| vocab.intern(w)).collect();
        let objects: Vec<WordId> = OBJECTS.iter().map(|w| vocab.intern(w)).collect();
        let persons = persons[..config.persons].to_vec();
        let locations = locations[..config.locations].to_vec();
        let objects = objects[..config.objects].to_vec();
        let object_action_rate = config.object_action_rate;
        let pronoun_rate = config.pronoun_rate;
        let move_verbs = MOVE_VERBS.iter().map(|w| vocab.intern(w)).collect();
        let to = vocab.intern("to");
        let the = vocab.intern("the");
        let grabbed = vocab.intern("grabbed");
        let dropped = vocab.intern("dropped");
        let where_w = vocab.intern("where");
        let is_w = vocab.intern("is");
        let in_w = vocab.intern("in");
        let yes = vocab.intern("yes");
        let no = vocab.intern("no");
        let how = vocab.intern("how");
        let many = vocab.intern("many");
        let objects_w = vocab.intern("objects");
        let carrying = vocab.intern("carrying");
        let counts = ["none", "one", "two", "three"]
            .iter()
            .map(|w| vocab.intern(w))
            .collect();
        let not_w = vocab.intern("not");
        let maybe = vocab.intern("maybe");
        let who = vocab.intern("who");
        let has = vocab.intern("has");
        let was = vocab.intern("was");
        let before = vocab.intern("before");
        let nobody = vocab.intern("nobody");
        let nowhere = vocab.intern("nowhere");
        let she = vocab.intern("she");
        Ok(Self {
            kind,
            rng: StdRng::seed_from_u64(seed ^ 0x6d6e_6e66), // "mnnf"
            vocab,
            object_action_rate,
            pronoun_rate,
            last_subject: None,
            persons,
            locations,
            objects,
            move_verbs,
            to,
            the,
            grabbed,
            dropped,
            where_w,
            is_w,
            in_w,
            yes,
            no,
            how,
            many,
            objects_w,
            carrying,
            counts,
            not_w,
            maybe,
            who,
            has,
            was,
            before,
            nobody,
            nowhere,
            she,
        })
    }

    /// The task family being generated.
    pub fn kind(&self) -> TaskKind {
        self.kind
    }

    /// The vocabulary shared by all stories from this generator.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of distinct words (the embedding-matrix width `V`).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Generates one story with `ns` sentences and `nq` questions.
    ///
    /// # Panics
    ///
    /// Panics if `ns == 0` (a story must contain at least one fact to be
    /// questionable).
    pub fn story(&mut self, ns: usize, nq: usize) -> Story {
        assert!(ns > 0, "a story needs at least one sentence");
        self.last_subject = None;
        let mut world = World::default();
        let mut sentences = Vec::with_capacity(ns);

        // Sentence 0 is always a movement so at least one person has a
        // well-defined location.
        sentences.push(self.emit_move(&mut world, 0));
        for idx in 1..ns {
            let roll: f32 = self.rng.random();
            let uses_objects = matches!(
                self.kind,
                TaskKind::TwoSupportingFacts | TaskKind::Counting | TaskKind::WhoHas
            );
            let sentence = if uses_objects && roll < self.object_action_rate {
                self.emit_grab_or_drop(&mut world, idx)
            } else if self.kind == TaskKind::Negation && roll < 0.4 {
                self.emit_negation(&mut world, idx)
            } else {
                self.emit_move(&mut world, idx)
            };
            sentences.push(sentence);
        }

        let mut questions = Vec::with_capacity(nq);
        for _ in 0..nq {
            questions.push(self.emit_question(&world));
        }
        Story {
            sentences,
            questions,
        }
    }

    /// Generates a dataset of independent stories (e.g. train/test splits).
    pub fn dataset(&mut self, n_stories: usize, ns: usize, nq: usize) -> Vec<Story> {
        (0..n_stories).map(|_| self.story(ns, nq)).collect()
    }

    fn pick<T: Copy>(rng: &mut StdRng, items: &[T]) -> T {
        items[rng.random_range(0..items.len())]
    }

    fn emit_move(&mut self, world: &mut World, idx: usize) -> Vec<WordId> {
        // Pronoun coreference: re-use the previous subject and say "she".
        let use_pronoun = self.pronoun_rate > 0.0
            && self.last_subject.is_some()
            && self.rng.random::<f32>() < self.pronoun_rate;
        let person = if use_pronoun {
            self.last_subject.expect("checked above")
        } else {
            Self::pick(&mut self.rng, &self.persons)
        };
        let location = Self::pick(&mut self.rng, &self.locations);
        let verb = Self::pick(&mut self.rng, &self.move_verbs);
        if let Some(&(previous, _)) = world.person_at.get(&person) {
            if previous != location {
                world.person_was_at.insert(person, (previous, idx));
            }
        }
        world.person_at.insert(person, (location, idx));
        world.person_not_at.remove(&person);
        self.last_subject = Some(person);
        let subject_word = if use_pronoun { self.she } else { person };
        vec![subject_word, verb, self.to, self.the, location]
    }

    /// "*person* is not in the *location*": the person's whereabouts become
    /// uncertain except for the excluded location.
    fn emit_negation(&mut self, world: &mut World, idx: usize) -> Vec<WordId> {
        let person = Self::pick(&mut self.rng, &self.persons);
        let location = Self::pick(&mut self.rng, &self.locations);
        world.person_at.remove(&person);
        world.person_not_at.insert(person, (location, idx));
        vec![person, self.is_w, self.not_w, self.in_w, self.the, location]
    }

    fn emit_grab_or_drop(&mut self, world: &mut World, idx: usize) -> Vec<WordId> {
        // Prefer dropping a held object half of the time.
        let holders: Vec<(WordId, WordId)> = world
            .held_by
            .iter()
            .map(|(&obj, &(person, _))| (obj, person))
            .collect();
        if !holders.is_empty() && self.rng.random::<f32>() < 0.5 {
            let (obj, person) = Self::pick(&mut self.rng, &holders);
            world.held_by.remove(&obj);
            if let Some(&(loc, _)) = world.person_at.get(&person) {
                world.dropped_at.insert(obj, (loc, idx));
            }
            return vec![person, self.dropped, self.the, obj];
        }
        // Otherwise a located person grabs a free object.
        let located: Vec<WordId> = world.person_at.keys().copied().collect();
        let free: Vec<WordId> = self
            .objects
            .iter()
            .copied()
            .filter(|o| !world.held_by.contains_key(o))
            .collect();
        if located.is_empty() || free.is_empty() {
            return self.emit_move(world, idx);
        }
        let person = Self::pick(&mut self.rng, &located);
        let obj = Self::pick(&mut self.rng, &free);
        world.held_by.insert(obj, (person, idx));
        world.dropped_at.remove(&obj);
        vec![person, self.grabbed, self.the, obj]
    }

    fn emit_question(&mut self, world: &World) -> Question {
        match self.kind {
            TaskKind::SingleSupportingFact => self.question_where_person(world),
            TaskKind::TwoSupportingFacts => self.question_where_object(world),
            TaskKind::YesNo => self.question_yes_no(world),
            TaskKind::Counting => self.question_counting(world),
            TaskKind::Negation => self.question_negation(world),
            TaskKind::WhoHas => self.question_who_has(world),
            TaskKind::BeforeLocation => self.question_before(world),
        }
    }

    fn question_where_person(&mut self, world: &World) -> Question {
        let known: Vec<WordId> = world.person_at.keys().copied().collect();
        let person = Self::pick(&mut self.rng, &known);
        let (loc, fact) = world.person_at[&person];
        Question {
            tokens: vec![self.where_w, self.is_w, person],
            answer: loc,
            supporting: vec![fact],
        }
    }

    fn question_where_object(&mut self, world: &World) -> Question {
        // Objects currently held: answer is the holder's location
        // (supporting = grab sentence + holder's move sentence).
        let mut candidates: Vec<(WordId, WordId, Vec<usize>)> = Vec::new();
        for (&obj, &(person, grab_idx)) in &world.held_by {
            if let Some(&(loc, move_idx)) = world.person_at.get(&person) {
                let mut sup = vec![grab_idx, move_idx];
                sup.sort_unstable();
                sup.dedup();
                candidates.push((obj, loc, sup));
            }
        }
        // Dropped objects: answer is the drop location.
        for (&obj, &(loc, drop_idx)) in &world.dropped_at {
            if !world.held_by.contains_key(&obj) {
                candidates.push((obj, loc, vec![drop_idx]));
            }
        }
        if candidates.is_empty() {
            // No object has a determinable location — fall back to task 1.
            return self.question_where_person(world);
        }
        let (obj, loc, supporting) = Self::pick(
            &mut self.rng,
            &(0..candidates.len()).collect::<Vec<usize>>(),
        )
        .pipe(|i| candidates[i].clone());
        Question {
            tokens: vec![self.where_w, self.is_w, self.the, obj],
            answer: loc,
            supporting,
        }
    }

    /// "How many objects is *person* carrying?" — counts the person's held
    /// objects; supporting facts are the grab sentences of those objects
    /// (or the person's latest movement when the count is zero).
    /// "Is *person* in the *location*?" under negated knowledge: `yes` when
    /// a positive fact places them there, `no` when a positive fact places
    /// them elsewhere or a negation excludes that location, and `maybe`
    /// when only a negation about a *different* location is known.
    fn question_negation(&mut self, world: &World) -> Question {
        let mut candidates: Vec<WordId> = world.person_at.keys().copied().collect();
        candidates.extend(world.person_not_at.keys().copied());
        candidates.sort_unstable();
        candidates.dedup();
        let person = Self::pick(&mut self.rng, &candidates);
        let asked = Self::pick(&mut self.rng, &self.locations);

        let (answer, fact) = if let Some(&(loc, idx)) = world.person_at.get(&person) {
            (if loc == asked { self.yes } else { self.no }, idx)
        } else {
            let &(excluded, idx) = world
                .person_not_at
                .get(&person)
                .expect("candidate has some fact");
            (
                if excluded == asked {
                    self.no
                } else {
                    self.maybe
                },
                idx,
            )
        };
        Question {
            tokens: vec![self.is_w, person, self.in_w, self.the, asked],
            answer,
            supporting: vec![fact],
        }
    }

    /// "Who has the *object*?" — the current holder, or `nobody`.
    fn question_who_has(&mut self, world: &World) -> Question {
        let obj = Self::pick(&mut self.rng, &self.objects.clone());
        let (answer, supporting) = match world.held_by.get(&obj) {
            Some(&(person, grab_idx)) => (person, vec![grab_idx]),
            None => {
                // Unheld: supporting fact is the drop (if any) or the first
                // sentence (the question is about absence of evidence).
                let fact = world.dropped_at.get(&obj).map(|&(_, i)| i).unwrap_or(0);
                (self.nobody, vec![fact])
            }
        };
        Question {
            tokens: vec![self.who, self.has, self.the, obj],
            answer,
            supporting,
        }
    }

    /// "Where was *person* before the *location*?" — the location they left
    /// on their most recent move, or `nowhere` if they only moved once.
    fn question_before(&mut self, world: &World) -> Question {
        let known: Vec<WordId> = world.person_at.keys().copied().collect();
        let person = Self::pick(&mut self.rng, &known);
        let (current, move_idx) = world.person_at[&person];
        match world.person_was_at.get(&person) {
            Some(&(previous, left_idx)) => {
                let mut supporting = vec![left_idx, move_idx];
                supporting.sort_unstable();
                supporting.dedup();
                Question {
                    tokens: vec![
                        self.where_w,
                        self.was,
                        person,
                        self.before,
                        self.the,
                        current,
                    ],
                    answer: previous,
                    supporting,
                }
            }
            None => Question {
                tokens: vec![
                    self.where_w,
                    self.was,
                    person,
                    self.before,
                    self.the,
                    current,
                ],
                answer: self.nowhere,
                supporting: vec![move_idx],
            },
        }
    }

    fn question_counting(&mut self, world: &World) -> Question {
        let known: Vec<WordId> = world.person_at.keys().copied().collect();
        let person = Self::pick(&mut self.rng, &known);
        let mut supporting: Vec<usize> = world
            .held_by
            .values()
            .filter(|(holder, _)| *holder == person)
            .map(|&(_, grab_idx)| grab_idx)
            .collect();
        let count = supporting.len().min(self.counts.len() - 1);
        if supporting.is_empty() {
            supporting.push(world.person_at[&person].1);
        }
        supporting.sort_unstable();
        Question {
            tokens: vec![
                self.how,
                self.many,
                self.objects_w,
                self.is_w,
                person,
                self.carrying,
            ],
            answer: self.counts[count],
            supporting,
        }
    }

    fn question_yes_no(&mut self, world: &World) -> Question {
        let known: Vec<WordId> = world.person_at.keys().copied().collect();
        let person = Self::pick(&mut self.rng, &known);
        let (actual, fact) = world.person_at[&person];
        // Ask about the true location half the time.
        let (asked, answer) = if self.rng.random::<f32>() < 0.5 {
            (actual, self.yes)
        } else {
            let other = loop {
                let l = Self::pick(&mut self.rng, &self.locations);
                if l != actual {
                    break l;
                }
            };
            (other, self.no)
        };
        Question {
            tokens: vec![self.is_w, person, self.in_w, self.the, asked],
            answer,
            supporting: vec![fact],
        }
    }
}

/// Tiny pipe helper to keep borrow scopes narrow in `question_where_object`.
trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_answer_consistency(story: &Story, vocab: &Vocabulary) {
        for q in &story.questions {
            assert!(!q.supporting.is_empty());
            for &s in &q.supporting {
                assert!(s < story.sentences.len(), "supporting index in range");
            }
            assert!(vocab.word(q.answer).is_some());
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = BabiGenerator::new(TaskKind::SingleSupportingFact, 42);
        let mut b = BabiGenerator::new(TaskKind::SingleSupportingFact, 42);
        assert_eq!(a.story(20, 5), b.story(20, 5));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = BabiGenerator::new(TaskKind::SingleSupportingFact, 1);
        let mut b = BabiGenerator::new(TaskKind::SingleSupportingFact, 2);
        assert_ne!(a.story(30, 5), b.story(30, 5));
    }

    #[test]
    fn task1_answer_matches_last_move() {
        let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 7);
        let story = generator.story(50, 10);
        let vocab = generator.vocab().clone();
        check_answer_consistency(&story, &vocab);
        for q in &story.questions {
            // Supporting sentence is "<person> <verb> to the <loc>" and must
            // end with the answer.
            let sup = &story.sentences[q.supporting[0]];
            assert_eq!(*sup.last().unwrap(), q.answer);
            // The person asked about appears in the supporting sentence.
            assert_eq!(sup[0], q.tokens[2]);
            // And it is the person's LAST movement: no later sentence moves
            // the same person.
            for later in &story.sentences[q.supporting[0] + 1..] {
                if later[0] == sup[0] && later.len() == 5 {
                    panic!("found a later movement of the questioned person");
                }
            }
        }
    }

    #[test]
    fn task2_has_up_to_two_supporting_facts() {
        let mut generator = BabiGenerator::new(TaskKind::TwoSupportingFacts, 3);
        let mut saw_two = false;
        for _ in 0..20 {
            let story = generator.story(50, 5);
            let vocab = generator.vocab().clone();
            check_answer_consistency(&story, &vocab);
            for q in &story.questions {
                assert!(q.supporting.len() <= 2);
                saw_two |= q.supporting.len() == 2;
            }
        }
        assert!(saw_two, "two-supporting-fact questions should occur");
    }

    #[test]
    fn yes_no_answers_are_yes_or_no() {
        let mut generator = BabiGenerator::new(TaskKind::YesNo, 5);
        let story = generator.story(30, 20);
        let vocab = generator.vocab().clone();
        let mut seen = std::collections::HashSet::new();
        for q in &story.questions {
            let w = vocab.word(q.answer).unwrap();
            assert!(w == "yes" || w == "no", "unexpected answer {w}");
            seen.insert(w.to_string());
        }
        assert_eq!(seen.len(), 2, "both yes and no should occur in 20 draws");
    }

    #[test]
    fn counting_answers_match_held_objects() {
        let mut generator = BabiGenerator::new(TaskKind::Counting, 19);
        let vocab = generator.vocab().clone();
        let mut nonzero_seen = false;
        for _ in 0..20 {
            let story = generator.story(40, 8);
            check_answer_consistency(&story, &vocab);
            for q in &story.questions {
                let word = vocab.word(q.answer).unwrap();
                assert!(["none", "one", "two", "three"].contains(&word), "{word}");
                // Replay the story to verify the count independently.
                let person = q.tokens[4];
                let grabbed = vocab.id("grabbed").unwrap();
                let dropped = vocab.id("dropped").unwrap();
                let mut held = std::collections::BTreeSet::new();
                for s in &story.sentences {
                    if s.len() == 4 && s[1] == grabbed && s[0] == person {
                        held.insert(s[3]);
                    }
                    if s.len() == 4 && s[1] == dropped && s[0] == person {
                        held.remove(&s[3]);
                    }
                    // Another person grabbing the same object is impossible
                    // by construction (an object has one holder).
                }
                let expect = ["none", "one", "two", "three"][held.len().min(3)];
                assert_eq!(word, expect, "count mismatch for {:?}", q.tokens);
                nonzero_seen |= !held.is_empty();
            }
        }
        assert!(nonzero_seen, "some questions should have non-zero counts");
    }

    #[test]
    fn negation_answers_are_consistent_with_world_replay() {
        let mut generator = BabiGenerator::new(TaskKind::Negation, 29);
        let vocab = generator.vocab().clone();
        let not_id = vocab.id("not").unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            let story = generator.story(30, 8);
            check_answer_consistency(&story, &vocab);
            for q in &story.questions {
                let word = vocab.word(q.answer).unwrap();
                assert!(["yes", "no", "maybe"].contains(&word), "{word}");
                seen.insert(word.to_string());
                // Replay: find the person's latest fact.
                let person = q.tokens[1];
                let asked = q.tokens[4];
                let mut positive: Option<u32> = None;
                let mut negated: Option<u32> = None;
                for s in &story.sentences {
                    if s.len() == 5 && s[0] == person {
                        positive = Some(*s.last().unwrap());
                        negated = None;
                    }
                    if s.len() == 6 && s[0] == person && s[2] == not_id {
                        negated = Some(*s.last().unwrap());
                        positive = None;
                    }
                }
                let expect = match (positive, negated) {
                    (Some(loc), _) if loc == asked => "yes",
                    (Some(_), _) => "no",
                    (None, Some(ex)) if ex == asked => "no",
                    (None, Some(_)) => "maybe",
                    (None, None) => unreachable!("question about unknown person"),
                };
                assert_eq!(word, expect);
            }
        }
        assert!(seen.len() == 3, "all three answers should occur: {seen:?}");
    }

    #[test]
    fn who_has_answers_match_holders() {
        let mut generator = BabiGenerator::new(TaskKind::WhoHas, 47);
        let vocab = generator.vocab().clone();
        let grabbed = vocab.id("grabbed").unwrap();
        let dropped = vocab.id("dropped").unwrap();
        let mut saw_holder = false;
        for _ in 0..15 {
            let story = generator.story(40, 6);
            check_answer_consistency(&story, &vocab);
            for q in &story.questions {
                let obj = q.tokens[3];
                // Replay who holds obj at the end.
                let mut holder: Option<WordId> = None;
                for s in &story.sentences {
                    if s.len() == 4 && s[3] == obj {
                        if s[1] == grabbed {
                            holder = Some(s[0]);
                        } else if s[1] == dropped {
                            holder = None;
                        }
                    }
                }
                match holder {
                    Some(p) => {
                        assert_eq!(q.answer, p);
                        saw_holder = true;
                    }
                    None => assert_eq!(vocab.word(q.answer), Some("nobody")),
                }
            }
        }
        assert!(saw_holder, "some questions should have a holder");
    }

    #[test]
    fn before_location_answers_match_history() {
        let mut generator = BabiGenerator::new(TaskKind::BeforeLocation, 53);
        let vocab = generator.vocab().clone();
        let mut saw_previous = false;
        for _ in 0..15 {
            let story = generator.story(30, 6);
            check_answer_consistency(&story, &vocab);
            for q in &story.questions {
                let person = q.tokens[2];
                // Replay the person's movement history.
                let mut history: Vec<WordId> = Vec::new();
                for s in &story.sentences {
                    if s.len() == 5 && s[0] == person {
                        let loc = *s.last().unwrap();
                        if history.last() != Some(&loc) {
                            history.push(loc);
                        }
                    }
                }
                assert_eq!(*q.tokens.last().unwrap(), *history.last().unwrap());
                if history.len() >= 2 {
                    assert_eq!(q.answer, history[history.len() - 2]);
                    saw_previous = true;
                } else {
                    assert_eq!(vocab.word(q.answer), Some("nowhere"));
                }
            }
        }
        assert!(saw_previous, "some questions should have real history");
    }

    #[test]
    fn sentence_length_is_bounded() {
        let mut generator = BabiGenerator::new(TaskKind::TwoSupportingFacts, 11);
        let story = generator.story(50, 5);
        assert!(story.max_sentence_words() <= 5, "nw bound");
        let mut neg = BabiGenerator::new(TaskKind::Negation, 11);
        let story = neg.story(50, 5);
        assert!(story.max_sentence_words() <= 6, "negated nw bound");
    }

    #[test]
    fn dataset_yields_independent_stories() {
        let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 9);
        let data = generator.dataset(4, 10, 2);
        assert_eq!(data.len(), 4);
        assert_ne!(data[0], data[1]);
    }

    #[test]
    #[should_panic(expected = "at least one sentence")]
    fn empty_story_panics() {
        let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 0);
        let _ = generator.story(0, 1);
    }

    #[test]
    fn custom_world_shapes_hold() {
        let config = GeneratorConfig {
            persons: 2,
            locations: 3,
            objects: 1,
            object_action_rate: 0.5,
            pronoun_rate: 0.0,
        };
        let mut generator =
            BabiGenerator::with_config(TaskKind::SingleSupportingFact, 9, config).unwrap();
        let vocab = generator.vocab().clone();
        let allowed_persons: Vec<&str> = vec!["mary", "john"];
        let allowed_locations: Vec<&str> = vec!["kitchen", "garden", "hallway"];
        for _ in 0..5 {
            let story = generator.story(20, 4);
            for s in &story.sentences {
                let person = vocab.word(s[0]).unwrap();
                assert!(allowed_persons.contains(&person), "{person}");
                let loc = vocab.word(*s.last().unwrap()).unwrap();
                assert!(allowed_locations.contains(&loc), "{loc}");
            }
        }
        // The vocabulary is identical to the default world's.
        let default_gen = BabiGenerator::new(TaskKind::SingleSupportingFact, 9);
        assert_eq!(generator.vocab_size(), default_gen.vocab_size());
    }

    #[test]
    fn pronouns_change_surface_form_not_semantics() {
        let config = GeneratorConfig {
            pronoun_rate: 0.6,
            ..GeneratorConfig::default()
        };
        let mut generator =
            BabiGenerator::with_config(TaskKind::SingleSupportingFact, 21, config).unwrap();
        let vocab = generator.vocab().clone();
        let she = vocab.id("she").unwrap();
        let mut saw_pronoun = false;
        for _ in 0..10 {
            let story = generator.story(20, 5);
            // Replay with pronoun resolution and check every answer.
            for q in &story.questions {
                let person = q.tokens[2];
                let mut loc = None;
                let mut last_subject = None;
                for s in &story.sentences {
                    if s.len() == 5 {
                        let subject = if s[0] == she {
                            saw_pronoun = true;
                            last_subject.expect("pronoun always has an antecedent")
                        } else {
                            s[0]
                        };
                        last_subject = Some(subject);
                        if subject == person {
                            loc = Some(*s.last().unwrap());
                        }
                    }
                }
                assert_eq!(loc, Some(q.answer), "resolved location must match");
            }
        }
        assert!(saw_pronoun, "pronouns should appear at rate 0.6");
        // The first sentence can never be a pronoun.
        let story = generator.story(10, 1);
        assert_ne!(story.sentences[0][0], she);
    }

    #[test]
    fn invalid_world_configs_are_rejected() {
        for bad in [
            GeneratorConfig {
                persons: 0,
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                persons: 99,
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                locations: 1,
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                objects: 0,
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                object_action_rate: 1.5,
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                pronoun_rate: -0.1,
                ..GeneratorConfig::default()
            },
        ] {
            assert!(
                BabiGenerator::with_config(TaskKind::YesNo, 1, bad).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn vocab_is_shared_and_closed() {
        let mut generator = BabiGenerator::new(TaskKind::TwoSupportingFacts, 13);
        let before = generator.vocab_size();
        let story = generator.story(50, 10);
        assert_eq!(generator.vocab_size(), before, "no new words at runtime");
        for s in &story.sentences {
            for &t in s {
                assert!((t as usize) < before);
            }
        }
    }
}

//! Reading and writing the bAbI text file format.
//!
//! Facebook's bAbI release stores tasks as numbered lines; a line number
//! reset to 1 starts a new story, and question lines carry tab-separated
//! answer and supporting-fact line numbers:
//!
//! ```text
//! 1 mary moved to the bathroom.
//! 2 john went to the hallway.
//! 3 where is mary?    bathroom    1
//! ```
//!
//! This module parses that format into [`Story`] values (interning words
//! into a [`Vocabulary`]) and writes synthetic stories back out, so the
//! pipeline runs unchanged on the real dataset when it is available.

use crate::babi::{Question, Story};
use crate::text::tokenize;
use crate::vocab::Vocabulary;
use std::fmt;
use std::io::{BufRead, Write};

/// Parse errors with 1-based input line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line of the input file (1-based).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Reads bAbI-format stories, interning every word into `vocab`.
///
/// Supporting-fact numbers are translated from bAbI line numbering (which
/// counts questions too) into indices over the story's *sentences*, the
/// convention [`Story`] uses.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending input line.
pub fn read_stories(
    reader: &mut dyn BufRead,
    vocab: &mut Vocabulary,
) -> Result<Vec<Story>, ParseError> {
    let mut stories = Vec::new();
    let mut current: Option<Story> = None;
    // bAbI line-id -> sentence index in the current story (questions have
    // ids but no sentence index).
    let mut id_to_sentence: Vec<Option<usize>> = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.map_err(|e| err(lineno, e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (id_str, rest) = trimmed
            .split_once(' ')
            .ok_or_else(|| err(lineno, "expected '<id> <text>'"))?;
        let id: usize = id_str
            .parse()
            .map_err(|_| err(lineno, format!("bad line id '{id_str}'")))?;
        if id == 0 {
            return Err(err(lineno, "line ids are 1-based"));
        }

        if id == 1 {
            if let Some(done) = current.take() {
                stories.push(done);
            }
            current = Some(Story {
                sentences: Vec::new(),
                questions: Vec::new(),
            });
            id_to_sentence.clear();
        }
        let story = current
            .as_mut()
            .ok_or_else(|| err(lineno, "story must start at id 1"))?;
        if id != id_to_sentence.len() + 1 {
            return Err(err(
                lineno,
                format!(
                    "non-consecutive id {id} (expected {})",
                    id_to_sentence.len() + 1
                ),
            ));
        }

        if rest.contains('\t') {
            // Question line: "<question>\t<answer>\t<supporting ids>".
            let mut parts = rest.split('\t');
            let q_text = parts.next().expect("split yields at least one part");
            let answer_text = parts
                .next()
                .ok_or_else(|| err(lineno, "question missing answer field"))?;
            let support_text = parts.next().unwrap_or("");

            let tokens: Vec<u32> = tokenize(q_text).iter().map(|w| vocab.intern(w)).collect();
            if tokens.is_empty() {
                return Err(err(lineno, "empty question"));
            }
            let answer_words = tokenize(answer_text);
            let answer = match answer_words.as_slice() {
                [one] => vocab.intern(one),
                _ => return Err(err(lineno, "expected a single-word answer")),
            };
            let mut supporting = Vec::new();
            for s in support_text.split_whitespace() {
                let sid: usize = s
                    .parse()
                    .map_err(|_| err(lineno, format!("bad supporting id '{s}'")))?;
                let sentence = id_to_sentence
                    .get(sid.wrapping_sub(1))
                    .copied()
                    .flatten()
                    .ok_or_else(|| err(lineno, format!("supporting id {sid} is not a sentence")))?;
                supporting.push(sentence);
            }
            story.questions.push(Question {
                tokens,
                answer,
                supporting,
            });
            id_to_sentence.push(None);
        } else {
            let tokens: Vec<u32> = tokenize(rest).iter().map(|w| vocab.intern(w)).collect();
            if tokens.is_empty() {
                return Err(err(lineno, "empty sentence"));
            }
            id_to_sentence.push(Some(story.sentences.len()));
            story.sentences.push(tokens);
        }
    }
    if let Some(done) = current.take() {
        stories.push(done);
    }
    Ok(stories)
}

/// Writes stories in bAbI format. Questions are emitted after all
/// sentences (the synthetic generator's convention); supporting-fact
/// indices are translated back to line numbers.
///
/// # Errors
///
/// Propagates I/O errors as strings.
pub fn write_stories(
    stories: &[Story],
    vocab: &Vocabulary,
    writer: &mut dyn Write,
) -> Result<(), String> {
    for story in stories {
        let mut id = 1usize;
        for sentence in &story.sentences {
            writeln!(writer, "{id} {}.", vocab.decode(sentence)).map_err(|e| e.to_string())?;
            id += 1;
        }
        for q in &story.questions {
            let supports: Vec<String> = q
                .supporting
                .iter()
                .map(|&s| (s + 1).to_string()) // sentences precede questions
                .collect();
            writeln!(
                writer,
                "{id} {}?\t{}\t{}",
                vocab.decode(&q.tokens),
                vocab.word(q.answer).unwrap_or("<?>"),
                supports.join(" ")
            )
            .map_err(|e| e.to_string())?;
            id += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::babi::{BabiGenerator, TaskKind};
    use std::io::BufReader;

    const SAMPLE: &str = "\
1 mary moved to the bathroom.
2 john went to the hallway.
3 where is mary?\tbathroom\t1
1 daniel journeyed to the office.
2 where is daniel?\toffice\t1
3 sandra went to the garden.
4 where is sandra?\tgarden\t3
";

    #[test]
    fn parses_the_reference_format() {
        let mut vocab = Vocabulary::new();
        let stories = read_stories(&mut BufReader::new(SAMPLE.as_bytes()), &mut vocab).unwrap();
        assert_eq!(stories.len(), 2);
        assert_eq!(stories[0].sentences.len(), 2);
        assert_eq!(stories[0].questions.len(), 1);
        let q = &stories[0].questions[0];
        assert_eq!(vocab.word(q.answer), Some("bathroom"));
        assert_eq!(q.supporting, vec![0]);

        // Second story interleaves a question mid-story; supporting line 3
        // maps to sentence index 1 (the question at id 2 is skipped).
        let s2 = &stories[1];
        assert_eq!(s2.sentences.len(), 2);
        assert_eq!(s2.questions.len(), 2);
        assert_eq!(s2.questions[1].supporting, vec![1]);
    }

    #[test]
    fn round_trips_generated_stories() {
        let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 77);
        let stories = generator.dataset(5, 8, 2);
        let vocab = generator.vocab().clone();

        let mut buf = Vec::new();
        write_stories(&stories, &vocab, &mut buf).unwrap();

        let mut vocab2 = Vocabulary::new();
        let parsed = read_stories(&mut BufReader::new(buf.as_slice()), &mut vocab2).unwrap();
        assert_eq!(parsed.len(), stories.len());
        for (a, b) in stories.iter().zip(&parsed) {
            assert_eq!(a.sentences.len(), b.sentences.len());
            assert_eq!(a.questions.len(), b.questions.len());
            // Token ids differ (fresh vocabulary) but the text matches.
            for (sa, sb) in a.sentences.iter().zip(&b.sentences) {
                assert_eq!(vocab.decode(sa), vocab2.decode(sb));
            }
            for (qa, qb) in a.questions.iter().zip(&b.questions) {
                assert_eq!(vocab.decode(&qa.tokens), vocab2.decode(&qb.tokens));
                assert_eq!(vocab.word(qa.answer), vocab2.word(qb.answer));
                assert_eq!(qa.supporting, qb.supporting);
            }
        }
    }

    #[test]
    fn rejects_malformed_input() {
        let mut vocab = Vocabulary::new();
        for (bad, what) in [
            ("nonsense without id", "missing id"),
            ("0 zero id.", "zero id"),
            ("1 ok.\n3 skipped id.", "gap in ids"),
            (
                "1 where is mary?\tbathroom\t9",
                "supporting id out of range",
            ),
            ("1 where is mary?\ttwo words\t", "multi-word answer"),
            ("2 starts at two.", "story must start at 1"),
        ] {
            let r = read_stories(&mut BufReader::new(bad.as_bytes()), &mut vocab);
            assert!(r.is_err(), "{what}: {bad}");
        }
    }

    #[test]
    fn question_supporting_ids_pointing_at_questions_are_rejected() {
        let text = "1 where is mary?\tbathroom\t\n2 where is john?\thallway\t1\n";
        let mut vocab = Vocabulary::new();
        let r = read_stories(&mut BufReader::new(text.as_bytes()), &mut vocab);
        assert!(r.is_err());
    }

    #[test]
    fn empty_input_yields_no_stories() {
        let mut vocab = Vocabulary::new();
        let stories = read_stories(&mut BufReader::new("".as_bytes()), &mut vocab).unwrap();
        assert!(stories.is_empty());
        let blank = read_stories(&mut BufReader::new("\n  \n".as_bytes()), &mut vocab).unwrap();
        assert!(blank.is_empty());
    }
}

//! Word ⇄ id interning.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a word in a [`Vocabulary`] (the BoW representation the
/// embedding operation consumes).
pub type WordId = u32;

/// A bidirectional word ⇄ id map.
///
/// Ids are dense and allocated in insertion order, so they can directly
/// index the columns of the `ed × V` embedding matrix.
///
/// ```
/// use mnn_dataset::Vocabulary;
///
/// let mut v = Vocabulary::new();
/// let id = v.intern("kitchen");
/// assert_eq!(v.intern("kitchen"), id); // stable
/// assert_eq!(v.word(id), Some("kitchen"));
/// assert_eq!(v.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Vocabulary {
    words: Vec<String>,
    index: HashMap<String, WordId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `word`, interning it if new.
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = self.words.len() as WordId;
        self.words.push(word.to_owned());
        self.index.insert(word.to_owned(), id);
        id
    }

    /// Looks up an existing word without interning.
    pub fn id(&self, word: &str) -> Option<WordId> {
        self.index.get(word).copied()
    }

    /// The word for `id`, if allocated.
    pub fn word(&self, id: WordId) -> Option<&str> {
        self.words.get(id as usize).map(String::as_str)
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if no words have been interned.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterator over `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (i as WordId, w.as_str()))
    }

    /// Renders a token sequence back into text (ids without a word render as
    /// `<?>`), for debugging and the examples.
    pub fn decode(&self, tokens: &[WordId]) -> String {
        let mut out = String::new();
        for (i, &t) in tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.word(t).unwrap_or("<?>"));
        }
        out
    }
}

impl fmt::Display for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vocabulary({} words)", self.len())
    }
}

impl FromIterator<String> for Vocabulary {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut v = Vocabulary::new();
        for w in iter {
            v.intern(&w);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut v = Vocabulary::new();
        let a = v.intern("alpha");
        let b = v.intern("beta");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(v.intern("alpha"), a);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn lookup_without_interning() {
        let mut v = Vocabulary::new();
        v.intern("x");
        assert_eq!(v.id("x"), Some(0));
        assert_eq!(v.id("y"), None);
        assert_eq!(v.word(0), Some("x"));
        assert_eq!(v.word(7), None);
    }

    #[test]
    fn decode_renders_unknown_ids() {
        let mut v = Vocabulary::new();
        v.intern("john");
        v.intern("kitchen");
        assert_eq!(v.decode(&[0, 1, 99]), "john kitchen <?>");
    }

    #[test]
    fn from_iterator_dedupes() {
        let v: Vocabulary = ["a", "b", "a"].iter().map(|s| s.to_string()).collect();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn iter_is_in_id_order() {
        let mut v = Vocabulary::new();
        v.intern("one");
        v.intern("two");
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs, vec![(0, "one"), (1, "two")]);
    }

    #[test]
    fn display_mentions_size() {
        let mut v = Vocabulary::new();
        v.intern("w");
        assert_eq!(v.to_string(), "Vocabulary(1 words)");
    }
}

//! Plain-text tokenization and empirical word-frequency traces.
//!
//! The serving scenario receives questions "in a raw format (Bag-of-Words)
//! which should be embedded" (Section 4.1.1). This module turns text into
//! word-ID sequences against a [`Vocabulary`], and builds *empirical*
//! frequency tables from corpora — an alternative to the analytic Zipf
//! sampler for driving the embedding cache.

use crate::vocab::{Vocabulary, WordId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Splits text into lowercase word tokens (alphanumeric runs; everything
/// else separates).
///
/// ```
/// let tokens = mnn_dataset::text::tokenize("Where is John's football?");
/// assert_eq!(tokens, vec!["where", "is", "john", "s", "football"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
        .collect()
}

/// Encodes text against an existing vocabulary; unknown words are reported
/// rather than silently dropped.
///
/// # Errors
///
/// Returns the first out-of-vocabulary word.
pub fn encode(text: &str, vocab: &Vocabulary) -> Result<Vec<WordId>, String> {
    tokenize(text)
        .into_iter()
        .map(|w| vocab.id(&w).ok_or(w))
        .collect()
}

/// Encodes text, interning unknown words into the vocabulary (corpus
/// building).
pub fn encode_interning(text: &str, vocab: &mut Vocabulary) -> Vec<WordId> {
    tokenize(text).iter().map(|w| vocab.intern(w)).collect()
}

/// An empirical word-frequency table built from token counts, usable as a
/// drop-in for the Zipf sampler when a real corpus is available.
#[derive(Debug, Clone)]
pub struct FrequencyTable {
    /// `(word, count)` pairs sorted by descending count.
    ranked: Vec<(WordId, u64)>,
    cdf: Vec<f64>,
    total: u64,
}

impl FrequencyTable {
    /// Builds a table from a token stream.
    ///
    /// # Errors
    ///
    /// Returns an error when the stream is empty.
    pub fn from_tokens(tokens: impl IntoIterator<Item = WordId>) -> Result<Self, String> {
        let mut counts = std::collections::BTreeMap::new();
        for t in tokens {
            *counts.entry(t).or_insert(0u64) += 1;
        }
        if counts.is_empty() {
            return Err("cannot build a frequency table from no tokens".into());
        }
        let mut ranked: Vec<(WordId, u64)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let total: u64 = ranked.iter().map(|(_, c)| c).sum();
        let mut acc = 0.0f64;
        let cdf = ranked
            .iter()
            .map(|(_, c)| {
                acc += *c as f64 / total as f64;
                acc
            })
            .collect();
        Ok(Self { ranked, cdf, total })
    }

    /// Number of distinct words.
    pub fn distinct_words(&self) -> usize {
        self.ranked.len()
    }

    /// Total token count.
    pub fn total_tokens(&self) -> u64 {
        self.total
    }

    /// The `k` most frequent words, most frequent first.
    pub fn top_k(&self, k: usize) -> Vec<WordId> {
        self.ranked.iter().take(k).map(|&(w, _)| w).collect()
    }

    /// Probability mass of the `k` most frequent words (the ideal hit rate
    /// of a k-entry embedding cache).
    pub fn top_k_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[k.min(self.cdf.len()) - 1]
        }
    }

    /// Samples a word-ID trace following the empirical distribution.
    pub fn trace(&self, n: usize, seed: u64) -> Vec<WordId> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.random();
                let idx = match self
                    .cdf
                    .binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf"))
                {
                    Ok(i) => i,
                    Err(i) => i.min(self.cdf.len() - 1),
                };
                self.ranked[idx].0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::babi::{BabiGenerator, TaskKind};

    #[test]
    fn tokenize_handles_punctuation_and_case() {
        assert_eq!(
            tokenize("Mary went to the KITCHEN."),
            vec!["mary", "went", "to", "the", "kitchen"]
        );
        assert_eq!(tokenize("  \t\n "), Vec::<String>::new());
        assert_eq!(tokenize("a,b;c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn encode_against_babi_vocabulary() {
        let generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 1);
        let vocab = generator.vocab();
        let ids = encode("where is mary", vocab).unwrap();
        assert_eq!(ids.len(), 3);
        assert_eq!(vocab.decode(&ids), "where is mary");
        assert_eq!(encode("where is zaphod", vocab), Err("zaphod".to_owned()));
    }

    #[test]
    fn encode_interning_grows_vocab() {
        let mut vocab = Vocabulary::new();
        let ids = encode_interning("the cat saw the cat", &mut vocab);
        assert_eq!(ids.len(), 5);
        assert_eq!(vocab.len(), 3);
        assert_eq!(ids[0], ids[3], "repeated word, same id");
    }

    #[test]
    fn frequency_table_ranks_and_sums() {
        // "a" x3, "b" x2, "c" x1
        let table = FrequencyTable::from_tokens([0u32, 0, 0, 1, 1, 2]).unwrap();
        assert_eq!(table.distinct_words(), 3);
        assert_eq!(table.total_tokens(), 6);
        assert_eq!(table.top_k(2), vec![0, 1]);
        assert!((table.top_k_mass(1) - 0.5).abs() < 1e-12);
        assert!((table.top_k_mass(3) - 1.0).abs() < 1e-12);
        assert_eq!(table.top_k_mass(0), 0.0);
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(FrequencyTable::from_tokens(std::iter::empty()).is_err());
    }

    #[test]
    fn empirical_trace_follows_the_distribution() {
        let tokens: Vec<WordId> = (0..10_000u32)
            .map(|i| if i % 10 == 0 { 1 } else { 0 })
            .collect();
        let table = FrequencyTable::from_tokens(tokens).unwrap();
        let trace = table.trace(50_000, 9);
        let zeros = trace.iter().filter(|&&w| w == 0).count() as f64 / trace.len() as f64;
        assert!((zeros - 0.9).abs() < 0.02, "empirical share {zeros}");
        // Determinism per seed.
        assert_eq!(table.trace(100, 5), table.trace(100, 5));
    }

    #[test]
    fn babi_corpus_is_head_heavy_like_natural_language() {
        // Generated stories reuse function words ("to", "the") constantly —
        // the same locality the embedding cache exploits.
        let mut generator = BabiGenerator::new(TaskKind::TwoSupportingFacts, 4);
        let mut tokens = Vec::new();
        for _ in 0..20 {
            let story = generator.story(30, 2);
            for s in &story.sentences {
                tokens.extend_from_slice(s);
            }
        }
        let table = FrequencyTable::from_tokens(tokens).unwrap();
        assert!(
            table.top_k_mass(5) > 0.4,
            "top-5 mass {}",
            table.top_k_mass(5)
        );
    }
}

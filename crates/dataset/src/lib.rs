//! Workload substrate for the MnnFast reproduction.
//!
//! The paper evaluates on Facebook's bAbI QA tasks (Fig 6/7), a
//! Wikipedia-scale story database (Section 3.1's 200M-sentence sizing), and
//! the COCA word-frequency corpus (Fig 14). None of those datasets ship with
//! this repository, so this crate generates faithful synthetic equivalents:
//!
//! - [`Vocabulary`] — word ⇄ id interning,
//! - [`babi`] — a generator of bAbI-style stories (agents moving between
//!   locations, carrying objects) with questions whose answers require one or
//!   two supporting facts; attention over the story is sparse *by
//!   construction*, which is the property Figs 6 and 7 measure,
//! - [`zipf`] — Zipf-distributed word-ID traces standing in for COCA word
//!   frequencies (embedding-cache locality),
//! - [`config`] — the Table 1 memory-network configurations plus scaled-down
//!   test presets.
//!
//! # Example
//!
//! ```
//! use mnn_dataset::babi::{BabiGenerator, TaskKind};
//!
//! let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 7);
//! let story = generator.story(12, 3);
//! assert_eq!(story.sentences.len(), 12);
//! assert_eq!(story.questions.len(), 3);
//! // Every question's answer is derivable from its supporting sentence(s).
//! for q in &story.questions {
//!     assert!(!q.supporting.is_empty());
//! }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod babi;
pub mod babi_io;
pub mod config;
pub mod text;
pub mod vocab;
pub mod zipf;

pub use config::{MemNNConfig, Platform};
pub use vocab::{Vocabulary, WordId};

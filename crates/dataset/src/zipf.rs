//! Zipf-distributed word-ID traces.
//!
//! The paper's Fig 14 drives the embedding cache with the word-frequency
//! distribution of the Corpus of Contemporary American English (COCA). COCA
//! is proprietary; word frequency in natural language is famously Zipfian
//! (`P(rank k) ∝ 1/k^s`, s ≈ 1), so a Zipf sampler over the vocabulary is
//! the faithful synthetic replacement: it reproduces exactly the head-heavy
//! locality the embedding cache exploits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sampler of word IDs with Zipfian rank-frequency over `vocab_size` words.
///
/// Uses inverse-CDF sampling over the precomputed harmonic weights, so
/// sampling is `O(log V)` per draw and exact (no rejection).
///
/// ```
/// use mnn_dataset::zipf::ZipfSampler;
///
/// let mut z = ZipfSampler::new(1000, 1.0, 7).unwrap();
/// let trace = z.trace(10_000);
/// // Rank-0 is by far the most frequent word.
/// let top = trace.iter().filter(|&&w| w == 0).count();
/// assert!(top > 800, "rank 0 drew {top} of 10000");
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    rng: StdRng,
    exponent: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `vocab_size` ranks with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error string if `vocab_size == 0` or `s` is not
    /// finite and non-negative.
    pub fn new(vocab_size: usize, s: f64, seed: u64) -> Result<Self, String> {
        if vocab_size == 0 {
            return Err("ZipfSampler: vocab_size must be positive".to_owned());
        }
        if !s.is_finite() || s < 0.0 {
            return Err(format!("ZipfSampler: invalid exponent {s}"));
        }
        let mut cdf = Vec::with_capacity(vocab_size);
        let mut acc = 0.0f64;
        for k in 1..=vocab_size {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Self {
            cdf,
            rng: StdRng::seed_from_u64(seed),
            exponent: s,
        })
    }

    /// The configured exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Vocabulary size (number of ranks).
    pub fn vocab_size(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one word ID (rank, 0-based; rank 0 is the most frequent word).
    pub fn sample(&mut self) -> u32 {
        let u: f64 = self.rng.random();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i as u32,
            Err(i) => i.min(self.cdf.len() - 1) as u32,
        }
    }

    /// Draws a trace of `n` word IDs.
    pub fn trace(&mut self, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.sample()).collect()
    }

    /// Probability mass of rank `k` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `k >= vocab_size`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k < self.cdf.len(), "rank out of range");
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Expected hit rate of a cache that holds exactly the `top_k` most
    /// frequent words — the analytic upper bound used to sanity-check the
    /// embedding-cache simulations.
    pub fn top_k_mass(&self, top_k: usize) -> f64 {
        if top_k == 0 {
            0.0
        } else {
            self.cdf[top_k.min(self.cdf.len()) - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(ZipfSampler::new(0, 1.0, 1).is_err());
        assert!(ZipfSampler::new(10, f64::NAN, 1).is_err());
        assert!(ZipfSampler::new(10, -1.0, 1).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(50, 1.2, 3).unwrap();
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_monotonically_decreasing() {
        let z = ZipfSampler::new(100, 1.0, 3).unwrap();
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0, 3).unwrap();
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_frequency_tracks_pmf() {
        let mut z = ZipfSampler::new(20, 1.0, 99).unwrap();
        let n = 200_000;
        let trace = z.trace(n);
        let mut counts = [0usize; 20];
        for &w in &trace {
            counts[w as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate().take(5) {
            let emp = c as f64 / n as f64;
            let exp = z.pmf(k);
            assert!(
                (emp - exp).abs() < 0.01,
                "rank {k}: empirical {emp:.4} vs pmf {exp:.4}"
            );
        }
    }

    #[test]
    fn top_k_mass_bounds() {
        let z = ZipfSampler::new(1000, 1.0, 5).unwrap();
        assert_eq!(z.top_k_mass(0), 0.0);
        assert!((z.top_k_mass(1000) - 1.0).abs() < 1e-9);
        assert!(z.top_k_mass(10) > 0.3, "Zipf head is heavy");
        assert!(z.top_k_mass(10) < z.top_k_mass(100));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ZipfSampler::new(100, 1.0, 7).unwrap();
        let mut b = ZipfSampler::new(100, 1.0, 7).unwrap();
        assert_eq!(a.trace(100), b.trace(100));
    }
}

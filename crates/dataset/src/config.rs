//! Memory-network configurations (the paper's Table 1) plus scaled-down
//! presets for tests and CI-sized runs.

use std::fmt;

/// Evaluation platform of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// 24-core dual-socket Xeon, DDR4-2400, OpenBLAS.
    Cpu,
    /// 4× NVIDIA TITAN Xp, cuBLAS / CUDA streams.
    Gpu,
    /// ZedBoard Zynq-7020 @ 100 MHz, DDR3-533 ×32-bit.
    Fpga,
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Platform::Cpu => "CPU",
            Platform::Gpu => "GPU",
            Platform::Fpga => "FPGA",
        };
        f.write_str(s)
    }
}

/// A memory-network shape: the parameters that size every buffer and every
/// loop in both the baseline and MnnFast pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemNNConfig {
    /// Embedding dimension `ed`.
    pub embedding_dim: usize,
    /// Number of story sentences `ns` (the in/out memory height).
    pub num_sentences: usize,
    /// Chunk size (sentences per chunk) for the column-based algorithm.
    pub chunk_size: usize,
    /// Vocabulary size `V` (embedding-matrix width).
    pub vocab_size: usize,
    /// Number of inference hops (memory-representation iterations).
    pub hops: usize,
}

impl MemNNConfig {
    /// Table 1, CPU column: ed=48, 100M sentences, chunk 1000.
    ///
    /// `num_sentences` is the paper's headline size; most harness runs call
    /// [`MemNNConfig::scaled`] to shrink it while keeping proportions.
    pub fn table1_cpu() -> Self {
        Self {
            embedding_dim: 48,
            num_sentences: 100_000_000,
            chunk_size: 1000,
            vocab_size: 60_000,
            hops: 1,
        }
    }

    /// Table 1, GPU column: ed=64, 100M sentences, variable chunk.
    pub fn table1_gpu() -> Self {
        Self {
            embedding_dim: 64,
            num_sentences: 100_000_000,
            chunk_size: 1_000_000,
            vocab_size: 60_000,
            hops: 1,
        }
    }

    /// Table 1, FPGA column: ed=25, 1000 sentences, chunk 25.
    pub fn table1_fpga() -> Self {
        Self {
            embedding_dim: 25,
            num_sentences: 1000,
            chunk_size: 25,
            vocab_size: 10_000,
            hops: 1,
        }
    }

    /// The Table 1 preset for `platform`.
    pub fn for_platform(platform: Platform) -> Self {
        match platform {
            Platform::Cpu => Self::table1_cpu(),
            Platform::Gpu => Self::table1_gpu(),
            Platform::Fpga => Self::table1_fpga(),
        }
    }

    /// bAbI-style configuration used for the accuracy experiments
    /// (Figs 6/7): up to 50 story sentences, small embedding.
    pub fn babi() -> Self {
        Self {
            embedding_dim: 32,
            num_sentences: 50,
            chunk_size: 16,
            vocab_size: 64,
            hops: 1,
        }
    }

    /// A small preset that finishes in milliseconds — used by unit tests.
    pub fn tiny() -> Self {
        Self {
            embedding_dim: 8,
            num_sentences: 24,
            chunk_size: 8,
            vocab_size: 32,
            hops: 1,
        }
    }

    /// Returns a copy with `num_sentences` scaled down to `ns`, clamping the
    /// chunk size so it never exceeds the story length.
    pub fn scaled(mut self, ns: usize) -> Self {
        self.num_sentences = ns;
        self.chunk_size = self.chunk_size.min(ns.max(1));
        self
    }

    /// Returns a copy with the given number of hops.
    pub fn with_hops(mut self, hops: usize) -> Self {
        self.hops = hops.max(1);
        self
    }

    /// Bytes of one memory matrix (`M_IN` or `M_OUT`) at f32 precision.
    pub fn memory_bytes(&self) -> usize {
        self.num_sentences * self.embedding_dim * 4
    }

    /// Bytes of one intermediate `ns`-length vector (the baseline's data
    /// spill per layer, Section 3.1).
    pub fn spill_bytes(&self) -> usize {
        self.num_sentences * 4
    }

    /// Number of chunks the column-based algorithm processes.
    pub fn num_chunks(&self) -> usize {
        self.num_sentences.div_ceil(self.chunk_size)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.embedding_dim == 0 {
            return Err("embedding_dim must be positive".into());
        }
        if self.num_sentences == 0 {
            return Err("num_sentences must be positive".into());
        }
        if self.chunk_size == 0 {
            return Err("chunk_size must be positive".into());
        }
        if self.chunk_size > self.num_sentences {
            return Err(format!(
                "chunk_size {} exceeds num_sentences {}",
                self.chunk_size, self.num_sentences
            ));
        }
        if self.vocab_size == 0 {
            return Err("vocab_size must be positive".into());
        }
        if self.hops == 0 {
            return Err("hops must be positive".into());
        }
        Ok(())
    }
}

impl fmt::Display for MemNNConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MemNN(ed={}, ns={}, chunk={}, V={}, hops={})",
            self.embedding_dim, self.num_sentences, self.chunk_size, self.vocab_size, self.hops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let cpu = MemNNConfig::table1_cpu();
        assert_eq!(cpu.embedding_dim, 48);
        assert_eq!(cpu.num_sentences, 100_000_000);
        assert_eq!(cpu.chunk_size, 1000);

        let gpu = MemNNConfig::table1_gpu();
        assert_eq!(gpu.embedding_dim, 64);

        let fpga = MemNNConfig::table1_fpga();
        assert_eq!(fpga.embedding_dim, 25);
        assert_eq!(fpga.num_sentences, 1000);
        assert_eq!(fpga.chunk_size, 25);
    }

    #[test]
    fn for_platform_dispatches() {
        assert_eq!(
            MemNNConfig::for_platform(Platform::Cpu),
            MemNNConfig::table1_cpu()
        );
        assert_eq!(
            MemNNConfig::for_platform(Platform::Gpu),
            MemNNConfig::table1_gpu()
        );
        assert_eq!(
            MemNNConfig::for_platform(Platform::Fpga),
            MemNNConfig::table1_fpga()
        );
    }

    #[test]
    fn presets_validate() {
        for c in [
            MemNNConfig::table1_cpu(),
            MemNNConfig::table1_gpu(),
            MemNNConfig::table1_fpga(),
            MemNNConfig::babi(),
            MemNNConfig::tiny(),
        ] {
            c.validate().unwrap();
        }
    }

    #[test]
    fn scaled_clamps_chunk() {
        let c = MemNNConfig::table1_cpu().scaled(100);
        assert_eq!(c.num_sentences, 100);
        assert_eq!(c.chunk_size, 100);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_shapes() {
        let mut c = MemNNConfig::tiny();
        c.chunk_size = 0;
        assert!(c.validate().is_err());
        let mut c2 = MemNNConfig::tiny();
        c2.chunk_size = c2.num_sentences + 1;
        assert!(c2.validate().is_err());
        let mut c3 = MemNNConfig::tiny();
        c3.embedding_dim = 0;
        assert!(c3.validate().is_err());
    }

    #[test]
    fn sizing_helpers() {
        let c = MemNNConfig::tiny(); // 24 sentences, ed 8
        assert_eq!(c.memory_bytes(), 24 * 8 * 4);
        assert_eq!(c.spill_bytes(), 96);
        assert_eq!(c.num_chunks(), 3);
        // Non-divisible chunking rounds up.
        let c2 = c.scaled(25);
        assert_eq!(c2.num_chunks(), 4);
    }

    #[test]
    fn display_is_informative() {
        let s = MemNNConfig::tiny().to_string();
        assert!(s.contains("ed=8"));
        assert!(Platform::Fpga.to_string() == "FPGA");
    }
}

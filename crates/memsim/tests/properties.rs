//! Property-based tests for the memory-hierarchy simulator.

use mnn_dataset::zipf::ZipfSampler;
use mnn_memsim::cache::SetAssocCache;
use mnn_memsim::dataflow::{replay, DataflowConfig, Variant};
use mnn_memsim::EmbeddingCache;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_conserves_accesses(addrs in vec(0u64..1_000_000, 1..500)) {
        let mut c = SetAssocCache::new(4096, 4, 64).unwrap();
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.stats().accesses(), addrs.len() as u64);
        prop_assert!(c.stats().misses >= 1, "first access is compulsory");
    }

    #[test]
    fn fully_associative_larger_cache_never_misses_more(
        addrs in vec(0u64..100_000, 1..400),
    ) {
        // LRU inclusion property: for fully-associative LRU caches, a
        // bigger cache's contents always include the smaller one's.
        let mut small = SetAssocCache::fully_associative(1024, 64).unwrap();
        let mut big = SetAssocCache::fully_associative(4096, 64).unwrap();
        for &a in &addrs {
            small.access(a);
            big.access(a);
        }
        prop_assert!(big.stats().misses <= small.stats().misses);
    }

    #[test]
    fn repeating_a_resident_trace_yields_no_new_misses(
        lines in vec(0u64..32, 1..32),
    ) {
        // All addresses within 32 lines fit a 4 KiB fully-assoc cache.
        let mut c = SetAssocCache::fully_associative(4096, 64).unwrap();
        for &l in &lines {
            c.access(l * 64);
        }
        let cold = c.stats().misses;
        for _ in 0..3 {
            for &l in &lines {
                c.access(l * 64);
            }
        }
        prop_assert_eq!(c.stats().misses, cold);
    }

    #[test]
    fn embedding_cache_hit_rate_monotone_in_capacity(
        seed in any::<u64>(),
        exponent in 0.5f64..1.4,
    ) {
        let mut z = ZipfSampler::new(2000, exponent, seed).unwrap();
        let trace = z.trace(20_000);
        let mut prev = -1.0f64;
        for entries in [8usize, 32, 128] {
            let mut c = EmbeddingCache::direct_mapped(entries * 256 * 4, 256).unwrap();
            let s = c.run_trace(&trace);
            prop_assert!(
                s.hit_ratio() >= prev - 0.02,
                "entries {entries}: {} after {prev}",
                s.hit_ratio()
            );
            prev = s.hit_ratio();
        }
    }

    #[test]
    fn variant_miss_ordering_is_invariant(
        ns in 5_000usize..60_000,
        chunk in 100usize..2000,
        questions in 1usize..6,
        skip in 0.0f64..1.0,
    ) {
        let config = DataflowConfig {
            ns,
            ed: 48,
            chunk,
            questions,
            skip_fraction: skip,
            hops: 1,
        };
        let mut misses = Vec::new();
        for v in Variant::ALL {
            let mut llc = SetAssocCache::new(256 << 10, 16, 64).unwrap();
            misses.push(replay(v, config, &mut llc).unwrap().demand_misses);
        }
        // baseline >= column >= column+S >= MnnFast, for every shape.
        prop_assert!(misses[0] >= misses[1], "{misses:?}");
        prop_assert!(misses[1] >= misses[2], "{misses:?}");
        prop_assert!(misses[2] >= misses[3], "{misses:?}");
    }

    #[test]
    fn dram_bytes_never_below_miss_traffic(
        ns in 2_000usize..30_000,
        chunk in 64usize..1024,
    ) {
        let config = DataflowConfig {
            ns,
            ed: 48,
            chunk,
            questions: 2,
            skip_fraction: 0.5,
            hops: 1,
        };
        for v in Variant::ALL {
            let mut llc = SetAssocCache::new(128 << 10, 8, 64).unwrap();
            let r = replay(v, config, &mut llc).unwrap();
            prop_assert!(r.dram_bytes >= r.demand_misses * 64, "{v}");
            prop_assert!(r.demand_misses <= r.demand_accesses, "{v}");
        }
    }
}

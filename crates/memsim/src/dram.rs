//! Multi-channel DRAM bandwidth/latency model.

/// A DRAM subsystem: `channels` independent channels of
/// `channel_gbps` GB/s each, with a flat access latency.
///
/// The paper's CPU testbed is DDR4-2400: ≈19.2 GB/s per channel; its channel
/// sweep (Figs 3/10) varies 1–8 channels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of channels.
    pub channels: usize,
    /// Peak bandwidth per channel in GB/s.
    pub channel_gbps: f64,
    /// Access latency in nanoseconds (row hit ignored; single figure).
    pub latency_ns: f64,
}

impl DramConfig {
    /// DDR4-2400 with the given channel count (19.2 GB/s/channel, 80 ns).
    pub fn ddr4_2400(channels: usize) -> Self {
        Self {
            channels,
            channel_gbps: 19.2,
            latency_ns: 80.0,
        }
    }

    /// The ZedBoard's DDR3-533 with a 32-bit interface: ≈ 2.13 GB/s single
    /// channel (533 MT/s × 4 B).
    pub fn zedboard_ddr3() -> Self {
        Self {
            channels: 1,
            channel_gbps: 2.133,
            latency_ns: 110.0,
        }
    }

    /// Aggregate peak bandwidth in bytes/second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.channels as f64 * self.channel_gbps * 1e9
    }

    /// Time in seconds to transfer `bytes` at peak aggregate bandwidth
    /// (latency excluded — use for streamed bulk transfers).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_sec()
    }

    /// Time in seconds for `accesses` dependent (non-overlapped) accesses of
    /// `bytes_each`, i.e. latency-bound traffic.
    pub fn latency_bound_time(&self, accesses: u64, bytes_each: u64) -> f64 {
        accesses as f64
            * (self.latency_ns * 1e-9 + bytes_each as f64 / self.bandwidth_bytes_per_sec())
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if any field is non-positive or non-finite.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 {
            return Err("channels must be positive".into());
        }
        if !(self.channel_gbps.is_finite() && self.channel_gbps > 0.0) {
            return Err(format!("invalid channel bandwidth {}", self.channel_gbps));
        }
        if !(self.latency_ns.is_finite() && self.latency_ns >= 0.0) {
            return Err(format!("invalid latency {}", self.latency_ns));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_scales_with_channels() {
        let one = DramConfig::ddr4_2400(1);
        let four = DramConfig::ddr4_2400(4);
        assert!(
            (four.bandwidth_bytes_per_sec() / one.bandwidth_bytes_per_sec() - 4.0).abs() < 1e-9
        );
        one.validate().unwrap();
    }

    #[test]
    fn transfer_time_is_linear() {
        let d = DramConfig::ddr4_2400(2);
        let t1 = d.transfer_time(1 << 20);
        let t2 = d.transfer_time(2 << 20);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_bound_exceeds_streaming() {
        let d = DramConfig::ddr4_2400(1);
        let bytes = 64u64 * 1000;
        assert!(d.latency_bound_time(1000, 64) > d.transfer_time(bytes));
    }

    #[test]
    fn zedboard_is_much_slower_than_ddr4() {
        assert!(
            DramConfig::zedboard_ddr3().bandwidth_bytes_per_sec()
                < DramConfig::ddr4_2400(1).bandwidth_bytes_per_sec() / 5.0
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut d = DramConfig::ddr4_2400(1);
        d.channels = 0;
        assert!(d.validate().is_err());
        let mut d2 = DramConfig::ddr4_2400(1);
        d2.channel_gbps = -1.0;
        assert!(d2.validate().is_err());
        let mut d3 = DramConfig::ddr4_2400(1);
        d3.latency_ns = f64::NAN;
        assert!(d3.validate().is_err());
    }
}

//! Discrete-event DRAM request queue simulation.
//!
//! The roofline model ([`crate::roofline`]) uses the closed form
//! `throughput(T) = T/(C + T·B/BW)` for latency-exposed traffic. This
//! module grounds that formula in an explicit simulation: `T` clients each
//! alternate compute (fixed service time) with memory requests that queue
//! at address-interleaved channels served at channel bandwidth. The tests
//! verify the closed form against the simulated throughput, so the Fig 3 /
//! Fig 10 curves rest on more than algebra.

use crate::dram::DramConfig;

/// One client's workload: alternate `compute_seconds` of private work with
/// a memory burst of `burst_bytes` at a rolling address.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientProfile {
    /// Seconds of compute between memory bursts.
    pub compute_seconds: f64,
    /// Bytes fetched per burst.
    pub burst_bytes: u64,
    /// Total bursts each client performs.
    pub bursts: usize,
    /// Whether the client overlaps its compute with the outstanding burst
    /// (streaming/prefetch) or stalls until the burst completes.
    pub overlapped: bool,
}

/// Result of a queue simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueReport {
    /// Wall-clock seconds until the last client finished.
    pub makespan: f64,
    /// Aggregate bytes served.
    pub total_bytes: u64,
    /// Achieved aggregate bandwidth (bytes/second).
    pub achieved_bandwidth: f64,
    /// Mean time a burst spent waiting in a channel queue.
    pub mean_queue_wait: f64,
}

/// Simulates `clients` identical clients against `dram`.
///
/// Event model: each client is a cursor `(next_issue_time)`; each channel
/// is a cursor `(free_at)`. Consecutive bursts from a client rotate over
/// the channels (whole-burst granularity: real systems interleave finer,
/// which spreads load at least this well). A burst issued at `t` to
/// channel `c` begins service at `max(t, free_at[c])` and occupies the
/// channel for `latency + bytes / channel_bandwidth`. Non-overlapped
/// clients resume compute when the burst completes; overlapped clients
/// keep at most one burst in flight (depth-1 pipelining — the
/// double-buffering discipline).
///
/// # Panics
///
/// Panics if `clients == 0` or the profile has zero bursts.
pub fn simulate(dram: &DramConfig, clients: usize, profile: ClientProfile) -> QueueReport {
    assert!(clients > 0, "clients must be positive");
    assert!(profile.bursts > 0, "profile must issue at least one burst");
    let channel_bw = dram.channel_gbps * 1e9;
    let latency = dram.latency_ns * 1e-9;

    let mut channel_free = vec![0.0f64; dram.channels];
    // Per-client state: (next issue time, outstanding burst completion).
    let mut clock = vec![0.0f64; clients];
    let mut outstanding = vec![0.0f64; clients];
    let mut makespan = 0.0f64;
    let mut total_wait = 0.0f64;
    let mut events = 0usize;

    for b in 0..profile.bursts {
        for (c, t) in clock.iter_mut().enumerate() {
            // Compute phase.
            *t += profile.compute_seconds;
            if !profile.overlapped {
                // Stall until the previous burst's data arrived.
                *t = t.max(outstanding[c]);
            } else {
                // Depth-1 pipeline: at most one burst in flight.
                *t = t.max(outstanding[c] - profile.compute_seconds).max(*t);
            }
            // Consecutive bursts rotate channels (offset per client so the
            // clients do not march in lockstep on one channel).
            let ch = (c + b) % channel_free.len();
            let start = t.max(channel_free[ch]);
            total_wait += start - *t;
            events += 1;
            let service = latency + profile.burst_bytes as f64 / channel_bw;
            let done = start + service;
            channel_free[ch] = done;
            outstanding[c] = done;
            if !profile.overlapped {
                *t = done;
            }
            makespan = makespan.max(done);
        }
    }
    // Non-overlapped clients already waited; overlapped ones drain the last
    // burst.
    for (t, &o) in clock.iter().zip(&outstanding) {
        makespan = makespan.max(t.max(o));
    }

    let total_bytes = profile.burst_bytes * (clients * profile.bursts) as u64;
    QueueReport {
        makespan,
        total_bytes,
        achieved_bandwidth: total_bytes as f64 / makespan.max(1e-12),
        mean_queue_wait: total_wait / events as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(overlapped: bool) -> ClientProfile {
        ClientProfile {
            compute_seconds: 2e-6,
            burst_bytes: 64 << 10, // 64 KiB per burst
            bursts: 200,
            overlapped,
        }
    }

    #[test]
    fn single_client_matches_serial_arithmetic() {
        let dram = DramConfig::ddr4_2400(1);
        let p = profile(false);
        let r = simulate(&dram, 1, p);
        let per_burst = p.compute_seconds
            + dram.latency_ns * 1e-9
            + p.burst_bytes as f64 / (dram.channel_gbps * 1e9);
        let expect = per_burst * p.bursts as f64;
        assert!(
            (r.makespan - expect).abs() < 1e-3 * expect,
            "{} vs {expect}",
            r.makespan
        );
        assert!(r.mean_queue_wait < 1e-12, "no contention with one client");
    }

    #[test]
    fn bandwidth_saturates_with_many_clients() {
        let dram = DramConfig::ddr4_2400(2);
        let peak = dram.bandwidth_bytes_per_sec();
        let mut last = 0.0;
        for clients in [1usize, 2, 4, 8, 16] {
            let r = simulate(&dram, clients, profile(false));
            assert!(r.achieved_bandwidth <= peak * 1.001, "cannot beat peak");
            assert!(
                r.achieved_bandwidth >= last * 0.98,
                "throughput must not collapse: {} after {last}",
                r.achieved_bandwidth
            );
            last = r.achieved_bandwidth;
        }
        // At 16 memory-hungry clients the channels are effectively full.
        assert!(last > 0.8 * peak, "{last} vs peak {peak}");
    }

    #[test]
    fn queue_wait_grows_with_contention() {
        let dram = DramConfig::ddr4_2400(1);
        let lone = simulate(&dram, 1, profile(false));
        let crowded = simulate(&dram, 8, profile(false));
        assert!(crowded.mean_queue_wait > lone.mean_queue_wait);
        assert!(
            crowded.mean_queue_wait > 1e-6,
            "8 clients on one channel queue up"
        );
    }

    #[test]
    fn more_channels_reduce_makespan() {
        let p = profile(false);
        let one = simulate(&DramConfig::ddr4_2400(1), 8, p);
        let four = simulate(&DramConfig::ddr4_2400(4), 8, p);
        assert!(
            four.makespan < one.makespan * 0.45,
            "{} vs {}",
            four.makespan,
            one.makespan
        );
    }

    #[test]
    fn overlapping_hides_memory_time_when_compute_bound() {
        // Heavy compute, light memory: overlap ≈ compute-only time.
        let dram = DramConfig::ddr4_2400(4);
        let p = ClientProfile {
            compute_seconds: 50e-6,
            burst_bytes: 4 << 10,
            bursts: 100,
            overlapped: true,
        };
        let serial = ClientProfile {
            overlapped: false,
            ..p
        };
        let o = simulate(&dram, 2, p);
        let s = simulate(&dram, 2, serial);
        assert!(o.makespan < s.makespan);
        let compute_only = p.compute_seconds * p.bursts as f64;
        assert!(
            o.makespan < compute_only * 1.1,
            "{} vs compute-only {compute_only}",
            o.makespan
        );
    }

    #[test]
    fn closed_form_roofline_matches_simulation() {
        // The roofline formula throughput(T) = T/(C + T·B/BW) should track
        // the simulated task rate within ~15% for serialized clients on a
        // saturated channel.
        let dram = DramConfig::ddr4_2400(1);
        let p = ClientProfile {
            compute_seconds: 5e-6,
            burst_bytes: 256 << 10,
            bursts: 100,
            overlapped: false,
        };
        for clients in [2usize, 4, 8] {
            let r = simulate(&dram, clients, p);
            let simulated_rate = (clients * p.bursts) as f64 / r.makespan;
            let bw = dram.bandwidth_bytes_per_sec();
            let closed = clients as f64
                / (p.compute_seconds
                    + dram.latency_ns * 1e-9
                    + clients as f64 * p.burst_bytes as f64 / bw);
            let rel = (simulated_rate - closed).abs() / closed;
            // The closed form is an approximation (it smears queueing into
            // an average); the simulation should stay within ~25%.
            assert!(
                rel < 0.25,
                "{clients} clients: simulated {simulated_rate:.0} vs closed {closed:.0}"
            );
        }
    }
}

//! Two-level cache hierarchy: a private L2 in front of the shared LLC,
//! with write-back dirty-line accounting.
//!
//! The single-LLC replay in [`crate::dataflow`] captures the capacity
//! behaviour the paper's experiments hinge on; this module adds the
//! private-cache level (each inference thread on the Xeon owns a 1 MiB L2)
//! and the write-back traffic the write-heavy baseline spills generate, for
//! the finer-grained analyses in the ablation suite.

use crate::cache::{Access, CacheStats, SetAssocCache};
use std::collections::BTreeSet;

/// Read or write — write-backs only exist for writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load.
    Read,
    /// Store (allocates and dirties the line).
    Write,
}

/// Traffic counters of a [`CacheHierarchy`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L2 hit/miss counts.
    pub l2: CacheStats,
    /// LLC hit/miss counts (LLC sees only L2 misses).
    pub llc: CacheStats,
    /// Dirty lines written back from the hierarchy to DRAM.
    pub writebacks: u64,
}

impl HierarchyStats {
    /// Bytes moved between DRAM and the hierarchy (fills + write-backs),
    /// with `line_bytes` granularity.
    pub fn dram_bytes(&self, line_bytes: u64) -> u64 {
        (self.llc.misses + self.writebacks) * line_bytes
    }
}

/// A private L2 in front of a (possibly shared) LLC, with dirty-line
/// tracking at LLC granularity.
///
/// Inclusion is not enforced (matching modern non-inclusive LLCs); dirty
/// state is tracked by line address and written back when the line leaves
/// the LLC.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l2: SetAssocCache,
    llc: SetAssocCache,
    dirty: BTreeSet<u64>,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Builds a hierarchy from an L2 and an LLC (line sizes must match).
    ///
    /// # Errors
    ///
    /// Returns a message if the line sizes differ.
    pub fn new(l2: SetAssocCache, llc: SetAssocCache) -> Result<Self, String> {
        if l2.line_bytes() != llc.line_bytes() {
            return Err(format!(
                "line sizes differ: L2 {} vs LLC {}",
                l2.line_bytes(),
                llc.line_bytes()
            ));
        }
        Ok(Self {
            l2,
            llc,
            dirty: BTreeSet::new(),
            stats: HierarchyStats::default(),
        })
    }

    /// The Xeon-like default: 1 MiB 16-way L2, 8 MiB 16-way LLC, 64 B lines.
    ///
    /// # Panics
    ///
    /// Never panics (the fixed geometry is valid).
    pub fn xeon_like() -> Self {
        Self::new(
            SetAssocCache::new(1 << 20, 16, 64).expect("valid L2 geometry"),
            SetAssocCache::new(8 << 20, 16, 64).expect("valid LLC geometry"),
        )
        .expect("matching line sizes")
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.l2.line_bytes()
    }

    /// Accesses one address; returns where it hit.
    pub fn access(&mut self, addr: u64, op: Op) -> Level {
        let line = addr / self.line_bytes();
        let level = match self.l2.access(addr) {
            Access::Hit => {
                self.stats.l2.hits += 1;
                Level::L2
            }
            Access::Miss => {
                self.stats.l2.misses += 1;
                match self.llc.access(addr) {
                    Access::Hit => {
                        self.stats.llc.hits += 1;
                        Level::Llc
                    }
                    Access::Miss => {
                        self.stats.llc.misses += 1;
                        // A fill may displace a dirty line; approximate the
                        // victim as the oldest tracked dirty line once the
                        // dirty set exceeds the LLC's line capacity.
                        let capacity_lines = (self.llc.capacity_bytes() as u64) / self.line_bytes();
                        if self.dirty.len() as u64 > capacity_lines {
                            if let Some(&victim) = self.dirty.iter().next() {
                                self.dirty.remove(&victim);
                                self.stats.writebacks += 1;
                            }
                        }
                        Level::Dram
                    }
                }
            }
        };
        if op == Op::Write {
            self.dirty.insert(line);
        }
        level
    }

    /// Touches a byte range (per line), counting each line once.
    pub fn access_range(&mut self, addr: u64, bytes: u64, op: Op) {
        if bytes == 0 {
            return;
        }
        let line = self.line_bytes();
        let first = addr / line;
        let last = (addr + bytes - 1) / line;
        for l in first..=last {
            self.access(l * line, op);
        }
    }

    /// Flushes all dirty lines (end-of-run write-back).
    pub fn flush_dirty(&mut self) {
        self.stats.writebacks += self.dirty.len() as u64;
        self.dirty.clear();
    }

    /// Current statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }
}

/// Replays a [`crate::dataflow::Variant`] dataflow through the hierarchy
/// with read/write distinction, so the baseline's spill *writes* produce
/// write-back traffic (the paper's "flushes and re-reads those temporary
/// data to and from off-chip DRAM").
///
/// Returns the hierarchy stats delta for the replay.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn replay_hierarchy(
    variant: crate::dataflow::Variant,
    config: crate::dataflow::DataflowConfig,
    hierarchy: &mut CacheHierarchy,
) -> Result<HierarchyStats, String> {
    use crate::dataflow::Variant;
    config.validate()?;
    let before = hierarchy.stats();
    let row_bytes = (config.ed * 4) as u64;
    let ns = config.ns as u64;
    let spill = ns * 4;
    const M_IN: u64 = 0x1_0000_0000;
    const M_OUT: u64 = 0x2_0000_0000;
    const T_IN: u64 = 0x3_0000_0000;
    const P_EXP: u64 = 0x4_0000_0000;
    const P: u64 = 0x5_0000_0000;
    const BUF: u64 = 0x6_0000_0000;
    const OUT: u64 = 0x7_0000_0000;

    for _ in 0..config.hops {
        match variant {
            Variant::Baseline => {
                for _ in 0..config.questions {
                    hierarchy.access_range(M_IN, ns * row_bytes, Op::Read);
                    hierarchy.access_range(T_IN, spill, Op::Write);
                    hierarchy.access_range(T_IN, spill, Op::Read);
                    hierarchy.access_range(P_EXP, spill, Op::Write);
                    hierarchy.access_range(P_EXP, spill, Op::Read);
                    hierarchy.access_range(P_EXP, spill, Op::Read);
                    hierarchy.access_range(P, spill, Op::Write);
                    hierarchy.access_range(P, spill, Op::Read);
                    hierarchy.access_range(M_OUT, ns * row_bytes, Op::Read);
                    hierarchy.access_range(OUT, row_bytes, Op::Write);
                }
            }
            _ => {
                // All column variants: chunked, reused small buffers.
                let chunk = config.chunk as u64;
                let kept = if variant == Variant::MnnFast {
                    1.0 - config.skip_fraction
                } else {
                    1.0
                };
                let mut row = 0u64;
                while row < ns {
                    let n = chunk.min(ns - row);
                    hierarchy.access_range(M_IN + row * row_bytes, n * row_bytes, Op::Read);
                    let buf = n * config.questions as u64 * 4;
                    hierarchy.access_range(BUF, buf, Op::Write);
                    hierarchy.access_range(BUF, buf, Op::Read);
                    let out_rows = ((n as f64) * kept).round() as u64;
                    if out_rows > 0 {
                        hierarchy.access_range(
                            M_OUT + row * row_bytes,
                            out_rows * row_bytes,
                            Op::Read,
                        );
                    }
                    hierarchy.access_range(OUT, config.questions as u64 * row_bytes, Op::Write);
                    row += chunk;
                }
            }
        }
    }
    hierarchy.flush_dirty();
    let after = hierarchy.stats();
    Ok(HierarchyStats {
        l2: CacheStats {
            hits: after.l2.hits - before.l2.hits,
            misses: after.l2.misses - before.l2.misses,
        },
        llc: CacheStats {
            hits: after.llc.hits - before.llc.hits,
            misses: after.llc.misses - before.llc.misses,
        },
        writebacks: after.writebacks - before.writebacks,
    })
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Private L2.
    L2,
    /// Shared LLC.
    Llc,
    /// Off-chip.
    Dram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatched_line_sizes_rejected() {
        let l2 = SetAssocCache::new(1 << 16, 4, 64).unwrap();
        let llc = SetAssocCache::new(1 << 20, 16, 128).unwrap();
        assert!(CacheHierarchy::new(l2, llc).is_err());
    }

    #[test]
    fn l2_filters_llc_traffic() {
        let mut h = CacheHierarchy::xeon_like();
        // A 256 KiB working set fits the 1 MiB L2 entirely.
        for _ in 0..3 {
            h.access_range(0, 256 << 10, Op::Read);
        }
        let s = h.stats();
        let lines = (256 << 10) / 64;
        assert_eq!(s.l2.misses, lines, "cold misses only");
        assert_eq!(s.llc.accesses(), lines, "LLC sees only L2 misses");
        assert_eq!(s.l2.hits, 2 * lines);
    }

    #[test]
    fn llc_catches_l2_capacity_overflow() {
        let mut h = CacheHierarchy::xeon_like();
        // 4 MiB working set: exceeds L2 (1 MiB), fits LLC (8 MiB).
        h.access_range(0, 4 << 20, Op::Read);
        h.access_range(0, 4 << 20, Op::Read);
        let s = h.stats();
        // Second pass: L2 thrashes (sequential + LRU), LLC serves it.
        assert!(s.llc.hits > 0, "LLC must catch the overflow");
        assert_eq!(s.llc.misses, (4 << 20) / 64, "DRAM only for cold fills");
    }

    #[test]
    fn writes_generate_writebacks_once_capacity_exceeded() {
        let mut h = CacheHierarchy::xeon_like();
        // Write 16 MiB (beyond the 8 MiB LLC): old dirty lines must go out.
        h.access_range(0, 16 << 20, Op::Write);
        let s = h.stats();
        assert!(s.writebacks > 0, "dirty evictions must be counted");
        // Flush accounts the remainder.
        let before = h.stats().writebacks;
        h.flush_dirty();
        let after = h.stats().writebacks;
        assert!(after > before);
        // Total write-backs equal total dirtied lines.
        assert_eq!(after, (16 << 20) / 64);
    }

    #[test]
    fn reads_never_write_back() {
        let mut h = CacheHierarchy::xeon_like();
        h.access_range(0, 32 << 20, Op::Read);
        h.flush_dirty();
        assert_eq!(h.stats().writebacks, 0);
    }

    #[test]
    fn dram_bytes_counts_fills_and_writebacks() {
        let mut h = CacheHierarchy::xeon_like();
        h.access_range(0, 1 << 20, Op::Write);
        h.flush_dirty();
        let s = h.stats();
        assert_eq!(s.dram_bytes(64), (s.llc.misses + s.writebacks) * 64);
        // Write-heavy traffic roughly doubles the DRAM bytes.
        assert!(s.dram_bytes(64) >= 2 * s.llc.misses * 64);
    }

    #[test]
    fn baseline_writes_back_its_spills_but_column_does_not() {
        use crate::dataflow::{DataflowConfig, Variant};
        let config = DataflowConfig {
            ns: 300_000, // spills 1.2 MB/question exceed the 1 MiB L2
            ed: 48,
            chunk: 1000,
            questions: 4,
            skip_fraction: 0.9,
            hops: 1,
        };
        let mut h_base = CacheHierarchy::xeon_like();
        let base = replay_hierarchy(Variant::Baseline, config, &mut h_base).unwrap();
        let mut h_col = CacheHierarchy::xeon_like();
        let col = replay_hierarchy(Variant::Column, config, &mut h_col).unwrap();
        assert!(
            base.writebacks > 10 * col.writebacks.max(1),
            "baseline {} vs column {}",
            base.writebacks,
            col.writebacks
        );
        // Total DRAM bytes (fills + writebacks) ranked accordingly.
        assert!(base.dram_bytes(64) > col.dram_bytes(64));
        let mut h_mf = CacheHierarchy::xeon_like();
        let mf = replay_hierarchy(Variant::MnnFast, config, &mut h_mf).unwrap();
        assert!(mf.dram_bytes(64) <= col.dram_bytes(64));
    }

    #[test]
    fn levels_are_reported() {
        let mut h = CacheHierarchy::xeon_like();
        assert_eq!(h.access(0, Op::Read), Level::Dram);
        assert_eq!(h.access(0, Op::Read), Level::L2);
        // Evict from tiny L2 footprint by thrashing, then re-touch: LLC hit.
        h.access_range(1 << 24, 2 << 20, Op::Read);
        assert_eq!(h.access(0, Op::Read), Level::Llc);
    }
}

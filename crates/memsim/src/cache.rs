//! Set-associative LRU cache model.

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed (→ off-chip).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (`0` when no accesses were made).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was fetched (and possibly evicted a victim).
    Miss,
}

/// A set-associative cache with true-LRU replacement.
///
/// Addresses are byte addresses; the cache tracks whole lines. This models
/// capacity and conflict behaviour — coherence and write-back traffic are
/// out of scope (the experiments only need miss counts).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    line_bytes: u64,
    num_sets: u64,
    stats: CacheStats,
    tick: u64,
    next_line_prefetch: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    last_use: u64,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `ways`-way associativity and
    /// `line_bytes` lines.
    ///
    /// # Errors
    ///
    /// Returns a message if any parameter is zero, not a power of two where
    /// required, or the geometry is inconsistent (capacity not divisible by
    /// `ways * line_bytes`).
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Result<Self, String> {
        if capacity_bytes == 0 || ways == 0 || line_bytes == 0 {
            return Err("cache parameters must be positive".into());
        }
        if !line_bytes.is_power_of_two() {
            return Err(format!("line size {line_bytes} must be a power of two"));
        }
        let set_bytes = ways * line_bytes;
        if !capacity_bytes.is_multiple_of(set_bytes) {
            return Err(format!(
                "capacity {capacity_bytes} not divisible by ways*line ({set_bytes})"
            ));
        }
        let num_sets = capacity_bytes / set_bytes;
        Ok(Self {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            line_bytes: line_bytes as u64,
            num_sets: num_sets as u64,
            stats: CacheStats::default(),
            tick: 0,
            next_line_prefetch: false,
        })
    }

    /// Enables a simple next-line hardware prefetcher: every demand miss
    /// also installs the following line. Models the stream prefetchers that
    /// partially help even the non-streamed column variant on real CPUs.
    pub fn with_next_line_prefetch(mut self) -> Self {
        self.next_line_prefetch = true;
        self
    }

    /// Fully-associative convenience constructor.
    ///
    /// # Errors
    ///
    /// As [`SetAssocCache::new`].
    pub fn fully_associative(capacity_bytes: usize, line_bytes: usize) -> Result<Self, String> {
        let ways = capacity_bytes / line_bytes;
        Self::new(capacity_bytes, ways.max(1), line_bytes)
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        (self.num_sets * self.ways as u64 * self.line_bytes) as usize
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Accesses the line containing byte `addr`; updates LRU and stats.
    pub fn access(&mut self, addr: u64) -> Access {
        self.tick += 1;
        let line_addr = addr / self.line_bytes;
        let set_idx = (line_addr % self.num_sets) as usize;
        let tag = line_addr / self.num_sets;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.last_use = self.tick;
            self.stats.hits += 1;
            return Access::Hit;
        }
        self.stats.misses += 1;
        if set.len() < self.ways {
            set.push(Line {
                tag,
                last_use: self.tick,
            });
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|l| l.last_use)
                .expect("non-empty set");
            victim.tag = tag;
            victim.last_use = self.tick;
        }
        if self.next_line_prefetch {
            self.prefetch((line_addr + 1) * self.line_bytes);
        }
        Access::Miss
    }

    /// Touches every line of the byte range `[addr, addr + bytes)`, returning
    /// the number of misses. This is how whole-buffer reads/writes are
    /// replayed.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let first = addr / self.line_bytes;
        let last = (addr + bytes - 1) / self.line_bytes;
        let mut misses = 0;
        for line in first..=last {
            if self.access(line * self.line_bytes) == Access::Miss {
                misses += 1;
            }
        }
        misses
    }

    /// Installs the line containing `addr` without counting a demand access
    /// — models a prefetch that arrives before the demand reference.
    pub fn prefetch(&mut self, addr: u64) {
        self.tick += 1;
        let line_addr = addr / self.line_bytes;
        let set_idx = (line_addr % self.num_sets) as usize;
        let tag = line_addr / self.num_sets;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.last_use = self.tick;
            return;
        }
        if set.len() < self.ways {
            set.push(Line {
                tag,
                last_use: self.tick,
            });
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|l| l.last_use)
                .expect("non-empty set");
            victim.tag = tag;
            victim.last_use = self.tick;
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears counters but keeps contents (for warm-up/measure protocols).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Empties the cache and clears counters.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validation() {
        assert!(SetAssocCache::new(0, 1, 64).is_err());
        assert!(SetAssocCache::new(1024, 0, 64).is_err());
        assert!(SetAssocCache::new(1024, 1, 48).is_err(), "non-pow2 line");
        assert!(SetAssocCache::new(1000, 2, 64).is_err(), "indivisible");
        let c = SetAssocCache::new(1 << 20, 8, 64).unwrap();
        assert_eq!(c.capacity_bytes(), 1 << 20);
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    fn same_line_hits() {
        let mut c = SetAssocCache::new(4096, 4, 64).unwrap();
        assert_eq!(c.access(100), Access::Miss);
        assert_eq!(c.access(127), Access::Hit);
        assert_eq!(c.access(128), Access::Miss, "next line");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 sets, 2 ways, 64B lines => 256B cache.
        let mut c = SetAssocCache::new(256, 2, 64).unwrap();
        // All addresses map to set 0: strides of num_sets*line = 128.
        c.access(0); // A
        c.access(128); // B
        c.access(0); // touch A (B is now LRU)
        c.access(256); // C evicts B
        assert_eq!(c.access(0), Access::Hit, "A survived");
        assert_eq!(c.access(128), Access::Miss, "B was evicted");
    }

    #[test]
    fn working_set_within_capacity_has_no_steady_state_misses() {
        let mut c = SetAssocCache::new(8192, 8, 64).unwrap();
        // 4 KiB working set in an 8 KiB cache.
        for _ in 0..3 {
            c.access_range(0, 4096);
        }
        let cold = 4096 / 64;
        assert_eq!(c.stats().misses, cold, "only compulsory misses");
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = SetAssocCache::new(4096, 4, 64).unwrap();
        // Stream 64 KiB repeatedly: LRU + sequential = no reuse.
        for _ in 0..3 {
            c.access_range(0, 65536);
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn access_range_counts_lines() {
        let mut c = SetAssocCache::new(1 << 16, 8, 64).unwrap();
        assert_eq!(c.access_range(0, 1), 1);
        assert_eq!(c.access_range(64, 129), 3, "spans lines 1..=3, line 1 hot");
        assert_eq!(c.access_range(0, 0), 0);
    }

    #[test]
    fn prefetch_installs_without_demand_count() {
        let mut c = SetAssocCache::new(4096, 4, 64).unwrap();
        c.prefetch(0);
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.access(0), Access::Hit, "prefetched line present");
    }

    #[test]
    fn flush_and_reset() {
        let mut c = SetAssocCache::new(4096, 4, 64).unwrap();
        c.access(0);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.access(0), Access::Hit, "contents kept by reset_stats");
        c.flush();
        assert_eq!(c.access(0), Access::Miss, "flush empties contents");
    }

    #[test]
    fn stats_ratios() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn next_line_prefetcher_halves_sequential_misses() {
        let mut plain = SetAssocCache::new(4096, 4, 64).unwrap();
        let mut pf = SetAssocCache::new(4096, 4, 64)
            .unwrap()
            .with_next_line_prefetch();
        for i in 0..64u64 {
            plain.access(i * 64);
            pf.access(i * 64);
        }
        assert_eq!(plain.stats().misses, 64);
        assert_eq!(pf.stats().misses, 32, "every other line arrives early");
    }

    #[test]
    fn fully_associative_has_no_conflict_misses() {
        let mut c = SetAssocCache::fully_associative(256, 64).unwrap();
        // 4 lines at conflicting strides still all fit.
        for i in 0..4u64 {
            c.access(i * 4096);
        }
        for i in 0..4u64 {
            assert_eq!(c.access(i * 4096), Access::Hit);
        }
    }
}

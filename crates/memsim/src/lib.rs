//! Trace-driven memory-hierarchy simulator for the MnnFast reproduction.
//!
//! The paper's motivational and cache experiments (Figs 3, 4, 10, 11, 14)
//! vary physical resources — DDR4 channel count, co-running threads, a
//! dedicated FPGA cache — that this environment does not have. This crate
//! simulates that hardware and replays the *actual dataflows* of the
//! baseline and column-based algorithms against it:
//!
//! - [`cache`] — a set-associative, LRU, write-allocate cache model (the
//!   shared LLC),
//! - [`dram`] — a multi-channel DRAM bandwidth/latency model,
//! - [`dataflow`] — address-trace generators for the Fig 5 dataflows
//!   (baseline / column / column + streaming),
//! - [`roofline`] — the analytic thread-scaling bottleneck model behind the
//!   speedup-vs-threads curves (Figs 3 and 10),
//! - [`contention`] — interleaved inference/embedding trace simulation of
//!   shared-cache contention (Fig 4) and its embedding-cache fix,
//! - [`embedding_cache`] — the word-ID-keyed dedicated cache (Fig 14).
//!
//! # Example
//!
//! ```
//! use mnn_memsim::cache::SetAssocCache;
//!
//! // 8 MiB, 16-way, 64-byte lines: a typical shared LLC.
//! let mut llc = SetAssocCache::new(8 << 20, 16, 64).unwrap();
//! llc.access(0);      // cold miss
//! llc.access(32);     // same line: hit
//! assert_eq!(llc.stats().misses, 1);
//! assert_eq!(llc.stats().hits, 1);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cache;
pub mod channels;
pub mod contention;
pub mod dataflow;
pub mod dram;
pub mod dram_queue;
pub mod embedding_cache;
pub mod hierarchy;
pub mod roofline;

pub use cache::{CacheStats, SetAssocCache};
pub use dataflow::Variant;
pub use dram::DramConfig;
pub use embedding_cache::EmbeddingCache;

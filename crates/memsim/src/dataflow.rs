//! Address-trace generators for the Fig 5 dataflows.
//!
//! Each variant replays the exact sequence of buffer touches its algorithm
//! performs against a shared-LLC model, producing the off-chip access counts
//! of Fig 11 and the per-variant demand-byte profiles consumed by the
//! thread-scaling model (Fig 10).

use crate::cache::SetAssocCache;
use std::fmt;

/// The four system variants the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Layer-by-layer dataflow with full-length intermediates (Fig 5(a)).
    Baseline,
    /// Column-based algorithm, chunked with lazy softmax (Fig 5(b)).
    Column,
    /// Column-based algorithm plus chunk streaming (prefetch overlap).
    ColumnStreaming,
    /// Everything: column + streaming + zero-skipping.
    MnnFast,
}

impl Variant {
    /// All variants in presentation order.
    pub const ALL: [Variant; 4] = [
        Variant::Baseline,
        Variant::Column,
        Variant::ColumnStreaming,
        Variant::MnnFast,
    ];
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Variant::Baseline => "baseline",
            Variant::Column => "column",
            Variant::ColumnStreaming => "column+S",
            Variant::MnnFast => "MnnFast",
        };
        f.write_str(s)
    }
}

/// Shape of the replayed inference (a scaled-down Table 1 configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataflowConfig {
    /// Story sentences `ns`.
    pub ns: usize,
    /// Embedding dimension `ed`.
    pub ed: usize,
    /// Chunk size for the column-based variants.
    pub chunk: usize,
    /// Questions per batch (`nq`). Both implementations batch questions
    /// through BLAS (`U × M_INᵀ` is a GEMM), so the baseline's intermediate
    /// matrices are `ns × nq` — the spills grow with the batch — while the
    /// column-based variants keep `chunk × nq` buffers.
    pub questions: usize,
    /// Fraction of `M_OUT` rows zero-skipping avoids (only used by
    /// [`Variant::MnnFast`]; the paper measures ~0.81–0.97 on bAbI).
    pub skip_fraction: f64,
    /// Memory hops per question (≥ 1). Every hop repeats the full
    /// attention dataflow over the same memories.
    pub hops: usize,
}

impl DataflowConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.ns == 0 || self.ed == 0 || self.chunk == 0 || self.questions == 0 {
            return Err("ns, ed, chunk and questions must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.skip_fraction) {
            return Err(format!("skip_fraction {} out of [0,1]", self.skip_fraction));
        }
        if self.hops == 0 {
            return Err("hops must be positive".into());
        }
        Ok(())
    }
}

/// Outcome of replaying a dataflow against the LLC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataflowReport {
    /// Demand accesses issued to the LLC.
    pub demand_accesses: u64,
    /// Demand misses — the off-chip access count of Fig 11.
    pub demand_misses: u64,
    /// Bytes moved from DRAM (demand misses plus prefetch fills).
    pub dram_bytes: u64,
}

// Disjoint address regions (1 GiB apart so buffers never alias).
const M_IN_BASE: u64 = 0x1_0000_0000;
const M_OUT_BASE: u64 = 0x2_0000_0000;
const T_IN_BASE: u64 = 0x3_0000_0000;
const P_EXP_BASE: u64 = 0x4_0000_0000;
const P_BASE: u64 = 0x5_0000_0000;
const CHUNK_BUF_BASE: u64 = 0x6_0000_0000;
const OUT_BASE: u64 = 0x7_0000_0000;

/// Replays `variant`'s dataflow for `config` against `llc`.
///
/// The LLC should be freshly flushed for a cold-start measurement; passing a
/// warm cache models steady-state multi-question serving.
///
/// # Errors
///
/// Returns the validation error of an invalid `config`.
pub fn replay(
    variant: Variant,
    config: DataflowConfig,
    llc: &mut SetAssocCache,
) -> Result<DataflowReport, String> {
    config.validate()?;
    let before = llc.stats();
    let mut dram_bytes = 0u64;
    for _ in 0..config.hops {
        match variant {
            Variant::Baseline => replay_baseline(config, llc),
            Variant::Column => replay_column(config, llc, false, 0.0, &mut dram_bytes),
            Variant::ColumnStreaming => replay_column(config, llc, true, 0.0, &mut dram_bytes),
            Variant::MnnFast => {
                replay_column(config, llc, true, config.skip_fraction, &mut dram_bytes)
            }
        }
    }
    let after = llc.stats();
    let demand_misses = after.misses - before.misses;
    let demand_accesses = after.accesses() - before.accesses();
    Ok(DataflowReport {
        demand_accesses,
        demand_misses,
        dram_bytes: dram_bytes + demand_misses * llc.line_bytes(),
    })
}

/// Fig 5(a): full-length layers with intermediate spills.
///
/// The baseline implements each operation as a single lock-step-parallel
/// function and answers questions as they arrive (Section 4.1.1), so each
/// question streams the full memories again and spills three `ns`-length
/// intermediates (`T_IN`, `P_exp`, `P`) between layers. The column-based
/// variants instead hold a chunk resident while serving the whole question
/// batch, which is exactly the "MemNN-friendly data chunking" the paper
/// contrasts against.
fn replay_baseline(c: DataflowConfig, llc: &mut SetAssocCache) {
    let row_bytes = (c.ed * 4) as u64;
    let ns = c.ns as u64;
    let spill_bytes = ns * 4;

    for _ in 0..c.questions {
        // Step 1: inner product — stream M_IN, write T_IN.
        llc.access_range(M_IN_BASE, ns * row_bytes);
        llc.access_range(T_IN_BASE, spill_bytes);

        // Step 2-1: exponentiate — read T_IN, write P_exp.
        llc.access_range(T_IN_BASE, spill_bytes);
        llc.access_range(P_EXP_BASE, spill_bytes);
        // Step 2-1b: reduce P_exp for the denominator.
        llc.access_range(P_EXP_BASE, spill_bytes);
        // Step 2-2: divide — read P_exp, write P.
        llc.access_range(P_EXP_BASE, spill_bytes);
        llc.access_range(P_BASE, spill_bytes);

        // Step 3: weighted sum — read P, stream M_OUT, write O.
        llc.access_range(P_BASE, spill_bytes);
        llc.access_range(M_OUT_BASE, ns * row_bytes);
        llc.access_range(OUT_BASE, row_bytes);
    }
}

/// Fraction of streamed lines whose prefetch lands before the demand access.
const PREFETCH_COVERAGE: u32 = 8; // 8 of every 10 lines

/// Prefetches `[addr, addr + bytes)` with [`PREFETCH_COVERAGE`]/10 timeliness
/// and accounts the full range as DRAM traffic.
fn prefetch_covered(llc: &mut SetAssocCache, addr: u64, bytes: u64, dram_bytes: &mut u64) {
    if bytes == 0 {
        return;
    }
    let line = llc.line_bytes();
    let mut a = addr;
    let mut i = 0u32;
    while a < addr + bytes {
        if i % 10 < PREFETCH_COVERAGE {
            llc.prefetch(a);
        }
        i += 1;
        a += line;
    }
    *dram_bytes += bytes;
}

/// Fig 5(b): chunked processing; `streaming` turns chunk loads into
/// prefetches (demand hits), `skip_fraction` drops that share of M_OUT rows.
fn replay_column(
    c: DataflowConfig,
    llc: &mut SetAssocCache,
    streaming: bool,
    skip_fraction: f64,
    dram_bytes: &mut u64,
) {
    let row_bytes = (c.ed * 4) as u64;
    let mut row = 0usize;
    while row < c.ns {
        let n = c.chunk.min(c.ns - row) as u64;
        let in_addr = M_IN_BASE + row as u64 * row_bytes;
        let out_addr = M_OUT_BASE + row as u64 * row_bytes;

        if streaming {
            // Prefetch the chunk (counts as DRAM traffic, not demand
            // misses), then demand-access it. Real prefetchers are not
            // perfectly timely: PREFETCH_COVERAGE of the lines arrive
            // before the demand reference.
            prefetch_covered(llc, in_addr, n * row_bytes, dram_bytes);
        }
        llc.access_range(in_addr, n * row_bytes);

        // Chunk-sized T_IN / P_exp live in a reused buffer of chunk × nq
        // (hits after the first chunk as long as it fits the LLC).
        let buf_bytes = n * c.questions as u64 * 4;
        llc.access_range(CHUNK_BUF_BASE, buf_bytes); // write logits
        llc.access_range(CHUNK_BUF_BASE, buf_bytes); // read for exp + accumulate

        // Weighted sum reads the kept fraction of M_OUT rows.
        let kept = ((n as f64) * (1.0 - skip_fraction)).round() as u64;
        if kept > 0 {
            if streaming {
                prefetch_covered(llc, out_addr, kept * row_bytes, dram_bytes);
            }
            llc.access_range(out_addr, kept * row_bytes);
        }
        // Accumulators (nq × ed floats) stay hot.
        llc.access_range(OUT_BASE, c.questions as u64 * row_bytes);
        row += c.chunk;
    }
    // Lazy division touches the accumulators once more.
    llc.access_range(OUT_BASE, c.questions as u64 * row_bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llc() -> SetAssocCache {
        // 1 MiB LLC, 16-way, 64 B lines.
        SetAssocCache::new(1 << 20, 16, 64).unwrap()
    }

    fn config() -> DataflowConfig {
        DataflowConfig {
            ns: 40_000, // memories 40k*48*4 ≈ 7.7 MB >> 1 MiB LLC
            ed: 48,
            chunk: 1000,
            questions: 4,
            skip_fraction: 0.9,
            hops: 1,
        }
    }

    #[test]
    fn validation() {
        let mut c = config();
        c.chunk = 0;
        assert!(c.validate().is_err());
        let mut c2 = config();
        c2.skip_fraction = 1.5;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn column_has_fewer_offchip_accesses_than_baseline() {
        let mut cache = llc();
        let base = replay(Variant::Baseline, config(), &mut cache).unwrap();
        cache.flush();
        let col = replay(Variant::Column, config(), &mut cache).unwrap();
        assert!(
            col.demand_misses < base.demand_misses,
            "column {} vs baseline {}",
            col.demand_misses,
            base.demand_misses
        );
    }

    #[test]
    fn streaming_removes_most_demand_misses() {
        let mut cache = llc();
        let base = replay(Variant::Baseline, config(), &mut cache).unwrap();
        cache.flush();
        let cs = replay(Variant::ColumnStreaming, config(), &mut cache).unwrap();
        // Paper: column+streaming eliminates >60% of off-chip accesses.
        assert!(
            (cs.demand_misses as f64) < 0.4 * base.demand_misses as f64,
            "column+S {} vs baseline {}",
            cs.demand_misses,
            base.demand_misses
        );
        // But the data still crossed the bus as prefetches.
        assert!(cs.dram_bytes > 0);
    }

    #[test]
    fn zero_skipping_reduces_dram_traffic() {
        let mut cache = llc();
        let cs = replay(Variant::ColumnStreaming, config(), &mut cache).unwrap();
        cache.flush();
        let mf = replay(Variant::MnnFast, config(), &mut cache).unwrap();
        assert!(
            mf.dram_bytes < cs.dram_bytes,
            "MnnFast {} vs column+S {}",
            mf.dram_bytes,
            cs.dram_bytes
        );
    }

    #[test]
    fn small_memories_fit_in_llc_after_first_question() {
        // Memories of 64 KiB fit a 1 MiB LLC: the second question should be
        // nearly all hits for every variant.
        let c = DataflowConfig {
            ns: 256,
            ed: 48,
            chunk: 64,
            questions: 4,
            skip_fraction: 0.0,
            hops: 1,
        };
        for v in Variant::ALL {
            let mut cache = llc();
            let first = replay(v, c, &mut cache).unwrap();
            let second = replay(v, c, &mut cache).unwrap();
            assert!(
                second.demand_misses * 10 <= first.demand_misses.max(10),
                "{v}: warm {} vs cold {}",
                second.demand_misses,
                first.demand_misses
            );
        }
    }

    #[test]
    fn multi_hop_scales_traffic() {
        let mut one = config();
        one.ns = 20_000;
        let mut three = one;
        three.hops = 3;
        let mut llc1 = llc();
        let r1 = replay(Variant::Baseline, one, &mut llc1).unwrap();
        let mut llc3 = llc();
        let r3 = replay(Variant::Baseline, three, &mut llc3).unwrap();
        assert_eq!(r3.demand_accesses, 3 * r1.demand_accesses);
        let mut h0 = config();
        h0.hops = 0;
        assert!(h0.validate().is_err());
    }

    #[test]
    fn report_access_counts_are_consistent() {
        let mut cache = llc();
        let r = replay(Variant::Baseline, config(), &mut cache).unwrap();
        assert!(r.demand_misses <= r.demand_accesses);
        assert!(r.dram_bytes >= r.demand_misses * 64);
    }

    #[test]
    fn variant_display_names() {
        assert_eq!(Variant::ColumnStreaming.to_string(), "column+S");
        assert_eq!(Variant::MnnFast.to_string(), "MnnFast");
    }
}

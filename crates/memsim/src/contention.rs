//! Shared-cache contention between inference and embedding threads (Fig 4)
//! and its mitigation by the embedding cache (Section 3.3).
//!
//! Inference threads cycle over cache-resident working sets (the blocked
//! matrix tiles the paper's Section 2.2.3 describes); embedding threads
//! stream Zipf-distributed vector lookups over a large embedding matrix,
//! polluting the LLC. The simulator interleaves the two access streams
//! through one LLC model and converts the inference miss ratio into a
//! relative-performance figure with a simple average-memory-access-time
//! model.

use crate::cache::SetAssocCache;
use crate::embedding_cache::EmbeddingCache;
use mnn_dataset::zipf::ZipfSampler;

/// Parameters for a contention experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionConfig {
    /// Shared LLC capacity in bytes.
    pub llc_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// Per-inference-thread working set in bytes (scales with the network:
    /// `ed` × tile rows × 4).
    pub inference_ws_bytes: usize,
    /// Number of inference threads.
    pub inference_threads: usize,
    /// Number of co-running embedding threads.
    pub embedding_threads: usize,
    /// Embedding matrix vocabulary (distinct vectors).
    pub vocab_size: usize,
    /// Embedding dimension (vector payload per lookup).
    pub embedding_dim: usize,
    /// Interleave steps to simulate (per thread).
    pub steps: usize,
    /// Zipf exponent of the word-frequency distribution.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
    /// If `true`, embedding lookups go through a dedicated embedding cache
    /// and *bypass the LLC entirely* — the MnnFast fix.
    pub isolate_embedding: Option<EmbeddingIsolation>,
}

/// How embedding traffic is isolated from the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmbeddingIsolation {
    /// Capacity of the dedicated embedding cache in bytes. `0` models plain
    /// cache bypassing (non-temporal loads): no pollution, but every lookup
    /// pays DRAM latency.
    pub cache_bytes: usize,
}

impl ContentionConfig {
    /// A Fig 4-style default: 8 MiB LLC, 4 inference threads with 1 MiB
    /// working sets, 60k-word embedding matrix.
    pub fn fig4_default() -> Self {
        Self {
            llc_bytes: 8 << 20,
            llc_ways: 16,
            inference_ws_bytes: 1 << 20,
            inference_threads: 4,
            embedding_threads: 1,
            vocab_size: 60_000,
            embedding_dim: 48,
            steps: 60_000,
            zipf_exponent: 1.0,
            seed: 7,
            isolate_embedding: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.llc_bytes == 0 || self.llc_ways == 0 {
            return Err("LLC geometry must be positive".into());
        }
        if self.inference_ws_bytes == 0 || self.inference_threads == 0 {
            return Err("inference side must be non-empty".into());
        }
        if self.vocab_size == 0 || self.embedding_dim == 0 || self.steps == 0 {
            return Err("embedding side must be non-empty".into());
        }
        Ok(())
    }
}

/// Results of a contention simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionReport {
    /// Inference-stream LLC miss ratio.
    pub inference_miss_ratio: f64,
    /// Embedding-stream miss ratio (of the LLC, or of the embedding cache
    /// when isolated).
    pub embedding_miss_ratio: f64,
    /// Inference performance relative to a run with zero embedding threads
    /// (1.0 = unaffected), via an AMAT model with 4-cycle hits and 200-cycle
    /// misses.
    pub relative_performance: f64,
}

const COMPUTE_CYCLES: f64 = 8.0; // useful work per memory access
const HIT_CYCLES: f64 = 4.0;
const MISS_CYCLES: f64 = 40.0; // effective (MLP-overlapped) miss penalty

fn amat(miss_ratio: f64) -> f64 {
    COMPUTE_CYCLES + HIT_CYCLES + miss_ratio * MISS_CYCLES
}

/// Runs the interleaved-stream simulation.
///
/// # Errors
///
/// Propagates configuration/geometry errors.
pub fn simulate(config: ContentionConfig) -> Result<ContentionReport, String> {
    config.validate()?;
    // Baseline inference miss ratio: same run with no embedding threads.
    let solo = run_once(ContentionConfig {
        embedding_threads: 0,
        ..config
    })?;
    let loaded = run_once(config)?;
    Ok(ContentionReport {
        inference_miss_ratio: loaded.0,
        embedding_miss_ratio: loaded.1,
        relative_performance: amat(solo.0) / amat(loaded.0),
    })
}

/// Returns `(inference_miss_ratio, embedding_miss_ratio)`.
fn run_once(config: ContentionConfig) -> Result<(f64, f64), String> {
    let line = 64usize;
    let mut llc = SetAssocCache::new(config.llc_bytes, config.llc_ways, line)?;
    let mut zipf = ZipfSampler::new(config.vocab_size, config.zipf_exponent, config.seed)
        .map_err(|e| e.to_string())?;
    let mut embed_cache = match config.isolate_embedding {
        Some(iso) if iso.cache_bytes > 0 => Some(
            EmbeddingCache::direct_mapped(iso.cache_bytes, config.embedding_dim)
                .map_err(|e| e.to_string())?,
        ),
        _ => None,
    };

    // Inference threads walk disjoint circular working sets.
    let ws_lines = config.inference_ws_bytes / line;
    let mut cursors = vec![0usize; config.inference_threads];
    let inf_base = |t: usize| (0x1_0000_0000u64) + (t as u64) * 0x1000_0000;
    let emb_base = 0x9_0000_0000u64;
    let vec_bytes = (config.embedding_dim * 4) as u64;

    let mut inf_hits = 0u64;
    let mut inf_misses = 0u64;
    let mut emb_hits = 0u64;
    let mut emb_misses = 0u64;

    // Warm the inference working sets so we measure steady state.
    for t in 0..config.inference_threads {
        for l in 0..ws_lines {
            llc.access(inf_base(t) + (l * line) as u64);
        }
    }
    llc.reset_stats();

    for _ in 0..config.steps {
        for (t, cursor) in cursors.iter_mut().enumerate() {
            let addr = inf_base(t) + (*cursor * line) as u64;
            *cursor = (*cursor + 1) % ws_lines.max(1);
            match llc.access(addr) {
                crate::cache::Access::Hit => inf_hits += 1,
                crate::cache::Access::Miss => inf_misses += 1,
            }
        }
        for _ in 0..config.embedding_threads {
            let word = zipf.sample();
            match (&mut embed_cache, config.isolate_embedding) {
                (Some(cache), _) => {
                    // Dedicated cache: the LLC never sees this traffic.
                    match cache.lookup(word) {
                        crate::cache::Access::Hit => emb_hits += 1,
                        crate::cache::Access::Miss => emb_misses += 1,
                    }
                }
                (None, Some(_)) => {
                    // Pure bypass (non-temporal): straight to DRAM.
                    emb_misses += 1;
                }
                (None, None) => {
                    // Pollutes the shared LLC: touch the whole vector.
                    let addr = emb_base + word as u64 * vec_bytes;
                    let misses = llc.access_range(addr, vec_bytes);
                    let lines = vec_bytes.div_ceil(line as u64);
                    emb_misses += misses;
                    emb_hits += lines - misses;
                    // Remove embedding accesses from the inference counters
                    // later via explicit tallies (we track both here).
                }
            }
        }
    }

    let inf_total = (inf_hits + inf_misses).max(1);
    let emb_total = (emb_hits + emb_misses).max(1);
    Ok((
        inf_misses as f64 / inf_total as f64,
        emb_misses as f64 / emb_total as f64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_embedding_threads_means_no_degradation() {
        let mut c = ContentionConfig::fig4_default();
        c.embedding_threads = 0;
        c.steps = 20_000;
        let r = simulate(c).unwrap();
        assert!((r.relative_performance - 1.0).abs() < 1e-9);
        assert!(r.inference_miss_ratio < 0.01, "resident working set");
    }

    #[test]
    fn more_embedding_threads_hurt_more() {
        let mut last = f64::INFINITY;
        for threads in [1usize, 2, 4, 8] {
            let mut c = ContentionConfig::fig4_default();
            c.embedding_threads = threads;
            c.steps = 20_000;
            let r = simulate(c).unwrap();
            assert!(
                r.relative_performance <= last + 0.02,
                "{threads} threads: {} vs previous {last}",
                r.relative_performance
            );
            last = r.relative_performance;
        }
        assert!(
            last < 0.9,
            "8 embedding threads must visibly degrade: {last}"
        );
    }

    #[test]
    fn larger_networks_suffer_more() {
        // Fig 4: the impact increases with the scale of MemNN.
        let mut small = ContentionConfig::fig4_default();
        small.inference_ws_bytes = 256 << 10;
        small.embedding_threads = 4;
        small.steps = 20_000;
        let mut large = small;
        large.inference_ws_bytes = 1800 << 10;
        let rs = simulate(small).unwrap();
        let rl = simulate(large).unwrap();
        assert!(
            rl.relative_performance < rs.relative_performance + 0.02,
            "large {} vs small {}",
            rl.relative_performance,
            rs.relative_performance
        );
    }

    #[test]
    fn embedding_cache_restores_performance() {
        let mut polluted = ContentionConfig::fig4_default();
        polluted.embedding_threads = 8;
        polluted.steps = 20_000;
        let r_polluted = simulate(polluted).unwrap();

        let mut isolated = polluted;
        isolated.isolate_embedding = Some(EmbeddingIsolation {
            cache_bytes: 256 << 10,
        });
        let r_isolated = simulate(isolated).unwrap();
        assert!(
            r_isolated.relative_performance > r_polluted.relative_performance,
            "isolated {} vs polluted {}",
            r_isolated.relative_performance,
            r_polluted.relative_performance
        );
        assert!(
            r_isolated.relative_performance > 0.99,
            "isolation should fully protect inference: {}",
            r_isolated.relative_performance
        );
    }

    #[test]
    fn bypass_protects_llc_but_embedding_pays() {
        let mut bypass = ContentionConfig::fig4_default();
        bypass.embedding_threads = 4;
        bypass.steps = 20_000;
        bypass.isolate_embedding = Some(EmbeddingIsolation { cache_bytes: 0 });
        let r = simulate(bypass).unwrap();
        assert!(r.relative_performance > 0.99, "LLC untouched");
        assert!(
            (r.embedding_miss_ratio - 1.0).abs() < 1e-9,
            "every bypassed lookup goes to DRAM"
        );
    }

    #[test]
    fn embedding_cache_exploits_zipf_locality() {
        let mut c = ContentionConfig::fig4_default();
        c.embedding_threads = 2;
        c.steps = 30_000;
        c.isolate_embedding = Some(EmbeddingIsolation {
            cache_bytes: 512 << 10,
        });
        let r = simulate(c).unwrap();
        assert!(
            r.embedding_miss_ratio < 0.6,
            "Zipf head should mostly hit: {}",
            r.embedding_miss_ratio
        );
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = ContentionConfig::fig4_default();
        c.steps = 0;
        assert!(simulate(c).is_err());
    }
}

//! DRAM channel interleaving and utilization.
//!
//! The thread-scaling model treats the memory system as one aggregate pipe;
//! this module models the address-interleaved channel structure underneath
//! it, so the harness can check that the dataflows actually spread their
//! traffic across channels (a pathological stride could otherwise starve
//! the Fig 3 sweep of its nominal bandwidth).

use crate::dram::DramConfig;

/// Address-interleaved channel mapper with per-channel byte counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelInterleaver {
    /// Bytes mapped to each channel contiguously before rotating to the
    /// next (typical systems interleave at 256 B–4 KiB).
    pub interleave_bytes: u64,
    counters: Vec<u64>,
}

impl ChannelInterleaver {
    /// Creates a mapper for `channels` channels at the given granularity.
    ///
    /// # Errors
    ///
    /// Returns a message if `channels == 0`, `interleave_bytes == 0`, or
    /// the granularity is not a power of two.
    pub fn new(channels: usize, interleave_bytes: u64) -> Result<Self, String> {
        if channels == 0 {
            return Err("channels must be positive".into());
        }
        if interleave_bytes == 0 || !interleave_bytes.is_power_of_two() {
            return Err(format!(
                "interleave granularity {interleave_bytes} must be a positive power of two"
            ));
        }
        Ok(Self {
            interleave_bytes,
            counters: vec![0; channels],
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.counters.len()
    }

    /// The channel serving byte address `addr`.
    pub fn route(&self, addr: u64) -> usize {
        ((addr / self.interleave_bytes) % self.counters.len() as u64) as usize
    }

    /// Records a transfer of `bytes` starting at `addr`, splitting it across
    /// interleave boundaries.
    pub fn record(&mut self, addr: u64, bytes: u64) {
        let mut a = addr;
        let mut remaining = bytes;
        while remaining > 0 {
            let in_this_block = self.interleave_bytes - (a % self.interleave_bytes);
            let take = in_this_block.min(remaining);
            let ch = self.route(a);
            self.counters[ch] += take;
            a += take;
            remaining -= take;
        }
    }

    /// Per-channel byte counts.
    pub fn bytes_per_channel(&self) -> &[u64] {
        &self.counters
    }

    /// Total recorded bytes.
    pub fn total_bytes(&self) -> u64 {
        self.counters.iter().sum()
    }

    /// Load imbalance: busiest channel over the mean (1.0 = perfectly
    /// balanced; `channels` = everything on one channel).
    pub fn imbalance(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.counters.len() as f64;
        let max = *self.counters.iter().max().expect("non-empty") as f64;
        max / mean
    }

    /// Effective aggregate bandwidth given the recorded distribution: the
    /// transfer finishes when the busiest channel does, so the system
    /// delivers `peak / imbalance`.
    pub fn effective_bandwidth(&self, dram: &DramConfig) -> f64 {
        dram.bandwidth_bytes_per_sec() / self.imbalance()
    }

    /// Clears the counters.
    pub fn reset(&mut self) {
        self.counters.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validation() {
        assert!(ChannelInterleaver::new(0, 256).is_err());
        assert!(ChannelInterleaver::new(4, 0).is_err());
        assert!(ChannelInterleaver::new(4, 300).is_err());
        assert!(ChannelInterleaver::new(4, 256).is_ok());
    }

    #[test]
    fn sequential_streams_balance_perfectly() {
        let mut il = ChannelInterleaver::new(4, 256).unwrap();
        il.record(0, 4 * 256 * 100);
        assert!((il.imbalance() - 1.0).abs() < 1e-12);
        for &c in il.bytes_per_channel() {
            assert_eq!(c, 256 * 100);
        }
    }

    #[test]
    fn pathological_stride_hits_one_channel() {
        let mut il = ChannelInterleaver::new(4, 256).unwrap();
        // Stride of channels*interleave keeps hitting channel 0.
        for i in 0..100u64 {
            il.record(i * 4 * 256, 64);
        }
        assert!((il.imbalance() - 4.0).abs() < 1e-12);
        assert_eq!(il.bytes_per_channel()[1], 0);
    }

    #[test]
    fn transfers_split_across_boundaries() {
        let mut il = ChannelInterleaver::new(2, 256).unwrap();
        // 300 bytes starting at 200: 56 bytes on ch0's block, 244 on ch1.
        il.record(200, 300);
        assert_eq!(il.bytes_per_channel()[0], 56);
        assert_eq!(il.bytes_per_channel()[1], 244);
        assert_eq!(il.total_bytes(), 300);
    }

    #[test]
    fn effective_bandwidth_scales_with_balance() {
        let dram = DramConfig::ddr4_2400(4);
        let mut balanced = ChannelInterleaver::new(4, 256).unwrap();
        balanced.record(0, 1 << 20);
        assert!((balanced.effective_bandwidth(&dram) - dram.bandwidth_bytes_per_sec()).abs() < 1.0);
        let mut skewed = ChannelInterleaver::new(4, 256).unwrap();
        for i in 0..1000u64 {
            skewed.record(i * 4 * 256, 64);
        }
        assert!(skewed.effective_bandwidth(&dram) < dram.bandwidth_bytes_per_sec() / 3.9);
    }

    #[test]
    fn memnn_dataflow_traffic_is_channel_friendly() {
        // The column-based algorithm streams contiguous chunks — confirm a
        // chunk walk balances across channels (the assumption behind using
        // aggregate bandwidth in the roofline model).
        let mut il = ChannelInterleaver::new(4, 256).unwrap();
        let row_bytes = 48 * 4;
        for chunkno in 0..100u64 {
            il.record(0x1_0000_0000 + chunkno * 1000 * row_bytes, 1000 * row_bytes);
        }
        assert!(il.imbalance() < 1.01, "imbalance {}", il.imbalance());
    }

    #[test]
    fn reset_clears_counters() {
        let mut il = ChannelInterleaver::new(2, 256).unwrap();
        il.record(0, 1000);
        il.reset();
        assert_eq!(il.total_bytes(), 0);
        assert!((il.imbalance() - 1.0).abs() < 1e-12, "empty = balanced");
    }
}

//! The dedicated embedding cache (Section 3.3, Fig 14).
//!
//! A cache keyed by *word ID* rather than address: each entry holds one
//! embedding vector (`ed` floats), a word-ID tag, and a valid bit. The paper
//! builds it direct-mapped; an N-way variant is included as the DESIGN.md §5
//! ablation.

use crate::cache::{Access, CacheStats};

/// Word-ID-keyed cache for embedding vectors.
///
/// ```
/// use mnn_memsim::EmbeddingCache;
///
/// // 32 KiB of 256-dim f32 vectors = 32 entries.
/// let mut cache = EmbeddingCache::direct_mapped(32 << 10, 256).unwrap();
/// assert_eq!(cache.num_entries(), 32);
/// cache.lookup(7);
/// assert_eq!(cache.lookup(7), mnn_memsim::cache::Access::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct EmbeddingCache {
    /// `sets[set]` holds up to `ways` `(word_id, last_use)` pairs.
    sets: Vec<Vec<(u32, u64)>>,
    ways: usize,
    embedding_dim: usize,
    stats: CacheStats,
    tick: u64,
}

impl EmbeddingCache {
    /// Creates a direct-mapped embedding cache of `capacity_bytes`, sized in
    /// whole `ed`-float entries (the paper's design: the cache word size
    /// equals the embedding dimension).
    ///
    /// # Errors
    ///
    /// Returns a message if the capacity holds no complete entry.
    pub fn direct_mapped(capacity_bytes: usize, embedding_dim: usize) -> Result<Self, String> {
        Self::set_associative(capacity_bytes, embedding_dim, 1)
    }

    /// Creates an N-way set-associative variant (LRU within a set).
    ///
    /// # Errors
    ///
    /// Returns a message if parameters are zero or the capacity holds fewer
    /// than `ways` entries.
    pub fn set_associative(
        capacity_bytes: usize,
        embedding_dim: usize,
        ways: usize,
    ) -> Result<Self, String> {
        if embedding_dim == 0 || ways == 0 {
            return Err("embedding_dim and ways must be positive".into());
        }
        let entry_bytes = embedding_dim * 4;
        let entries = capacity_bytes / entry_bytes;
        if entries < ways {
            return Err(format!(
                "capacity {capacity_bytes} holds {entries} entries < {ways} ways"
            ));
        }
        let num_sets = entries / ways;
        Ok(Self {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            embedding_dim,
            stats: CacheStats::default(),
            tick: 0,
        })
    }

    /// Number of vector entries the cache holds.
    pub fn num_entries(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// The embedding dimension each entry stores.
    pub fn embedding_dim(&self) -> usize {
        self.embedding_dim
    }

    /// Bytes of payload storage.
    pub fn capacity_bytes(&self) -> usize {
        self.num_entries() * self.embedding_dim * 4
    }

    /// Looks up the vector for `word`, filling on miss.
    pub fn lookup(&mut self, word: u32) -> Access {
        self.tick += 1;
        let set_idx = (word as usize) % self.sets.len();
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(w, _)| *w == word) {
            entry.1 = self.tick;
            self.stats.hits += 1;
            return Access::Hit;
        }
        self.stats.misses += 1;
        if set.len() < self.ways {
            set.push((word, self.tick));
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|(_, t)| *t)
                .expect("non-empty set");
            *victim = (word, self.tick);
        }
        Access::Miss
    }

    /// Replays a word-ID trace; returns the stats delta for the trace.
    pub fn run_trace(&mut self, trace: &[u32]) -> CacheStats {
        let before = self.stats;
        for &w in trace {
            self.lookup(w);
        }
        CacheStats {
            hits: self.stats.hits - before.hits,
            misses: self.stats.misses - before.misses,
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bytes fetched from DRAM so far (one vector per miss).
    pub fn dram_bytes(&self) -> u64 {
        self.stats.misses * (self.embedding_dim as u64) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_dataset::zipf::ZipfSampler;

    #[test]
    fn sizing_matches_paper_example() {
        // Fig 14 setup: ed=256 ⇒ 1 KiB per entry.
        let c = EmbeddingCache::direct_mapped(256 << 10, 256).unwrap();
        assert_eq!(c.num_entries(), 256);
        assert_eq!(c.capacity_bytes(), 256 << 10);
    }

    #[test]
    fn rejects_degenerate_geometry() {
        assert!(EmbeddingCache::direct_mapped(100, 256).is_err());
        assert!(EmbeddingCache::set_associative(1 << 10, 0, 1).is_err());
        assert!(EmbeddingCache::set_associative(1 << 10, 256, 0).is_err());
        assert!(EmbeddingCache::set_associative(1 << 10, 256, 2).is_err());
    }

    #[test]
    fn repeat_lookup_hits() {
        let mut c = EmbeddingCache::direct_mapped(4 << 10, 64).unwrap(); // 16 entries
        assert_eq!(c.lookup(3), Access::Miss);
        assert_eq!(c.lookup(3), Access::Hit);
        // A conflicting word (3 + 16) evicts in direct-mapped mode.
        assert_eq!(c.lookup(19), Access::Miss);
        assert_eq!(c.lookup(3), Access::Miss);
    }

    #[test]
    fn two_way_survives_the_direct_mapped_conflict() {
        let mut c = EmbeddingCache::set_associative(4 << 10, 64, 2).unwrap(); // 8 sets
        c.lookup(3);
        c.lookup(11); // same set in 8-set geometry
        assert_eq!(c.lookup(3), Access::Hit, "both fit in a 2-way set");
    }

    #[test]
    fn hit_rate_grows_with_capacity_on_zipf() {
        // The Fig 14 monotonicity, on the COCA-substitute trace.
        let mut prev_hit = 0.0;
        for kb in [32usize, 64, 128, 256] {
            let mut z = ZipfSampler::new(10_000, 1.0, 42).unwrap();
            let trace = z.trace(100_000);
            let mut c = EmbeddingCache::direct_mapped(kb << 10, 256).unwrap();
            let s = c.run_trace(&trace);
            assert!(
                s.hit_ratio() >= prev_hit,
                "{kb} KiB: {} < {prev_hit}",
                s.hit_ratio()
            );
            prev_hit = s.hit_ratio();
        }
        assert!(prev_hit > 0.4, "256 KiB should capture the Zipf head");
    }

    #[test]
    fn hit_rate_below_top_k_mass_bound() {
        // A k-entry cache can never beat the ideal top-k hit mass.
        let mut z = ZipfSampler::new(5_000, 1.0, 7).unwrap();
        let trace = z.trace(50_000);
        let mut c = EmbeddingCache::direct_mapped(64 << 10, 256).unwrap(); // 64 entries
        let s = c.run_trace(&trace);
        let bound = z.top_k_mass(c.num_entries());
        assert!(
            s.hit_ratio() <= bound + 0.02,
            "hit {} exceeds ideal bound {bound}",
            s.hit_ratio()
        );
    }

    #[test]
    fn dram_bytes_counts_vector_fills() {
        let mut c = EmbeddingCache::direct_mapped(4 << 10, 64).unwrap();
        c.lookup(1);
        c.lookup(2);
        c.lookup(1);
        assert_eq!(c.dram_bytes(), 2 * 64 * 4);
    }
}

//! Analytic thread-scaling bottleneck model (Figs 3, 9(b), 10).
//!
//! Each inference task needs `flops` of compute and `demand_bytes` of
//! off-chip traffic (obtained by replaying the variant's dataflow through
//! the LLC model — see [`variant_workload`]). With `T` threads on a machine
//! of per-core rate `R` and aggregate DRAM bandwidth `BW`:
//!
//! - **latency-exposed** traffic (baseline, plain column): every task's
//!   critical path includes its memory time under contention, so
//!   `throughput(T) = T / (C + T·B/BW)` — the smooth saturation the paper's
//!   Fig 3 measures;
//! - **overlapped** traffic (streaming): compute and memory pipeline, so
//!   `throughput(T) = min(T/C, BW/B)` — linear until the bandwidth roof,
//!   the "ideal speedup" behaviour of Fig 10(b)/(c).

use crate::cache::SetAssocCache;
use crate::dataflow::{self, DataflowConfig, Variant};
use crate::dram::DramConfig;

/// Machine-side parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// Sustained per-core compute rate in GFLOP/s.
    pub core_gflops: f64,
    /// DRAM subsystem.
    pub dram: DramConfig,
    /// Shared-LLC capacity in bytes (used when deriving workloads).
    pub llc_bytes: usize,
}

impl MachineProfile {
    /// The paper's Xeon E5-2650 v4-class testbed with `channels` DDR4-2400
    /// channels: ~8 GFLOP/s sustained scalar+SIMD per core on this kernel
    /// mix, 30 MiB LLC.
    pub fn xeon(channels: usize) -> Self {
        Self {
            core_gflops: 8.0,
            dram: DramConfig::ddr4_2400(channels),
            llc_bytes: 30 << 20,
        }
    }
}

/// Workload-side parameters for one inference task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// FLOPs per task.
    pub flops: f64,
    /// Off-chip bytes per task (LLC demand misses × line size).
    pub demand_bytes: f64,
    /// Whether memory time overlaps compute (streaming).
    pub overlapped: bool,
}

/// Tasks/second with `threads` worker threads.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn throughput(machine: &MachineProfile, workload: &WorkloadProfile, threads: usize) -> f64 {
    assert!(threads > 0, "threads must be positive");
    let c = workload.flops / (machine.core_gflops * 1e9); // seconds of compute
    let bw = machine.dram.bandwidth_bytes_per_sec();
    let b = workload.demand_bytes;
    if b == 0.0 {
        return threads as f64 / c;
    }
    if workload.overlapped {
        (threads as f64 / c).min(bw / b)
    } else {
        threads as f64 / (c + threads as f64 * b / bw)
    }
}

/// Speedup over the single-thread case for `1..=max_threads`.
pub fn speedup_curve(
    machine: &MachineProfile,
    workload: &WorkloadProfile,
    max_threads: usize,
) -> Vec<f64> {
    let base = throughput(machine, workload, 1);
    (1..=max_threads)
        .map(|t| throughput(machine, workload, t) / base)
        .collect()
}

/// Derives a [`WorkloadProfile`] for `variant` by replaying its dataflow
/// through a fresh LLC of the machine's capacity.
///
/// FLOP accounting, per batch of `nq` questions: `2·ns·ed` inner product +
/// `3·ns` softmax + `2·ns·ed·(1−skip)` weighted sum, each × `nq` (+ the
/// `ns` vs `ed` division asymmetry, negligible at these scales).
///
/// # Errors
///
/// Propagates configuration/geometry errors from the simulator.
pub fn variant_workload(
    variant: Variant,
    config: DataflowConfig,
    machine: &MachineProfile,
) -> Result<WorkloadProfile, String> {
    let mut llc = SetAssocCache::new(machine.llc_bytes, 16, 64)?;
    // Warm once (shared memories and reused buffers stay resident when they
    // fit), measure on the second batch.
    let _ = dataflow::replay(variant, config, &mut llc)?;
    llc.reset_stats();
    let report = dataflow::replay(variant, config, &mut llc)?;

    let ns = config.ns as f64;
    let ed = config.ed as f64;
    let nq = config.questions as f64;
    let skip = if variant == Variant::MnnFast {
        config.skip_fraction
    } else {
        0.0
    };
    let flops = nq * (2.0 * ns * ed + 3.0 * ns + 2.0 * ns * ed * (1.0 - skip));
    Ok(WorkloadProfile {
        flops,
        demand_bytes: (report.demand_misses * 64) as f64,
        overlapped: matches!(variant, Variant::ColumnStreaming | Variant::MnnFast),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DataflowConfig {
        DataflowConfig {
            ns: 100_000,
            ed: 48,
            chunk: 1000,
            questions: 8,
            skip_fraction: 0.9,
            hops: 1,
        }
    }

    #[test]
    fn speedup_is_monotone_nondecreasing() {
        let m = MachineProfile::xeon(2);
        let w = variant_workload(Variant::Baseline, config(), &m).unwrap();
        let curve = speedup_curve(&m, &w, 20);
        for pair in curve.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9);
        }
        assert!((curve[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_channels_scale_further() {
        // Fig 3: the saturation ceiling rises with channel count.
        let w = variant_workload(Variant::Baseline, config(), &MachineProfile::xeon(1)).unwrap();
        let s1 = *speedup_curve(&MachineProfile::xeon(1), &w, 20)
            .last()
            .unwrap();
        let s4 = *speedup_curve(&MachineProfile::xeon(4), &w, 20)
            .last()
            .unwrap();
        let s8 = *speedup_curve(&MachineProfile::xeon(8), &w, 20)
            .last()
            .unwrap();
        assert!(s1 < s4 && s4 < s8, "{s1} {s4} {s8}");
    }

    #[test]
    fn baseline_saturates_below_ideal() {
        let m = MachineProfile::xeon(4);
        let w = variant_workload(Variant::Baseline, config(), &m).unwrap();
        let curve = speedup_curve(&m, &w, 20);
        assert!(
            *curve.last().unwrap() < 12.0,
            "baseline at 20 threads should be bandwidth-capped: {}",
            curve.last().unwrap()
        );
    }

    #[test]
    fn streaming_reaches_near_ideal_scaling() {
        // Fig 10(b): data streaming ⇒ near-linear speedup.
        let m = MachineProfile::xeon(4);
        let w = variant_workload(Variant::ColumnStreaming, config(), &m).unwrap();
        let curve = speedup_curve(&m, &w, 20);
        assert!(
            *curve.last().unwrap() > 18.0,
            "column+S at 20 threads: {}",
            curve.last().unwrap()
        );
    }

    #[test]
    fn column_scales_better_than_baseline() {
        // Fig 10(a): column saturates ~10 threads vs baseline ~4 on 4ch.
        let m = MachineProfile::xeon(4);
        let wb = variant_workload(Variant::Baseline, config(), &m).unwrap();
        let wc = variant_workload(Variant::Column, config(), &m).unwrap();
        let sb = *speedup_curve(&m, &wb, 20).last().unwrap();
        let sc = *speedup_curve(&m, &wc, 20).last().unwrap();
        assert!(sc > sb, "column {sc} vs baseline {sb}");
    }

    #[test]
    fn zero_demand_bytes_is_pure_compute() {
        let m = MachineProfile::xeon(1);
        let w = WorkloadProfile {
            flops: 1e6,
            demand_bytes: 0.0,
            overlapped: false,
        };
        let t4 = throughput(&m, &w, 4);
        let t1 = throughput(&m, &w, 1);
        assert!((t4 / t1 - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_panics() {
        let m = MachineProfile::xeon(1);
        let w = WorkloadProfile {
            flops: 1.0,
            demand_bytes: 1.0,
            overlapped: false,
        };
        let _ = throughput(&m, &w, 0);
    }
}

//! Typed errors for the distributed serving plane.

use mnn_tensor::{EnvVarError, PartialDecodeError};
use mnnfast::EngineError;
use std::error::Error;
use std::fmt;

/// A frame failed to decode (transport-level corruption or a protocol
/// mismatch). See [`crate::frame`] for the wire layout.
#[derive(Debug)]
pub enum FrameError {
    /// Fewer bytes than the frame declares.
    Truncated {
        /// Bytes the frame needs to decode.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The leading magic is not `0x4D46`.
    BadMagic(u16),
    /// The frame was produced by an incompatible protocol version.
    UnsupportedVersion(u8),
    /// The opcode byte names no known frame kind.
    UnknownOpcode(u8),
    /// The trailing CRC-32 disagrees with the frame contents.
    Corrupt {
        /// Checksum recomputed from the received bytes.
        expected: u32,
        /// Checksum stored on the wire.
        got: u32,
    },
    /// The payload does not parse as its opcode's layout.
    Malformed(&'static str),
    /// An embedded [`mnn_tensor::PartialState`] failed to decode.
    Partial(PartialDecodeError),
    /// The underlying stream failed (timeout, reset, EOF mid-frame).
    Io(std::io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            FrameError::UnsupportedVersion(v) => {
                write!(f, "unsupported frame version {v}")
            }
            FrameError::UnknownOpcode(op) => write!(f, "unknown opcode {op}"),
            FrameError::Corrupt { expected, got } => write!(
                f,
                "corrupt frame: crc32 {got:#010x} on the wire, {expected:#010x} recomputed"
            ),
            FrameError::Malformed(what) => write!(f, "malformed payload: {what}"),
            FrameError::Partial(e) => write!(f, "embedded partial: {e}"),
            FrameError::Io(e) => write!(f, "stream: {e}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameError::Partial(e) => Some(e),
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl FrameError {
    /// `true` when retrying the RPC could plausibly succeed (corruption,
    /// timeouts, resets); `false` for protocol mismatches that will fail
    /// identically forever.
    pub fn is_retryable(&self) -> bool {
        !matches!(
            self,
            FrameError::UnsupportedVersion(_) | FrameError::UnknownOpcode(_)
        )
    }
}

/// A distributed request failed.
#[derive(Debug)]
pub enum DistError {
    /// Connecting or speaking to a worker failed at the transport level.
    Io(std::io::Error),
    /// A frame failed to decode.
    Frame(FrameError),
    /// The worker-side (or coordinator-side fold) engine failed.
    Engine(EngineError),
    /// The handshake revealed an incompatible worker.
    Handshake(String),
    /// Every replica of a shard failed and the request does not permit
    /// degraded answers.
    ShardUnavailable {
        /// The shard none of whose replicas answered.
        shard: u32,
    },
    /// The worker answered with an application-level error frame.
    Worker(String),
    /// The coordinator was configured inconsistently.
    Config(String),
    /// An `MNNFAST_*` environment knob failed validation.
    Env(EnvVarError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "transport: {e}"),
            DistError::Frame(e) => write!(f, "frame: {e}"),
            DistError::Engine(e) => write!(f, "engine: {e}"),
            DistError::Handshake(m) => write!(f, "handshake: {m}"),
            DistError::ShardUnavailable { shard } => {
                write!(f, "shard {shard}: every replica failed")
            }
            DistError::Worker(m) => write!(f, "worker error: {m}"),
            DistError::Config(m) => write!(f, "config: {m}"),
            DistError::Env(e) => write!(f, "{e}"),
        }
    }
}

impl Error for DistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
            DistError::Frame(e) => Some(e),
            DistError::Engine(e) => Some(e),
            DistError::Env(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mnn_wire::WireError> for FrameError {
    fn from(e: mnn_wire::WireError) -> Self {
        use mnn_wire::WireError as W;
        match e {
            W::Truncated { needed, got } => FrameError::Truncated { needed, got },
            W::BadMagic(m) => FrameError::BadMagic(m),
            W::UnsupportedVersion(v) => FrameError::UnsupportedVersion(v),
            W::Corrupt { expected, got } => FrameError::Corrupt { expected, got },
            W::Malformed(what) => FrameError::Malformed(what),
            W::Io(io) => FrameError::Io(io),
        }
    }
}

impl From<FrameError> for DistError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => DistError::Io(io),
            other => DistError::Frame(other),
        }
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<EngineError> for DistError {
    fn from(e: EngineError) -> Self {
        DistError::Engine(e)
    }
}

impl From<EnvVarError> for DistError {
    fn from(e: EnvVarError) -> Self {
        DistError::Env(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_and_classify() {
        let corrupt = FrameError::Corrupt {
            expected: 0xdead_beef,
            got: 0x0bad_f00d,
        };
        let msg = corrupt.to_string();
        assert!(
            msg.contains("0xdeadbeef") && msg.contains("0x0badf00d"),
            "{msg}"
        );
        assert!(corrupt.is_retryable());
        assert!(!FrameError::UnsupportedVersion(9).is_retryable());
        assert!(FrameError::Io(std::io::Error::from(std::io::ErrorKind::TimedOut)).is_retryable());

        let dist: DistError = corrupt.into();
        assert!(matches!(dist, DistError::Frame(_)));
        let io: DistError =
            FrameError::Io(std::io::Error::from(std::io::ErrorKind::BrokenPipe)).into();
        assert!(matches!(io, DistError::Io(_)));
        assert!(DistError::ShardUnavailable { shard: 3 }
            .to_string()
            .contains("shard 3"));
    }
}

//! Strict typed parsing for the distributed plane's `MNNFAST_*` knobs.
//!
//! | variable | meaning |
//! |----------|---------|
//! | `MNNFAST_WORKERS` | fleet size the serving layer should spawn/expect |
//! | `MNNFAST_REPLICAS` | copies of every shard (1 = no replication) |
//! | `MNNFAST_HEDGE_MS` | hedge delay in milliseconds (0 = disabled) |
//!
//! Like the rest of the repo's env surface, readers are strict — a typo'd
//! value is a typed [`EnvVarError`], not a silent default — and unset or
//! empty always means "use the default". [`validate_env`] bundles all
//! three plus the RPC dimension of the `MNNFAST_FAULT` grammar, for
//! serving entry points to call at startup.

use crate::fault::RpcFaultPlan;
use mnn_tensor::EnvVarError;
use std::time::Duration;

fn positive_usize(var: &'static str) -> Result<Option<usize>, EnvVarError> {
    match std::env::var(var) {
        Ok(raw) if raw.is_empty() => Ok(None),
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(EnvVarError::new(var, raw, "a positive integer")),
        },
        Err(_) => Ok(None),
    }
}

/// Parses `MNNFAST_WORKERS`.
///
/// # Errors
///
/// [`EnvVarError`] unless the value is a positive integer (or unset/empty).
pub fn workers_from_env() -> Result<Option<usize>, EnvVarError> {
    positive_usize("MNNFAST_WORKERS")
}

/// Parses `MNNFAST_REPLICAS`.
///
/// # Errors
///
/// [`EnvVarError`] unless the value is a positive integer (or unset/empty).
pub fn replicas_from_env() -> Result<Option<usize>, EnvVarError> {
    positive_usize("MNNFAST_REPLICAS")
}

/// Parses `MNNFAST_HEDGE_MS`: `Ok(Some(None))` for an explicit `0`
/// (hedging off), `Ok(Some(Some(d)))` for a positive delay, `Ok(None)`
/// when unset/empty.
///
/// # Errors
///
/// [`EnvVarError`] unless the value is a non-negative integer.
#[allow(clippy::option_option)]
pub fn hedge_from_env() -> Result<Option<Option<Duration>>, EnvVarError> {
    match std::env::var("MNNFAST_HEDGE_MS") {
        Ok(raw) if raw.is_empty() => Ok(None),
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(0) => Ok(Some(None)),
            Ok(ms) => Ok(Some(Some(Duration::from_millis(ms)))),
            Err(_) => Err(EnvVarError::new(
                "MNNFAST_HEDGE_MS",
                raw,
                "a non-negative integer of milliseconds (0 disables hedging)",
            )),
        },
        Err(_) => Ok(None),
    }
}

/// Validates every distributed-plane environment knob, returning the
/// first typed error: the three variables above plus the full
/// `MNNFAST_FAULT` grammar (RPC *and* kernel kinds).
///
/// # Errors
///
/// The first [`EnvVarError`] found.
pub fn validate_env() -> Result<(), EnvVarError> {
    workers_from_env()?;
    replicas_from_env()?;
    hedge_from_env()?;
    RpcFaultPlan::from_env()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Env mutation is process-global; serialize the module.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn strict_parsing_of_all_three_knobs() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        for var in ["MNNFAST_WORKERS", "MNNFAST_REPLICAS", "MNNFAST_HEDGE_MS"] {
            std::env::remove_var(var);
        }
        assert_eq!(workers_from_env().unwrap(), None);
        assert_eq!(replicas_from_env().unwrap(), None);
        assert_eq!(hedge_from_env().unwrap(), None);
        assert!(validate_env().is_ok());

        std::env::set_var("MNNFAST_WORKERS", "4");
        std::env::set_var("MNNFAST_REPLICAS", "2");
        std::env::set_var("MNNFAST_HEDGE_MS", "35");
        assert_eq!(workers_from_env().unwrap(), Some(4));
        assert_eq!(replicas_from_env().unwrap(), Some(2));
        assert_eq!(
            hedge_from_env().unwrap(),
            Some(Some(Duration::from_millis(35)))
        );
        assert!(validate_env().is_ok());

        std::env::set_var("MNNFAST_HEDGE_MS", "0");
        assert_eq!(hedge_from_env().unwrap(), Some(None), "0 = hedging off");

        for (var, bad) in [
            ("MNNFAST_WORKERS", "0"),
            ("MNNFAST_WORKERS", "four"),
            ("MNNFAST_REPLICAS", "-1"),
            ("MNNFAST_HEDGE_MS", "fast"),
        ] {
            std::env::set_var(var, bad);
            let err = validate_env().unwrap_err();
            assert_eq!(err.var(), var, "{var}={bad}");
            std::env::remove_var(var);
        }
        for var in ["MNNFAST_WORKERS", "MNNFAST_REPLICAS", "MNNFAST_HEDGE_MS"] {
            std::env::remove_var(var);
        }
    }

    #[test]
    fn empty_values_mean_default() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("MNNFAST_WORKERS", "");
        assert_eq!(workers_from_env().unwrap(), None);
        std::env::remove_var("MNNFAST_WORKERS");
    }
}

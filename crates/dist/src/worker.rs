//! The worker half of the distributed plane: a thread-per-connection TCP
//! server that owns per-shard [`SegmentedStore`]s and answers the
//! [`crate::frame`] RPCs.
//!
//! A worker is deliberately dumb: it holds rows the coordinator pushed,
//! and on [`Frame::Forward`] runs the *same* chunk kernels as the
//! single-node engine over one shard's local store — via
//! [`mnnfast::forward_chunk_partials_budgeted`] — and streams the encoded
//! per-chunk [`mnn_tensor::PartialState`]s back. All fold order, retry,
//! and failover policy lives in the coordinator; the worker's answers are
//! bit-exact fragments of the single-node pass by construction.
//!
//! The server is config-complete at spawn (embedding dimension, placement
//! chunk size, int8 mirroring, optional armed [`RpcFaultState`]), so
//! request connections need no stateful handshake: [`Frame::Hello`] merely
//! *verifies* the peer agrees on the layout parameters.

use crate::error::FrameError;
use crate::fault::{RpcFaultKind, RpcFaultState};
use crate::frame::{read_frame, write_frame, ErrorCode, ForwardSpec, Frame, WireStats, HEADER_LEN};
use mnnfast::store::SegmentedStore;
use mnnfast::{
    forward_chunk_partials_budgeted, forward_chunk_quant_partials_budgeted, Budget, ColumnEngine,
    MnnFastConfig, Scratch, SkipPolicy, SoftmaxMode, Trace,
};
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Spawn-time parameters of a [`WorkerServer`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Embedding dimension of every stored row.
    pub ed: usize,
    /// Placement chunk size (rows per global chunk). Forward requests
    /// must agree, or local chunk boundaries would not be global ones.
    pub chunk_size: usize,
    /// Maintain int8 quantized mirrors on every shard store.
    pub quant: bool,
    /// Optional armed RPC fault (tests / fault drills).
    pub fault: Option<crate::fault::RpcFaultPlan>,
}

impl WorkerConfig {
    /// A plain f32 worker with no armed fault.
    pub fn new(ed: usize, chunk_size: usize) -> Self {
        WorkerConfig {
            ed,
            chunk_size,
            quant: false,
            fault: None,
        }
    }
}

struct Shared {
    config: WorkerConfig,
    stores: Mutex<HashMap<u32, SegmentedStore>>,
    fault: Mutex<Option<RpcFaultState>>,
    shutdown: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    fn fault_decision(&self) -> Option<RpcFaultKind> {
        let fault = self.fault.lock().unwrap_or_else(|e| e.into_inner());
        fault.as_ref().and_then(RpcFaultState::on_response)
    }
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("config", &self.config)
            .field("shutdown", &self.shutdown)
            .finish_non_exhaustive()
    }
}

/// A running worker: listener thread + one thread per connection.
///
/// Dropping the handle shuts the worker down (listener closed, in-flight
/// connections severed) — [`WorkerServer::shutdown`] does the same
/// explicitly, which doubles as the "kill a worker mid-question" lever in
/// the fault tests.
#[derive(Debug)]
pub struct WorkerServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl WorkerServer {
    /// Binds `127.0.0.1:0` (an ephemeral port) and starts serving.
    ///
    /// # Errors
    ///
    /// The bind error, if the loopback socket cannot be opened.
    pub fn spawn(config: WorkerConfig) -> std::io::Result<WorkerServer> {
        Self::spawn_on("127.0.0.1:0", config)
    }

    /// Binds an explicit address and starts serving.
    ///
    /// # Errors
    ///
    /// The bind error.
    pub fn spawn_on(addr: &str, config: WorkerConfig) -> std::io::Result<WorkerServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            fault: Mutex::new(config.fault.map(RpcFaultState::new)),
            config,
            stores: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(WorkerServer {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the worker is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total rows resident across all shard stores.
    pub fn rows(&self) -> usize {
        let stores = self.shared.stores.lock().unwrap_or_else(|e| e.into_inner());
        stores.values().map(SegmentedStore::len).sum()
    }

    /// How many responses the armed RPC fault has damaged (0 when none).
    pub fn fault_fired(&self) -> u64 {
        let fault = self.shared.fault.lock().unwrap_or_else(|e| e.into_inner());
        fault.as_ref().map_or(0, RpcFaultState::fired)
    }

    /// Arms (or re-arms) the RPC fault injector while serving — counting
    /// starts from this call, so tests can schedule damage relative to
    /// the request they are about to make rather than the whole session.
    pub fn arm_fault(&self, plan: crate::fault::RpcFaultPlan) {
        let mut fault = self.shared.fault.lock().unwrap_or_else(|e| e.into_inner());
        *fault = Some(RpcFaultState::new(plan));
    }

    /// Disarms the RPC fault injector.
    pub fn disarm_fault(&self) {
        let mut fault = self.shared.fault.lock().unwrap_or_else(|e| e.into_inner());
        *fault = None;
    }

    /// Stops the worker: closes the listener, severs every open
    /// connection (mid-request work is abandoned at the socket), and
    /// joins the accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        {
            let conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            for c in conns.iter() {
                let _ = c.shutdown(Shutdown::Both);
            }
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(clone) = stream.try_clone() {
            let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            conns.push(clone);
        }
        let conn_shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let _ = serve_connection(stream, &conn_shared);
        });
    }
}

/// What the fault layer decided to do with a scheduled response.
enum Delivery {
    Continue,
    CloseConnection,
}

fn deliver(stream: &mut TcpStream, frame: &Frame, shared: &Shared) -> Result<Delivery, FrameError> {
    match shared.fault_decision() {
        None => {
            write_frame(stream, frame).map_err(FrameError::Io)?;
            Ok(Delivery::Continue)
        }
        Some(RpcFaultKind::Drop) => Ok(Delivery::Continue),
        Some(RpcFaultKind::Delay(d)) => {
            std::thread::sleep(d);
            write_frame(stream, frame).map_err(FrameError::Io)?;
            Ok(Delivery::Continue)
        }
        Some(RpcFaultKind::Corrupt) => {
            let mut bytes = frame.encode();
            // Flip one payload bit; the frame CRC makes this detectable.
            let target = HEADER_LEN.min(bytes.len() - 1);
            bytes[target] ^= 0x01;
            stream.write_all(&bytes).map_err(FrameError::Io)?;
            stream.flush().map_err(FrameError::Io)?;
            Ok(Delivery::Continue)
        }
        Some(RpcFaultKind::Disconnect) => {
            let _ = stream.shutdown(Shutdown::Both);
            Ok(Delivery::CloseConnection)
        }
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) -> Result<(), FrameError> {
    let mut scratch = Scratch::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let request = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(FrameError::Io(_)) => return Ok(()), // peer went away
            Err(decode_err) => {
                // A garbled request frame: tell the peer and keep serving
                // (byte-stream framing survives because the length prefix
                // was already consumed by read_frame).
                let resp = Frame::Error {
                    code: ErrorCode::BadRequest,
                    message: decode_err.to_string(),
                };
                match deliver(&mut stream, &resp, shared)? {
                    Delivery::Continue => continue,
                    Delivery::CloseConnection => return Ok(()),
                }
            }
        };
        let response = handle(&request, shared, &mut scratch);
        match deliver(&mut stream, &response, shared)? {
            Delivery::Continue => {}
            Delivery::CloseConnection => return Ok(()),
        }
    }
}

fn bad_request(message: impl Into<String>) -> Frame {
    Frame::Error {
        code: ErrorCode::BadRequest,
        message: message.into(),
    }
}

fn handle(request: &Frame, shared: &Shared, scratch: &mut Scratch) -> Frame {
    let cfg = &shared.config;
    match request {
        Frame::Hello {
            ed,
            chunk_size,
            quant,
        } => {
            if *ed as usize != cfg.ed || *chunk_size as usize != cfg.chunk_size {
                return bad_request(format!(
                    "layout mismatch: worker is ed={} chunk={}, peer wants ed={ed} chunk={chunk_size}",
                    cfg.ed, cfg.chunk_size
                ));
            }
            if *quant != cfg.quant {
                return bad_request(format!(
                    "quant mismatch: worker quant={}, peer wants {quant}",
                    cfg.quant
                ));
            }
            let stores = shared.stores.lock().unwrap_or_else(|e| e.into_inner());
            let rows = stores.values().map(SegmentedStore::len).sum::<usize>() as u64;
            Frame::HelloAck { rows }
        }
        Frame::PushRows {
            shard,
            ed,
            in_rows,
            out_rows,
        } => {
            if *ed as usize != cfg.ed {
                return bad_request(format!("push ed {ed} != worker ed {}", cfg.ed));
            }
            if in_rows.len() != out_rows.len() || in_rows.len() % cfg.ed != 0 {
                return bad_request("push rows are not n × ed in/out pairs");
            }
            let mut stores = shared.stores.lock().unwrap_or_else(|e| e.into_inner());
            let store = stores.entry(*shard).or_insert_with(|| {
                let mut s = SegmentedStore::new(cfg.ed, None);
                if cfg.quant {
                    s.enable_quant();
                }
                s
            });
            for (i_row, o_row) in in_rows
                .chunks_exact(cfg.ed)
                .zip(out_rows.chunks_exact(cfg.ed))
            {
                store.push(i_row, o_row);
            }
            Frame::PushAck {
                shard_rows: store.len() as u64,
            }
        }
        Frame::Clear => {
            let mut stores = shared.stores.lock().unwrap_or_else(|e| e.into_inner());
            stores.clear();
            Frame::ClearAck
        }
        Frame::Forward(spec) => forward(spec, shared, scratch),
        Frame::Health => {
            let stores = shared.stores.lock().unwrap_or_else(|e| e.into_inner());
            Frame::HealthAck {
                rows: stores.values().map(SegmentedStore::len).sum::<usize>() as u64,
                shards: stores.len() as u32,
            }
        }
        Frame::HelloAck { .. }
        | Frame::PushAck { .. }
        | Frame::ClearAck
        | Frame::ForwardResp { .. }
        | Frame::HealthAck { .. }
        | Frame::Error { .. } => bad_request("response frame sent as a request"),
    }
}

fn forward(spec: &ForwardSpec, shared: &Shared, scratch: &mut Scratch) -> Frame {
    let cfg = &shared.config;
    if spec.chunk_size as usize != cfg.chunk_size {
        return bad_request(format!(
            "forward chunk {} != placement chunk {}",
            spec.chunk_size, cfg.chunk_size
        ));
    }
    if spec.u.len() != cfg.ed {
        return bad_request(format!(
            "query dim {} != worker ed {}",
            spec.u.len(),
            cfg.ed
        ));
    }
    let mut engine_config = MnnFastConfig::new(cfg.chunk_size)
        .with_softmax(if spec.online {
            SoftmaxMode::Online
        } else {
            SoftmaxMode::Lazy
        })
        .with_fused(spec.fused);
    if let Some(th) = spec.skip_raw {
        engine_config = engine_config.with_skip(SkipPolicy::RawWeight(th));
    }
    let engine = ColumnEngine::new(engine_config);
    let budget = if spec.deadline_ms == 0 {
        Budget::unlimited()
    } else {
        Budget::with_deadline(Duration::from_millis(spec.deadline_ms))
    };
    let stores = shared.stores.lock().unwrap_or_else(|e| e.into_inner());
    let Some(store) = stores.get(&spec.shard) else {
        // No rows routed to this shard yet: an empty (but valid) reply.
        return Frame::ForwardResp {
            partials: Vec::new(),
            stats: WireStats::default(),
        };
    };
    let mut partials = Vec::new();
    let mut trace = Trace::disabled();
    let result = if spec.int8 {
        let Some((q_in, q_out)) = store.quant() else {
            return Frame::Error {
                code: ErrorCode::Engine,
                message: "int8 forward on a worker without quant mirrors".into(),
            };
        };
        forward_chunk_quant_partials_budgeted(
            &engine,
            q_in,
            q_out,
            store.len(),
            &spec.u,
            scratch,
            &mut trace,
            &budget,
            &mut partials,
        )
    } else {
        forward_chunk_partials_budgeted(
            &engine,
            store.m_in(),
            store.m_out(),
            store.len(),
            &spec.u,
            scratch,
            &mut trace,
            &budget,
            &mut partials,
        )
    };
    match result {
        Ok(stats) => Frame::ForwardResp {
            partials: partials.iter().map(|p| p.to_bytes()).collect(),
            stats: WireStats {
                rows_total: stats.rows_total,
                rows_skipped: stats.rows_skipped,
                flops: stats.flops,
                memory_bytes: stats.memory_bytes,
                chunks: stats.chunks,
            },
        },
        Err(e) => Frame::Error {
            code: ErrorCode::Engine,
            message: e.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    fn rpc(addr: SocketAddr, request: &Frame) -> Frame {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut stream, request).unwrap();
        read_frame(&mut stream).unwrap()
    }

    #[test]
    fn push_health_forward_roundtrip() {
        let mut worker = WorkerServer::spawn(WorkerConfig::new(4, 2)).unwrap();
        let addr = worker.addr();

        assert_eq!(
            rpc(
                addr,
                &Frame::Hello {
                    ed: 4,
                    chunk_size: 2,
                    quant: false
                }
            ),
            Frame::HelloAck { rows: 0 }
        );
        // Layout mismatches are refused.
        assert!(matches!(
            rpc(
                addr,
                &Frame::Hello {
                    ed: 8,
                    chunk_size: 2,
                    quant: false
                }
            ),
            Frame::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));

        let resp = rpc(
            addr,
            &Frame::PushRows {
                shard: 0,
                ed: 4,
                in_rows: vec![0.1; 12],
                out_rows: vec![0.2; 12],
            },
        );
        assert_eq!(resp, Frame::PushAck { shard_rows: 3 });
        assert_eq!(worker.rows(), 3);

        let resp = rpc(
            addr,
            &Frame::Forward(ForwardSpec {
                shard: 0,
                chunk_size: 2,
                online: false,
                fused: true,
                int8: false,
                skip_raw: None,
                deadline_ms: 0,
                u: vec![0.5; 4],
            }),
        );
        let Frame::ForwardResp { partials, stats } = resp else {
            panic!("expected ForwardResp, got {resp:?}");
        };
        assert_eq!(partials.len(), 2, "3 rows at chunk 2 = 2 chunks");
        assert_eq!(stats.chunks, 2);
        assert_eq!(stats.rows_total, 3);
        for p in &partials {
            mnn_tensor::PartialState::from_bytes(p).unwrap();
        }

        // Unknown shards answer empty rather than erroring.
        let resp = rpc(
            addr,
            &Frame::Forward(ForwardSpec {
                shard: 7,
                chunk_size: 2,
                online: false,
                fused: true,
                int8: false,
                skip_raw: None,
                deadline_ms: 0,
                u: vec![0.5; 4],
            }),
        );
        assert_eq!(
            resp,
            Frame::ForwardResp {
                partials: Vec::new(),
                stats: WireStats::default()
            }
        );

        assert_eq!(
            rpc(addr, &Frame::Health),
            Frame::HealthAck { rows: 3, shards: 1 }
        );
        assert_eq!(rpc(addr, &Frame::Clear), Frame::ClearAck);
        assert_eq!(worker.rows(), 0);
        worker.shutdown();
    }

    #[test]
    fn shutdown_refuses_new_connections() {
        let mut worker = WorkerServer::spawn(WorkerConfig::new(4, 2)).unwrap();
        let addr = worker.addr();
        worker.shutdown();
        // The listener is gone: either the connect fails outright or the
        // connection is immediately closed without an answer.
        let outcome = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        if let Ok(mut stream) = outcome {
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let _ = write_frame(&mut stream, &Frame::Health);
            assert!(read_frame(&mut stream).is_err());
        }
    }
}

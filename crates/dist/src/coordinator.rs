//! The coordinator: routes rows and questions across a worker fleet and
//! folds the streamed chunk partials back into the single-node answer.
//!
//! # Placement
//!
//! Global chunk `c` (rows `c·chunk_size ..`) belongs to shard `c % S`
//! (S = fleet size); shard `s` is stored on workers
//! `(s + k) % W, k < replicas` — primary first, then replicas. Rows are
//! pushed to *every* replica synchronously, so any replica can serve the
//! shard's chunk partials bit-identically.
//!
//! # Parity
//!
//! A forward pass fans one [`Frame::Forward`] out per shard (each replica
//! chain raced/retried independently), then folds the returned
//! [`PartialState`]s in **global chunk order** through
//! [`mnnfast::PartialFold`] — the same merge plane, denominator guard,
//! and final division as the in-process segmented engine. When nothing
//! fails the distributed answer is bitwise identical to the single-node
//! one; the fault tests assert exactly that.
//!
//! # Robustness
//!
//! Per-RPC deadlines are carved from the question's [`Budget`]
//! (`min(rpc_timeout, remaining)`); failures retry with
//! decorrelated-jitter backoff, failing over across the replica chain;
//! an optional hedge fires a duplicate request at the next replica when
//! the primary dawdles; per-worker health walks Live → Suspect → Dead on
//! consecutive failures (probes resurrect); and when every replica of a
//! shard is gone the pass degrades — the dead shard's chunks are skipped,
//! the answer is flagged — instead of erroring, if the caller allows it.

use crate::error::{DistError, FrameError};
use crate::frame::{read_frame, write_frame, ErrorCode, ForwardSpec, Frame, WireStats};
use mnn_tensor::PartialState;
use mnnfast::{
    Budget, EngineError, InferenceStats, MnnFastConfig, PartialFold, Precision, SkipPolicy,
    SoftmaxMode,
};
use rand::{Rng, SeedableRng, StdRng};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// Retry / failover / hedging policy for the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistConfig {
    /// Copies of every shard (1 = no replication). Clamped to fleet size.
    pub replicas: usize,
    /// Per-RPC ceiling; the effective deadline is
    /// `min(rpc_timeout, budget.remaining())`.
    pub rpc_timeout: Duration,
    /// TCP connect ceiling.
    pub connect_timeout: Duration,
    /// Attempts per shard beyond the first (walking the replica chain).
    pub max_retries: u32,
    /// Decorrelated-jitter backoff floor.
    pub backoff_base: Duration,
    /// Decorrelated-jitter backoff ceiling.
    pub backoff_cap: Duration,
    /// Fire a duplicate request at the next replica when the primary has
    /// not answered within this long. `None` disables hedging.
    pub hedge: Option<Duration>,
    /// Consecutive failures that demote a worker Suspect → Dead.
    pub dead_after: u32,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            replicas: 1,
            rpc_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            max_retries: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            hedge: None,
            dead_after: 3,
        }
    }
}

/// Coordinator-side liveness verdict for one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Answering normally.
    Live,
    /// Failed recently; still tried, but replicas are preferred sooner.
    Suspect,
    /// Failed [`DistConfig::dead_after`] times in a row; skipped until a
    /// probe resurrects it.
    Dead,
}

#[derive(Debug)]
struct Health {
    state: WorkerState,
    consecutive_failures: u32,
}

#[derive(Debug)]
struct WorkerSlot {
    addr: SocketAddr,
    health: Mutex<Health>,
    pool: Mutex<Vec<TcpStream>>,
}

impl WorkerSlot {
    fn new(addr: SocketAddr) -> Self {
        WorkerSlot {
            addr,
            health: Mutex::new(Health {
                state: WorkerState::Live,
                consecutive_failures: 0,
            }),
            pool: Mutex::new(Vec::new()),
        }
    }

    fn state(&self) -> WorkerState {
        self.health.lock().unwrap_or_else(|e| e.into_inner()).state
    }

    fn record_success(&self) {
        let mut h = self.health.lock().unwrap_or_else(|e| e.into_inner());
        h.state = WorkerState::Live;
        h.consecutive_failures = 0;
    }

    fn record_failure(&self, dead_after: u32) {
        let mut h = self.health.lock().unwrap_or_else(|e| e.into_inner());
        h.consecutive_failures = h.consecutive_failures.saturating_add(1);
        h.state = if h.consecutive_failures >= dead_after {
            WorkerState::Dead
        } else {
            WorkerState::Suspect
        };
        // A failed exchange may leave a stale response in flight on pooled
        // connections; drop them all.
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Running totals of the fault machinery, readable at any time.
#[derive(Debug, Default)]
pub struct DistCounters {
    /// RPC attempts beyond the first, summed over shards and questions.
    pub retries: AtomicU64,
    /// Shard requests answered by a non-primary replica.
    pub failovers: AtomicU64,
    /// Hedged duplicate requests fired at stragglers.
    pub hedges: AtomicU64,
    /// Shards skipped entirely (degraded answers).
    pub shards_skipped: AtomicU64,
}

impl DistCounters {
    /// Plain-value snapshot `(retries, failovers, hedges, shards_skipped)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.retries.load(Ordering::Relaxed),
            self.failovers.load(Ordering::Relaxed),
            self.hedges.load(Ordering::Relaxed),
            self.shards_skipped.load(Ordering::Relaxed),
        )
    }
}

/// Engine knobs a distributed forward pins on every worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForwardOpts {
    /// Softmax plane.
    pub mode: SoftmaxMode,
    /// Fused chunk kernels.
    pub fused: bool,
    /// Run over the int8 mirrors.
    pub int8: bool,
    /// Raw-weight zero-skip threshold.
    pub skip_raw: Option<f32>,
}

impl ForwardOpts {
    /// Derives the options from an engine config.
    ///
    /// # Errors
    ///
    /// [`DistError::Config`] for [`SkipPolicy::Probability`], which needs
    /// a global denominator pre-pass no shard can run.
    pub fn from_config(config: &MnnFastConfig) -> Result<ForwardOpts, DistError> {
        let skip_raw = match config.skip {
            SkipPolicy::None => None,
            SkipPolicy::RawWeight(th) => Some(th),
            SkipPolicy::Probability(_) => {
                return Err(DistError::Config(
                    "SkipPolicy::Probability cannot run on the distributed plane \
                     (needs a global denominator pre-pass)"
                        .into(),
                ))
            }
        };
        Ok(ForwardOpts {
            mode: config.softmax,
            fused: config.fused,
            int8: config.precision == Precision::Int8,
            skip_raw,
        })
    }
}

/// A distributed answer plus its provenance.
#[derive(Debug, Clone)]
pub struct DistOutput {
    /// The attention response vector.
    pub o: Vec<f32>,
    /// The softmax denominator that was divided out.
    pub denominator: f32,
    /// Aggregated work counters (worker wire stats + fold divisions).
    pub stats: InferenceStats,
    /// Shards whose every replica failed; empty on a clean pass.
    pub skipped_shards: Vec<u32>,
    /// `true` when any shard was skipped — the answer is a partial one.
    pub degraded: bool,
}

/// The coordinator half of the distributed plane. See the module docs.
#[derive(Debug)]
pub struct Coordinator {
    workers: Vec<WorkerSlot>,
    ed: usize,
    chunk_size: usize,
    quant: bool,
    rows: usize,
    config: DistConfig,
    counters: DistCounters,
    rng: Mutex<StdRng>,
}

impl Coordinator {
    /// Connects to `addrs` and verifies each worker's layout via
    /// [`Frame::Hello`]. Workers that fail the handshake are marked
    /// [`WorkerState::Dead`] (pushes and questions route around them);
    /// only a fully-unreachable fleet is an error.
    ///
    /// # Errors
    ///
    /// [`DistError::Config`] for an empty fleet or zero dims;
    /// [`DistError::Handshake`] when no worker at all answered.
    pub fn connect(
        addrs: &[SocketAddr],
        ed: usize,
        chunk_size: usize,
        quant: bool,
        config: DistConfig,
    ) -> Result<Coordinator, DistError> {
        if addrs.is_empty() {
            return Err(DistError::Config("no worker addresses".into()));
        }
        if ed == 0 || chunk_size == 0 {
            return Err(DistError::Config(
                "ed and chunk_size must be positive".into(),
            ));
        }
        if config.replicas == 0 {
            return Err(DistError::Config("replicas must be at least 1".into()));
        }
        let coordinator = Coordinator {
            workers: addrs.iter().copied().map(WorkerSlot::new).collect(),
            ed,
            chunk_size,
            quant,
            rows: 0,
            config,
            counters: DistCounters::default(),
            rng: Mutex::new(StdRng::seed_from_u64(0x006d_6e6e_6661_7374)),
        };
        let hello = Frame::Hello {
            ed: ed as u32,
            chunk_size: chunk_size as u32,
            quant,
        };
        let mut alive = 0usize;
        for slot in &coordinator.workers {
            // The handshake rides the same retry net as every other RPC:
            // a dropped or corrupted ack is a transient, not a dead
            // worker.
            let mut result = coordinator.exchange(slot, &hello, coordinator.config.rpc_timeout);
            let mut backoff = coordinator.config.backoff_base;
            for _ in 0..coordinator.config.max_retries {
                if result.is_ok() {
                    break;
                }
                coordinator.counters.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff.min(coordinator.config.backoff_cap));
                backoff = coordinator.next_backoff(backoff);
                result = coordinator.exchange(slot, &hello, coordinator.config.rpc_timeout);
            }
            match result {
                Ok(Frame::HelloAck { .. }) => {
                    slot.record_success();
                    alive += 1;
                }
                Ok(Frame::Error { message, .. }) => {
                    return Err(DistError::Handshake(format!("{}: {message}", slot.addr)))
                }
                Ok(other) => {
                    return Err(DistError::Handshake(format!(
                        "{}: unexpected {other:?}",
                        slot.addr
                    )))
                }
                Err(_) => {
                    // Unreachable at connect time: dead until probed back.
                    let mut h = slot.health.lock().unwrap_or_else(|e| e.into_inner());
                    h.state = WorkerState::Dead;
                    h.consecutive_failures = coordinator.config.dead_after;
                }
            }
        }
        if alive == 0 {
            return Err(DistError::Handshake(
                "no worker answered the handshake".into(),
            ));
        }
        Ok(coordinator)
    }

    /// Fleet size (= shard count).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Global rows pushed so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The fault-machinery counters.
    pub fn counters(&self) -> &DistCounters {
        &self.counters
    }

    /// Per-worker health states, indexed like the address list.
    pub fn worker_states(&self) -> Vec<WorkerState> {
        self.workers.iter().map(WorkerSlot::state).collect()
    }

    /// Replica chain for `shard`: worker indices, primary first.
    fn candidates(&self, shard: usize) -> Vec<usize> {
        let w = self.workers.len();
        let r = self.config.replicas.min(w);
        (0..r).map(|k| (shard + k) % w).collect()
    }

    /// Appends one row pair to every replica of the owning shard.
    ///
    /// # Errors
    ///
    /// [`DistError::Config`] on a dimension mismatch;
    /// [`DistError::ShardUnavailable`] when **no** replica accepted the
    /// row (accepting replicas keep it — re-pushing after such an error
    /// would duplicate rows on them; rebuild the fleet instead).
    pub fn push(&mut self, in_row: &[f32], out_row: &[f32]) -> Result<(), DistError> {
        if in_row.len() != self.ed || out_row.len() != self.ed {
            return Err(DistError::Config(format!(
                "push rows of dim {}/{} into an ed={} fleet",
                in_row.len(),
                out_row.len(),
                self.ed
            )));
        }
        let chunk = self.rows / self.chunk_size;
        let shard = (chunk % self.workers.len()) as u32;
        let frame = Frame::PushRows {
            shard,
            ed: self.ed as u32,
            in_rows: in_row.to_vec(),
            out_rows: out_row.to_vec(),
        };
        let mut accepted = 0usize;
        for &w in &self.candidates(shard as usize) {
            let slot = &self.workers[w];
            if slot.state() == WorkerState::Dead {
                continue;
            }
            match self.exchange(slot, &frame, self.config.rpc_timeout) {
                Ok(Frame::PushAck { .. }) => {
                    slot.record_success();
                    accepted += 1;
                }
                Ok(_) | Err(_) => slot.record_failure(self.config.dead_after),
            }
        }
        if accepted == 0 {
            return Err(DistError::ShardUnavailable { shard });
        }
        self.rows += 1;
        Ok(())
    }

    /// Drops every shard store on every reachable worker and resets the
    /// global row count — the distributed mirror of a session reset.
    ///
    /// # Errors
    ///
    /// [`DistError::Worker`] if any worker failed to clear (including
    /// dead ones — they could resurrect still holding pre-clear rows):
    /// the caller must not keep routing to the fleet as if empty (tear
    /// the plane down or retry).
    pub fn clear(&mut self) -> Result<(), DistError> {
        let mut first_err = None;
        for slot in &self.workers {
            // A dead worker could resurrect later still holding rows from
            // before the clear — that is a failed clear, not a skip.
            match self.exchange(slot, &Frame::Clear, self.config.rpc_timeout) {
                Ok(Frame::ClearAck) => slot.record_success(),
                Ok(_) | Err(_) => {
                    slot.record_failure(self.config.dead_after);
                    first_err.get_or_insert_with(|| {
                        DistError::Worker(format!("{} refused clear", slot.addr))
                    });
                }
            }
        }
        self.rows = 0;
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Probes every worker with [`Frame::Health`], updating states —
    /// including resurrecting [`WorkerState::Dead`] workers that answer.
    /// Returns the refreshed states.
    pub fn probe(&self) -> Vec<WorkerState> {
        for slot in &self.workers {
            match self.exchange(slot, &Frame::Health, self.config.rpc_timeout) {
                Ok(Frame::HealthAck { .. }) => slot.record_success(),
                Ok(_) | Err(_) => slot.record_failure(self.config.dead_after),
            }
        }
        self.worker_states()
    }

    /// Runs one distributed forward pass.
    ///
    /// When `allow_degraded` is set, shards whose every replica failed are
    /// skipped and reported in [`DistOutput::skipped_shards`]; otherwise
    /// the first unavailable shard is a [`DistError::ShardUnavailable`].
    ///
    /// # Errors
    ///
    /// Shape/config mismatches, budget expiry ([`EngineError`] via
    /// [`DistError::Engine`]), or shard loss (above).
    pub fn forward(
        &self,
        u: &[f32],
        opts: ForwardOpts,
        budget: &Budget,
        allow_degraded: bool,
    ) -> Result<DistOutput, DistError> {
        if u.len() != self.ed {
            return Err(DistError::Config(format!(
                "query dim {} != fleet ed {}",
                u.len(),
                self.ed
            )));
        }
        if opts.int8 && !self.quant {
            return Err(DistError::Config(
                "int8 forward on a fleet without quant mirrors".into(),
            ));
        }
        let shards = self.workers.len();
        let chunks_total = self.rows.div_ceil(self.chunk_size);
        let mut shard_results: Vec<Result<(Vec<PartialState>, WireStats), DistError>> =
            Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let expected = (0..chunks_total).filter(|c| c % shards == s).count();
                    scope.spawn(move || self.ask_shard(s, expected, u, opts, budget))
                })
                .collect();
            for h in handles {
                shard_results.push(h.join().expect("shard dispatch thread"));
            }
        });

        let mut skipped_shards = Vec::new();
        let mut per_shard: Vec<Option<(Vec<PartialState>, WireStats)>> = Vec::with_capacity(shards);
        for (s, r) in shard_results.into_iter().enumerate() {
            match r {
                Ok(v) => per_shard.push(Some(v)),
                Err(e) => {
                    // A blown question budget is the *caller's* deadline,
                    // not a shard fault — degrading would silently return
                    // a partial answer the caller never got to veto.
                    let budget_expired = matches!(
                        e,
                        DistError::Engine(
                            EngineError::DeadlineExceeded { .. } | EngineError::Cancelled
                        )
                    );
                    if !allow_degraded || budget_expired {
                        return Err(e);
                    }
                    skipped_shards.push(s as u32);
                    self.counters.shards_skipped.fetch_add(1, Ordering::Relaxed);
                    per_shard.push(None);
                }
            }
        }

        // Fold in global chunk order: chunk c is shard (c % S)'s
        // (c / S)-th partial — skipping dead shards entirely.
        let mut fold = PartialFold::new(opts.mode, self.ed);
        let mut stats = InferenceStats::default();
        for c in 0..chunks_total {
            if let Some((partials, _)) = &per_shard[c % shards] {
                fold.absorb(&partials[c / shards])?;
            }
        }
        for (_, ws) in per_shard.iter().flatten() {
            stats.rows_total += ws.rows_total;
            stats.rows_skipped += ws.rows_skipped;
            stats.flops += ws.flops;
            stats.memory_bytes += ws.memory_bytes;
            stats.chunks += ws.chunks;
        }
        let mut o = Vec::with_capacity(self.ed);
        let denominator = fold.finish_into(&mut o, &mut stats)?;
        Ok(DistOutput {
            o,
            denominator,
            stats,
            degraded: !skipped_shards.is_empty(),
            skipped_shards,
        })
    }

    /// One shard's request: walk the replica chain with retries, backoff,
    /// and (optionally) a hedged duplicate racing the primary.
    fn ask_shard(
        &self,
        shard: usize,
        expected_chunks: usize,
        u: &[f32],
        opts: ForwardOpts,
        budget: &Budget,
    ) -> Result<(Vec<PartialState>, WireStats), DistError> {
        let candidates = self.candidates(shard);
        let attempts = candidates.len().max(self.config.max_retries as usize + 1);
        let mut backoff = self.config.backoff_base;
        let mut last_err: Option<DistError> = None;
        for attempt in 0..attempts {
            budget.check().map_err(DistError::Engine)?;
            // Prefer non-dead candidates; fall back to anyone once the
            // chain is exhausted (a "dead" worker may have come back).
            let pick = candidates
                .iter()
                .cycle()
                .skip(attempt)
                .take(candidates.len())
                .find(|&&w| self.workers[w].state() != WorkerState::Dead)
                .copied()
                .unwrap_or(candidates[attempt % candidates.len()]);
            if attempt > 0 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff.min(self.config.backoff_cap));
                backoff = self.next_backoff(backoff);
            }
            let deadline = self.effective_deadline(budget)?;
            let hedge_with = self.config.hedge.filter(|_| candidates.len() > 1).map(|d| {
                (
                    d,
                    candidates[(candidates.iter().position(|&w| w == pick).unwrap_or(0) + 1)
                        % candidates.len()],
                )
            });
            let result = match hedge_with {
                Some((hedge_after, secondary)) if secondary != pick => {
                    self.hedged_forward(shard, pick, secondary, hedge_after, u, opts, deadline)
                }
                _ => self.one_forward(shard, pick, u, opts, deadline),
            };
            match result {
                Ok((winner, partials, stats)) => {
                    if partials.len() != expected_chunks {
                        self.workers[winner].record_failure(self.config.dead_after);
                        last_err = Some(DistError::Config(format!(
                            "shard {shard}: worker returned {} chunks, expected {expected_chunks}",
                            partials.len()
                        )));
                        continue;
                    }
                    self.workers[winner].record_success();
                    if winner != candidates[0] {
                        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok((partials, stats));
                }
                Err(e) => {
                    self.workers[pick].record_failure(self.config.dead_after);
                    // A non-retryable protocol error will fail every
                    // replica identically; bail out now.
                    let retryable = match &e {
                        DistError::Frame(f) => f.is_retryable(),
                        DistError::Engine(_) => false,
                        _ => true,
                    };
                    if !retryable {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or(DistError::ShardUnavailable {
            shard: shard as u32,
        }))
    }

    /// Races `primary` against `secondary`, firing the duplicate only
    /// after `hedge_after` without an answer. First success wins; the
    /// request threads are detached so a straggler never blocks the
    /// winner (its late result lands in a dropped channel).
    #[allow(clippy::too_many_arguments)]
    fn hedged_forward(
        &self,
        shard: usize,
        primary: usize,
        secondary: usize,
        hedge_after: Duration,
        u: &[f32],
        opts: ForwardOpts,
        deadline: Duration,
    ) -> Result<(usize, Vec<PartialState>, WireStats), DistError> {
        let frame = self.forward_frame(shard, u, opts, deadline);
        let (tx, rx) = mpsc::channel();
        let fire = |worker: usize, tx: mpsc::Sender<_>| {
            let addr = self.workers[worker].addr;
            let frame = frame.clone();
            let connect_timeout = self.config.connect_timeout;
            std::thread::spawn(move || {
                let r = rpc_forward_once(addr, connect_timeout, deadline, &frame)
                    .map(|(p, s)| (worker, p, s));
                let _ = tx.send(r);
            });
        };
        fire(primary, tx.clone());
        match rx.recv_timeout(hedge_after) {
            Ok(Ok(win)) => return Ok(win),
            Ok(Err(_primary_err)) => {
                // Primary failed fast: go straight to the secondary.
            }
            Err(_) => {
                // Straggler: fire the duplicate and race both.
                self.counters.hedges.fetch_add(1, Ordering::Relaxed);
            }
        }
        fire(secondary, tx.clone());
        drop(tx);
        let mut last = None;
        while let Ok(r) = rx.recv() {
            match r {
                Ok(win) => return Ok(win),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or(DistError::ShardUnavailable {
            shard: shard as u32,
        }))
    }

    fn forward_frame(
        &self,
        shard: usize,
        u: &[f32],
        opts: ForwardOpts,
        deadline: Duration,
    ) -> Frame {
        Frame::Forward(ForwardSpec {
            shard: shard as u32,
            chunk_size: self.chunk_size as u32,
            online: opts.mode == SoftmaxMode::Online,
            fused: opts.fused,
            int8: opts.int8,
            skip_raw: opts.skip_raw,
            deadline_ms: deadline.as_millis() as u64,
            u: u.to_vec(),
        })
    }

    /// One forward RPC to one worker (pooled connection).
    fn one_forward(
        &self,
        shard: usize,
        worker: usize,
        u: &[f32],
        opts: ForwardOpts,
        deadline: Duration,
    ) -> Result<(usize, Vec<PartialState>, WireStats), DistError> {
        let frame = self.forward_frame(shard, u, opts, deadline);
        let response = self.exchange(&self.workers[worker], &frame, deadline)?;
        parse_forward_response(response).map(|(p, s)| (worker, p, s))
    }

    /// `min(rpc_timeout, budget.remaining())`, erring when the budget is
    /// already gone.
    fn effective_deadline(&self, budget: &Budget) -> Result<Duration, DistError> {
        budget.check().map_err(DistError::Engine)?;
        Ok(match budget.remaining() {
            Some(rem) => rem.min(self.config.rpc_timeout),
            None => self.config.rpc_timeout,
        })
    }

    /// Decorrelated jitter: `sleep = min(cap, uniform(base, prev·3))`.
    fn next_backoff(&self, prev: Duration) -> Duration {
        let base = self.config.backoff_base.as_millis().max(1) as u64;
        let hi = (prev.as_millis() as u64).saturating_mul(3).max(base + 1);
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        let picked = rng.random_range(base..hi);
        Duration::from_millis(picked).min(self.config.backoff_cap)
    }

    /// One request/response exchange with `slot`, reusing a pooled
    /// connection when one is idle.
    fn exchange(
        &self,
        slot: &WorkerSlot,
        request: &Frame,
        deadline: Duration,
    ) -> Result<Frame, DistError> {
        let deadline = deadline.max(Duration::from_millis(1));
        let pooled = {
            let mut pool = slot.pool.lock().unwrap_or_else(|e| e.into_inner());
            pool.pop()
        };
        let mut stream = match pooled {
            Some(s) => s,
            None => TcpStream::connect_timeout(&slot.addr, self.config.connect_timeout)?,
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(deadline))?;
        stream.set_write_timeout(Some(deadline))?;
        write_frame(&mut stream, request).map_err(|e| DistError::from(FrameError::Io(e)))?;
        let response = read_frame(&mut stream)?;
        let mut pool = slot.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < 4 {
            pool.push(stream);
        }
        Ok(response)
    }
}

/// Connect-and-ask forward RPC on a fresh connection — used by detached
/// hedge threads, which cannot borrow the coordinator.
fn rpc_forward_once(
    addr: SocketAddr,
    connect_timeout: Duration,
    deadline: Duration,
    frame: &Frame,
) -> Result<(Vec<PartialState>, WireStats), DistError> {
    let deadline = deadline.max(Duration::from_millis(1));
    let mut stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(deadline))?;
    stream.set_write_timeout(Some(deadline))?;
    write_frame(&mut stream, frame).map_err(|e| DistError::from(FrameError::Io(e)))?;
    let response = read_frame(&mut stream)?;
    parse_forward_response(response)
}

fn parse_forward_response(response: Frame) -> Result<(Vec<PartialState>, WireStats), DistError> {
    match response {
        Frame::ForwardResp { partials, stats } => {
            let decoded = Frame::decode_partials(&partials)?;
            Ok((decoded, stats))
        }
        Frame::Error { code, message } => match code {
            ErrorCode::Engine => Err(DistError::Engine(EngineError::Config(message))),
            _ => Err(DistError::Worker(message)),
        },
        other => Err(DistError::Worker(format!("unexpected response {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_chains_wrap_the_fleet() {
        let workers: Vec<SocketAddr> = Vec::new();
        assert!(matches!(
            Coordinator::connect(&workers, 8, 16, false, DistConfig::default()),
            Err(DistError::Config(_))
        ));
    }

    #[test]
    fn forward_opts_reject_probability_skip() {
        let config = MnnFastConfig::new(16).with_skip(SkipPolicy::Probability(0.01));
        assert!(matches!(
            ForwardOpts::from_config(&config),
            Err(DistError::Config(_))
        ));
        let config = MnnFastConfig::new(16).with_skip(SkipPolicy::RawWeight(0.5));
        let opts = ForwardOpts::from_config(&config).unwrap();
        assert_eq!(opts.skip_raw, Some(0.5));
    }
}

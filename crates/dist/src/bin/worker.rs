//! Standalone MnnFast segment worker.
//!
//! ```text
//! mnn-dist-worker --ed 24 [--port 9400] [--chunk 32] [--quant]
//! ```
//!
//! Binds `127.0.0.1:<port>` (an ephemeral port when omitted), prints the
//! bound address on stdout, and serves until killed. `MNNFAST_FAULT` with
//! an RPC kind (`drop`, `delay:<ms>`, `corrupt`, `disconnect`) arms the
//! worker's response-fault injector — the lever the CI fault matrix pulls.

use mnn_dist::{RpcFaultPlan, WorkerConfig, WorkerServer};

fn usage() -> ! {
    eprintln!("usage: mnn-dist-worker --ed <dim> [--port <port>] [--chunk <rows>] [--quant]");
    std::process::exit(2);
}

fn main() {
    let mut ed: Option<usize> = None;
    let mut port: u16 = 0;
    let mut chunk: usize = 32;
    let mut quant = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ed" => ed = args.next().and_then(|v| v.parse().ok()),
            "--port" => match args.next().and_then(|v| v.parse().ok()) {
                Some(p) => port = p,
                None => usage(),
            },
            "--chunk" => match args.next().and_then(|v| v.parse().ok()) {
                Some(c) if c > 0 => chunk = c,
                _ => usage(),
            },
            "--quant" => quant = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(ed) = ed.filter(|&e| e > 0) else {
        usage();
    };
    if let Err(e) = mnn_dist::validate_env() {
        eprintln!("mnn-dist-worker: {e}");
        std::process::exit(2);
    }
    let fault = match RpcFaultPlan::from_env() {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("mnn-dist-worker: {e}");
            std::process::exit(2);
        }
    };
    let config = WorkerConfig {
        ed,
        chunk_size: chunk,
        quant,
        fault,
    };
    let worker = match WorkerServer::spawn_on(&format!("127.0.0.1:{port}"), config) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("mnn-dist-worker: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", worker.addr());
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

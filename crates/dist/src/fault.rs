//! RPC-level fault injection for the coordinator/worker plane.
//!
//! The `MNNFAST_FAULT` grammar (owned by `mnn_tensor::fault` for the
//! kernel-level kinds) grows an RPC dimension here: `drop`, `delay:<ms>`,
//! `corrupt`, and `disconnect`, with the same `;after=N` / `;fires=M`
//! riders. A [`WorkerServer`](crate::worker::WorkerServer) arms at most
//! one [`RpcFaultState`] at construction — per worker, not process-global,
//! so a test fleet can damage exactly one member — and consults it once
//! per *response*:
//!
//! | spec | effect on the scheduled responses |
//! |------|-----------------------------------|
//! | `drop` | never write the response (client hits its read deadline) |
//! | `delay:<ms>` | sleep `<ms>` before writing (straggler / hedging tests) |
//! | `corrupt` | flip one payload bit so the frame CRC rejects it |
//! | `disconnect` | close the connection instead of answering |
//!
//! Chunk-kernel kinds (`nan`, `inf`, `slow:<ms>`, `panic`) are valid specs
//! in this parser too — one variable drives either dimension — but they
//! target the kernels, so [`RpcFaultPlan::parse`] reports them as
//! `Ok(None)`: nothing for the RPC layer to arm.
//!
//! Unlike the kernel hook this module is compiled unconditionally: the
//! state is plain config threaded into the worker (one relaxed atomic
//! load when disarmed), and release coordinators never arm it.

use mnn_tensor::EnvVarError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What an armed RPC fault does to the response it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcFaultKind {
    /// Swallow the response; the peer's read deadline expires.
    Drop,
    /// Sleep this long before responding — a straggler worker.
    Delay(Duration),
    /// Flip one bit in the encoded response so its CRC check fails.
    Corrupt,
    /// Sever the connection instead of responding.
    Disconnect,
}

/// A parsed RPC fault spec: the kind plus its firing schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcFaultPlan {
    /// Damage to apply to scheduled responses.
    pub kind: RpcFaultKind,
    /// Responses to let pass untouched before firing.
    pub after: u64,
    /// How many responses to damage once firing starts.
    pub fires: u64,
}

impl RpcFaultPlan {
    /// Strictly parses a `MNNFAST_FAULT` spec against the full grammar.
    ///
    /// `Ok(Some(plan))` for an RPC kind, `Ok(None)` for the empty spec or
    /// a chunk-kernel kind (valid, owned elsewhere).
    ///
    /// # Errors
    ///
    /// [`EnvVarError`] for anything malformed, so startup validation can
    /// fail loudly instead of a typo'd fault silently not firing.
    pub fn parse(spec: &str) -> Result<Option<RpcFaultPlan>, EnvVarError> {
        let malformed = || {
            EnvVarError::new(
                "MNNFAST_FAULT",
                spec.to_string(),
                "a fault spec like `drop`, `delay:<ms>`, `corrupt`, `disconnect`, or a \
                 kernel kind (`nan`, `inf`, `panic`, `slow:<ms>`), optionally with \
                 `;after=N` / `;fires=M` (empty/unset = none)",
            )
        };
        if spec.is_empty() {
            return Ok(None);
        }
        let mut kind: Option<Option<RpcFaultKind>> = None;
        let mut after = 0u64;
        let mut fires = 1u64;
        for part in spec.split(';') {
            let part = part.trim();
            if part == "drop" {
                kind = Some(Some(RpcFaultKind::Drop));
            } else if let Some(ms) = part.strip_prefix("delay:") {
                let ms = ms.parse::<u64>().map_err(|_| malformed())?;
                kind = Some(Some(RpcFaultKind::Delay(Duration::from_millis(ms))));
            } else if part == "corrupt" {
                kind = Some(Some(RpcFaultKind::Corrupt));
            } else if part == "disconnect" {
                kind = Some(Some(RpcFaultKind::Disconnect));
            } else if part == "nan" || part == "inf" || part == "panic" {
                kind = Some(None); // kernel-level: valid, not ours
            } else if let Some(ms) = part.strip_prefix("slow:") {
                ms.parse::<u64>().map_err(|_| malformed())?;
                kind = Some(None);
            } else if let Some(n) = part.strip_prefix("after=") {
                after = n.parse().map_err(|_| malformed())?;
            } else if let Some(n) = part.strip_prefix("fires=") {
                fires = n.parse().map_err(|_| malformed())?;
            } else {
                return Err(malformed());
            }
        }
        match kind {
            Some(Some(kind)) => Ok(Some(RpcFaultPlan { kind, after, fires })),
            Some(None) => Ok(None),
            None => Err(malformed()),
        }
    }

    /// Parses the `MNNFAST_FAULT` environment variable.
    ///
    /// # Errors
    ///
    /// As [`RpcFaultPlan::parse`]; unset is `Ok(None)`.
    pub fn from_env() -> Result<Option<RpcFaultPlan>, EnvVarError> {
        match std::env::var("MNNFAST_FAULT") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => Ok(None),
        }
    }
}

/// Per-worker armed fault state: the plan plus response counters.
#[derive(Debug)]
pub struct RpcFaultState {
    plan: RpcFaultPlan,
    seen: AtomicU64,
    fired: AtomicU64,
}

impl RpcFaultState {
    /// Arms `plan` for one worker.
    pub fn new(plan: RpcFaultPlan) -> Self {
        RpcFaultState {
            plan,
            seen: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        }
    }

    /// Consulted once per scheduled response: returns the fault to apply
    /// to this response, or `None`.
    pub fn on_response(&self) -> Option<RpcFaultKind> {
        let seen = self.seen.fetch_add(1, Ordering::SeqCst) + 1;
        if seen <= self.plan.after {
            return None;
        }
        // Claim a fire slot; back out on overshoot (concurrent responders).
        let fired = self.fired.fetch_add(1, Ordering::SeqCst);
        if fired < self.plan.fires {
            Some(self.plan.kind)
        } else {
            self.fired.fetch_sub(1, Ordering::SeqCst);
            None
        }
    }

    /// How many responses the fault has damaged so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_specs_parse_with_schedules() {
        assert_eq!(RpcFaultPlan::parse("").unwrap(), None);
        assert_eq!(
            RpcFaultPlan::parse("drop").unwrap(),
            Some(RpcFaultPlan {
                kind: RpcFaultKind::Drop,
                after: 0,
                fires: 1
            })
        );
        assert_eq!(
            RpcFaultPlan::parse("delay:75;after=2;fires=4").unwrap(),
            Some(RpcFaultPlan {
                kind: RpcFaultKind::Delay(Duration::from_millis(75)),
                after: 2,
                fires: 4
            })
        );
        assert_eq!(
            RpcFaultPlan::parse("corrupt;fires=2")
                .unwrap()
                .unwrap()
                .kind,
            RpcFaultKind::Corrupt
        );
        assert_eq!(
            RpcFaultPlan::parse("disconnect").unwrap().unwrap().kind,
            RpcFaultKind::Disconnect
        );
    }

    #[test]
    fn kernel_kinds_are_valid_but_not_armed_here() {
        for spec in ["nan", "inf", "panic", "slow:25", "nan;after=3;fires=2"] {
            assert_eq!(RpcFaultPlan::parse(spec).unwrap(), None, "{spec}");
        }
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for spec in ["nonsense", "delay:abc", "drop;bogus=7", "after=3", "slow:x"] {
            let err = RpcFaultPlan::parse(spec).unwrap_err();
            assert_eq!(err.var(), "MNNFAST_FAULT", "{spec}");
        }
    }

    #[test]
    fn state_fires_on_schedule() {
        let state = RpcFaultState::new(RpcFaultPlan {
            kind: RpcFaultKind::Corrupt,
            after: 2,
            fires: 1,
        });
        assert_eq!(state.on_response(), None);
        assert_eq!(state.on_response(), None);
        assert_eq!(state.on_response(), Some(RpcFaultKind::Corrupt));
        assert_eq!(state.on_response(), None, "fires budget exhausted");
        assert_eq!(state.fired(), 1);
    }
}

//! The coordinator↔worker RPC frame codec.
//!
//! Every message on a worker connection is one length-prefixed,
//! CRC-guarded binary frame, little-endian throughout:
//!
//! | bytes | field |
//! |-------|-------|
//! | 0..2  | magic `0x4D46` ("MF") |
//! | 2     | protocol version (currently 1) |
//! | 3     | opcode |
//! | 4..8  | payload length `n` as `u32` (counts payload **and** the CRC) |
//! | 8..8+n−4 | opcode-specific payload |
//! | last 4 | CRC-32 (IEEE) over bytes `0..8+n−4` |
//!
//! The trailing CRC covers the header too, so a bit flipped anywhere in the
//! frame — opcode, length, payload — is detected before the payload is
//! interpreted (structural checks still run first so a garbled magic or an
//! unknown version reports its own typed error). [`PartialState`] payloads
//! inside [`Frame::ForwardResp`] carry their *own* version-2 wire encoding
//! with its own CRC; the frame CRC is the transport-level guard on top.
//!
//! The codec is pure (`encode`/`decode` on byte buffers); [`write_frame`]
//! and [`read_frame`] adapt it to blocking streams and honour whatever
//! read/write deadline the caller set on the socket.
//!
//! The envelope itself — header layout, length discipline, trailing CRC,
//! the little-endian payload [`Reader`](mnn_wire::Reader) — lives in the
//! shared [`mnn_wire`] crate so this protocol and the serving front-end's
//! (`mnn-net`) cannot drift; this module owns only the opcode table and
//! the payload layouts.

use crate::error::FrameError;
use mnn_tensor::PartialState;
use mnn_wire::Reader;
use std::io::{Read, Write};

/// First two bytes of every frame ("MF" little-endian).
pub const MAGIC: u16 = 0x4D46;
/// Protocol version emitted by this build.
pub const VERSION: u8 = 1;
/// Fixed header length (magic + version + opcode + payload length).
pub const HEADER_LEN: usize = mnn_wire::HEADER_LEN;
/// Trailing checksum length.
pub const CRC_LEN: usize = mnn_wire::CRC_LEN;
/// Upper bound on the declared payload length; anything larger is treated
/// as a corrupt length field rather than an allocation request.
pub const MAX_PAYLOAD: usize = mnn_wire::MAX_PAYLOAD;

/// Worker-side request outcome codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was malformed or inconsistent with the worker's state.
    BadRequest,
    /// The engine failed (numeric fault, budget expiry, shape error).
    Engine,
    /// The worker is shutting down and will not serve further requests.
    Shutdown,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::Engine => 2,
            ErrorCode::Shutdown => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, FrameError> {
        match b {
            1 => Ok(ErrorCode::BadRequest),
            2 => Ok(ErrorCode::Engine),
            3 => Ok(ErrorCode::Shutdown),
            _ => Err(FrameError::Malformed("unknown error code")),
        }
    }
}

/// Engine parameters a [`Frame::Forward`] request pins on the worker so
/// its chunk kernels run bit-identically to the coordinator's reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardSpec {
    /// Shard whose local store the pass runs over.
    pub shard: u32,
    /// Chunk size (must match the placement chunk size).
    pub chunk_size: u32,
    /// Softmax plane: 0 = lazy, 1 = online.
    pub online: bool,
    /// Use the fused chunk kernel.
    pub fused: bool,
    /// Run over the int8 quantized mirror instead of the f32 rows.
    pub int8: bool,
    /// Raw-weight zero-skip threshold (`None` disables skipping).
    pub skip_raw: Option<f32>,
    /// Compute deadline in milliseconds (0 = unlimited).
    pub deadline_ms: u64,
    /// The query embedding.
    pub u: Vec<f32>,
}

/// Work counters a worker reports back with its partials — the subset of
/// the engine's `InferenceStats` that is meaningful to aggregate across
/// the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Rows visited.
    pub rows_total: u64,
    /// Rows skipped by the zero-skip threshold.
    pub rows_skipped: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Memory traffic in bytes.
    pub memory_bytes: u64,
    /// Chunks processed.
    pub chunks: u64,
}

/// One decoded RPC frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Coordinator → worker: open a session. Carries the embedding
    /// dimension, the placement chunk size, and whether shards should
    /// maintain int8 mirrors.
    Hello {
        /// Embedding dimension every pushed row must have.
        ed: u32,
        /// Placement chunk size (rows per global chunk).
        chunk_size: u32,
        /// Maintain int8 quantized mirrors on every shard store.
        quant: bool,
    },
    /// Worker → coordinator: handshake accepted. Reports the worker's
    /// protocol version and total resident rows (non-zero on reconnect).
    HelloAck {
        /// Total rows currently resident across all shard stores.
        rows: u64,
    },
    /// Coordinator → worker: append `n` rows to one shard's store.
    /// `in_rows`/`out_rows` are `n × ed` row-major.
    PushRows {
        /// Target shard.
        shard: u32,
        /// Embedding dimension (redundant guard against misrouted frames).
        ed: u32,
        /// Input-memory rows, flattened.
        in_rows: Vec<f32>,
        /// Output-memory rows, flattened.
        out_rows: Vec<f32>,
    },
    /// Worker → coordinator: push applied; reports the shard's new length.
    PushAck {
        /// Rows now resident on the target shard.
        shard_rows: u64,
    },
    /// Coordinator → worker: drop every shard store.
    Clear,
    /// Worker → coordinator: clear applied.
    ClearAck,
    /// Coordinator → worker: run a forward pass over one shard and stream
    /// back the per-chunk partials.
    Forward(ForwardSpec),
    /// Worker → coordinator: the shard's chunk partials, in the shard's
    /// local (= global, by placement) chunk order, each in the
    /// [`PartialState`] version-2 wire encoding.
    ForwardResp {
        /// Encoded [`PartialState`] per chunk.
        partials: Vec<Vec<u8>>,
        /// Work counters for the pass.
        stats: WireStats,
    },
    /// Coordinator → worker: liveness probe.
    Health,
    /// Worker → coordinator: probe reply with store occupancy.
    HealthAck {
        /// Total rows resident across all shard stores.
        rows: u64,
        /// Number of shard stores.
        shards: u32,
    },
    /// Worker → coordinator: the request failed.
    Error {
        /// Outcome class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Frame {
    fn opcode(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::HelloAck { .. } => 2,
            Frame::PushRows { .. } => 3,
            Frame::PushAck { .. } => 4,
            Frame::Clear => 5,
            Frame::ClearAck => 6,
            Frame::Forward(_) => 7,
            Frame::ForwardResp { .. } => 8,
            Frame::Health => 9,
            Frame::HealthAck { .. } => 10,
            Frame::Error { .. } => 11,
        }
    }

    /// Serializes the frame (header, payload, trailing CRC).
    pub fn encode(&self) -> Vec<u8> {
        mnn_wire::seal_frame(MAGIC, VERSION, self.opcode(), |buf| {
            self.encode_payload(buf)
        })
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Hello {
                ed,
                chunk_size,
                quant,
            } => {
                buf.extend_from_slice(&ed.to_le_bytes());
                buf.extend_from_slice(&chunk_size.to_le_bytes());
                buf.push(u8::from(*quant));
            }
            Frame::HelloAck { rows } => buf.extend_from_slice(&rows.to_le_bytes()),
            Frame::PushRows {
                shard,
                ed,
                in_rows,
                out_rows,
            } => {
                buf.extend_from_slice(&shard.to_le_bytes());
                buf.extend_from_slice(&ed.to_le_bytes());
                buf.extend_from_slice(&(in_rows.len() as u32).to_le_bytes());
                for x in in_rows {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
                buf.extend_from_slice(&(out_rows.len() as u32).to_le_bytes());
                for x in out_rows {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            Frame::PushAck { shard_rows } => {
                buf.extend_from_slice(&shard_rows.to_le_bytes());
            }
            Frame::Clear | Frame::ClearAck | Frame::Health => {}
            Frame::Forward(spec) => {
                buf.extend_from_slice(&spec.shard.to_le_bytes());
                buf.extend_from_slice(&spec.chunk_size.to_le_bytes());
                buf.push(u8::from(spec.online));
                buf.push(u8::from(spec.fused));
                buf.push(u8::from(spec.int8));
                match spec.skip_raw {
                    Some(th) => {
                        buf.push(1);
                        buf.extend_from_slice(&th.to_le_bytes());
                    }
                    None => {
                        buf.push(0);
                        buf.extend_from_slice(&0f32.to_le_bytes());
                    }
                }
                buf.extend_from_slice(&spec.deadline_ms.to_le_bytes());
                buf.extend_from_slice(&(spec.u.len() as u32).to_le_bytes());
                for x in &spec.u {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            Frame::ForwardResp { partials, stats } => {
                buf.extend_from_slice(&(partials.len() as u32).to_le_bytes());
                for p in partials {
                    buf.extend_from_slice(&(p.len() as u32).to_le_bytes());
                    buf.extend_from_slice(p);
                }
                buf.extend_from_slice(&stats.rows_total.to_le_bytes());
                buf.extend_from_slice(&stats.rows_skipped.to_le_bytes());
                buf.extend_from_slice(&stats.flops.to_le_bytes());
                buf.extend_from_slice(&stats.memory_bytes.to_le_bytes());
                buf.extend_from_slice(&stats.chunks.to_le_bytes());
            }
            Frame::HealthAck { rows, shards } => {
                buf.extend_from_slice(&rows.to_le_bytes());
                buf.extend_from_slice(&shards.to_le_bytes());
            }
            Frame::Error { code, message } => {
                buf.push(code.to_byte());
                let bytes = message.as_bytes();
                buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                buf.extend_from_slice(bytes);
            }
        }
    }

    /// Decodes one complete frame from `bytes` (header through CRC).
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] when `bytes` is shorter than the frame it
    /// declares, [`FrameError::BadMagic`]/[`FrameError::UnsupportedVersion`]/
    /// [`FrameError::UnknownOpcode`] on a garbled header,
    /// [`FrameError::Corrupt`] when the trailing CRC disagrees, and
    /// [`FrameError::Malformed`] when the payload doesn't parse.
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        let (opcode, payload) = mnn_wire::open_frame(bytes, MAGIC, VERSION)?;
        let mut r = Reader::new(payload);
        let frame = Self::decode_payload(opcode, &mut r)?;
        if !r.is_exhausted() {
            return Err(FrameError::Malformed("trailing bytes after payload"));
        }
        Ok(frame)
    }

    fn decode_payload(opcode: u8, r: &mut Reader<'_>) -> Result<Frame, FrameError> {
        match opcode {
            1 => Ok(Frame::Hello {
                ed: r.u32()?,
                chunk_size: r.u32()?,
                quant: r.flag()?,
            }),
            2 => Ok(Frame::HelloAck { rows: r.u64()? }),
            3 => {
                let shard = r.u32()?;
                let ed = r.u32()?;
                let n_in = r.u32()? as usize;
                let in_rows = r.f32s(n_in)?;
                let n_out = r.u32()? as usize;
                let out_rows = r.f32s(n_out)?;
                Ok(Frame::PushRows {
                    shard,
                    ed,
                    in_rows,
                    out_rows,
                })
            }
            4 => Ok(Frame::PushAck {
                shard_rows: r.u64()?,
            }),
            5 => Ok(Frame::Clear),
            6 => Ok(Frame::ClearAck),
            7 => {
                let shard = r.u32()?;
                let chunk_size = r.u32()?;
                let online = r.flag()?;
                let fused = r.flag()?;
                let int8 = r.flag()?;
                let has_skip = r.flag()?;
                let th = r.f32()?;
                let deadline_ms = r.u64()?;
                let n = r.u32()? as usize;
                let u = r.f32s(n)?;
                Ok(Frame::Forward(ForwardSpec {
                    shard,
                    chunk_size,
                    online,
                    fused,
                    int8,
                    skip_raw: has_skip.then_some(th),
                    deadline_ms,
                    u,
                }))
            }
            8 => {
                let n = r.u32()? as usize;
                let mut partials = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let len = r.u32()? as usize;
                    partials.push(r.bytes(len)?.to_vec());
                }
                let stats = WireStats {
                    rows_total: r.u64()?,
                    rows_skipped: r.u64()?,
                    flops: r.u64()?,
                    memory_bytes: r.u64()?,
                    chunks: r.u64()?,
                };
                Ok(Frame::ForwardResp { partials, stats })
            }
            9 => Ok(Frame::Health),
            10 => Ok(Frame::HealthAck {
                rows: r.u64()?,
                shards: r.u32()?,
            }),
            11 => {
                let code = ErrorCode::from_byte(r.u8()?)?;
                let len = r.u32()? as usize;
                let bytes = r.bytes(len)?;
                let message = String::from_utf8(bytes.to_vec())
                    .map_err(|_| FrameError::Malformed("error message is not UTF-8"))?;
                Ok(Frame::Error { code, message })
            }
            other => Err(FrameError::UnknownOpcode(other)),
        }
    }

    /// Decodes every [`PartialState`] carried by a [`Frame::ForwardResp`].
    ///
    /// # Errors
    ///
    /// The first inner [`mnn_tensor::PartialDecodeError`], typed as
    /// [`FrameError::Partial`].
    pub fn decode_partials(encoded: &[Vec<u8>]) -> Result<Vec<PartialState>, FrameError> {
        encoded
            .iter()
            .map(|b| PartialState::from_bytes(b).map_err(FrameError::Partial))
            .collect()
    }
}

/// Writes one encoded frame to `w` (single `write_all`, then flush).
///
/// # Errors
///
/// Propagates the stream's I/O error (including write-timeout expiry).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    mnn_wire::write_frame_bytes(w, &frame.encode())
}

/// Reads exactly one frame from `r`, honouring the stream's read deadline.
///
/// # Errors
///
/// I/O errors (timeouts, resets) as `Err(Ok(io_error))`-free
/// [`FrameError::Io`]; codec errors as their own [`FrameError`] variants.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
    let buf = mnn_wire::read_frame_bytes(r, MAGIC, VERSION)?;
    Frame::decode(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) {
        let bytes = frame.encode();
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(&back, frame);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(&Frame::Hello {
            ed: 24,
            chunk_size: 16,
            quant: true,
        });
        roundtrip(&Frame::HelloAck { rows: 123 });
        roundtrip(&Frame::PushRows {
            shard: 3,
            ed: 2,
            in_rows: vec![1.0, -2.0, 0.5, 3.25],
            out_rows: vec![0.0, -0.0, f32::MIN_POSITIVE, 1.0e18],
        });
        roundtrip(&Frame::PushAck { shard_rows: 7 });
        roundtrip(&Frame::Clear);
        roundtrip(&Frame::ClearAck);
        roundtrip(&Frame::Forward(ForwardSpec {
            shard: 1,
            chunk_size: 32,
            online: true,
            fused: false,
            int8: true,
            skip_raw: Some(0.125),
            deadline_ms: 250,
            u: vec![0.1, 0.2, 0.3],
        }));
        roundtrip(&Frame::ForwardResp {
            partials: vec![vec![1, 2, 3], vec![], vec![255; 40]],
            stats: WireStats {
                rows_total: 96,
                rows_skipped: 5,
                flops: 4096,
                memory_bytes: 1 << 20,
                chunks: 6,
            },
        });
        roundtrip(&Frame::Health);
        roundtrip(&Frame::HealthAck {
            rows: 1 << 40,
            shards: 9,
        });
        roundtrip(&Frame::Error {
            code: ErrorCode::Engine,
            message: "denominator went non-finite".into(),
        });
    }

    #[test]
    fn bit_flips_anywhere_are_rejected() {
        let frame = Frame::Forward(ForwardSpec {
            shard: 0,
            chunk_size: 16,
            online: false,
            fused: true,
            int8: false,
            skip_raw: None,
            deadline_ms: 0,
            u: vec![1.0, 2.0],
        });
        let pristine = frame.encode();
        assert_eq!(Frame::decode(&pristine).unwrap(), frame);
        for byte in 0..pristine.len() {
            let mut dented = pristine.clone();
            dented[byte] ^= 0x10;
            assert!(
                Frame::decode(&dented).is_err(),
                "flip at byte {byte} must not decode"
            );
        }
    }

    #[test]
    fn truncations_report_truncated_or_io() {
        let bytes = Frame::HealthAck {
            rows: 42,
            shards: 2,
        }
        .encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn stream_reader_matches_buffer_decoder() {
        let frames = [
            Frame::Health,
            Frame::HelloAck { rows: 9 },
            Frame::Error {
                code: ErrorCode::BadRequest,
                message: "nope".into(),
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = &wire[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
    }
}

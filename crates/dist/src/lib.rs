//! Fault-tolerant coordinator/worker segment serving for the MnnFast
//! reproduction.
//!
//! The paper's segmented execution plane splits the story memory into
//! segments and merges per-chunk softmax partials; this crate stretches
//! that seam across processes. A [`WorkerServer`] owns shard-local
//! [`mnnfast::SegmentedStore`]s and answers length-prefixed, CRC-guarded
//! binary RPCs ([`frame`]); a [`Coordinator`] routes rows and questions
//! over the fleet and folds the streamed [`mnn_tensor::PartialState`]s in
//! global chunk order — so a fault-free distributed answer is **bitwise
//! identical** to the single-node segmented one.
//!
//! Robustness is the point, not an afterthought:
//!
//! - per-RPC deadlines carved from the question's [`mnnfast::Budget`],
//! - bounded retries with decorrelated-jitter backoff,
//! - shard replicas with failover across the replica chain,
//! - hedged duplicate requests against stragglers,
//! - per-worker Live → Suspect → Dead health with probe resurrection,
//! - degraded partial answers (skip dead shards, flag the output) instead
//!   of errors when the caller allows it,
//! - RPC-level fault injection ([`fault`]) sharing the `MNNFAST_FAULT`
//!   grammar with the kernel-level hook, so CI can drill every failure
//!   mode from one knob.
//!
//! # Example
//!
//! ```
//! use mnn_dist::{Coordinator, DistConfig, ForwardOpts, WorkerConfig, WorkerServer};
//! use mnnfast::{Budget, MnnFastConfig};
//!
//! // Two in-process workers on loopback ephemeral ports.
//! let workers: Vec<WorkerServer> = (0..2)
//!     .map(|_| WorkerServer::spawn(WorkerConfig::new(4, 2)).unwrap())
//!     .collect();
//! let addrs: Vec<_> = workers.iter().map(|w| w.addr()).collect();
//!
//! let mut coordinator =
//!     Coordinator::connect(&addrs, 4, 2, false, DistConfig::default()).unwrap();
//! for r in 0..6 {
//!     let row = vec![r as f32 * 0.1; 4];
//!     coordinator.push(&row, &row).unwrap();
//! }
//! let opts = ForwardOpts::from_config(&MnnFastConfig::new(2)).unwrap();
//! let answer = coordinator
//!     .forward(&[0.3; 4], opts, &Budget::unlimited(), true)
//!     .unwrap();
//! assert_eq!(answer.o.len(), 4);
//! assert!(!answer.degraded);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod coordinator;
pub mod env;
pub mod error;
pub mod fault;
pub mod frame;
pub mod worker;

pub use coordinator::{
    Coordinator, DistConfig, DistCounters, DistOutput, ForwardOpts, WorkerState,
};
pub use env::{hedge_from_env, replicas_from_env, validate_env, workers_from_env};
pub use error::{DistError, FrameError};
pub use fault::{RpcFaultKind, RpcFaultPlan, RpcFaultState};
pub use frame::{ForwardSpec, Frame, WireStats};
pub use worker::{WorkerConfig, WorkerServer};

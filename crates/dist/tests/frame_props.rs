//! Property-based tests for the RPC frame wire format: every frame kind
//! must survive an encode → decode roundtrip at awkward payload lengths,
//! and any single-bit damage or truncation must be rejected with a typed
//! error — never a panic, never a silently-wrong frame.

use mnn_dist::frame::ErrorCode;
use mnn_dist::{ForwardSpec, Frame, FrameError, WireStats};
use proptest::collection::vec;
use proptest::prelude::*;

/// Payload lengths that stress the header/length/CRC bookkeeping: empty,
/// single element, and sizes straddling small power-of-two boundaries.
const AWKWARD_LENS: [usize; 8] = [0, 1, 3, 7, 8, 9, 31, 33];

fn awkward_f32s() -> impl Strategy<Value = Vec<f32>> {
    // Oversample, then cut to one of the awkward lengths — the shim has
    // no flat_map, so dependent sizing happens in the map.
    (0usize..AWKWARD_LENS.len(), vec(-100.0f32..100.0, 33..34)).prop_map(|(i, mut xs)| {
        xs.truncate(AWKWARD_LENS[i]);
        xs
    })
}

fn any_stats() -> impl Strategy<Value = WireStats> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(a, b, c, d, e)| WireStats {
            rows_total: a as u64,
            rows_skipped: b as u64,
            flops: c as u64,
            memory_bytes: d as u64,
            chunks: e as u64,
        })
}

fn any_spec() -> impl Strategy<Value = ForwardSpec> {
    (
        (any::<u32>(), 1u32..1024, any::<bool>(), any::<bool>()),
        (
            any::<bool>(),
            prop_oneof![Just(None), (0.0f32..10.0).prop_map(Some)],
            any::<u32>(),
            awkward_f32s(),
        ),
    )
        .prop_map(
            |((shard, chunk_size, online, fused), (int8, skip_raw, deadline, u))| ForwardSpec {
                shard,
                chunk_size,
                online,
                fused,
                int8,
                skip_raw,
                deadline_ms: deadline as u64,
                u,
            },
        )
}

fn ascii_message() -> impl Strategy<Value = String> {
    vec(any::<u8>(), 0..48)
        .prop_map(|bytes| bytes.iter().map(|b| (b' ' + b % 95) as char).collect())
}

fn any_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), 1u32..1024, any::<bool>()).prop_map(|(ed, chunk_size, quant)| {
            Frame::Hello {
                ed,
                chunk_size,
                quant,
            }
        }),
        any::<u64>().prop_map(|rows| Frame::HelloAck { rows }),
        (any::<u32>(), 1u32..64, awkward_f32s()).prop_map(|(shard, ed, rows)| Frame::PushRows {
            shard,
            ed,
            in_rows: rows.clone(),
            out_rows: rows,
        }),
        any::<u64>().prop_map(|shard_rows| Frame::PushAck { shard_rows }),
        Just(Frame::Clear),
        Just(Frame::ClearAck),
        any_spec().prop_map(Frame::Forward),
        (vec(vec(any::<u8>(), 0..40), 0..5), any_stats())
            .prop_map(|(partials, stats)| Frame::ForwardResp { partials, stats }),
        Just(Frame::Health),
        (any::<u64>(), any::<u32>()).prop_map(|(rows, shards)| Frame::HealthAck { rows, shards }),
        (
            prop_oneof![
                Just(ErrorCode::BadRequest),
                Just(ErrorCode::Engine),
                Just(ErrorCode::Shutdown)
            ],
            ascii_message()
        )
            .prop_map(|(code, message)| Frame::Error { code, message }),
    ]
}

proptest! {
    #[test]
    fn every_frame_roundtrips(frame in any_frame()) {
        let bytes = frame.encode();
        let back = Frame::decode(&bytes).expect("decode of a fresh encode");
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn single_bit_damage_is_always_rejected(frame in any_frame(), pos_seed in any::<usize>(), bit in 0u8..8) {
        let mut bytes = frame.encode();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= 1 << bit;
        // A flipped bit must never decode to *any* frame: the structural
        // checks or the trailing CRC must catch it.
        prop_assert!(Frame::decode(&bytes).is_err(), "flip at {} bit {} accepted", pos, bit);
    }

    #[test]
    fn truncation_is_always_rejected(frame in any_frame(), keep_seed in any::<usize>()) {
        let bytes = frame.encode();
        let keep = keep_seed % bytes.len(); // strictly shorter than full
        match Frame::decode(&bytes[..keep]) {
            Err(FrameError::Truncated { .. }) | Err(FrameError::BadMagic(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class {:?}", other),
            Ok(f) => prop_assert!(false, "truncated to {} bytes decoded {:?}", keep, f),
        }
    }

    #[test]
    fn garbage_never_panics(bytes in vec(any::<u8>(), 0..96)) {
        // Arbitrary bytes must produce Ok or a typed Err — decode is
        // panic-free by construction; this just drives the corners.
        let _ = Frame::decode(&bytes);
    }
}

#[test]
fn awkward_row_payload_lengths_roundtrip() {
    for &n in &AWKWARD_LENS {
        let rows: Vec<f32> = (0..n * 4).map(|i| i as f32 * 0.25 - 3.0).collect();
        let frame = Frame::PushRows {
            shard: 7,
            ed: 4,
            in_rows: rows.clone(),
            out_rows: rows,
        };
        let back = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(back, frame, "n = {n}");
    }
}

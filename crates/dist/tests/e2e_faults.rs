//! End-to-end fault drills for the coordinator/worker plane, all over
//! real loopback TCP:
//!
//! - fault-free distributed answers are **bitwise identical** to the
//!   single-node pass,
//! - a worker killed before a question fails over to its replica — still
//!   bit-exact,
//! - with no replica, the caller gets a *flagged* degraded answer (equal
//!   to the fold that skips the dead shard's chunks) or a typed error,
//!   never a hang or a wrong-but-clean answer,
//! - corrupted / dropped / severed responses are retried to identity,
//! - a hedged duplicate beats an injected straggler,
//! - worker health walks Live → Suspect → Dead and resurrects on probe.

use mnn_dist::{
    Coordinator, DistConfig, ForwardOpts, RpcFaultKind, RpcFaultPlan, WorkerConfig, WorkerServer,
};
use mnn_tensor::{Matrix, QuantMatrix};
use mnnfast::{
    forward_chunk_partials_budgeted, forward_chunk_quant_partials_budgeted, Budget, ColumnEngine,
    Executor, InferenceStats, MnnFastConfig, PartialFold, Scratch, SoftmaxMode, Trace,
};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const ED: usize = 8;
const CHUNK: usize = 4;
const ROWS: usize = 53; // awkward: last chunk is short, chunks don't divide the fleet

fn memories(rows: usize, ed: usize, seed: u64) -> (Matrix, Matrix, Vec<f32>) {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    let m_in = Matrix::from_fn(rows, ed, |_, _| next());
    let m_out = Matrix::from_fn(rows, ed, |_, _| next());
    let u: Vec<f32> = (0..ed).map(|_| next()).collect();
    (m_in, m_out, u)
}

fn spawn_fleet(n: usize, quant: bool) -> (Vec<WorkerServer>, Vec<SocketAddr>) {
    let workers: Vec<WorkerServer> = (0..n)
        .map(|_| {
            let mut config = WorkerConfig::new(ED, CHUNK);
            config.quant = quant;
            WorkerServer::spawn(config).expect("spawn worker")
        })
        .collect();
    let addrs = workers.iter().map(WorkerServer::addr).collect();
    (workers, addrs)
}

fn push_all(coordinator: &mut Coordinator, m_in: &Matrix, m_out: &Matrix) {
    for r in 0..m_in.rows() {
        coordinator
            .push(m_in.row(r), m_out.row(r))
            .expect("push row");
    }
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Single-node reference answer `(o, denominator)` for the same pass.
fn single_node(m_in: &Matrix, m_out: &Matrix, u: &[f32], config: MnnFastConfig) -> (Vec<f32>, f32) {
    let engine = ColumnEngine::new(config);
    let mut scratch = Scratch::new();
    let out = engine
        .forward_prefix_budgeted(
            m_in,
            m_out,
            m_in.rows(),
            u,
            &mut scratch,
            &mut Trace::disabled(),
            &Budget::unlimited(),
        )
        .expect("single-node reference");
    (out.o, out.denominator)
}

#[test]
fn fault_free_fleet_matches_single_node_bitwise() {
    let (m_in, m_out, u) = memories(ROWS, ED, 0xA11CE);
    let (_workers, addrs) = spawn_fleet(4, false);
    let mut coordinator =
        Coordinator::connect(&addrs, ED, CHUNK, false, DistConfig::default()).unwrap();
    push_all(&mut coordinator, &m_in, &m_out);
    assert_eq!(coordinator.rows(), ROWS);

    for mode in [SoftmaxMode::Lazy, SoftmaxMode::Online] {
        for fused in [false, true] {
            let config = MnnFastConfig::new(CHUNK)
                .with_softmax(mode)
                .with_fused(fused);
            let (ref_o, ref_denom) = single_node(&m_in, &m_out, &u, config);
            let opts = ForwardOpts::from_config(&config).unwrap();
            let answer = coordinator
                .forward(&u, opts, &Budget::unlimited(), false)
                .expect("distributed forward");
            assert!(!answer.degraded);
            assert!(answer.skipped_shards.is_empty());
            assert_eq!(bits(&answer.o), bits(&ref_o), "mode {mode:?} fused {fused}");
            assert_eq!(answer.denominator.to_bits(), ref_denom.to_bits());
            assert_eq!(answer.stats.rows_total, ROWS as u64);
        }
    }
    let (retries, failovers, hedges, skipped) = coordinator.counters().snapshot();
    assert_eq!((retries, failovers, hedges, skipped), (0, 0, 0, 0));
}

#[test]
fn killed_worker_fails_over_to_replica_bitwise() {
    let (m_in, m_out, u) = memories(ROWS, ED, 0xBEE);
    let (mut workers, addrs) = spawn_fleet(4, false);
    let config = DistConfig {
        replicas: 2,
        connect_timeout: Duration::from_millis(200),
        ..DistConfig::default()
    };
    let mut coordinator = Coordinator::connect(&addrs, ED, CHUNK, false, config).unwrap();
    push_all(&mut coordinator, &m_in, &m_out);

    // Kill worker 1 *after* the rows are resident — its shard must now be
    // answered by the replica on worker 2.
    workers[1].shutdown();

    let engine_config = MnnFastConfig::new(CHUNK);
    let (ref_o, ref_denom) = single_node(&m_in, &m_out, &u, engine_config);
    let opts = ForwardOpts::from_config(&engine_config).unwrap();
    let answer = coordinator
        .forward(&u, opts, &Budget::unlimited(), false)
        .expect("failover forward");
    assert!(!answer.degraded, "replica failover is not degradation");
    assert_eq!(bits(&answer.o), bits(&ref_o));
    assert_eq!(answer.denominator.to_bits(), ref_denom.to_bits());
    let (_retries, failovers, _hedges, skipped) = coordinator.counters().snapshot();
    assert!(failovers >= 1, "expected at least one failover");
    assert_eq!(skipped, 0);
}

#[test]
fn killed_worker_without_replica_degrades_with_flag() {
    let (m_in, m_out, u) = memories(ROWS, ED, 0xD0E);
    let (mut workers, addrs) = spawn_fleet(4, false);
    let config = DistConfig {
        replicas: 1,
        connect_timeout: Duration::from_millis(200),
        rpc_timeout: Duration::from_millis(500),
        max_retries: 1,
        ..DistConfig::default()
    };
    let mut coordinator = Coordinator::connect(&addrs, ED, CHUNK, false, config).unwrap();
    push_all(&mut coordinator, &m_in, &m_out);
    workers[1].shutdown();

    let engine_config = MnnFastConfig::new(CHUNK);
    let opts = ForwardOpts::from_config(&engine_config).unwrap();

    // Strict callers get a typed error, never a silently partial answer.
    let strict = coordinator.forward(&u, opts, &Budget::unlimited(), false);
    assert!(strict.is_err(), "no replica + strict must fail");

    // Degraded callers get shard 1's chunks skipped — and the answer is
    // exactly the local fold over the surviving chunks.
    let answer = coordinator
        .forward(&u, opts, &Budget::unlimited(), true)
        .expect("degraded forward");
    assert!(answer.degraded);
    assert_eq!(answer.skipped_shards, vec![1]);

    let engine = ColumnEngine::new(engine_config);
    let mut scratch = Scratch::new();
    let mut partials = Vec::new();
    forward_chunk_partials_budgeted(
        &engine,
        &m_in,
        &m_out,
        ROWS,
        &u,
        &mut scratch,
        &mut Trace::disabled(),
        &Budget::unlimited(),
        &mut partials,
    )
    .unwrap();
    let mut fold = PartialFold::new(SoftmaxMode::Lazy, ED);
    for (c, p) in partials.iter().enumerate() {
        if c % 4 != 1 {
            fold.absorb(p).unwrap();
        }
    }
    let mut ref_o = Vec::new();
    let mut stats = InferenceStats::default();
    let ref_denom = fold.finish_into(&mut ref_o, &mut stats).unwrap();
    assert_eq!(bits(&answer.o), bits(&ref_o));
    assert_eq!(answer.denominator.to_bits(), ref_denom.to_bits());
    let (_retries, _failovers, _hedges, skipped) = coordinator.counters().snapshot();
    assert!(skipped >= 1);
}

/// Drives one injected RPC fault through a single-worker fleet and
/// asserts the coordinator retries to the exact fault-free answer.
fn retried_to_identity(kind: RpcFaultKind) {
    let (m_in, m_out, u) = memories(31, ED, 0xFA17);
    let (workers, addrs) = spawn_fleet(1, false);
    let config = DistConfig {
        rpc_timeout: Duration::from_millis(250),
        connect_timeout: Duration::from_millis(200),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
        ..DistConfig::default()
    };
    let mut coordinator = Coordinator::connect(&addrs, ED, CHUNK, false, config).unwrap();
    push_all(&mut coordinator, &m_in, &m_out);

    // Arm *after* the pushes so the very next response — the Forward
    // answer — is the damaged one.
    workers[0].arm_fault(RpcFaultPlan {
        kind,
        after: 0,
        fires: 1,
    });

    let engine_config = MnnFastConfig::new(CHUNK);
    let (ref_o, ref_denom) = single_node(&m_in, &m_out, &u, engine_config);
    let opts = ForwardOpts::from_config(&engine_config).unwrap();
    let answer = coordinator
        .forward(&u, opts, &Budget::unlimited(), false)
        .unwrap_or_else(|e| panic!("{kind:?} not recovered: {e}"));
    assert!(!answer.degraded);
    assert_eq!(bits(&answer.o), bits(&ref_o), "{kind:?}");
    assert_eq!(answer.denominator.to_bits(), ref_denom.to_bits());
    assert_eq!(
        workers[0].fault_fired(),
        1,
        "{kind:?} should have fired once"
    );
    let (retries, _failovers, _hedges, skipped) = coordinator.counters().snapshot();
    assert!(retries >= 1, "{kind:?} should need a retry");
    assert_eq!(skipped, 0);
}

#[test]
fn corrupt_response_is_retried_to_identity() {
    retried_to_identity(RpcFaultKind::Corrupt);
}

#[test]
fn dropped_response_times_out_and_retries_to_identity() {
    retried_to_identity(RpcFaultKind::Drop);
}

#[test]
fn disconnect_mid_stream_reconnects_to_identity() {
    retried_to_identity(RpcFaultKind::Disconnect);
}

#[test]
fn hedged_request_beats_an_injected_straggler() {
    let (m_in, m_out, u) = memories(ROWS, ED, 0x510);
    let (workers, addrs) = spawn_fleet(2, false);
    let config = DistConfig {
        replicas: 2,
        hedge: Some(Duration::from_millis(50)),
        rpc_timeout: Duration::from_secs(2),
        connect_timeout: Duration::from_millis(200),
        ..DistConfig::default()
    };
    let mut coordinator = Coordinator::connect(&addrs, ED, CHUNK, false, config).unwrap();
    push_all(&mut coordinator, &m_in, &m_out);

    // Worker 0's next response (its Forward answer) stalls 600 ms; the
    // hedge fires at 50 ms and worker 1's replica answers instead.
    workers[0].arm_fault(RpcFaultPlan {
        kind: RpcFaultKind::Delay(Duration::from_millis(600)),
        after: 0,
        fires: 1,
    });

    let engine_config = MnnFastConfig::new(CHUNK);
    let (ref_o, ref_denom) = single_node(&m_in, &m_out, &u, engine_config);
    let opts = ForwardOpts::from_config(&engine_config).unwrap();
    let start = Instant::now();
    let answer = coordinator
        .forward(&u, opts, &Budget::unlimited(), false)
        .expect("hedged forward");
    let elapsed = start.elapsed();
    assert_eq!(bits(&answer.o), bits(&ref_o));
    assert_eq!(answer.denominator.to_bits(), ref_denom.to_bits());
    assert!(
        elapsed < Duration::from_millis(500),
        "hedge did not beat the 600 ms straggler: {elapsed:?}"
    );
    let (_retries, _failovers, hedges, _skipped) = coordinator.counters().snapshot();
    assert!(hedges >= 1, "expected a hedged duplicate");
}

#[test]
fn health_walks_suspect_to_dead_and_resurrects() {
    use mnn_dist::WorkerState;
    let (m_in, m_out, _u) = memories(16, ED, 0xCAFE);
    let (mut workers, addrs) = spawn_fleet(2, false);
    let config = DistConfig {
        dead_after: 2,
        rpc_timeout: Duration::from_millis(300),
        connect_timeout: Duration::from_millis(200),
        ..DistConfig::default()
    };
    let mut coordinator = Coordinator::connect(&addrs, ED, CHUNK, false, config).unwrap();
    push_all(&mut coordinator, &m_in, &m_out);
    assert_eq!(
        coordinator.probe(),
        vec![WorkerState::Live, WorkerState::Live]
    );

    workers[1].shutdown();
    assert_eq!(coordinator.probe()[1], WorkerState::Suspect, "first miss");
    assert_eq!(coordinator.probe()[1], WorkerState::Dead, "second miss");

    // Resurrect: rebind the same port (retry briefly — the old listener
    // may take a moment to release it) and probe back to Live.
    let addr = addrs[1].to_string();
    let mut revived = None;
    for _ in 0..50 {
        match WorkerServer::spawn_on(&addr, WorkerConfig::new(ED, CHUNK)) {
            Ok(w) => {
                revived = Some(w);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(40)),
        }
    }
    let _revived = revived.expect("rebind worker 1's port");
    assert_eq!(coordinator.probe()[1], WorkerState::Live, "resurrected");
}

#[test]
fn quant_fleet_matches_single_node_quant_bitwise() {
    let (m_in, m_out, u) = memories(ROWS, ED, 0x1D8);
    let (_workers, addrs) = spawn_fleet(2, true);
    let mut coordinator =
        Coordinator::connect(&addrs, ED, CHUNK, true, DistConfig::default()).unwrap();
    push_all(&mut coordinator, &m_in, &m_out);

    // Reference: quantize the full memories locally (quantization is
    // per-row, so shard-local mirrors are the same rows) and fold the
    // chunk partials of the int8 pass.
    let mut q_in = QuantMatrix::with_capacity(ROWS, ED);
    let mut q_out = QuantMatrix::with_capacity(ROWS, ED);
    for r in 0..ROWS {
        q_in.push_row(m_in.row(r));
        q_out.push_row(m_out.row(r));
    }
    for mode in [SoftmaxMode::Lazy, SoftmaxMode::Online] {
        let engine_config = MnnFastConfig::new(CHUNK).with_softmax(mode);
        let engine = ColumnEngine::new(engine_config);
        let mut scratch = Scratch::new();
        let mut partials = Vec::new();
        forward_chunk_quant_partials_budgeted(
            &engine,
            &q_in,
            &q_out,
            ROWS,
            &u,
            &mut scratch,
            &mut Trace::disabled(),
            &Budget::unlimited(),
            &mut partials,
        )
        .unwrap();
        let mut fold = PartialFold::new(mode, ED);
        for p in &partials {
            fold.absorb(p).unwrap();
        }
        let mut ref_o = Vec::new();
        let mut stats = InferenceStats::default();
        let ref_denom = fold.finish_into(&mut ref_o, &mut stats).unwrap();

        let mut opts = ForwardOpts::from_config(&engine_config).unwrap();
        opts.int8 = true;
        let answer = coordinator
            .forward(&u, opts, &Budget::unlimited(), false)
            .expect("int8 distributed forward");
        assert!(!answer.degraded);
        assert_eq!(bits(&answer.o), bits(&ref_o), "mode {mode:?}");
        assert_eq!(answer.denominator.to_bits(), ref_denom.to_bits());
    }
}

//! Implementation of the `mnnfast` command-line tool.
//!
//! Subcommands:
//!
//! - `train`  — train a memory network on a synthetic bAbI-style task and
//!   save it,
//! - `eval`   — evaluate a saved model on fresh stories, with and without
//!   zero-skipping,
//! - `serve`  — interactive QA: feed facts line-by-line, end a line with
//!   `?` to ask,
//! - `connect` — the same REPL against a running `mnn-serve` daemon over
//!   the network protocol,
//! - `tasks`  — list the available task families.
//!
//! The argument parser is hand-rolled (`--key value` pairs) so the tool
//! has no dependencies beyond the workspace crates; it is unit-tested
//! through [`run`], which takes the argument vector and an output sink.

use mnn_dataset::babi::{BabiGenerator, Story, TaskKind};
use mnn_dataset::babi_io;
use mnn_dataset::text;
use mnn_dataset::Vocabulary;
use mnn_memnn::train::Trainer;
use mnn_memnn::{eval as meval, MemNet, ModelConfig};
use mnn_serve::{Session, SessionConfig};
use mnnfast::{EngineKind, ExecPlan, MnnFastConfig, Precision, Scratch, SkipPolicy, Trace};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::time::Duration;

/// Exit status of a CLI invocation.
pub type CliResult = Result<(), String>;

/// Parsed `--key value` options plus positional arguments.
#[derive(Debug, Default)]
pub struct Options {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Options {
    /// Keys that are switches: present-or-absent, no value consumed.
    const SWITCHES: &'static [&'static str] = &["trace"];

    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns an error for a trailing `--key` without a value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut options = Options::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if Self::SWITCHES.contains(&key) {
                    options.flags.insert(key.to_owned(), "true".to_owned());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for --{key}"))?;
                options.flags.insert(key.to_owned(), value.clone());
            } else {
                options.positional.push(a.clone());
            }
        }
        Ok(options)
    }

    fn switch(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value '{raw}' for --{key}")),
        }
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn require_str(&self, key: &str) -> Result<&str, String> {
        self.get_str(key)
            .ok_or_else(|| format!("--{key} is required"))
    }
}

fn parse_task(name: &str) -> Result<TaskKind, String> {
    match name {
        "single" => Ok(TaskKind::SingleSupportingFact),
        "two" => Ok(TaskKind::TwoSupportingFacts),
        "yesno" => Ok(TaskKind::YesNo),
        "counting" => Ok(TaskKind::Counting),
        "negation" => Ok(TaskKind::Negation),
        "whohas" => Ok(TaskKind::WhoHas),
        "before" => Ok(TaskKind::BeforeLocation),
        other => Err(format!(
            "unknown task '{other}' (expected single|two|yesno|counting|negation|whohas|before)"
        )),
    }
}

const USAGE: &str = "\
mnnfast — memory-network question answering (MnnFast reproduction)

USAGE:
  mnnfast train  --out <model.bin> [--task single] [--stories 150]
                 [--epochs 40] [--ed 32] [--ns 10] [--hops 1] [--seed 7]
                 [--data <babi.txt>]       (train on a bAbI-format file)
  mnnfast eval   --model <model.bin> [--task single] [--stories 40]
                 [--skip 0.01] [--seed 8] [--data <babi.txt>] [--trace]
  mnnfast serve  --model <model.bin> [--window 0] [--skip 0.0]
                 [--engine auto|column|streaming|parallel] [--threads 1]
                 [--deadline-ms 0] [--batch 0] [--embed-cache 0]
                 [--segments 0] [--precision f32|int8] [--trace]
                 [--workers 0] [--replicas 0] [--hedge-ms 0]
                 [--topk 0] [--nprobe 0]
  mnnfast connect --addr <host:port> [--token default]
  mnnfast export --out <babi.txt> [--task single] [--stories 100] [--ns 10]
  mnnfast tasks

`--engine` picks the execution variant (auto selects from memory size and
thread count); `--trace` prints a per-phase time breakdown (inner product,
exp/accumulate, skip, merge, divide) after the run. `--deadline-ms` puts a
per-question deadline on serve (0 disables); questions past the deadline
fail with an error but leave the session usable, and answers recovered
from a numeric fault on the stable path are marked `[degraded]`.
`--batch N` coalesces serve questions: they queue until N are waiting
(or the session ends) and are then answered in one batched streaming pass
over the memory, printing per-batch throughput and occupancy.
`--embed-cache N` memoizes sentence/question embeddings in an N-entry
cache (0 disables); repeated sentences skip the gather-sum entirely and a
hit-rate line is printed at session end.
`--segments N` partitions the story memory into N routed segments with
zone-map (max-norm) metadata; online-softmax questions skip segments that
provably cannot affect the answer, bitwise-identically. A segment summary
line is printed at session end. When the flag is absent the
`MNNFAST_SEGMENTS` environment variable supplies the count.
`--precision int8` serves questions from a per-row symmetric int8 mirror
of the story memory (re-quantized incrementally as sentences arrive),
moving roughly a quarter of the bytes per question through exact-integer
kernels; numeric faults fall back to the f32 safe path. The session
summary reports both planes' resident bytes.
`--workers N` (N > 1) shards the story memory across N local worker
processes-worth of servers behind a fault-tolerant coordinator: answers
stay bitwise-identical to single-node serving, RPCs carry per-question
deadlines with bounded retries, and a total fleet failure falls back to
exact local execution. `--replicas R` stores each shard on R workers so
a killed worker fails over without losing exactness; `--hedge-ms M`
re-dispatches a shard to a backup replica if the primary has not
answered after M milliseconds. All three default to the
`MNNFAST_WORKERS` / `MNNFAST_REPLICAS` / `MNNFAST_HEDGE_MS` environment
variables when 0/absent. A `distributed:` summary line reports shard
count, retries, failovers, hedges, and local fallbacks.
`--topk K` (K > 0) answers questions through a clustered candidate index:
each question probes the nearest clusters and the exact kernels rescore
only the best candidate rows — sublinear in memory size, same kernels,
bitwise-exact on the rows it attends. `--nprobe P` sets the probe floor
(clusters opened per question; 0 defers to `MNNFAST_NPROBE`, default 8).
Low-confidence probes fall back to exact attention per question, reported
on the `sparse:` summary line. When `--topk` is absent the `MNNFAST_TOPK`
environment variable supplies the count; unset serves exact attention.

`connect` speaks the binary protocol to a running `mnn-serve` daemon:
facts observe, a trailing `?` asks (the server may coalesce your question
with other tenants' into one batch — the answer bits are identical
either way), `:stats` prints the server's serving and network counters,
and `:quit` disconnects. `--token` selects the tenant credential
(default `default`).

Models save a `<model>.vocab` sidecar so eval/serve decode consistently.
";

/// Runs the CLI with `args` (excluding the program name), writing output to
/// `out`. Reads `input` for the `serve` REPL.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments or I/O failure.
pub fn run(args: &[String], input: &mut dyn BufRead, out: &mut dyn Write) -> CliResult {
    let Some(command) = args.first() else {
        writeln!(out, "{USAGE}").map_err(|e| e.to_string())?;
        return Err("no subcommand given".into());
    };
    let options = Options::parse(&args[1..])?;
    match command.as_str() {
        "train" => cmd_train(&options, out),
        "eval" => cmd_eval(&options, out),
        "serve" => cmd_serve(&options, input, out),
        "connect" => cmd_connect(&options, input, out),
        "export" => cmd_export(&options, out),
        "tasks" => cmd_tasks(out),
        "help" | "--help" | "-h" => writeln!(out, "{USAGE}").map_err(|e| e.to_string()),
        other => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    }
}

fn cmd_tasks(out: &mut dyn Write) -> CliResult {
    for (name, desc) in [
        ("single", "where is <person>? (one supporting fact)"),
        ("two", "where is the <object>? (two supporting facts)"),
        ("yesno", "is <person> in the <location>?"),
        ("counting", "how many objects is <person> carrying?"),
        ("negation", "yes/no/maybe with negated facts"),
        ("whohas", "who has the <object>?"),
        ("before", "where was <person> before the <location>?"),
    ] {
        writeln!(out, "{name:>9}  {desc}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn vocab_sidecar_path(model_path: &str) -> String {
    format!("{model_path}.vocab")
}

fn write_vocab(path: &str, vocab: &Vocabulary) -> Result<(), String> {
    let mut text = String::new();
    for (_, word) in vocab.iter() {
        text.push_str(word);
        text.push('\n');
    }
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
}

fn read_vocab(path: &str) -> Result<Vocabulary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(text.lines().map(str::to_owned).collect())
}

/// Loads a bAbI-format file, interning into `vocab`; verifies the result
/// stays within `max_token` when given (eval against a fixed model).
fn load_babi_file(
    path: &str,
    vocab: &mut Vocabulary,
    max_token: Option<usize>,
) -> Result<Vec<Story>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    let stories = babi_io::read_stories(&mut reader, vocab).map_err(|e| e.to_string())?;
    if let Some(limit) = max_token {
        if vocab.len() > limit {
            return Err(format!(
                "{path} contains {} distinct words but the model supports {limit}",
                vocab.len()
            ));
        }
    }
    Ok(stories)
}

fn cmd_export(options: &Options, out: &mut dyn Write) -> CliResult {
    let task = parse_task(options.get_str("task").unwrap_or("single"))?;
    let path = options.require_str("out")?;
    let stories = options.get("stories", 100usize)?;
    let ns = options.get("ns", 10usize)?;
    let seed = options.get("seed", 7u64)?;
    let mut generator = BabiGenerator::new(task, seed);
    let data = generator.dataset(stories, ns, 3);
    let mut buf = Vec::new();
    babi_io::write_stories(&data, generator.vocab(), &mut buf)?;
    std::fs::write(path, &buf).map_err(|e| format!("writing {path}: {e}"))?;
    writeln!(
        out,
        "exported {stories} {task:?} stories ({} bytes) to {path}",
        buf.len()
    )
    .map_err(|e| e.to_string())
}

fn cmd_train(options: &Options, out: &mut dyn Write) -> CliResult {
    let task = parse_task(options.get_str("task").unwrap_or("single"))?;
    let path = options.require_str("out")?;
    let stories = options.get("stories", 150usize)?;
    let epochs = options.get("epochs", 40usize)?;
    let ed = options.get("ed", 32usize)?;
    let ns = options.get("ns", 10usize)?;
    let hops = options.get("hops", 1usize)?;
    let seed = options.get("seed", 7u64)?;

    let mut generator = BabiGenerator::new(task, seed);
    let (train_set, vocab, max_ns) = match options.get_str("data") {
        Some(path) => {
            let mut vocab = Vocabulary::new();
            let stories = load_babi_file(path, &mut vocab, None)?;
            if stories.is_empty() {
                return Err(format!("{path} contains no stories"));
            }
            let max_ns = stories.iter().map(|s| s.sentences.len()).max().unwrap_or(1);
            (stories, vocab, max_ns)
        }
        None => (
            generator.dataset(stories, ns, 3),
            generator.vocab().clone(),
            ns,
        ),
    };
    // Serving-compatible model: position encoding instead of temporal.
    let config = ModelConfig {
        vocab_size: vocab.len(),
        embedding_dim: ed,
        max_sentences: max_ns,
        hops: 1,
        temporal: false,
        position_encoding: true,
    }
    .with_hops(hops);
    let mut model = MemNet::new(config, seed ^ 0x5eed);
    let report = Trainer::new()
        .epochs(epochs)
        .momentum(0.5)
        .train(&mut model, &train_set);

    let bytes = model.to_bytes().map_err(|e| e.to_string())?;
    std::fs::write(path, &bytes).map_err(|e| format!("writing {path}: {e}"))?;
    write_vocab(&vocab_sidecar_path(path), &vocab)?;
    writeln!(
        out,
        "trained {task:?}: {} parameters, train accuracy {:.1}%, saved to {path} ({} bytes)",
        model.num_parameters(),
        report.train_accuracy * 100.0,
        bytes.len()
    )
    .map_err(|e| e.to_string())
}

fn load_model(options: &Options) -> Result<MemNet, String> {
    let path = options.require_str("model")?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    MemNet::from_bytes(&bytes).map_err(|e| e.to_string())
}

fn cmd_eval(options: &Options, out: &mut dyn Write) -> CliResult {
    let task = parse_task(options.get_str("task").unwrap_or("single"))?;
    let stories = options.get("stories", 40usize)?;
    let skip = options.get("skip", 0.01f32)?;
    let seed = options.get("seed", 8u64)?;
    let model = load_model(options)?;
    let ns = model.config().max_sentences;

    let mut generator = BabiGenerator::new(task, seed);
    let test_set = match options.get_str("data") {
        Some(path) => {
            let model_path = options.require_str("model")?;
            let mut vocab = read_vocab(&vocab_sidecar_path(model_path))?;
            load_babi_file(path, &mut vocab, Some(model.config().vocab_size))?
        }
        None => generator.dataset(stories, ns, 3),
    };
    let baseline = meval::accuracy(&model, &test_set);

    let engine = mnnfast::ColumnEngine::new(
        MnnFastConfig::new(ns.max(1)).with_skip(SkipPolicy::Probability(skip)),
    );
    let hops = model.config().hops;
    let mut stats = mnnfast::InferenceStats::default();
    let mut scratch = Scratch::new();
    let mut trace = if options.switch("trace") {
        Trace::enabled()
    } else {
        Trace::disabled()
    };
    let skipped = meval::accuracy_with(&model, &test_set, |emb, q| {
        let outp = mnnfast::multi_hop(
            &engine,
            &emb.m_in,
            &emb.m_out,
            emb.m_in.rows(),
            &emb.questions[q],
            hops,
            &mut scratch,
            &mut trace,
        )
        .expect("embedded shapes are consistent");
        stats.merge(&outp.stats);
        let logits = model.output_logits(&outp.o, &outp.u_last);
        scratch.recycle(outp.o);
        logits
    });
    writeln!(
        out,
        "baseline accuracy {:.1}% | MnnFast (skip {skip}) accuracy {:.1}%, output computation cut {:.1}%",
        baseline * 100.0,
        skipped * 100.0,
        stats.computation_reduction() * 100.0
    )
    .map_err(|e| e.to_string())?;
    if trace.is_enabled() {
        write!(out, "{}", trace.render()).map_err(|e| e.to_string())?;
    }

    // Per-answer breakdown, decoded through the generator's vocabulary.
    let vocab = generator.vocab();
    let breakdown = meval::answer_breakdown(&model, &test_set);
    for (word, total, correct) in breakdown.per_answer.iter().take(8) {
        writeln!(
            out,
            "  {:>10}: {correct}/{total}",
            vocab.word(*word).unwrap_or("<?>")
        )
        .map_err(|e| e.to_string())?;
    }
    for (expected, predicted, count) in breakdown.confusions.iter().take(3) {
        writeln!(
            out,
            "  confusion: expected {} got {} ({count}x)",
            vocab.word(*expected).unwrap_or("<?>"),
            vocab.word(*predicted).unwrap_or("<?>")
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Answers a queued batch of serve questions in one batched pass, printing
/// each answer plus the batch's throughput and occupancy.
fn flush_questions(
    session: &mut Session,
    vocab: &Vocabulary,
    queued: &mut Vec<String>,
    batch: usize,
    out: &mut dyn Write,
) -> CliResult {
    if queued.is_empty() {
        return Ok(());
    }
    let n = queued.len();
    let t0 = std::time::Instant::now();
    let answers = session
        .ask_many_text(queued, vocab)
        .map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed().as_secs_f64();
    for (question, result) in queued.iter().zip(&answers) {
        match result {
            Ok((word, answer)) => writeln!(
                out,
                "-> {question}? {word} (p={:.2}, {} of {} rows skipped){}",
                answer.probability,
                answer.stats.rows_skipped,
                answer.stats.rows_total,
                if answer.degraded { " [degraded]" } else { "" }
            )
            .map_err(|e| e.to_string())?,
            Err(e) => writeln!(out, "!! {question}? {e}").map_err(|e| e.to_string())?,
        }
    }
    writeln!(
        out,
        "batch: {n} questions in {:.2} ms ({:.0} q/s, occupancy {n}/{batch})",
        elapsed * 1e3,
        n as f64 / elapsed.max(1e-9)
    )
    .map_err(|e| e.to_string())?;
    queued.clear();
    Ok(())
}

fn cmd_serve(options: &Options, input: &mut dyn BufRead, out: &mut dyn Write) -> CliResult {
    let model = load_model(options)?;
    let window = options.get("window", 0usize)?;
    let skip = options.get("skip", 0.0f32)?;
    // Prefer the model's vocabulary sidecar; fall back to the generator's.
    let vocab = match options
        .get_str("model")
        .map(vocab_sidecar_path)
        .filter(|p| std::path::Path::new(p).exists())
    {
        Some(path) => read_vocab(&path)?,
        None => BabiGenerator::new(TaskKind::SingleSupportingFact, 0)
            .vocab()
            .clone(),
    };

    let kind = match options.get_str("engine") {
        None => EngineKind::Auto,
        Some(name) => EngineKind::parse(name).ok_or_else(|| {
            format!("unknown engine '{name}' (expected auto|column|streaming|parallel)")
        })?,
    };
    let threads = options.get("threads", 1usize)?;
    let deadline_ms = options.get("deadline-ms", 0u64)?;
    let embed_cache = options.get("embed-cache", 0usize)?;
    // 0 = defer to MNNFAST_SEGMENTS (the session's env fallback).
    let segments = options.get("segments", 0usize)?;
    let precision = match options.get_str("precision").unwrap_or("f32") {
        "f32" => Precision::F32,
        "int8" => Precision::Int8,
        other => return Err(format!("unknown precision '{other}' (expected f32|int8)")),
    };
    // 0 = defer to MNNFAST_WORKERS / MNNFAST_REPLICAS / MNNFAST_HEDGE_MS.
    let workers = options.get("workers", 0usize)?;
    let replicas = options.get("replicas", 0usize)?;
    let hedge_ms = options.get("hedge-ms", 0u64)?;
    // 0 = defer to MNNFAST_TOPK / MNNFAST_NPROBE.
    let topk = options.get("topk", 0usize)?;
    let nprobe = options.get("nprobe", 0usize)?;
    let config = SessionConfig {
        plan: ExecPlan::new(MnnFastConfig::new(64).with_threads(threads).with_skip(
            if skip > 0.0 {
                SkipPolicy::Probability(skip)
            } else {
                SkipPolicy::None
            },
        ))
        .with_kind(kind),
        max_sentences: (window > 0).then_some(window),
        deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        trace: options.switch("trace"),
        embed_cache: (embed_cache > 0).then_some(embed_cache),
        segments,
        precision,
        workers,
        replicas,
        hedge: (hedge_ms > 0).then(|| Duration::from_millis(hedge_ms)),
        topk,
        nprobe,
        ..SessionConfig::default()
    };
    let batch = options.get("batch", 0usize)?;
    let mut session = Session::new(model, config).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "serving; type facts, end a line with '?' to ask, ':quit' to exit"
    )
    .map_err(|e| e.to_string())?;

    let mut queued: Vec<String> = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == ":quit" {
            break;
        }
        if let Some(question) = trimmed.strip_suffix('?') {
            if batch > 1 {
                queued.push(question.to_owned());
                if queued.len() >= batch {
                    flush_questions(&mut session, &vocab, &mut queued, batch, out)?;
                } else {
                    writeln!(out, "   queued ({}/{batch})", queued.len())
                        .map_err(|e| e.to_string())?;
                }
                continue;
            }
            match session.ask_text(question, &vocab) {
                Ok((word, answer)) => writeln!(
                    out,
                    "-> {word} (p={:.2}, {} of {} rows skipped){}",
                    answer.probability,
                    answer.stats.rows_skipped,
                    answer.stats.rows_total,
                    if answer.degraded { " [degraded]" } else { "" }
                )
                .map_err(|e| e.to_string())?,
                Err(e) => writeln!(out, "!! {e}").map_err(|e| e.to_string())?,
            }
        } else {
            match session.observe_text(trimmed, &vocab) {
                Ok(_) => writeln!(out, "   noted ({} sentences)", session.memory_len())
                    .map_err(|e| e.to_string())?,
                Err(e) => writeln!(out, "!! {e}").map_err(|e| e.to_string())?,
            }
        }
    }
    // A partially filled batch still answers on exit.
    flush_questions(&mut session, &vocab, &mut queued, batch.max(1), out)?;
    writeln!(
        out,
        "session: {} questions answered, {:.1}% of output computation skipped",
        session.questions_answered(),
        session.cumulative_stats().computation_reduction() * 100.0
    )
    .map_err(|e| e.to_string())?;
    match session.precision() {
        Precision::Int8 => writeln!(
            out,
            "memory: {} sentences, int8 mirror {} bytes resident (f32 plane {} bytes), {} bytes moved by questions",
            session.memory_len(),
            session.quant_resident_bytes(),
            session.memory_resident_bytes(),
            session.cumulative_stats().memory_bytes
        ),
        Precision::F32 => writeln!(
            out,
            "memory: {} sentences, f32 plane {} bytes resident, {} bytes moved by questions",
            session.memory_len(),
            session.memory_resident_bytes(),
            session.cumulative_stats().memory_bytes
        ),
    }
    .map_err(|e| e.to_string())?;
    if session.segments() > 1 {
        let s = session.cumulative_stats();
        writeln!(
            out,
            "segments: {} routed, {} considered, {} pruned ({} rows skipped by zone map)",
            session.segments(),
            s.segments_total,
            s.segments_pruned,
            s.rows_pruned
        )
        .map_err(|e| e.to_string())?;
    }
    let health = session.degradation_stats();
    if session.topk() > 0 {
        let s = session.cumulative_stats();
        writeln!(
            out,
            "sparse: top-{} (probe floor {}), {} clusters probed, {} rows rescored, \
             {} rows skipped by index, {} exact fallbacks",
            session.topk(),
            session.nprobe(),
            s.index_probes,
            s.candidates_scored,
            s.rows_skipped_by_index,
            health.sparse_fallbacks
        )
        .map_err(|e| e.to_string())?;
    }
    if session.dist_shards() > 0 || health.dist_fallbacks > 0 {
        writeln!(
            out,
            "distributed: {} shards, {} retries, {} failovers, {} hedges, {} local fallbacks",
            session.dist_shards(),
            health.dist_retries,
            health.dist_failovers,
            health.dist_hedges,
            health.dist_fallbacks
        )
        .map_err(|e| e.to_string())?;
    }
    if health.deadline_misses + health.numeric_faults > 0 {
        writeln!(
            out,
            "health: {} deadline misses, {} numeric faults, {} degraded answers{}",
            health.deadline_misses,
            health.numeric_faults,
            health.degraded_answers,
            if health.pinned_safe {
                " (pinned to safe path)"
            } else {
                ""
            }
        )
        .map_err(|e| e.to_string())?;
    }
    if let Some(cache) = session.embed_cache_stats() {
        writeln!(
            out,
            "embed cache: {} hits, {} misses ({:.1}% hit rate), {} evictions",
            cache.hits,
            cache.misses,
            cache.hit_ratio() * 100.0,
            cache.evictions
        )
        .map_err(|e| e.to_string())?;
    }
    if config.trace {
        write!(out, "{}", session.cumulative_trace().render()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Renders a server stats snapshot: the serving counters first, then the
/// network plane (connections, frames, coalescing histogram, sheds).
fn write_net_stats(out: &mut dyn Write, s: &mnn_net::NetStatsWire) -> CliResult {
    writeln!(
        out,
        "server: {} tenants, {} sentences, {} questions answered, {} shed, {} pending",
        s.tenants, s.total_sentences, s.questions_answered, s.shed_questions, s.pending_questions
    )
    .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "batching: {} batches dispatched, {} questions coalesced, max occupancy {}",
        s.batches_dispatched, s.batched_questions, s.max_batch_occupancy
    )
    .map_err(|e| e.to_string())?;
    let mut histogram = String::new();
    for (i, count) in s.batch_occupancy.iter().enumerate() {
        if !histogram.is_empty() {
            histogram.push(' ');
        }
        match mnn_serve::OCCUPANCY_BOUNDS.get(i) {
            Some(bound) => histogram.push_str(&format!("\u{2264}{bound}:{count}")),
            None => histogram.push_str(&format!(
                ">{}:{count}",
                mnn_serve::OCCUPANCY_BOUNDS[mnn_serve::OCCUPANCY_BOUNDS.len() - 1]
            )),
        }
    }
    writeln!(out, "occupancy: {histogram}").map_err(|e| e.to_string())?;
    writeln!(
        out,
        "network: {} connections accepted ({} active), {} frames in, {} frames out",
        s.net_connections_accepted, s.net_connections_active, s.net_frames_in, s.net_frames_out
    )
    .map_err(|e| e.to_string())?;
    if !s.sheds_by_tenant.is_empty() {
        let detail: Vec<String> = s
            .sheds_by_tenant
            .iter()
            .map(|(tenant, n)| format!("{tenant}={n}"))
            .collect();
        writeln!(out, "sheds by tenant: {}", detail.join(" ")).map_err(|e| e.to_string())?;
    }
    if s.deadline_misses + s.degraded_answers > 0 {
        writeln!(
            out,
            "health: {} deadline misses, {} degraded answers",
            s.deadline_misses, s.degraded_answers
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn cmd_connect(options: &Options, input: &mut dyn BufRead, out: &mut dyn Write) -> CliResult {
    let raw_addr = options.require_str("addr")?;
    let addr: std::net::SocketAddr = raw_addr
        .parse()
        .map_err(|_| format!("invalid --addr '{raw_addr}'"))?;
    let token = options.get_str("token").unwrap_or("default");
    let (mut client, tenant) =
        mnn_net::NetClient::connect(addr, token).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "connected to {addr} as tenant '{tenant}'; type facts, end a line with '?' to ask, \
         ':stats' for counters, ':quit' to exit"
    )
    .map_err(|e| e.to_string())?;

    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == ":quit" {
            break;
        }
        if trimmed == ":stats" {
            let stats = client.stats().map_err(|e| e.to_string())?;
            write_net_stats(out, &stats)?;
            continue;
        }
        if let Some(question) = trimmed.strip_suffix('?') {
            match client.ask(question.trim_end()).map_err(|e| e.to_string())? {
                mnn_net::Response::Answer(a) => writeln!(
                    out,
                    "-> {} (p={:.2}){}",
                    a.text,
                    a.probability,
                    if a.degraded { " [degraded]" } else { "" }
                )
                .map_err(|e| e.to_string())?,
                mnn_net::Response::Overloaded { retry_after_ms, .. } => {
                    writeln!(out, "!! overloaded, retry after {retry_after_ms}ms")
                        .map_err(|e| e.to_string())?
                }
                mnn_net::Response::Rejected { code, message, .. } => {
                    writeln!(out, "!! {code:?}: {message}").map_err(|e| e.to_string())?
                }
                mnn_net::Response::Observed { .. } => {
                    writeln!(out, "!! unexpected observe-ack").map_err(|e| e.to_string())?
                }
            }
        } else {
            match client.observe(trimmed) {
                Ok(sentences) => {
                    writeln!(out, "   noted ({sentences} sentences)").map_err(|e| e.to_string())?
                }
                Err(e) => writeln!(out, "!! {e}").map_err(|e| e.to_string())?,
            }
        }
    }
    let stats = client.stats().map_err(|e| e.to_string())?;
    write_net_stats(out, &stats)?;
    Ok(())
}

/// Decodes text to make rustdoc examples concise.
#[doc(hidden)]
pub fn encode_for_tests(s: &str, vocab: &mnn_dataset::Vocabulary) -> Vec<u32> {
    text::encode(s, vocab).expect("known words")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run_cli(args: &[&str], stdin: &str) -> Result<String, String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut input = Cursor::new(stdin.as_bytes().to_vec());
        let mut out = Vec::new();
        run(&args, &mut input, &mut out).map(|()| String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn option_parsing() {
        let options = Options::parse(&[
            "--task".into(),
            "single".into(),
            "pos".into(),
            "--epochs".into(),
            "3".into(),
        ])
        .unwrap();
        assert_eq!(options.get_str("task"), Some("single"));
        assert_eq!(options.get("epochs", 0usize).unwrap(), 3);
        assert_eq!(options.get("missing", 9usize).unwrap(), 9);
        assert_eq!(options.positional, vec!["pos".to_string()]);
        assert!(Options::parse(&["--dangling".into()]).is_err());
        assert!(options.get::<usize>("task", 0).is_err());
    }

    #[test]
    fn tasks_lists_all_families() {
        let out = run_cli(&["tasks"], "").unwrap();
        for name in [
            "single", "two", "yesno", "counting", "negation", "whohas", "before",
        ] {
            assert!(out.contains(name), "missing {name} in {out}");
        }
    }

    #[test]
    fn unknown_subcommand_and_missing_args_error() {
        assert!(run_cli(&["frobnicate"], "").is_err());
        assert!(run_cli(&[], "").is_err());
        assert!(run_cli(&["train"], "").is_err(), "--out is required");
        assert!(run_cli(&["eval"], "").is_err(), "--model is required");
        let err = run_cli(&["train", "--out", "/tmp/x.bin", "--task", "bogus"], "");
        assert!(err.unwrap_err().contains("unknown task"));
    }

    #[test]
    fn train_eval_serve_round_trip() {
        let dir = std::env::temp_dir().join("mnnfast-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.bin");
        let model_str = model_path.to_str().unwrap();

        let out = run_cli(
            &[
                "train",
                "--out",
                model_str,
                "--stories",
                "80",
                "--epochs",
                "25",
                "--ed",
                "24",
                "--ns",
                "8",
            ],
            "",
        )
        .unwrap();
        assert!(out.contains("saved to"), "{out}");

        let out = run_cli(&["eval", "--model", model_str, "--stories", "10"], "").unwrap();
        assert!(out.contains("baseline accuracy"), "{out}");

        let stdin = "mary went to the kitchen\n\
                     john moved to the garden\n\
                     where is mary?\n\
                     :quit\n";
        let out = run_cli(&["serve", "--model", model_str], stdin).unwrap();
        assert!(out.contains("noted (2 sentences)"), "{out}");
        assert!(out.contains("-> "), "{out}");
        assert!(out.contains("1 questions answered"), "{out}");
    }

    #[test]
    fn connect_repl_drives_a_live_server() {
        let mut generator = BabiGenerator::new(TaskKind::SingleSupportingFact, 11);
        let train_set = generator.dataset(60, 8, 3);
        let config = ModelConfig {
            temporal: false,
            position_encoding: true,
            ..ModelConfig::for_generator(&generator, 16, 8)
        };
        let mut model = MemNet::new(config, 5);
        Trainer::new()
            .epochs(20)
            .momentum(0.5)
            .train(&mut model, &train_set);
        let server = mnn_net::NetServer::spawn(
            model,
            generator.vocab().clone(),
            SessionConfig {
                max_sentences: Some(8),
                ..SessionConfig::default()
            },
            mnn_net::ServerConfig::default(),
        )
        .unwrap();
        let addr = server.addr().to_string();

        let stdin = "mary went to the kitchen\n\
                     john moved to the garden\n\
                     where is mary?\n\
                     :stats\n\
                     :quit\n";
        let out = run_cli(&["connect", "--addr", &addr], stdin).unwrap();
        assert!(out.contains("as tenant 'default'"), "{out}");
        assert!(out.contains("noted (2 sentences)"), "{out}");
        assert!(out.contains("-> "), "{out}");
        // The network counters surface in the stats summary.
        assert!(out.contains("network: "), "{out}");
        assert!(out.contains("connections accepted"), "{out}");
        assert!(out.contains("occupancy: "), "{out}");
        assert!(out.contains("1 questions answered"), "{out}");

        assert!(
            run_cli(&["connect", "--addr", &addr, "--token", "wrong"], "").is_err(),
            "a bad token must be rejected"
        );
        server.shutdown();
    }

    #[test]
    fn export_train_eval_on_babi_files() {
        let dir = std::env::temp_dir().join("mnnfast-cli-data");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("train.txt");
        let data_str = data.to_str().unwrap();
        let model_path = dir.join("file-model.bin");
        let model_str = model_path.to_str().unwrap();

        let out = run_cli(
            &["export", "--out", data_str, "--stories", "40", "--ns", "8"],
            "",
        )
        .unwrap();
        assert!(out.contains("exported 40"), "{out}");

        let out = run_cli(
            &[
                "train", "--out", model_str, "--data", data_str, "--epochs", "20", "--ed", "24",
            ],
            "",
        )
        .unwrap();
        assert!(out.contains("saved to"), "{out}");
        assert!(std::path::Path::new(&format!("{model_str}.vocab")).exists());

        // Evaluate the trained model against the same file.
        let out = run_cli(&["eval", "--model", model_str, "--data", data_str], "").unwrap();
        assert!(out.contains("baseline accuracy"), "{out}");
        // Training-file eval should be well above chance.
        let acc: f32 = out
            .split("baseline accuracy ")
            .nth(1)
            .unwrap()
            .split('%')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(acc > 40.0, "file-trained accuracy {acc}");
    }

    #[test]
    fn trace_flag_prints_phase_breakdown() {
        let dir = std::env::temp_dir().join("mnnfast-cli-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.bin");
        let model_str = model_path.to_str().unwrap();
        run_cli(
            &[
                "train",
                "--out",
                model_str,
                "--stories",
                "5",
                "--epochs",
                "1",
                "--ns",
                "6",
            ],
            "",
        )
        .unwrap();

        let stdin = "mary went to the kitchen\nwhere is mary?\n:quit\n";
        let out = run_cli(
            &[
                "serve", "--model", model_str, "--engine", "column", "--trace",
            ],
            stdin,
        )
        .unwrap();
        for label in [
            "inner_product",
            "exp_accumulate",
            "skip",
            "merge",
            "divide",
            "total",
        ] {
            assert!(out.contains(label), "missing {label} in {out}");
        }

        // Without the switch no breakdown is printed.
        let out = run_cli(&["serve", "--model", model_str], stdin).unwrap();
        assert!(!out.contains("inner_product"), "{out}");

        let out = run_cli(
            &["eval", "--model", model_str, "--stories", "4", "--trace"],
            "",
        )
        .unwrap();
        assert!(out.contains("inner_product"), "{out}");

        // Bad engine names error instead of silently defaulting.
        assert!(run_cli(&["serve", "--model", model_str, "--engine", "warp"], stdin).is_err());
    }

    #[test]
    fn serve_segments_flag_prints_segment_summary() {
        let dir = std::env::temp_dir().join("mnnfast-cli-segments");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.bin");
        let model_str = model_path.to_str().unwrap();
        run_cli(
            &[
                "train",
                "--out",
                model_str,
                "--stories",
                "5",
                "--epochs",
                "1",
                "--ns",
                "6",
            ],
            "",
        )
        .unwrap();

        let stdin = "mary went to the kitchen\n\
                     john went to the garden\n\
                     where is mary?\n:quit\n";
        let out = run_cli(&["serve", "--model", model_str, "--segments", "4"], stdin).unwrap();
        assert!(out.contains("segments: 4 routed"), "{out}");
        assert!(out.contains("pruned"), "{out}");

        // Unsegmented sessions stay quiet about segments.
        let out = run_cli(&["serve", "--model", model_str], stdin).unwrap();
        assert!(!out.contains("segments:"), "{out}");
    }

    #[test]
    fn serve_workers_flag_prints_distributed_summary() {
        let dir = std::env::temp_dir().join("mnnfast-cli-workers");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.bin");
        let model_str = model_path.to_str().unwrap();
        run_cli(
            &[
                "train",
                "--out",
                model_str,
                "--stories",
                "5",
                "--epochs",
                "1",
                "--ns",
                "6",
            ],
            "",
        )
        .unwrap();

        let stdin = "mary went to the kitchen\n\
                     john went to the garden\n\
                     where is mary?\n:quit\n";
        let out = run_cli(
            &[
                "serve",
                "--model",
                model_str,
                "--engine",
                "column",
                "--workers",
                "2",
                "--replicas",
                "2",
            ],
            stdin,
        )
        .unwrap();
        assert!(out.contains("distributed: 2 shards"), "{out}");
        assert!(out.contains("-> "), "{out}");

        // Local sessions stay quiet about the fleet; worker sharding and
        // segment routing cannot be combined.
        let out = run_cli(&["serve", "--model", model_str], stdin).unwrap();
        assert!(!out.contains("distributed:"), "{out}");
        assert!(run_cli(
            &[
                "serve",
                "--model",
                model_str,
                "--workers",
                "2",
                "--segments",
                "4",
            ],
            stdin,
        )
        .is_err());
    }

    #[test]
    fn serve_topk_flag_prints_sparse_summary() {
        let dir = std::env::temp_dir().join("mnnfast-cli-topk");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.bin");
        let model_str = model_path.to_str().unwrap();
        run_cli(
            &[
                "train",
                "--out",
                model_str,
                "--stories",
                "5",
                "--epochs",
                "1",
                "--ns",
                "6",
            ],
            "",
        )
        .unwrap();

        let stdin = "mary went to the kitchen\n\
                     john went to the garden\n\
                     sandra went to the office\n\
                     daniel went to the bathroom\n\
                     where is mary?\n:quit\n";
        let out = run_cli(
            &[
                "serve", "--model", model_str, "--topk", "2", "--nprobe", "1",
            ],
            stdin,
        )
        .unwrap();
        assert!(out.contains("sparse: top-2 (probe floor 1)"), "{out}");

        // Exact sessions stay quiet about the index; top-K and segment
        // routing cannot be combined.
        let out = run_cli(&["serve", "--model", model_str], stdin).unwrap();
        assert!(!out.contains("sparse:"), "{out}");
        assert!(run_cli(
            &[
                "serve",
                "--model",
                model_str,
                "--topk",
                "2",
                "--segments",
                "4"
            ],
            stdin,
        )
        .is_err());
    }

    #[test]
    fn serve_precision_flag_serves_int8() {
        let dir = std::env::temp_dir().join("mnnfast-cli-precision");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.bin");
        let model_str = model_path.to_str().unwrap();
        run_cli(
            &[
                "train",
                "--out",
                model_str,
                "--stories",
                "5",
                "--epochs",
                "1",
                "--ns",
                "6",
            ],
            "",
        )
        .unwrap();

        let stdin = "mary went to the kitchen\n\
                     john went to the garden\n\
                     where is mary?\n:quit\n";
        let out = run_cli(
            &["serve", "--model", model_str, "--precision", "int8"],
            stdin,
        )
        .unwrap();
        assert!(out.contains("-> "), "{out}");
        assert!(out.contains("int8 mirror"), "{out}");

        // Default f32 sessions report only the f32 plane.
        let out = run_cli(&["serve", "--model", model_str], stdin).unwrap();
        assert!(out.contains("f32 plane"), "{out}");
        assert!(!out.contains("int8 mirror"), "{out}");

        // Bad precision names error instead of silently defaulting.
        let err = run_cli(
            &["serve", "--model", model_str, "--precision", "fp4"],
            stdin,
        );
        assert!(err.unwrap_err().contains("unknown precision"));
    }

    #[test]
    fn serve_accepts_deadline_flag() {
        let dir = std::env::temp_dir().join("mnnfast-cli-deadline");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.bin");
        let model_str = model_path.to_str().unwrap();
        run_cli(
            &[
                "train",
                "--out",
                model_str,
                "--stories",
                "5",
                "--epochs",
                "1",
                "--ns",
                "6",
            ],
            "",
        )
        .unwrap();

        // A generous deadline answers normally and prints no health line.
        let stdin = "mary went to the kitchen\nwhere is mary?\n:quit\n";
        let out = run_cli(
            &["serve", "--model", model_str, "--deadline-ms", "60000"],
            stdin,
        )
        .unwrap();
        assert!(out.contains("-> "), "{out}");
        assert!(!out.contains("health:"), "{out}");

        // Bad values error instead of silently disabling the deadline.
        let err = run_cli(
            &["serve", "--model", model_str, "--deadline-ms", "soon"],
            stdin,
        );
        assert!(err.unwrap_err().contains("deadline-ms"));
    }

    #[test]
    fn serve_accepts_embed_cache_flag() {
        let dir = std::env::temp_dir().join("mnnfast-cli-embed-cache");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.bin");
        let model_str = model_path.to_str().unwrap();
        run_cli(
            &[
                "train",
                "--out",
                model_str,
                "--stories",
                "5",
                "--epochs",
                "1",
                "--ns",
                "6",
            ],
            "",
        )
        .unwrap();

        // The repeated sentence hits the cache; the summary line says so.
        let stdin = "mary went to the kitchen\nmary went to the kitchen\nwhere is mary?\n:quit\n";
        let out = run_cli(
            &["serve", "--model", model_str, "--embed-cache", "64"],
            stdin,
        )
        .unwrap();
        assert!(out.contains("embed cache:"), "{out}");
        assert!(out.contains("1 hits"), "{out}");

        // Disabled (the default): no cache line.
        let out = run_cli(&["serve", "--model", model_str], stdin).unwrap();
        assert!(!out.contains("embed cache:"), "{out}");

        // Bad values error instead of silently disabling the cache.
        let err = run_cli(
            &["serve", "--model", model_str, "--embed-cache", "lots"],
            stdin,
        );
        assert!(err.unwrap_err().contains("embed-cache"));
    }

    #[test]
    fn serve_batch_mode_coalesces_questions() {
        let dir = std::env::temp_dir().join("mnnfast-cli-batch");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.bin");
        let model_str = model_path.to_str().unwrap();
        run_cli(
            &[
                "train",
                "--out",
                model_str,
                "--stories",
                "5",
                "--epochs",
                "1",
                "--ns",
                "6",
            ],
            "",
        )
        .unwrap();

        let stdin = "mary went to the kitchen\n\
                     john moved to the garden\n\
                     where is mary?\n\
                     where is john?\n\
                     where is mary?\n\
                     :quit\n";
        let out = run_cli(
            &["serve", "--model", model_str, "--batch", "2", "--trace"],
            stdin,
        )
        .unwrap();
        // The first question queues, the second fills and flushes the
        // batch, the third flushes alone at :quit.
        assert!(out.contains("queued (1/2)"), "{out}");
        assert_eq!(out.matches("batch: ").count(), 2, "{out}");
        assert!(out.contains("batch: 2 questions"), "{out}");
        assert!(out.contains("batch: 1 questions"), "{out}");
        assert!(out.contains("occupancy 2/2"), "{out}");
        assert_eq!(out.matches("-> ").count(), 3, "{out}");
        assert!(out.contains("3 questions answered"), "{out}");
        // Batched questions run the batch_gemm phase, visible in --trace.
        assert!(out.contains("batch_gemm"), "{out}");

        // Unknown words fail their own slot, not the whole batch.
        let stdin = "mary went to the kitchen\n\
                     where is xyzzy?\n\
                     where is mary?\n\
                     :quit\n";
        let out = run_cli(&["serve", "--model", model_str, "--batch", "2"], stdin).unwrap();
        assert!(out.contains("!! where is xyzzy?"), "{out}");
        assert_eq!(out.matches("-> ").count(), 1, "{out}");
    }

    #[test]
    fn serve_reports_unknown_words_gracefully() {
        let dir = std::env::temp_dir().join("mnnfast-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.bin");
        let model_str = model_path.to_str().unwrap();
        run_cli(
            &[
                "train",
                "--out",
                model_str,
                "--stories",
                "5",
                "--epochs",
                "1",
                "--ns",
                "6",
            ],
            "",
        )
        .unwrap();
        let out = run_cli(&["serve", "--model", model_str], "zorp blarg\n:quit\n").unwrap();
        assert!(out.contains("!!"), "{out}");
    }
}

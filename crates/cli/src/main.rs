//! `mnnfast` — train, evaluate, and serve memory-network QA models.

use std::io::{self, BufRead, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdin = io::stdin();
    let mut input: Box<dyn BufRead> = Box::new(stdin.lock());
    let stdout = io::stdout();
    let mut out = stdout.lock();
    match mnnfast_cli::run(&args, &mut input, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            let _ = writeln!(io::stderr(), "error: {message}");
            ExitCode::FAILURE
        }
    }
}

//! FPGA resource estimation: does a design configuration fit the device?
//!
//! The paper scales the FPGA network down "due to the lack of available
//! logic cells" (Section 5.1, Table 1). This module makes that constraint
//! explicit: per-unit resource costs for the Fig 8 pipeline (MAC lanes,
//! exponential/divider units, chunk buffers, embedding cache) are summed
//! and checked against the device's DSP slices and BRAM — so the Table 1
//! FPGA configuration demonstrably fits the Zynq-7020 while the CPU-sized
//! configuration demonstrably does not.

use crate::fpga::{FpgaConfig, FpgaWorkload};

/// An FPGA device's relevant resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Human-readable name.
    pub name: &'static str,
    /// DSP48 slices.
    pub dsp_slices: u64,
    /// Block RAM capacity in bits.
    pub bram_bits: u64,
    /// Logic cells (LUT-equivalent), used for the softmax/control estimate.
    pub logic_cells: u64,
}

impl Device {
    /// The ZedBoard's Zynq-7020 (XC7Z020): 220 DSP slices, 4.9 Mb BRAM,
    /// 85k logic cells.
    pub fn zynq_7020() -> Self {
        Self {
            name: "Zynq-7020",
            dsp_slices: 220,
            bram_bits: 4_900_000,
            logic_cells: 85_000,
        }
    }

    /// A large datacenter-class part (VU9P-like) for headroom comparisons.
    pub fn vu9p_like() -> Self {
        Self {
            name: "VU9P-class",
            dsp_slices: 6840,
            bram_bits: 340_000_000,
            logic_cells: 2_586_000,
        }
    }
}

/// Estimated resource usage of one accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// DSP slices (MACs, exponential polynomial, dividers).
    pub dsp_slices: u64,
    /// BRAM bits (double-buffered chunk staging + accumulators + embedding
    /// cache).
    pub bram_bits: u64,
    /// Logic cells (control, comparators for zero-skip gating).
    pub logic_cells: u64,
}

impl ResourceEstimate {
    /// Whether this estimate fits on `device`.
    pub fn fits(&self, device: &Device) -> bool {
        self.dsp_slices <= device.dsp_slices
            && self.bram_bits <= device.bram_bits
            && self.logic_cells <= device.logic_cells
    }

    /// The tightest utilization fraction across resource classes.
    pub fn peak_utilization(&self, device: &Device) -> f64 {
        [
            self.dsp_slices as f64 / device.dsp_slices as f64,
            self.bram_bits as f64 / device.bram_bits as f64,
            self.logic_cells as f64 / device.logic_cells as f64,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

// Per-unit costs (HLS-typical figures for f32 arithmetic on 7-series):
// an f32 multiply-add consumes ~5 DSPs; the exp approximation ~10 DSPs;
// an iterative f32 divider ~0 DSPs but ~800 cells; control ~2k cells.
const DSP_PER_MAC: u64 = 5;
const DSP_PER_EXP_UNIT: u64 = 10;
const CELLS_PER_DIVIDER: u64 = 800;
const CELLS_PER_SKIP_COMPARATOR: u64 = 60;
const CELLS_CONTROL: u64 = 2_000;

/// Estimates the resources of `config` serving `workload`, with an
/// embedding cache of `embedding_cache_bytes`.
pub fn estimate(
    config: &FpgaConfig,
    workload: &FpgaWorkload,
    embedding_cache_bytes: u64,
) -> ResourceEstimate {
    // Compute units: MAC lanes are shared by inner product and weighted
    // sum; one pipelined exp unit per lane group; one divider.
    let dsp = config.mac_lanes * 2 * DSP_PER_MAC + DSP_PER_EXP_UNIT;

    // BRAM: double-buffered in/out chunk staging, the logits buffer, the
    // output accumulator, and the embedding cache payload.
    let chunk_bits = workload.chunk * workload.ed * 32;
    let staging = 2 * 2 * chunk_bits; // two buffers × (in + out)
    let logits = workload.chunk * 32;
    let accumulator = workload.ed * 32;
    let bram = staging + logits + accumulator + embedding_cache_bytes * 8;

    // Logic: dividers, per-lane skip comparators, control.
    let cells = CELLS_PER_DIVIDER + config.mac_lanes * CELLS_PER_SKIP_COMPARATOR + CELLS_CONTROL;

    ResourceEstimate {
        dsp_slices: dsp,
        bram_bits: bram,
        logic_cells: cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_fpga_config_fits_the_zedboard() {
        let cfg = FpgaConfig::zedboard();
        let work = FpgaWorkload::table1(); // ed=25, chunk=25
        let est = estimate(&cfg, &work, 32 << 10);
        let device = Device::zynq_7020();
        assert!(
            est.fits(&device),
            "Table 1 FPGA config must fit: {est:?} vs {device:?}"
        );
        assert!(est.peak_utilization(&device) < 1.0);
    }

    #[test]
    fn cpu_sized_config_does_not_fit_the_zedboard() {
        // ed=48, chunk=1000 with a 256 KiB cache: the paper's reason for
        // scaling down.
        let cfg = FpgaConfig::zedboard();
        let work = FpgaWorkload {
            ns: 100_000,
            ed: 48,
            chunk: 1000,
            skip_fraction: 0.9,
        };
        let est = estimate(&cfg, &work, 256 << 10);
        let device = Device::zynq_7020();
        assert!(
            !est.fits(&device),
            "CPU-sized config should exceed the 7020: {est:?}"
        );
        // BRAM is the binding constraint (staging + cache exceed 4.9 Mb).
        assert!(est.bram_bits > device.bram_bits);
        // ...but a datacenter part takes it easily.
        assert!(est.fits(&Device::vu9p_like()));
    }

    #[test]
    fn more_lanes_cost_more_dsps() {
        let work = FpgaWorkload::table1();
        let mut narrow = FpgaConfig::zedboard();
        narrow.mac_lanes = 2;
        let mut wide = FpgaConfig::zedboard();
        wide.mac_lanes = 16;
        let a = estimate(&narrow, &work, 0);
        let b = estimate(&wide, &work, 0);
        assert!(b.dsp_slices > a.dsp_slices);
        assert!(b.logic_cells > a.logic_cells);
        assert_eq!(a.bram_bits, b.bram_bits, "lanes do not change buffering");
    }

    #[test]
    fn embedding_cache_consumes_bram() {
        let cfg = FpgaConfig::zedboard();
        let work = FpgaWorkload::table1();
        let without = estimate(&cfg, &work, 0);
        let with = estimate(&cfg, &work, 64 << 10);
        assert_eq!(with.bram_bits - without.bram_bits, (64 << 10) * 8);
    }

    #[test]
    fn utilization_reflects_the_binding_resource() {
        let cfg = FpgaConfig::zedboard();
        let work = FpgaWorkload::table1();
        let est = estimate(&cfg, &work, 256 << 10);
        let device = Device::zynq_7020();
        let u = est.peak_utilization(&device);
        let bram_u = est.bram_bits as f64 / device.bram_bits as f64;
        assert!(u >= bram_u);
        assert!(u >= est.dsp_slices as f64 / device.dsp_slices as f64);
    }
}

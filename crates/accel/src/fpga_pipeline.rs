//! Event-stepped simulation of the FPGA pipeline (Fig 8).
//!
//! [`crate::fpga`] computes variant latencies in closed form; this module
//! simulates the pipeline's actual structure — a chunk loader feeding a
//! bounded set of staging buffers (double buffering = 2), and a compute
//! unit draining them through inner-product → partial-softmax →
//! weighted-sum stages — and reports per-stage busy cycles alongside the
//! makespan. The closed form is validated against this simulation, and the
//! buffer-depth ablation of DESIGN.md §5 runs here.

use crate::fpga::{FpgaConfig, FpgaWorkload};
use mnn_memsim::Variant;

/// Per-stage cycle accounting of one simulated inference.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageCycles {
    /// Chunk loads (memory interface busy).
    pub load: u64,
    /// Inner-product MACs.
    pub inner_product: u64,
    /// Exponentiation unit.
    pub exp: u64,
    /// Weighted-sum MACs (after zero-skip gating).
    pub weighted_sum: u64,
    /// Final lazy-softmax divisions.
    pub division: u64,
}

impl StageCycles {
    /// Total busy cycles across stages (exceeds the makespan when stages
    /// overlap).
    pub fn total_busy(&self) -> u64 {
        self.load + self.inner_product + self.exp + self.weighted_sum + self.division
    }
}

/// Result of a pipeline simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// End-to-end cycles.
    pub makespan: u64,
    /// Per-stage busy cycles.
    pub stages: StageCycles,
    /// Number of chunks processed.
    pub chunks: u64,
}

/// Simulates the chunked pipeline with `buffer_depth` staging buffers.
///
/// `streaming == false` serializes load and compute (the plain column
/// design); with streaming, the loader runs ahead until all buffers are
/// full (depth 2 = the paper's double buffering; higher depths are the
/// ablation). Zero-skipping applies the group-gated effective rate from
/// [`FpgaConfig::effective_skip`].
///
/// # Panics
///
/// Panics if `buffer_depth == 0`.
pub fn simulate(
    config: &FpgaConfig,
    work: &FpgaWorkload,
    variant: Variant,
    buffer_depth: usize,
) -> PipelineReport {
    assert!(buffer_depth > 0, "buffer_depth must be positive");
    let streaming = matches!(variant, Variant::ColumnStreaming | Variant::MnnFast);
    let skip = if variant == Variant::MnnFast {
        config.effective_skip(work.skip_fraction)
    } else {
        0.0
    };
    if variant == Variant::Baseline {
        // The baseline has no chunked pipeline; defer to the closed form
        // and attribute everything to load/compute coarsely.
        let makespan = config.latency_cycles(Variant::Baseline, work);
        return PipelineReport {
            makespan,
            stages: StageCycles {
                load: 2 * config.stream_cycles(work.ns * work.ed * 4),
                inner_product: work.ns * work.ed / config.mac_lanes,
                exp: work.ns * config.exp_ii,
                weighted_sum: work.ns * work.ed / config.mac_lanes,
                division: work.ns * config.div_ii,
            },
            chunks: 0,
        };
    }

    let row_bytes = work.ed * 4;
    let n_chunks = work.ns.div_ceil(work.chunk);
    let mut stages = StageCycles::default();

    // Event state: when each staging buffer becomes free, when the loader
    // and the compute unit become available.
    let mut buffer_free = vec![0u64; buffer_depth];
    let mut loader_free = 0u64;
    let mut compute_free = 0u64;

    for c in 0..n_chunks {
        let rows = work.chunk.min(work.ns - c * work.chunk);
        let chunk_mem = 2 * config.stream_cycles(rows * row_bytes);
        let ip = rows * work.ed / config.mac_lanes;
        let exp = rows * config.exp_ii;
        let ws = ((rows * work.ed) as f64 * (1.0 - skip) / config.mac_lanes as f64).ceil() as u64;
        let chunk_compute = ip + exp + ws;

        let buf = (c as usize) % buffer_depth;
        let load_start = if streaming {
            loader_free.max(buffer_free[buf])
        } else {
            // Serialized: wait for the previous chunk's compute too.
            loader_free.max(compute_free)
        };
        let load_end = load_start + chunk_mem;
        loader_free = load_end;

        let compute_start = load_end.max(compute_free);
        let compute_end = compute_start + chunk_compute;
        compute_free = compute_end;
        buffer_free[buf] = compute_end;

        stages.load += chunk_mem;
        stages.inner_product += ip;
        stages.exp += exp;
        stages.weighted_sum += ws;
    }

    // Lazy softmax division at the end.
    let division = work.ed * config.div_ii;
    stages.division = division;
    PipelineReport {
        makespan: compute_free + division,
        stages,
        chunks: n_chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FpgaConfig, FpgaWorkload) {
        (FpgaConfig::zedboard(), FpgaWorkload::table1())
    }

    #[test]
    fn serialized_pipeline_matches_closed_form_exactly() {
        let (cfg, w) = setup();
        let sim = simulate(&cfg, &w, Variant::Column, 1);
        let closed = cfg.latency_cycles(Variant::Column, &w);
        assert_eq!(sim.makespan, closed);
    }

    #[test]
    fn streamed_pipeline_close_to_closed_form() {
        let (cfg, w) = setup();
        for variant in [Variant::ColumnStreaming, Variant::MnnFast] {
            let sim = simulate(&cfg, &w, variant, 2);
            let closed = cfg.latency_cycles(variant, &w);
            let rel = (sim.makespan as f64 - closed as f64).abs() / closed as f64;
            assert!(
                rel < 0.05,
                "{variant}: sim {} vs closed {closed}",
                sim.makespan
            );
        }
    }

    #[test]
    fn double_buffering_beats_single_and_saturates() {
        let (cfg, w) = setup();
        let d1 = simulate(&cfg, &w, Variant::ColumnStreaming, 1).makespan;
        let d2 = simulate(&cfg, &w, Variant::ColumnStreaming, 2).makespan;
        let d3 = simulate(&cfg, &w, Variant::ColumnStreaming, 3).makespan;
        let d8 = simulate(&cfg, &w, Variant::ColumnStreaming, 8).makespan;
        assert!(d2 < d1, "double buffering must help: {d2} vs {d1}");
        assert!(d3 <= d2);
        // Beyond the pipeline depth extra buffers cannot help: the
        // bottleneck stage is already saturated.
        assert!((d8 as f64) > 0.95 * d3 as f64, "{d8} vs {d3}");
    }

    #[test]
    fn stage_cycles_account_for_all_work() {
        let (cfg, w) = setup();
        let sim = simulate(&cfg, &w, Variant::ColumnStreaming, 2);
        assert_eq!(sim.chunks, w.ns.div_ceil(w.chunk));
        // Per-chunk integer division truncates; totals agree within 1%.
        let expect_ip = (w.ns * w.ed) as f64 / cfg.mac_lanes as f64;
        assert!((sim.stages.inner_product as f64 - expect_ip).abs() < 0.01 * expect_ip);
        assert_eq!(sim.stages.exp, w.ns * cfg.exp_ii);
        assert_eq!(sim.stages.division, w.ed * cfg.div_ii);
        // Overlap: busy cycles exceed the makespan in the streamed design.
        assert!(sim.stages.total_busy() > sim.makespan);
    }

    #[test]
    fn zero_skipping_cuts_only_the_weighted_sum_stage() {
        let (cfg, w) = setup();
        let plain = simulate(&cfg, &w, Variant::ColumnStreaming, 2);
        let skip = simulate(&cfg, &w, Variant::MnnFast, 2);
        assert!(skip.stages.weighted_sum < plain.stages.weighted_sum);
        assert_eq!(skip.stages.inner_product, plain.stages.inner_product);
        assert_eq!(skip.stages.load, plain.stages.load, "M_OUT still streamed");
        assert!(skip.makespan <= plain.makespan);
    }

    #[test]
    fn variant_ordering_holds_in_simulation() {
        let (cfg, w) = setup();
        let base = simulate(&cfg, &w, Variant::Baseline, 2).makespan;
        let col = simulate(&cfg, &w, Variant::Column, 2).makespan;
        let cs = simulate(&cfg, &w, Variant::ColumnStreaming, 2).makespan;
        let mf = simulate(&cfg, &w, Variant::MnnFast, 2).makespan;
        assert!(base > col && col > cs && cs > mf, "{base} {col} {cs} {mf}");
    }
}

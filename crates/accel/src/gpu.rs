//! Analytic GPU execution model (paper Fig 12).
//!
//! Overlap rules observed in the paper's Section 5.3:
//!
//! - kernels overlap with kernels and with copies,
//! - H2D copies on the *same* GPU serialize (one copy engine per direction),
//! - across GPUs, H2D copies contend for the shared host PCIe complex —
//!   Fig 12(b) compares that worst case against an ideal case "B" with no
//!   contention,
//! - the final partial-sum reduction and D2H transfer are negligible
//!   (`ed × nq` bytes).

/// GPU and interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Sustained kernel throughput per GPU in GFLOP/s (memory-bound BLAS-2
    /// kernels sustain far below peak; TITAN Xp ≈ 550 GB/s HBM ⇒ ~70 GFLOP/s
    /// for 8 B/FLOP streams).
    pub gpu_gflops: f64,
    /// Effective host-to-device bandwidth per transfer in GB/s (PCIe 3.0
    /// x16 ≈ 12 GB/s effective).
    pub pcie_gbps: f64,
    /// Aggregate host PCIe bandwidth shared by all GPUs in GB/s (the
    /// SuperServer 4028GR-TRT routes four x16 slots through PLX switches
    /// onto two root complexes ≈ 32 GB/s total).
    pub host_pcie_total_gbps: f64,
}

impl GpuConfig {
    /// The paper's SuperServer with four TITAN Xp.
    pub fn titan_xp_server() -> Self {
        Self {
            gpu_gflops: 70.0,
            pcie_gbps: 12.0,
            host_pcie_total_gbps: 32.0,
        }
    }
}

/// Work per inference batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuWorkload {
    /// Bytes of `M_IN` + `M_OUT` to move host → device.
    pub h2d_bytes: f64,
    /// Kernel FLOPs (inner product + softmax + weighted sum).
    pub flops: f64,
}

impl GpuWorkload {
    /// A Table 1-shaped GPU workload (ed 64) scaled to `ns` sentences with
    /// `nq` questions.
    pub fn scaled(ns: u64, nq: u64) -> Self {
        let ed = 64u64;
        Self {
            h2d_bytes: (2 * ns * ed * 4) as f64,
            flops: (nq * (2 * ns * ed + 3 * ns + 2 * ns * ed)) as f64,
        }
    }
}

/// Timing breakdown of one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuTimeline {
    /// Seconds spent on host-to-device copies along the critical path.
    pub h2d_seconds: f64,
    /// Seconds of kernel execution past the last copy (exposed compute).
    pub kernel_seconds: f64,
    /// End-to-end latency in seconds.
    pub total_seconds: f64,
}

/// Single-GPU execution split over `n_streams` CUDA streams.
///
/// Each stream copies `1/S` of the data and runs `1/S` of the kernels.
/// Copies serialize on the copy engine; a stream's kernels start when its
/// copy completes and overlap with later copies. The critical path is the
/// last copy's completion plus the last stream's kernel time.
///
/// # Panics
///
/// Panics if `n_streams == 0`.
pub fn single_gpu(config: &GpuConfig, work: &GpuWorkload, n_streams: usize) -> GpuTimeline {
    assert!(n_streams > 0, "n_streams must be positive");
    let s = n_streams as f64;
    let copy_total = work.h2d_bytes / (config.pcie_gbps * 1e9);
    let kernel_total = work.flops / (config.gpu_gflops * 1e9);
    let kernel_per_stream = kernel_total / s;
    // Stream i's kernels finish at copy_end(i) + remaining kernel work of
    // that stream (kernels across streams overlap on the SMs; each stream's
    // own kernels are serialized behind its copy).
    let mut finish = 0.0f64;
    for i in 1..=n_streams {
        let copy_end = copy_total * i as f64 / s;
        finish = finish.max(copy_end + kernel_per_stream);
    }
    GpuTimeline {
        h2d_seconds: copy_total,
        kernel_seconds: finish - copy_total,
        total_seconds: finish,
    }
}

/// Multi-GPU execution: work is split evenly over `n_gpus`; each GPU uses
/// one stream. With `contended == true`, concurrent H2D copies share the
/// host PCIe complex (the worst case of Fig 12(b)); with `false` every GPU
/// gets its full link (the ideal case "B").
///
/// Returns one [`GpuTimeline`] per GPU (identical under even splitting) —
/// the slowest entry is the completion latency.
///
/// # Panics
///
/// Panics if `n_gpus == 0`.
pub fn multi_gpu(
    config: &GpuConfig,
    work: &GpuWorkload,
    n_gpus: usize,
    contended: bool,
) -> Vec<GpuTimeline> {
    assert!(n_gpus > 0, "n_gpus must be positive");
    let g = n_gpus as f64;
    let per_gpu_bytes = work.h2d_bytes / g;
    let per_gpu_flops = work.flops / g;
    let link = if contended {
        // All GPUs copy simultaneously; each sees its share of the host
        // complex, capped by its own link.
        (config.host_pcie_total_gbps / g).min(config.pcie_gbps)
    } else {
        config.pcie_gbps
    };
    let h2d = per_gpu_bytes / (link * 1e9);
    let kernel = per_gpu_flops / (config.gpu_gflops * 1e9);
    (0..n_gpus)
        .map(|_| GpuTimeline {
            h2d_seconds: h2d,
            kernel_seconds: kernel,
            total_seconds: h2d + kernel,
        })
        .collect()
}

/// Completion latency of a multi-GPU run (max across GPUs).
pub fn multi_gpu_latency(
    config: &GpuConfig,
    work: &GpuWorkload,
    n_gpus: usize,
    contended: bool,
) -> f64 {
    multi_gpu(config, work, n_gpus, contended)
        .iter()
        .map(|t| t.total_seconds)
        .fold(0.0, f64::max)
}

/// Multi-node execution (Section 5.3's closing remark: "this problem can be
/// resolved by using multiple nodes to isolate the memory accesses via
/// PCIe"). Each node hosts `gpus_per_node` GPUs behind its own PCIe
/// complex; nodes exchange only the `ed × nq` partial weighted sums, whose
/// reduction cost is a per-node constant.
///
/// Returns the completion latency in seconds.
///
/// # Panics
///
/// Panics if `nodes == 0` or `gpus_per_node == 0`.
pub fn multi_node_latency(
    config: &GpuConfig,
    work: &GpuWorkload,
    nodes: usize,
    gpus_per_node: usize,
    reduction_seconds_per_node: f64,
) -> f64 {
    assert!(nodes > 0, "nodes must be positive");
    assert!(gpus_per_node > 0, "gpus_per_node must be positive");
    // Each node handles 1/nodes of the memories with its own PCIe complex.
    let per_node = GpuWorkload {
        h2d_bytes: work.h2d_bytes / nodes as f64,
        flops: work.flops / nodes as f64,
    };
    let node_latency = multi_gpu_latency(config, &per_node, gpus_per_node, true);
    // The reduction tree over partial sums is tiny (ed × nq floats/node).
    node_latency + reduction_seconds_per_node * (nodes as f64).log2().ceil()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GpuConfig, GpuWorkload) {
        (
            GpuConfig::titan_xp_server(),
            GpuWorkload::scaled(1_000_000, 4),
        )
    }

    #[test]
    fn streams_give_partial_overlap_speedup() {
        let (cfg, w) = setup();
        let one = single_gpu(&cfg, &w, 1).total_seconds;
        let four = single_gpu(&cfg, &w, 4).total_seconds;
        let speedup = one / four;
        // Paper: ~1.33×; copies form the critical path so gains are modest.
        assert!(speedup > 1.1, "speedup {speedup}");
        assert!(speedup < 2.5, "speedup {speedup}");
    }

    #[test]
    fn adding_more_streams_saturates() {
        // "Increasing the number of streams does not reduce the latency
        // much, as memcpy functions form a critical path."
        let (cfg, w) = setup();
        let s4 = single_gpu(&cfg, &w, 4).total_seconds;
        let s16 = single_gpu(&cfg, &w, 16).total_seconds;
        let gain = s4 / s16;
        assert!(gain < 1.15, "stream scaling should flatten: {gain}");
    }

    #[test]
    fn copies_never_overlap_each_other() {
        let (cfg, w) = setup();
        for s in [1usize, 2, 8] {
            let t = single_gpu(&cfg, &w, s);
            let serial_copy = w.h2d_bytes / (cfg.pcie_gbps * 1e9);
            assert!((t.h2d_seconds - serial_copy).abs() < 1e-12, "streams {s}");
            assert!(t.total_seconds >= serial_copy);
        }
    }

    #[test]
    fn multi_gpu_scales_but_contention_caps_it() {
        let (cfg, w) = setup();
        let one = multi_gpu_latency(&cfg, &w, 1, true);
        let four_worst = multi_gpu_latency(&cfg, &w, 4, true);
        let four_ideal = multi_gpu_latency(&cfg, &w, 4, false);
        let s_worst = one / four_worst;
        let s_ideal = one / four_ideal;
        assert!(s_worst > 2.0, "worst-case 4-GPU speedup {s_worst}");
        assert!(
            s_ideal > s_worst,
            "ideal {s_ideal} must beat contended {s_worst}"
        );
        assert!(s_ideal <= 4.0 + 1e-9);
    }

    #[test]
    fn h2d_gap_grows_with_gpu_count() {
        // Fig 12(b): "H2D latency differences between the worst case and the
        // ideal case are getting larger as the number of GPUs increases."
        let (cfg, w) = setup();
        let mut prev_gap = 0.0;
        for g in [1usize, 2, 3, 4] {
            let worst = multi_gpu(&cfg, &w, g, true)[0].h2d_seconds;
            let ideal = multi_gpu(&cfg, &w, g, false)[0].h2d_seconds;
            let gap = worst - ideal;
            assert!(gap >= prev_gap - 1e-12, "gap shrank at {g} GPUs");
            prev_gap = gap;
        }
        assert!(prev_gap > 0.0, "4-GPU contention must be visible");
    }

    #[test]
    fn single_gpu_contention_is_immaterial() {
        let (cfg, w) = setup();
        let worst = multi_gpu_latency(&cfg, &w, 1, true);
        let ideal = multi_gpu_latency(&cfg, &w, 1, false);
        assert!((worst - ideal).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "n_streams must be positive")]
    fn zero_streams_panics() {
        let (cfg, w) = setup();
        let _ = single_gpu(&cfg, &w, 0);
    }

    #[test]
    fn multi_node_beats_contended_single_node() {
        // 2 nodes × 2 GPUs outscale 4 GPUs sharing one PCIe complex.
        let (cfg, w) = setup();
        let one_node_4gpu = multi_gpu_latency(&cfg, &w, 4, true);
        let two_nodes_2gpu = multi_node_latency(&cfg, &w, 2, 2, 1e-4);
        assert!(
            two_nodes_2gpu < one_node_4gpu,
            "2x2 {two_nodes_2gpu} vs 1x4 {one_node_4gpu}"
        );
    }

    #[test]
    fn multi_node_scaling_is_near_linear() {
        let (cfg, w) = setup();
        let n1 = multi_node_latency(&cfg, &w, 1, 2, 1e-4);
        let n4 = multi_node_latency(&cfg, &w, 4, 2, 1e-4);
        let speedup = n1 / n4;
        assert!(
            (3.2..=4.0).contains(&speedup),
            "4-node speedup {speedup} (sync overhead should be negligible)"
        );
    }

    #[test]
    fn workload_scaling_is_linear() {
        let small = GpuWorkload::scaled(1000, 1);
        let big = GpuWorkload::scaled(2000, 1);
        assert!((big.h2d_bytes / small.h2d_bytes - 2.0).abs() < 1e-9);
    }
}

//! Energy-efficiency comparison between CPU-based and FPGA-based MnnFast
//! (paper Section 5.5).
//!
//! The paper measures CPU package power with `turbostat` and takes FPGA
//! power from Vivado's post-bitstream report, then compares energy per
//! question-answering task on size-matched networks. Here both sides come
//! from the models: throughput from `mnn-memsim`'s bottleneck model (CPU)
//! and the cycle model (FPGA), power from documented constants.

use crate::fpga::{FpgaConfig, FpgaWorkload};
use crate::gpu::{self, GpuConfig, GpuWorkload};
use mnn_memsim::dataflow::DataflowConfig;
use mnn_memsim::roofline::{self, MachineProfile};
use mnn_memsim::Variant;

/// Power model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// CPU package idle power (both sockets), watts.
    pub cpu_idle_w: f64,
    /// Incremental power per active CPU core, watts.
    pub cpu_per_core_w: f64,
    /// FPGA total on-chip power (static + dynamic), watts — Vivado reports
    /// ≈ 2 W class numbers for Zynq-7020 designs of this size.
    pub fpga_w: f64,
    /// GPU board power under load, watts (TITAN Xp TDP 250 W).
    pub gpu_w: f64,
    /// Fixed software overhead per QA task on the CPU, seconds. The paper's
    /// CPU implementation parallelizes every layer in lock-step across all
    /// threads (Section 4.1.1), so each task pays several barrier
    /// synchronizations plus BLAS dispatch; at the FPGA-sized network
    /// (ns=1000) these overheads dominate the microseconds of actual
    /// compute. 200 µs covers ~5 layer barriers across 20 threads.
    pub cpu_task_overhead_s: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            cpu_idle_w: 50.0,
            cpu_per_core_w: 6.0,
            fpga_w: 2.2,
            gpu_w: 250.0,
            cpu_task_overhead_s: 200e-6,
        }
    }
}

/// Energy-efficiency comparison result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// CPU tasks per second at the configured thread count.
    pub cpu_tasks_per_sec: f64,
    /// CPU power draw, watts.
    pub cpu_watts: f64,
    /// CPU energy per task, joules.
    pub cpu_joules_per_task: f64,
    /// FPGA tasks per second.
    pub fpga_tasks_per_sec: f64,
    /// FPGA power draw, watts.
    pub fpga_watts: f64,
    /// FPGA energy per task, joules.
    pub fpga_joules_per_task: f64,
    /// FPGA efficiency advantage: `cpu_joules / fpga_joules` (the paper
    /// reports up to 6.54×).
    pub fpga_efficiency_gain: f64,
}

/// Compares CPU-based and FPGA-based MnnFast on the same (FPGA-sized)
/// network, as Section 5.5 resizes both platforms to equal work.
///
/// # Errors
///
/// Propagates simulator configuration errors.
pub fn compare(
    power: &PowerModel,
    cpu_threads: usize,
    cpu: &MachineProfile,
    fpga: &FpgaConfig,
    work: &FpgaWorkload,
) -> Result<EnergyReport, String> {
    if cpu_threads == 0 {
        return Err("cpu_threads must be positive".into());
    }
    // CPU side: MnnFast dataflow at the FPGA network size.
    let df = DataflowConfig {
        ns: work.ns as usize,
        ed: work.ed as usize,
        chunk: work.chunk as usize,
        questions: 1,
        skip_fraction: work.skip_fraction,
        hops: 1,
    };
    let workload = roofline::variant_workload(Variant::MnnFast, df, cpu)?;
    let raw = roofline::throughput(cpu, &workload, cpu_threads);
    // Add the per-task dispatch/synchronization overhead: each of the T
    // threads completes a task every (1/rate_per_thread + overhead).
    let per_thread = raw / cpu_threads as f64;
    let cpu_tasks_per_sec = cpu_threads as f64 / (1.0 / per_thread + power.cpu_task_overhead_s);
    let cpu_watts = power.cpu_idle_w + power.cpu_per_core_w * cpu_threads as f64;
    let cpu_joules_per_task = cpu_watts / cpu_tasks_per_sec;

    // FPGA side: MnnFast pipeline latency.
    let fpga_tasks_per_sec = 1.0 / fpga.latency_seconds(Variant::MnnFast, work);
    let fpga_joules_per_task = power.fpga_w / fpga_tasks_per_sec;

    Ok(EnergyReport {
        cpu_tasks_per_sec,
        cpu_watts,
        cpu_joules_per_task,
        fpga_tasks_per_sec,
        fpga_watts: power.fpga_w,
        fpga_joules_per_task,
        fpga_efficiency_gain: cpu_joules_per_task / fpga_joules_per_task,
    })
}

/// GPU-side energy figure (an extension — the paper compares only CPU and
/// FPGA): one GPU running the batched column kernels, energy = board power
/// × latency over the batch's questions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuEnergy {
    /// Questions per second.
    pub tasks_per_sec: f64,
    /// Board power, watts.
    pub watts: f64,
    /// Joules per question.
    pub joules_per_task: f64,
}

/// Computes the GPU energy point for a batch of `questions` over
/// `sentences`-long memories.
///
/// # Panics
///
/// Panics if `questions == 0`.
pub fn gpu_energy(
    power: &PowerModel,
    config: &GpuConfig,
    sentences: u64,
    questions: u64,
) -> GpuEnergy {
    assert!(questions > 0, "questions must be positive");
    let work = GpuWorkload::scaled(sentences, questions);
    let latency = gpu::single_gpu(config, &work, 4).total_seconds;
    let tasks_per_sec = questions as f64 / latency;
    GpuEnergy {
        tasks_per_sec,
        watts: power.gpu_w,
        joules_per_task: power.gpu_w / tasks_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(threads: usize) -> EnergyReport {
        compare(
            &PowerModel::default(),
            threads,
            &MachineProfile::xeon(4),
            &FpgaConfig::zedboard(),
            &FpgaWorkload::table1(),
        )
        .unwrap()
    }

    #[test]
    fn fpga_wins_on_efficiency() {
        let r = report(20);
        assert!(
            r.fpga_efficiency_gain > 1.0,
            "gain {}",
            r.fpga_efficiency_gain
        );
        // The paper reports up to 6.54×; the model should land in the same
        // order of magnitude.
        assert!(
            (2.0..20.0).contains(&r.fpga_efficiency_gain),
            "gain {}",
            r.fpga_efficiency_gain
        );
    }

    #[test]
    fn cpu_is_faster_but_hungrier() {
        let r = report(20);
        assert!(
            r.cpu_tasks_per_sec > r.fpga_tasks_per_sec,
            "CPU wins raw speed"
        );
        assert!(
            r.cpu_watts > 20.0 * r.fpga_watts,
            "CPU burns far more power"
        );
    }

    #[test]
    fn energy_identity_holds() {
        let r = report(8);
        assert!((r.cpu_joules_per_task - r.cpu_watts / r.cpu_tasks_per_sec).abs() < 1e-12);
        assert!(
            (r.fpga_efficiency_gain - r.cpu_joules_per_task / r.fpga_joules_per_task).abs() < 1e-12
        );
    }

    #[test]
    fn gpu_energy_sits_between_cpu_and_fpga_in_efficiency() {
        // At large scale the GPU wins throughput; per-task energy lands
        // between the throughput-optimized CPU and the efficiency-optimized
        // FPGA for the small FPGA-sized task.
        let power = PowerModel::default();
        let g = gpu_energy(&power, &GpuConfig::titan_xp_server(), 1000, 64);
        assert!(g.tasks_per_sec > 0.0);
        assert!((g.joules_per_task - g.watts / g.tasks_per_sec).abs() < 1e-12);
        // Large batches amortize the copies: efficiency improves with nq.
        let big = gpu_energy(&power, &GpuConfig::titan_xp_server(), 1000, 512);
        assert!(big.joules_per_task < g.joules_per_task);
    }

    #[test]
    fn zero_threads_rejected() {
        let e = compare(
            &PowerModel::default(),
            0,
            &MachineProfile::xeon(1),
            &FpgaConfig::zedboard(),
            &FpgaWorkload::table1(),
        );
        assert!(e.is_err());
    }
}

//! Accelerator models for the MnnFast reproduction.
//!
//! The paper's GPU and FPGA prototypes run on hardware this environment
//! does not have (4× TITAN Xp; ZedBoard Zynq-7020). This crate models both
//! at the level the paper's evaluation depends on:
//!
//! - [`fpga`] — a cycle-approximate model of the Fig 8 pipeline
//!   (embedding cache → inner product → partial softmax → weighted sum)
//!   over the ZedBoard's DDR3 interface, driving Figs 13 and 14,
//! - [`gpu`] — an analytic CUDA-stream / PCIe-contention model with the
//!   paper's overlap rules (kernel/kernel and kernel/copy overlap,
//!   copy/copy serializes per direction, multi-GPU copies share the host
//!   PCIe), driving Fig 12,
//! - [`energy`] — package-power models for the CPU and FPGA integrated over
//!   modelled runtime, driving the Section 5.5 efficiency comparison.
//!
//! # Example
//!
//! ```
//! use mnn_accel::fpga::{FpgaConfig, FpgaWorkload};
//! use mnn_memsim::Variant;
//!
//! let cfg = FpgaConfig::zedboard();
//! let work = FpgaWorkload::table1(); // ed=25, ns=1000, chunk=25
//! let base = cfg.latency_cycles(Variant::Baseline, &work);
//! let fast = cfg.latency_cycles(Variant::MnnFast, &work);
//! assert!(fast < base);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod energy;
pub mod fpga;
pub mod fpga_pipeline;
pub mod fpga_resources;
pub mod gpu;
pub mod gpu_timeline;

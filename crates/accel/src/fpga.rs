//! Cycle-approximate model of the FPGA accelerator (paper Fig 8).
//!
//! The programmable logic runs at 100 MHz against DDR3-533 over a 32-bit
//! interface. The pipeline has a fixed number of MAC lanes shared by the
//! inner-product and weighted-sum units, a pipelined exponentiation unit,
//! and iterative dividers. The four variants differ exactly as in the
//! paper:
//!
//! - **baseline**: layer-at-a-time; every intermediate vector (`T_IN`,
//!   `P_exp`, `P`) makes a round trip through DRAM in cache-line bursts,
//!   and the softmax performs `ns` divisions;
//! - **column**: chunked; intermediates stay in BRAM; `ed` divisions — but
//!   chunk loads still serialize with compute;
//! - **column+S**: chunk loads stream (double-buffered), so total latency is
//!   `max(memory, compute)` plus the first-chunk fill;
//! - **MnnFast**: adds zero-skipping, gated per lane group — a group of
//!   rows is skipped only if *every* exponential in it is below the
//!   threshold (Section 4.2: no compaction, partial-softmax units run in
//!   parallel).

use mnn_memsim::{DramConfig, Variant};

/// Hardware parameters of the modelled FPGA design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaConfig {
    /// Logic clock in Hz.
    pub freq_hz: f64,
    /// External memory.
    pub dram: DramConfig,
    /// Multiply-accumulate lanes shared by inner product and weighted sum.
    pub mac_lanes: u64,
    /// Initiation interval of the exponentiation unit (cycles/element).
    pub exp_ii: u64,
    /// Initiation interval of the divider (cycles/division).
    pub div_ii: u64,
    /// Rows evaluated together by one partial-softmax group; zero-skipping
    /// drops a group only when all its rows fall below the threshold.
    pub skip_group: u64,
    /// DRAM burst granularity in bytes (latency is paid per burst for
    /// non-streamed intermediate traffic).
    pub burst_bytes: u64,
}

impl FpgaConfig {
    /// The ZedBoard Zynq-7020 configuration of Section 5.1.
    pub fn zedboard() -> Self {
        Self {
            freq_hz: 100e6,
            dram: DramConfig::zedboard_ddr3(),
            mac_lanes: 2,
            exp_ii: 2,
            div_ii: 8,
            skip_group: 6,
            burst_bytes: 64,
        }
    }

    /// Bytes the memory interface delivers per logic cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.dram.bandwidth_bytes_per_sec() / self.freq_hz
    }

    /// DRAM access latency in logic cycles.
    pub fn latency_cycles_per_access(&self) -> u64 {
        (self.dram.latency_ns * 1e-9 * self.freq_hz).ceil() as u64
    }

    /// Cycles to stream `bytes` contiguously (one latency, then full
    /// bandwidth).
    pub fn stream_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.latency_cycles_per_access() + (bytes as f64 / self.bytes_per_cycle()).ceil() as u64
    }

    /// Cycles for latency-exposed burst traffic (intermediate spills): one
    /// access latency per burst plus the transfer time.
    pub fn burst_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let bursts = bytes.div_ceil(self.burst_bytes);
        bursts * self.latency_cycles_per_access()
            + (bytes as f64 / self.bytes_per_cycle()).ceil() as u64
    }

    /// Total latency in cycles for one question under `variant`.
    pub fn latency_cycles(&self, variant: Variant, w: &FpgaWorkload) -> u64 {
        match variant {
            Variant::Baseline => self.baseline_cycles(w),
            Variant::Column => self.column_cycles(w, false, 0.0),
            Variant::ColumnStreaming => self.column_cycles(w, true, 0.0),
            Variant::MnnFast => self.column_cycles(w, true, self.effective_skip(w.skip_fraction)),
        }
    }

    /// Latency in seconds.
    pub fn latency_seconds(&self, variant: Variant, w: &FpgaWorkload) -> f64 {
        self.latency_cycles(variant, w) as f64 / self.freq_hz
    }

    /// Group-gated effective skip fraction: a group of `skip_group` rows is
    /// skipped only when all rows fall below the threshold, so the fraction
    /// of skipped *rows* is `p^g` where `p` is the per-row skip probability
    /// (rows are approximately independent under sparse attention).
    pub fn effective_skip(&self, row_skip: f64) -> f64 {
        row_skip.clamp(0.0, 1.0).powi(self.skip_group.max(1) as i32)
    }

    fn baseline_cycles(&self, w: &FpgaWorkload) -> u64 {
        let (ns, ed) = (w.ns, w.ed);
        let row_bytes = ed * 4;
        let vec_bytes = ns * 4;
        let mut t = 0u64;
        // Layer 1: stream M_IN; inner product; spill T_IN.
        t += self.stream_cycles(ns * row_bytes);
        t += ns * ed / self.mac_lanes;
        t += self.burst_cycles(vec_bytes); // write T_IN
                                           // Layer 2: softmax — read T_IN, exp, write P_exp; read P_exp, sum;
                                           // read P_exp, divide (ns divisions!), write P.
        t += self.burst_cycles(vec_bytes); // read T_IN
        t += ns * self.exp_ii;
        t += self.burst_cycles(vec_bytes); // write P_exp
        t += self.burst_cycles(vec_bytes); // read P_exp (sum)
        t += ns; // accumulate sum
        t += self.burst_cycles(vec_bytes); // read P_exp (divide)
        t += ns * self.div_ii;
        t += self.burst_cycles(vec_bytes); // write P
                                           // Layer 3: read P, stream M_OUT, weighted sum.
        t += self.burst_cycles(vec_bytes); // read P
        t += self.stream_cycles(ns * row_bytes);
        t += ns * ed / self.mac_lanes;
        t
    }

    fn column_cycles(&self, w: &FpgaWorkload, streaming: bool, skip: f64) -> u64 {
        let (ns, ed, chunk) = (w.ns, w.ed, w.chunk);
        let row_bytes = ed * 4;
        let n_chunks = ns.div_ceil(chunk);

        // Per-chunk memory: the in-chunk and out-chunk streams.
        let chunk_mem = 2 * self.stream_cycles(chunk * row_bytes);
        // Per-chunk compute: inner product, exp, weighted sum (skip-gated).
        let ws = ((chunk * ed) as f64 * (1.0 - skip) / self.mac_lanes as f64).ceil() as u64;
        let chunk_compute = chunk * ed / self.mac_lanes + chunk * self.exp_ii + ws;

        let body = if streaming {
            // Double buffering: memory and compute pipeline; fill with the
            // first chunk's load.
            let mem_total = n_chunks * chunk_mem;
            let compute_total = n_chunks * chunk_compute;
            mem_total.max(compute_total) + chunk_mem
        } else {
            n_chunks * (chunk_mem + chunk_compute)
        };
        // Lazy softmax: ed divisions at the very end.
        body + ed * self.div_ii
    }
}

/// Problem shape for the FPGA model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaWorkload {
    /// Story sentences.
    pub ns: u64,
    /// Embedding dimension.
    pub ed: u64,
    /// Chunk size.
    pub chunk: u64,
    /// Per-row zero-skip probability (from the attention sparsity of the
    /// trained model; Fig 7 measures ~0.9 at threshold 0.1 on bAbI).
    pub skip_fraction: f64,
}

impl FpgaWorkload {
    /// The Table 1 FPGA column: ed=25, 1000 sentences, chunk 25.
    pub fn table1() -> Self {
        Self {
            ns: 1000,
            ed: 25,
            chunk: 25,
            skip_fraction: 0.9,
        }
    }
}

/// The embedding phase preceding inference in the Fig 8 pipeline: the
/// question (and any newly arrived story sentences) pass through the
/// embedding cache word by word before the inner-product units start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmbedPhase {
    /// Word lookups to perform (question words + words of new sentences).
    pub lookups: u64,
    /// Hit ratio of the embedding cache (from `mnn-memsim`'s
    /// [`mnn_memsim::EmbeddingCache`] simulation); `0.0` models no cache.
    pub cache_hit_ratio: f64,
}

impl EmbedPhase {
    /// Cycles for the embedding phase: hits take one cycle, misses fetch an
    /// `ed`-float vector from DRAM.
    pub fn cycles(&self, config: &FpgaConfig, ed: u64) -> u64 {
        let hits = (self.lookups as f64 * self.cache_hit_ratio).round() as u64;
        let misses = self.lookups - hits.min(self.lookups);
        hits + misses * config.stream_cycles(ed * 4)
    }
}

/// End-to-end latency (embedding phase + inference) for one question —
/// the full Fig 8 pipeline.
pub fn end_to_end_cycles(
    config: &FpgaConfig,
    variant: Variant,
    work: &FpgaWorkload,
    embed: &EmbedPhase,
) -> u64 {
    embed.cycles(config, work.ed) + config.latency_cycles(variant, work)
}

/// Latency of the embedding phase with and without the embedding cache
/// (Fig 14): replays a Zipf word trace and converts hit/miss counts into
/// cycles (hit = 1 cycle; miss = one DRAM vector fetch).
///
/// Returns `(no_cache_cycles, cached_cycles, hit_ratio)`.
///
/// # Errors
///
/// Propagates embedding-cache geometry errors.
pub fn embedding_latency(
    config: &FpgaConfig,
    cache_bytes: usize,
    ed: usize,
    trace: &[u32],
) -> Result<(u64, u64, f64), String> {
    let vec_bytes = (ed * 4) as u64;
    let fetch = config.stream_cycles(vec_bytes);
    let no_cache = trace.len() as u64 * fetch;

    let mut cache = mnn_memsim::EmbeddingCache::direct_mapped(cache_bytes, ed)?;
    let stats = cache.run_trace(trace);
    let cached = stats.hits + stats.misses * fetch;
    Ok((no_cache, cached, stats.hit_ratio()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_dataset::zipf::ZipfSampler;

    fn setup() -> (FpgaConfig, FpgaWorkload) {
        (FpgaConfig::zedboard(), FpgaWorkload::table1())
    }

    #[test]
    fn variants_are_strictly_ordered() {
        let (cfg, w) = setup();
        let base = cfg.latency_cycles(Variant::Baseline, &w);
        let col = cfg.latency_cycles(Variant::Column, &w);
        let cs = cfg.latency_cycles(Variant::ColumnStreaming, &w);
        let mf = cfg.latency_cycles(Variant::MnnFast, &w);
        assert!(base > col, "{base} vs {col}");
        assert!(col > cs, "{col} vs {cs}");
        assert!(cs > mf, "{cs} vs {mf}");
    }

    #[test]
    fn fig13_magnitudes_are_in_range() {
        // Paper: column −27.6%, column+S −38.2%, MnnFast 2.01× (−50.2%).
        let (cfg, w) = setup();
        let base = cfg.latency_cycles(Variant::Baseline, &w) as f64;
        let col = cfg.latency_cycles(Variant::Column, &w) as f64;
        let cs = cfg.latency_cycles(Variant::ColumnStreaming, &w) as f64;
        let mf = cfg.latency_cycles(Variant::MnnFast, &w) as f64;
        let col_red = 1.0 - col / base;
        let cs_red = 1.0 - cs / base;
        let speedup = base / mf;
        assert!(
            (0.15..0.45).contains(&col_red),
            "column reduction {col_red}"
        );
        assert!(
            (0.25..0.60).contains(&cs_red),
            "column+S reduction {cs_red}"
        );
        assert!((1.5..3.0).contains(&speedup), "MnnFast speedup {speedup}");
    }

    #[test]
    fn group_gating_weakens_skipping() {
        let cfg = FpgaConfig::zedboard();
        assert!(cfg.effective_skip(0.9) < 0.9);
        assert!((cfg.effective_skip(0.9) - 0.9f64.powi(6)).abs() < 1e-12);
        assert_eq!(cfg.effective_skip(0.0), 0.0);
        assert_eq!(cfg.effective_skip(1.0), 1.0);
        assert_eq!(cfg.effective_skip(2.0), 1.0, "clamped");
    }

    #[test]
    fn streaming_approaches_bound() {
        // Streamed latency must be at least the pure-memory and pure-compute
        // bounds, and at most the serialized column latency.
        let (cfg, w) = setup();
        let cs = cfg.latency_cycles(Variant::ColumnStreaming, &w);
        let col = cfg.latency_cycles(Variant::Column, &w);
        assert!(cs < col);
        let mem_bound = 2 * cfg.stream_cycles(w.chunk * w.ed * 4) * w.ns.div_ceil(w.chunk);
        assert!(cs >= mem_bound.min(col));
    }

    #[test]
    fn latency_seconds_consistent_with_cycles() {
        let (cfg, w) = setup();
        let c = cfg.latency_cycles(Variant::MnnFast, &w);
        let s = cfg.latency_seconds(Variant::MnnFast, &w);
        assert!((s - c as f64 / 100e6).abs() < 1e-12);
    }

    #[test]
    fn burst_traffic_is_slower_than_streamed() {
        let cfg = FpgaConfig::zedboard();
        assert!(cfg.burst_cycles(4096) > cfg.stream_cycles(4096));
        assert_eq!(cfg.burst_cycles(0), 0);
        assert_eq!(cfg.stream_cycles(0), 0);
    }

    #[test]
    fn embedding_phase_composes_into_end_to_end() {
        let (cfg, w) = setup();
        // 5-word question, no new sentences.
        let cold = EmbedPhase {
            lookups: 5,
            cache_hit_ratio: 0.0,
        };
        let warm = EmbedPhase {
            lookups: 5,
            cache_hit_ratio: 0.8,
        };
        let infer = cfg.latency_cycles(Variant::MnnFast, &w);
        let e_cold = end_to_end_cycles(&cfg, Variant::MnnFast, &w, &cold);
        let e_warm = end_to_end_cycles(&cfg, Variant::MnnFast, &w, &warm);
        assert!(e_cold > e_warm, "{e_cold} vs {e_warm}");
        assert!(e_warm > infer);
        assert_eq!(e_cold - infer, 5 * cfg.stream_cycles(w.ed * 4));
        // Perfect cache: one cycle per lookup.
        let perfect = EmbedPhase {
            lookups: 5,
            cache_hit_ratio: 1.0,
        };
        assert_eq!(
            end_to_end_cycles(&cfg, Variant::MnnFast, &w, &perfect),
            infer + 5
        );
    }

    #[test]
    fn embedding_cache_latency_reductions_match_fig14_shape() {
        // Fig 14: 32/64/128/256 KiB → 34.5/41.7/47.7/53.1% reduction, ed=256.
        let cfg = FpgaConfig::zedboard();
        let mut z = ZipfSampler::new(10_000, 1.1, 42).unwrap();
        let trace = z.trace(200_000);
        let mut prev = 0.0;
        for (kb, expected) in [(32usize, 0.345), (64, 0.417), (128, 0.477), (256, 0.531)] {
            let (no_cache, cached, _) = embedding_latency(&cfg, kb << 10, 256, &trace).unwrap();
            let reduction = 1.0 - cached as f64 / no_cache as f64;
            assert!(
                reduction > prev,
                "{kb} KiB: {reduction} not monotone over {prev}"
            );
            assert!(
                (reduction - expected).abs() < 0.15,
                "{kb} KiB: modelled {reduction:.3} vs paper {expected}"
            );
            prev = reduction;
        }
    }
}

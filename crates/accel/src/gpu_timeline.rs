//! Discrete-event timeline simulation of the GPU execution (Fig 12's
//! stacked bars).
//!
//! The analytic model in [`crate::gpu`] captures end-to-end latencies; this
//! module simulates the actual event structure — per-stream H2D copies on a
//! serialized copy engine, the three kernels of the column-based algorithm
//! (inner product, softmax, weighted sum) issued in-order per stream and
//! overlapping across streams, and the final D2H of the `ed × nq` partial
//! results — so the per-function breakdown of the figure can be printed.
//! The coarse model is validated against this simulation in the tests.

use crate::gpu::{GpuConfig, GpuWorkload};

/// One simulated operation on the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Which stream issued the operation.
    pub stream: usize,
    /// Operation kind.
    pub kind: EventKind,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// Operation kinds on the GPU timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Host-to-device copy of a chunk of `M_IN`/`M_OUT`.
    H2d,
    /// Inner-product kernel (`U × M_INᵀ` for the chunk).
    InnerProduct,
    /// Softmax kernel (exponentiation + partial sums).
    Softmax,
    /// Weighted-sum kernel.
    WeightedSum,
    /// Device-to-host copy of the partial results.
    D2h,
}

impl EventKind {
    /// All kinds in issue order.
    pub const ALL: [EventKind; 5] = [
        EventKind::H2d,
        EventKind::InnerProduct,
        EventKind::Softmax,
        EventKind::WeightedSum,
        EventKind::D2h,
    ];
}

/// Result of a timeline simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Every simulated event, in issue order.
    pub events: Vec<Event>,
    /// Completion time of the last event, seconds.
    pub makespan: f64,
}

impl Timeline {
    /// Total busy time of `kind` across all streams (events may overlap in
    /// wall-clock; this sums durations — the stacked-bar convention).
    pub fn busy_seconds(&self, kind: EventKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Wall-clock time during which at least one event of `kind` was
    /// running (union of intervals).
    pub fn occupancy_seconds(&self, kind: EventKind) -> f64 {
        let mut intervals: Vec<(f64, f64)> = self
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| (e.start, e.end))
            .collect();
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        let mut total = 0.0;
        let mut current: Option<(f64, f64)> = None;
        for (s, e) in intervals {
            match &mut current {
                None => current = Some((s, e)),
                Some((_, ce)) if s <= *ce => *ce = ce.max(e),
                Some((cs, ce)) => {
                    total += *ce - *cs;
                    current = Some((s, e));
                }
            }
        }
        if let Some((cs, ce)) = current {
            total += ce - cs;
        }
        total
    }
}

/// Cost split of the three kernels, as fractions of total kernel FLOPs.
/// Inner product and weighted sum are `2·ns·ed` each; softmax is `3·ns` —
/// negligible FLOPs but a separate kernel launch in the paper's
/// implementation.
fn kernel_fractions(ed: f64) -> [f64; 3] {
    let ip = 2.0 * ed;
    let sm = 3.0;
    let ws = 2.0 * ed;
    let total = ip + sm + ws;
    [ip / total, sm / total, ws / total]
}

/// Simulates `n_streams` CUDA streams on one GPU.
///
/// Rules (Section 5.3): the copy engine serializes H2D copies in stream
/// order; a stream's kernels run in-order after its copy and overlap with
/// anything on other streams; D2H transfers are tiny (`ed × nq` floats) and
/// use the return direction, serialized among themselves.
///
/// # Panics
///
/// Panics if `n_streams == 0`.
pub fn simulate_streams(config: &GpuConfig, work: &GpuWorkload, n_streams: usize) -> Timeline {
    assert!(n_streams > 0, "n_streams must be positive");
    let s = n_streams as f64;
    let copy_time = work.h2d_bytes / (config.pcie_gbps * 1e9) / s;
    let kernel_total = work.flops / (config.gpu_gflops * 1e9) / s;
    let fractions = kernel_fractions(64.0);
    // D2H: ed × nq floats per stream — approximately 0.01% of H2D; model a
    // fixed small fraction so the event exists without affecting shape.
    let d2h_time = (work.h2d_bytes * 1e-4) / (config.pcie_gbps * 1e9) / s;

    let mut events = Vec::new();
    let mut copy_engine_free = 0.0f64;
    let mut d2h_engine_free = 0.0f64;
    let mut makespan = 0.0f64;

    for stream in 0..n_streams {
        // H2D on the serialized copy engine.
        let h2d_start = copy_engine_free;
        let h2d_end = h2d_start + copy_time;
        copy_engine_free = h2d_end;
        events.push(Event {
            stream,
            kind: EventKind::H2d,
            start: h2d_start,
            end: h2d_end,
        });

        // Kernels in order; overlap across streams is implicit (each stream
        // has its own cursor; SMs are assumed sufficient, as observed).
        let mut cursor = h2d_end;
        for (kind, fraction) in [
            (EventKind::InnerProduct, fractions[0]),
            (EventKind::Softmax, fractions[1]),
            (EventKind::WeightedSum, fractions[2]),
        ] {
            let end = cursor + kernel_total * fraction;
            events.push(Event {
                stream,
                kind,
                start: cursor,
                end,
            });
            cursor = end;
        }

        // D2H on the return engine.
        let d2h_start = cursor.max(d2h_engine_free);
        let d2h_end = d2h_start + d2h_time;
        d2h_engine_free = d2h_end;
        events.push(Event {
            stream,
            kind: EventKind::D2h,
            start: d2h_start,
            end: d2h_end,
        });
        makespan = makespan.max(d2h_end);
    }

    Timeline { events, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu;

    fn setup() -> (GpuConfig, GpuWorkload) {
        (
            GpuConfig::titan_xp_server(),
            GpuWorkload::scaled(1_000_000, 4),
        )
    }

    #[test]
    fn copies_serialize_and_kernels_overlap() {
        // Use a compute-heavy batch so kernels outlast the copy stagger and
        // actually overlap across streams.
        let cfg = GpuConfig::titan_xp_server();
        let w = GpuWorkload::scaled(1_000_000, 64);
        let t = simulate_streams(&cfg, &w, 4);
        // H2D occupancy equals H2D busy time (no copy/copy overlap).
        assert!(
            (t.occupancy_seconds(EventKind::H2d) - t.busy_seconds(EventKind::H2d)).abs() < 1e-12
        );
        // Kernels overlap: wall-clock occupancy below total busy time.
        let ip_busy = t.busy_seconds(EventKind::InnerProduct);
        let ip_occ = t.occupancy_seconds(EventKind::InnerProduct);
        assert!(ip_occ < ip_busy, "occupancy {ip_occ} vs busy {ip_busy}");
    }

    #[test]
    fn timeline_matches_analytic_model() {
        let (cfg, w) = setup();
        for streams in [1usize, 2, 4, 8] {
            let t = simulate_streams(&cfg, &w, streams);
            let analytic = gpu::single_gpu(&cfg, &w, streams).total_seconds;
            let rel = (t.makespan - analytic).abs() / analytic;
            // D2H adds a sliver; the two models agree within 2%.
            assert!(
                rel < 0.02,
                "{streams} streams: {} vs {analytic}",
                t.makespan
            );
        }
    }

    #[test]
    fn events_are_well_formed_and_ordered_per_stream() {
        let (cfg, w) = setup();
        let t = simulate_streams(&cfg, &w, 3);
        assert_eq!(t.events.len(), 3 * 5);
        for s in 0..3 {
            let stream_events: Vec<&Event> = t.events.iter().filter(|e| e.stream == s).collect();
            assert_eq!(stream_events.len(), 5);
            for pair in stream_events.windows(2) {
                assert!(pair[0].end <= pair[1].start + 1e-12, "in-order per stream");
            }
            for e in stream_events {
                assert!(e.end >= e.start);
            }
        }
    }

    #[test]
    fn kernel_busy_time_is_stream_count_invariant() {
        let (cfg, w) = setup();
        let t1 = simulate_streams(&cfg, &w, 1);
        let t8 = simulate_streams(&cfg, &w, 8);
        for kind in [
            EventKind::InnerProduct,
            EventKind::Softmax,
            EventKind::WeightedSum,
        ] {
            let b1 = t1.busy_seconds(kind);
            let b8 = t8.busy_seconds(kind);
            assert!((b1 - b8).abs() < 1e-9, "{kind:?}: {b1} vs {b8}");
        }
    }

    #[test]
    fn softmax_kernel_is_cheap_next_to_matmuls() {
        let (cfg, w) = setup();
        let t = simulate_streams(&cfg, &w, 2);
        assert!(
            t.busy_seconds(EventKind::Softmax) < 0.05 * t.busy_seconds(EventKind::InnerProduct)
        );
    }
}

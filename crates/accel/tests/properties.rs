//! Property tests for the accelerator models: latencies must respond
//! monotonically to every resource knob, for all variants and workloads.

use mnn_accel::fpga::{FpgaConfig, FpgaWorkload};
use mnn_accel::fpga_pipeline;
use mnn_accel::gpu::{self, GpuConfig, GpuWorkload};
use mnn_memsim::Variant;
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = FpgaWorkload> {
    (50u64..5000, 4u64..64, 5u64..200, 0.0f64..1.0).prop_map(|(ns, ed, chunk, skip)| FpgaWorkload {
        ns,
        ed,
        chunk: chunk.min(ns),
        skip_fraction: skip,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fpga_variant_ordering_holds_for_all_workloads(w in workload_strategy()) {
        // Streaming and zero-skipping can only remove time, for ANY shape.
        let cfg = FpgaConfig::zedboard();
        let col = cfg.latency_cycles(Variant::Column, &w);
        let cs = cfg.latency_cycles(Variant::ColumnStreaming, &w);
        let mf = cfg.latency_cycles(Variant::MnnFast, &w);
        prop_assert!(col >= cs, "{col} vs {cs}");
        prop_assert!(cs >= mf, "{cs} vs {mf}");
        // The column transformation itself trades spill traffic for
        // per-chunk DRAM latency, so it only wins once the story is long
        // enough for the spills to dominate and the chunks amortize access
        // latency — proptest found genuine counterexamples at tiny ns and
        // tiny chunks, where both designs are within a few hundred cycles.
        if w.ns >= 1000 && w.chunk >= 32 {
            let base = cfg.latency_cycles(Variant::Baseline, &w);
            prop_assert!(base >= col, "{base} vs {col} (ns {}, chunk {})", w.ns, w.chunk);
        }
    }

    #[test]
    fn more_mac_lanes_never_slow_the_fpga(w in workload_strategy()) {
        let mut narrow = FpgaConfig::zedboard();
        narrow.mac_lanes = 1;
        let mut wide = FpgaConfig::zedboard();
        wide.mac_lanes = 8;
        for v in Variant::ALL {
            prop_assert!(
                wide.latency_cycles(v, &w) <= narrow.latency_cycles(v, &w),
                "{v}"
            );
        }
    }

    #[test]
    fn more_bandwidth_never_slows_the_fpga(w in workload_strategy()) {
        let slow = FpgaConfig::zedboard();
        let mut fast = FpgaConfig::zedboard();
        fast.dram.channel_gbps *= 4.0;
        for v in Variant::ALL {
            prop_assert!(fast.latency_cycles(v, &w) <= slow.latency_cycles(v, &w), "{v}");
        }
    }

    #[test]
    fn higher_skip_never_slows_mnnfast(
        ns in 100u64..3000,
        ed in 4u64..48,
        s1 in 0.0f64..0.5,
        extra in 0.0f64..0.5,
    ) {
        let cfg = FpgaConfig::zedboard();
        let lo = FpgaWorkload { ns, ed, chunk: 25, skip_fraction: s1 };
        let hi = FpgaWorkload { ns, ed, chunk: 25, skip_fraction: s1 + extra };
        prop_assert!(
            cfg.latency_cycles(Variant::MnnFast, &hi)
                <= cfg.latency_cycles(Variant::MnnFast, &lo)
        );
    }

    #[test]
    fn pipeline_simulation_never_beats_its_bounds(w in workload_strategy()) {
        // The event-stepped makespan is at least the bottleneck stage's
        // serial time and at most the fully serialized time.
        let cfg = FpgaConfig::zedboard();
        for depth in [1usize, 2, 4] {
            let sim = fpga_pipeline::simulate(&cfg, &w, Variant::ColumnStreaming, depth);
            let serial = cfg.latency_cycles(Variant::Column, &w);
            prop_assert!(sim.makespan <= serial, "depth {depth}");
            let busiest = sim.stages.load.max(
                sim.stages.inner_product + sim.stages.exp + sim.stages.weighted_sum,
            );
            prop_assert!(sim.makespan + 1 >= busiest, "depth {depth}");
        }
    }

    #[test]
    fn gpu_stream_latency_is_monotone_in_streams(
        ns in 10_000u64..5_000_000,
        nq in 1u64..64,
    ) {
        let cfg = GpuConfig::titan_xp_server();
        let w = GpuWorkload::scaled(ns, nq);
        let mut prev = f64::INFINITY;
        for s in [1usize, 2, 4, 8] {
            let t = gpu::single_gpu(&cfg, &w, s).total_seconds;
            prop_assert!(t <= prev + 1e-12, "{s} streams: {t} vs {prev}");
            prev = t;
        }
    }

    #[test]
    fn gpu_ideal_never_loses_to_contended(
        ns in 10_000u64..5_000_000,
        nq in 1u64..32,
        gpus in 1usize..8,
    ) {
        let cfg = GpuConfig::titan_xp_server();
        let w = GpuWorkload::scaled(ns, nq);
        let worst = gpu::multi_gpu_latency(&cfg, &w, gpus, true);
        let ideal = gpu::multi_gpu_latency(&cfg, &w, gpus, false);
        prop_assert!(ideal <= worst + 1e-12);
    }
}

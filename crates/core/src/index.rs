//! Clustered top-K candidate index for sublinear attention.
//!
//! Exact attention is `O(ns)` per hop: every question dots the full `M_IN`
//! even though, on real workloads, almost all of the softmax mass sits on a
//! handful of rows (the observation behind Rae et al.'s sparse reads and
//! Chandar et al.'s MIPS-based hierarchical reader). This module adds the
//! *approximate-first* half of the sparse-attention path: a k-means/IVF
//! index over the memory rows —
//!
//! * `k` **centroids** trained by Lloyd iterations on a deterministic
//!   sample of the rows (no RNG: strided seeding, fixed iteration count,
//!   so the same memory always produces the same index);
//! * one **posting list** per centroid holding the absolute ids of the
//!   rows assigned to it, in ascending id order;
//! * **incremental maintenance** mirroring the serving store's discipline:
//!   `push` assigns the new row to its nearest centroid in `O(k·ed)`,
//!   `evict_front` pops ids in `O(1)` amortized, and every mutation stamps
//!   [`ClusterIndex::synced_at`] with the store version exactly like the
//!   int8 `QuantMirror` — a stale index is never served.
//!
//! [`ClusterIndex::probe`] is the read side: score the query against every
//! centroid with the SIMD [`mnn_tensor::kernels::centroid_scores`] kernel,
//! rank clusters with [`mnn_tensor::reduce::top_k_select`], and gather the
//! candidate rows of the best `nprobe` clusters (continuing down the
//! ranking until at least `topk` candidates are in hand). The *exact-second*
//! half — rescoring candidates with the unchanged fused kernels — lives in
//! [`crate::Executor::forward_topk_segmented_budgeted`].
//!
//! Ranking clusters by the raw inner product `u · c` (not Euclidean
//! distance) is the standard IVF-for-MIPS heuristic: the attention logit
//! *is* an inner product, and rows clustered around a high-scoring centroid
//! are where the high logits live. The probe also reports its **confidence
//! margin** — the score gap between the last probed and the best unprobed
//! centroid. A vanishing margin means the cluster cut was arbitrary (ties,
//! near-duplicate centroids), and callers degrade to exact attention.

use crate::segment::{Segment, SegmentMap};
use mnn_tensor::kernels::centroid_scores;
use mnn_tensor::reduce::top_k_select;
use mnn_tensor::Matrix;
use std::collections::VecDeque;

/// Lloyd iterations per (re)build. Fixed — determinism over last-mile
/// convergence; the exact rescoring pass forgives imperfect clusters.
const KMEANS_ITERS: usize = 6;

/// Training-sample budget per centroid: Lloyd runs on a strided sample of
/// `SAMPLE_PER_CLUSTER * k` rows, then every row is assigned once. Keeps a
/// rebuild `O(rows · k · ed)` in the final assignment, not the iterations.
const SAMPLE_PER_CLUSTER: usize = 16;

/// Relative score-margin floor for a confident probe: a probe whose
/// last-selected/first-rejected centroid gap is at most this fraction of
/// the largest absolute centroid score is *low-confidence* (ties and
/// near-ties), and callers fall back to exact attention.
pub const PROBE_MARGIN_RTOL: f32 = 1e-5;

/// What a probe found: the candidate rows, their chunk covering, and how
/// confident the cluster cut was.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeResult {
    /// Candidate row indices (live positions in `0..len`), ascending.
    pub candidates: Vec<u32>,
    /// Gappy chunk-aligned covering of the candidates: one [`Segment`] per
    /// maximal run of chunks holding at least one candidate, built via
    /// [`SegmentMap::from_segments`]. Zero-copy rescoring runs the exact
    /// engines over this map when the candidates are spatially clustered.
    pub covered: SegmentMap,
    /// Clusters probed (posting lists gathered).
    pub probes: usize,
    /// Centroid-score gap between the weakest probed cluster and the
    /// strongest unprobed one; `+∞` when every cluster was probed.
    pub margin: f32,
    /// Whether the margin fell below [`PROBE_MARGIN_RTOL`] — the cluster
    /// cut was ambiguous and exact attention should answer instead.
    pub low_margin: bool,
}

/// A k-means/IVF clustered index over the live rows of a memory.
///
/// Rows are identified two ways: by *absolute id* (monotonic over the life
/// of the index; eviction never renumbers) internally, and by *live index*
/// (`absolute id − base`, the row number in today's `M_IN` prefix) at the
/// API surface. Posting lists store absolute ids so front-eviction is a
/// pure `pop_front`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterIndex {
    ed: usize,
    k: usize,
    /// Row-major `k × ed` centroid table.
    centroids: Vec<f32>,
    /// Half squared norm of each centroid (`‖c‖²/2`), for L2 assignment
    /// via `argmax(x·c − ‖c‖²/2)`.
    cnorm_half: Vec<f32>,
    /// Per-cluster absolute row ids, strictly ascending within each list.
    posting: Vec<VecDeque<u64>>,
    /// Cluster of each live row; front is live row 0.
    assign: VecDeque<u32>,
    /// Absolute id of live row 0.
    base: u64,
    /// Store version this index last mirrored.
    synced_at: u64,
    /// Live rows at the last (re)build — the drift yardstick.
    trained_rows: usize,
    /// Reusable centroid-score buffer for `push` assignment.
    score_buf: Vec<f32>,
}

impl ClusterIndex {
    /// Default cluster count for a memory of `rows` rows: `⌈√rows⌉`,
    /// clamped to `[1, rows]`. The classic IVF balance point — probing
    /// `nprobe` of `√n` clusters scans `O(nprobe · √n)` candidates.
    pub fn default_k(rows: usize) -> usize {
        ((rows as f64).sqrt().ceil() as usize).clamp(1, rows.max(1))
    }

    /// Builds an index over the first `rows` rows of `m_in`, stamped with
    /// the store `version` it mirrors. Deterministic: strided centroid
    /// seeding and a fixed Lloyd-iteration count, no RNG.
    ///
    /// # Panics
    ///
    /// Panics if `rows > m_in.rows()` or `m_in.cols() == 0` with nonzero
    /// rows.
    pub fn build(m_in: &Matrix, rows: usize, version: u64) -> Self {
        assert!(
            rows <= m_in.rows(),
            "index rows {} > matrix {}",
            rows,
            m_in.rows()
        );
        let ed = m_in.cols();
        let k = Self::default_k(rows);
        let mut index = ClusterIndex {
            ed,
            k,
            centroids: vec![0.0; k * ed],
            cnorm_half: vec![0.0; k],
            posting: (0..k).map(|_| VecDeque::new()).collect(),
            assign: VecDeque::with_capacity(rows),
            base: 0,
            synced_at: version,
            trained_rows: rows,
            score_buf: vec![0.0; k],
        };
        if rows == 0 {
            return index;
        }

        // Strided seeding: centroid `c` starts as row `c * rows / k`.
        for c in 0..k {
            let r = c * rows / k;
            index.centroids[c * ed..(c + 1) * ed].copy_from_slice(m_in.row(r));
        }
        index.refresh_cnorms();

        // Lloyd on a strided sample (deterministic, bounded work).
        let sample_n = rows.min(k * SAMPLE_PER_CLUSTER);
        let mut scores = vec![0.0f32; k];
        let mut sums = vec![0.0f32; k * ed];
        let mut counts = vec![0u32; k];
        for _ in 0..KMEANS_ITERS {
            sums.iter_mut().for_each(|s| *s = 0.0);
            counts.iter_mut().for_each(|c| *c = 0);
            for s in 0..sample_n {
                let r = s * rows / sample_n;
                let row = m_in.row(r);
                let c = index.nearest_into(row, &mut scores);
                counts[c as usize] += 1;
                let sum = &mut sums[c as usize * ed..(c as usize + 1) * ed];
                for (acc, &x) in sum.iter_mut().zip(row) {
                    *acc += x;
                }
            }
            for c in 0..k {
                // An empty cluster keeps its previous centroid (it can win
                // rows again next iteration); a populated one moves to the
                // sample mean.
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f32;
                    for (dst, &s) in index.centroids[c * ed..(c + 1) * ed]
                        .iter_mut()
                        .zip(&sums[c * ed..(c + 1) * ed])
                    {
                        *dst = s * inv;
                    }
                }
            }
            index.refresh_cnorms();
        }

        // Final pass: assign every live row.
        for r in 0..rows {
            let c = index.nearest_into(m_in.row(r), &mut scores);
            index.posting[c as usize].push_back(r as u64);
            index.assign.push_back(c);
        }
        index
    }

    fn refresh_cnorms(&mut self) {
        for c in 0..self.k {
            let sq: f32 = self.centroids[c * self.ed..(c + 1) * self.ed]
                .iter()
                .map(|&x| x * x)
                .sum();
            self.cnorm_half[c] = 0.5 * sq;
        }
    }

    /// Nearest centroid under L2 (`argmin ‖x − c‖² = argmax x·c − ‖c‖²/2`),
    /// scoring all centroids through the SIMD kernel. Ties go to the lower
    /// cluster id.
    fn nearest_into(&self, row: &[f32], scores: &mut [f32]) -> u32 {
        centroid_scores(&self.centroids, self.k, row, scores);
        let mut best = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for (c, (&raw, &half)) in scores.iter().zip(&self.cnorm_half).enumerate() {
            let s = raw - half;
            if s > best_score {
                best_score = s;
                best = c;
            }
        }
        best as u32
    }

    /// Assigns a freshly pushed row (the new live row `len()−1` of the
    /// store) to its nearest centroid and stamps the index with the store
    /// version after the push. `O(k·ed)`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != ed` (and the index has clusters).
    pub fn push(&mut self, row: &[f32], version: u64) {
        assert_eq!(row.len(), self.ed, "push: row width mismatch");
        let mut scores = std::mem::take(&mut self.score_buf);
        let c = self.nearest_into(row, &mut scores);
        self.score_buf = scores;
        let id = self.base + self.assign.len() as u64;
        self.posting[c as usize].push_back(id);
        self.assign.push_back(c);
        self.synced_at = version;
    }

    /// Removes the `n` oldest live rows (the store's front eviction) and
    /// stamps the index with the post-eviction store version. `O(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn evict_front(&mut self, n: usize, version: u64) {
        assert!(
            n <= self.assign.len(),
            "evict {} of {} rows",
            n,
            self.assign.len()
        );
        for _ in 0..n {
            let c = self.assign.pop_front().expect("checked length") as usize;
            // The global-oldest id belongs to cluster `c`, and ids are
            // ascending within each list, so it must be that list's front.
            let popped = self.posting[c].pop_front();
            debug_assert_eq!(popped, Some(self.base), "posting front out of order");
            self.base += 1;
        }
        self.synced_at = version;
    }

    /// Live rows the index covers.
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// Whether the index covers no rows.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Cluster count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Embedding width the index was built for.
    pub fn ed(&self) -> usize {
        self.ed
    }

    /// The store version this index last mirrored.
    pub fn synced_at(&self) -> u64 {
        self.synced_at
    }

    /// Whether the index mirrors store `version` (the staleness gate —
    /// same contract as the quant mirror's `synced_at`).
    pub fn is_synced(&self, version: u64) -> bool {
        self.synced_at == version
    }

    /// Live rows at the last (re)build.
    pub fn trained_rows(&self) -> usize {
        self.trained_rows
    }

    /// Whether the memory has grown or shrunk past the centroids' training
    /// regime (more than doubled or halved since the last build). A drifted
    /// index is still *coherent* — posting lists mirror the store exactly —
    /// but its clusters no longer reflect the data, so the serving layer
    /// rebuilds before trusting a probe.
    pub fn is_drifted(&self) -> bool {
        let live = self.assign.len();
        let trained = self.trained_rows.max(1);
        live > trained * 2 || live * 2 < trained
    }

    /// The cluster currently holding live row `row` (test/diagnostic
    /// surface).
    ///
    /// # Panics
    ///
    /// Panics if `row >= len()`.
    pub fn cluster_of(&self, row: usize) -> u32 {
        self.assign[row]
    }

    /// Scores every centroid against `u`, ranks clusters by score, and
    /// gathers candidates from the best ones: at least `nprobe` clusters,
    /// continuing down the ranking until `min(topk, len)` candidates are in
    /// hand (so a confident probe always has `topk` rows to rescore).
    ///
    /// Both `topk` and `nprobe` are clamped to sane ranges rather than
    /// rejected — the serving layer validates user input; the index just
    /// answers.
    pub fn probe(&self, u: &[f32], topk: usize, nprobe: usize, chunk_size: usize) -> ProbeResult {
        let len = self.assign.len();
        let chunk = chunk_size.max(1);
        if len == 0 {
            return ProbeResult {
                candidates: Vec::new(),
                covered: SegmentMap::from_segments(Vec::new(), chunk),
                probes: 0,
                margin: f32::INFINITY,
                low_margin: false,
            };
        }
        let target = topk.max(1).min(len);
        let mut scores = vec![0.0f32; self.k];
        centroid_scores(&self.centroids, self.k, u, &mut scores);
        let order = top_k_select(&scores, self.k);

        let mut candidates: Vec<u32> = Vec::with_capacity(target * 2);
        let mut probes = 0usize;
        for &c in &order {
            if probes >= nprobe.max(1) && candidates.len() >= target {
                break;
            }
            for &id in &self.posting[c] {
                candidates.push((id - self.base) as u32);
            }
            probes += 1;
        }
        candidates.sort_unstable();

        // Confidence margin: the gap between the weakest probed cluster and
        // the strongest unprobed one. All-probed means there was no cut to
        // get wrong.
        let (margin, low_margin) = if probes < order.len() {
            let margin = scores[order[probes - 1]] - scores[order[probes]];
            let scale = scores
                .iter()
                .fold(0.0f32, |m, &s| if s.abs() > m { s.abs() } else { m });
            // NaN margins (poisoned scores) count as low-confidence too.
            let confident = matches!(
                margin.partial_cmp(&(scale * PROBE_MARGIN_RTOL)),
                Some(std::cmp::Ordering::Greater)
            );
            (margin, !confident)
        } else {
            (f32::INFINITY, false)
        };

        // Chunk covering: one segment per maximal run of chunks containing
        // a candidate. Norm bounds are +∞ — a top-K plan never prunes (the
        // probe already chose the rows).
        let n_chunks = len.div_ceil(chunk);
        let mut marked = vec![false; n_chunks];
        for &r in &candidates {
            marked[r as usize / chunk] = true;
        }
        let mut segments = Vec::new();
        let mut run_start: Option<usize> = None;
        for (c, hit) in marked
            .iter()
            .copied()
            .chain(std::iter::once(false))
            .enumerate()
        {
            match (run_start, hit) {
                (None, true) => run_start = Some(c),
                (Some(s), false) => {
                    let start = s * chunk;
                    let end = (c * chunk).min(len);
                    segments.push(Segment {
                        start,
                        rows: end - start,
                        max_in_norm: f32::INFINITY,
                    });
                    run_start = None;
                }
                _ => {}
            }
        }
        ProbeResult {
            candidates,
            covered: SegmentMap::from_segments(segments, chunk),
            probes,
            margin,
            low_margin,
        }
    }

    /// Exhaustive coherence check (test/proptest surface): every live row
    /// appears in exactly the posting list its assignment names, lists are
    /// strictly ascending, and the id universe is exactly
    /// `base..base+len()`. Returns a human-readable violation, if any.
    pub fn check_coherence(&self) -> Result<(), String> {
        let len = self.assign.len();
        let mut seen = vec![false; len];
        for (c, list) in self.posting.iter().enumerate() {
            let mut prev: Option<u64> = None;
            for &id in list {
                if let Some(p) = prev {
                    if id <= p {
                        return Err(format!("cluster {c}: ids not ascending ({p} then {id})"));
                    }
                }
                prev = Some(id);
                if id < self.base {
                    return Err(format!("cluster {c}: id {id} below base {}", self.base));
                }
                let live = (id - self.base) as usize;
                if live >= len {
                    return Err(format!("cluster {c}: id {id} beyond live rows"));
                }
                if seen[live] {
                    return Err(format!("row {live} in two posting lists"));
                }
                seen[live] = true;
                if self.assign[live] as usize != c {
                    return Err(format!(
                        "row {live} posted in cluster {c} but assigned {}",
                        self.assign[live]
                    ));
                }
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("row {missing} missing from every posting list"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_memory(rows: usize, ed: usize) -> Matrix {
        // Four well-separated lobes so k-means has real structure to find.
        Matrix::from_fn(rows, ed, |r, c| {
            let lobe = (r * 4 / rows.max(1)) as f32;
            lobe * 2.0 + ((r * 13 + c * 7) as f32 * 0.17).sin() * 0.1
        })
    }

    #[test]
    fn build_covers_every_row_exactly_once() {
        for rows in [1usize, 2, 17, 100, 257] {
            let m = clustered_memory(rows, 8);
            let index = ClusterIndex::build(&m, rows, 42);
            assert_eq!(index.len(), rows);
            assert_eq!(index.k(), ClusterIndex::default_k(rows));
            assert!(index.is_synced(42));
            assert!(!index.is_drifted());
            index.check_coherence().unwrap();
        }
    }

    #[test]
    fn empty_build_probes_to_nothing() {
        let m = Matrix::zeros(0, 8);
        let index = ClusterIndex::build(&m, 0, 7);
        assert!(index.is_empty());
        let probe = index.probe(&[0.5; 8], 4, 2, 16);
        assert!(probe.candidates.is_empty());
        assert_eq!(probe.covered.rows(), 0);
        assert!(!probe.low_margin);
    }

    #[test]
    fn push_assigns_incrementally_and_stays_coherent() {
        let m = clustered_memory(60, 8);
        let mut index = ClusterIndex::build(&m, 40, 1);
        for r in 40..60 {
            index.push(m.row(r), (r + 10) as u64);
            index.check_coherence().unwrap();
        }
        assert_eq!(index.len(), 60);
        assert!(index.is_synced(69));
        // Incremental assignment must match what nearest-centroid says.
        let mut scores = vec![0.0f32; index.k()];
        for r in 40..60 {
            assert_eq!(
                index.cluster_of(r),
                index.nearest_into(m.row(r), &mut scores)
            );
        }
    }

    #[test]
    fn evict_front_pops_oldest_rows() {
        let m = clustered_memory(50, 4);
        let mut index = ClusterIndex::build(&m, 50, 1);
        let tail: Vec<u32> = (5..50).map(|r| index.cluster_of(r)).collect();
        index.evict_front(5, 2);
        assert_eq!(index.len(), 45);
        assert!(index.is_synced(2));
        index.check_coherence().unwrap();
        // Surviving rows keep their clusters, renumbered down by 5.
        for (i, &c) in tail.iter().enumerate() {
            assert_eq!(index.cluster_of(i), c);
        }
    }

    #[test]
    fn drift_trips_after_doubling_or_halving() {
        let m = clustered_memory(200, 4);
        let mut index = ClusterIndex::build(&m, 80, 1);
        assert!(!index.is_drifted());
        for r in 80..161 {
            index.push(m.row(r), r as u64);
        }
        assert!(index.is_drifted(), "161 live > 2 * 80 trained");

        let mut index = ClusterIndex::build(&m, 80, 1);
        index.evict_front(41, 2);
        assert!(index.is_drifted(), "39 live * 2 < 80 trained");
    }

    #[test]
    fn probe_finds_the_hot_lobe() {
        let rows = 256;
        let ed = 8;
        let m = clustered_memory(rows, ed);
        let index = ClusterIndex::build(&m, rows, 1);
        // A query aligned with the hottest lobe (the last quarter of rows).
        let u: Vec<f32> = m.row(rows - 10).to_vec();
        let probe = index.probe(&u, 16, 4, 32);
        assert!(probe.probes >= 4);
        assert!(probe.candidates.len() >= 16);
        assert!(!probe.low_margin, "separated lobes give a clear margin");
        // The exact argmax row must be covered (recall@1 on easy geometry).
        let mut best = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for r in 0..rows {
            let s: f32 = m.row(r).iter().zip(&u).map(|(a, b)| a * b).sum();
            if s > best_score {
                best_score = s;
                best = r;
            }
        }
        assert!(
            probe.candidates.contains(&(best as u32)),
            "argmax row {best} missing from candidates"
        );
        // Covering invariant: every candidate's chunk run is in the map.
        let covered: Vec<(usize, usize)> = probe
            .covered
            .segments()
            .iter()
            .map(|s| (s.start, s.start + s.rows))
            .collect();
        for &r in &probe.candidates {
            assert!(
                covered
                    .iter()
                    .any(|&(a, b)| (r as usize) >= a && (r as usize) < b),
                "candidate {r} not covered"
            );
        }
    }

    #[test]
    fn duplicate_rows_give_a_low_margin_probe() {
        // Every row identical: centroids collapse, scores tie exactly, and
        // any cluster cut is arbitrary — the probe must say so.
        let m = Matrix::from_fn(64, 4, |_, c| (c as f32 + 1.0) * 0.25);
        let index = ClusterIndex::build(&m, 64, 1);
        let probe = index.probe(&[0.3, 0.1, 0.2, 0.4], 4, 1, 16);
        if probe.probes < index.k() {
            assert!(probe.low_margin, "exact score ties must read as low margin");
        }
    }

    #[test]
    fn probe_continues_past_nprobe_until_topk_candidates() {
        let m = clustered_memory(100, 4);
        let index = ClusterIndex::build(&m, 100, 1);
        // nprobe=1 but topk=90: the probe must keep opening clusters.
        let probe = index.probe(&[1.0, 0.5, -0.5, 0.25], 90, 1, 16);
        assert!(probe.candidates.len() >= 90);
        assert!(probe.probes > 1);
    }
}

//! Streaming execution: overlap chunk loading with chunk computation.
//!
//! The paper's streaming optimization prefetches the next chunk of
//! `M_IN`/`M_OUT` while the current chunk is being computed, hiding the
//! off-chip access latency (Section 3.1; the `column+S` bars of Figs 9/13).
//!
//! On commodity hardware this reproduction realizes the overlap with a
//! producer thread that copies upcoming chunks into owned staging buffers
//! (standing in for DMA/prefetch engines) and a bounded channel whose depth
//! is the number of in-flight buffers (2 = double buffering). The consumer
//! — the caller's thread — runs the same per-chunk kernel as the sequential
//! engine, so results are bit-identical to [`ColumnEngine::forward`].

use crate::budget::Budget;
use crate::config::SoftmaxMode;
use crate::engine::{
    check_denom, check_output, check_rows, check_rows_quant, AccumMut, ColumnEngine, ColumnOutput,
    EngineError,
};
use crate::exec::{EngineKind, Executor, Phase, Scratch, Trace};
use crate::segment::{self, SegmentPlan};
use crate::stats::InferenceStats;
use mnn_tensor::{Matrix, QuantMatrix};
use std::sync::mpsc::sync_channel;

/// A staged chunk in flight from the producer to the consumer.
#[derive(Debug)]
struct StagedChunk {
    n: usize,
    in_data: Vec<f32>,
    out_data: Vec<f32>,
}

/// A staged *quantized* chunk: int8 codes plus the per-row scales for both
/// memories. Staging the scales alongside the codes keeps the consumer's
/// reads sequential over owned buffers, same as the f32 lane.
#[derive(Debug)]
struct StagedChunkI8 {
    n: usize,
    in_q: Vec<i8>,
    in_scales: Vec<f32>,
    out_q: Vec<i8>,
    out_scales: Vec<f32>,
}

/// Streaming wrapper around [`ColumnEngine`].
///
/// ```
/// use mnn_tensor::Matrix;
/// use mnnfast::{ColumnEngine, MnnFastConfig, streaming::StreamingEngine};
///
/// let m_in = Matrix::from_fn(64, 4, |r, c| (r as f32 - c as f32) * 0.01);
/// let m_out = m_in.clone();
/// let u = vec![0.1f32; 4];
/// let config = MnnFastConfig::new(16);
/// let sequential = ColumnEngine::new(config).forward(&m_in, &m_out, &u).unwrap();
/// let streamed = StreamingEngine::new(config).forward(&m_in, &m_out, &u).unwrap();
/// assert_eq!(sequential.o, streamed.o);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingEngine {
    engine: ColumnEngine,
    depth: usize,
}

impl StreamingEngine {
    /// Creates a streaming engine with double buffering (depth 2).
    pub fn new(config: crate::MnnFastConfig) -> Self {
        Self {
            engine: ColumnEngine::new(config),
            depth: 2,
        }
    }

    /// Sets the number of in-flight staging buffers (≥ 1; 2 = double
    /// buffering, 3 = triple buffering — the ablation of DESIGN.md §5).
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth.max(1);
        self
    }

    /// The in-flight buffer depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Computes the response vector with producer/consumer chunk streaming,
    /// allocating fresh scratch buffers (one-shot convenience; serving
    /// loops should call [`Executor::forward_prefix`] with a reused
    /// [`Scratch`]).
    ///
    /// Numerically identical to [`ColumnEngine::forward`] with the same
    /// configuration: chunks are consumed in order, so the accumulation
    /// order matches exactly.
    ///
    /// # Errors
    ///
    /// As [`ColumnEngine::forward`].
    pub fn forward(
        &self,
        m_in: &Matrix,
        m_out: &Matrix,
        u: &[f32],
    ) -> Result<ColumnOutput, EngineError> {
        let mut scratch = Scratch::new();
        let mut trace = Trace::disabled();
        Executor::forward_prefix(self, m_in, m_out, m_in.rows(), u, &mut scratch, &mut trace)
    }
}

impl Executor for StreamingEngine {
    fn forward_prefix_budgeted(
        &self,
        m_in: &Matrix,
        m_out: &Matrix,
        rows: usize,
        u: &[f32],
        scratch: &mut Scratch,
        trace: &mut Trace,
        budget: &Budget,
    ) -> Result<ColumnOutput, EngineError> {
        self.forward_segmented_budgeted(
            m_in,
            m_out,
            &SegmentPlan::unsegmented(rows),
            u,
            scratch,
            trace,
            budget,
        )
    }

    fn forward_segmented_budgeted(
        &self,
        m_in: &Matrix,
        m_out: &Matrix,
        plan: &SegmentPlan<'_>,
        u: &[f32],
        scratch: &mut Scratch,
        trace: &mut Trace,
        budget: &Budget,
    ) -> Result<ColumnOutput, EngineError> {
        self.engine.check(m_in, m_out, u)?;
        check_rows(m_in, plan.rows(), "StreamingEngine::forward_prefix")?;
        let config = self.engine.config();
        let chunk = config.chunk_size;
        let ns = plan.rows();
        let ed = u.len();
        let mut stats = InferenceStats::default();
        let denominator;
        {
            let (logits, mut main, mut partial) =
                scratch.split_chunked(config.softmax, ed, chunk.min(ns.max(1)));
            let t0 = trace.begin();
            let raw_threshold = self
                .engine
                .resolve_threshold_prefix(m_in, ns, u, &mut stats, logits)?;
            trace.record(Phase::Skip, t0, 0);
            let query_norm = segment::query_norm_upper(u);

            // One producer/consumer pipeline per visited segment: the prune
            // decision depends on the running max, so a pruned segment's
            // rows are never even staged.
            for seg in plan.segments() {
                budget.check()?;
                stats.segments_total += 1;
                if plan.prune() {
                    if let Some(running_max) = main.running_max() {
                        if segment::can_prune(running_max, seg.logit_upper_bound(query_norm)) {
                            stats.segments_pruned += 1;
                            stats.rows_pruned += seg.rows as u64;
                            continue;
                        }
                    }
                }
                let seg_start = seg.start;
                let seg_end = seg.start + seg.rows;

                std::thread::scope(|scope| {
                    let (tx, rx) = sync_channel::<StagedChunk>(self.depth);
                    // Recycling lane: consumed buffers return to the producer, so
                    // exactly `depth` buffers circulate — the literal
                    // double-buffering discipline of the FPGA design, with no
                    // steady-state allocation.
                    let (recycle_tx, recycle_rx) = sync_channel::<StagedChunk>(self.depth);
                    for _ in 0..self.depth {
                        let _ = recycle_tx.send(StagedChunk {
                            n: 0,
                            in_data: Vec::with_capacity(chunk * ed),
                            out_data: Vec::with_capacity(chunk * ed),
                        });
                    }

                    // Producer: stages chunks ahead of the consumer (the
                    // "prefetch" side of the paper's streaming pipeline).
                    scope.spawn(move || {
                        let mut row = seg_start;
                        while row < seg_end {
                            let Ok(mut staged) = recycle_rx.recv() else {
                                break; // consumer dropped (error path)
                            };
                            let n = chunk.min(seg_end - row);
                            staged.n = n;
                            staged.in_data.clear();
                            staged.in_data.extend_from_slice(m_in.rows_slice(row, n));
                            staged.out_data.clear();
                            staged.out_data.extend_from_slice(m_out.rows_slice(row, n));
                            if tx.send(staged).is_err() {
                                break;
                            }
                            row += n;
                        }
                    });

                    // Consumer: identical math to the sequential engine —
                    // chunks arrive in order and fold through the same
                    // per-chunk partial merge. A failed budget check or a
                    // numeric fault breaks the loop; dropping the receiver
                    // makes the producer's next send fail, so it exits too and
                    // the scope joins cleanly.
                    let mut aborted = None;
                    for staged in rx.iter() {
                        if let Err(e) = budget.check() {
                            aborted = Some(e);
                            break;
                        }
                        partial.reset(ed);
                        self.engine.process_chunk_flat(
                            &staged.in_data,
                            &staged.out_data,
                            staged.n,
                            u,
                            raw_threshold,
                            &mut partial,
                            &mut stats,
                            &mut logits[..staged.n],
                            trace,
                        );
                        let t0 = trace.begin();
                        main.merge_from(&partial);
                        trace.record(Phase::Merge, t0, 1);
                        if let Err(e) = check_denom(main.denom(), "chunk merge") {
                            aborted = Some(e);
                            break;
                        }
                        let _ = recycle_tx.send(staged); // hand the buffer back
                    }
                    drop(rx);
                    aborted
                })
                .map_or(Ok(()), Err)?;

                let t0 = trace.begin();
                main.wire_roundtrip();
                trace.record(Phase::SegmentMerge, t0, 1);
            }
            denominator = main.denom();
        }

        // Staging buffers double the live intermediate footprint.
        stats.intermediate_bytes += (self.depth * chunk * ed * 4 * 2) as u64;
        let mut o = scratch.take_out(ed);
        let t0 = trace.begin();
        scratch.finish_main(config.softmax, &mut o);
        trace.record(Phase::Divide, t0, ed as u64);
        check_output(&o)?;
        stats.divisions += ed as u64;
        stats.flops += ed as u64;
        Ok(ColumnOutput {
            o,
            denominator,
            stats,
        })
    }

    fn forward_quant_segmented_budgeted(
        &self,
        m_in: &QuantMatrix,
        m_out: &QuantMatrix,
        plan: &SegmentPlan<'_>,
        u: &[f32],
        scratch: &mut Scratch,
        trace: &mut Trace,
        budget: &Budget,
    ) -> Result<ColumnOutput, EngineError> {
        self.engine.check_quant(m_in, m_out, u)?;
        check_rows_quant(m_in, plan.rows(), "StreamingEngine::forward_quant")?;
        let config = self.engine.config();
        let chunk = config.chunk_size;
        let ns = plan.rows();
        let ed = u.len();
        let mut stats = InferenceStats::default();
        let u_scale = scratch.quant_query(u);
        let denominator;
        {
            let logit_len = chunk.min(ns.max(1));
            let Scratch {
                logits,
                lazy,
                online,
                chunk_lazy,
                chunk_online,
                uq,
                ..
            } = scratch;
            if logits.len() < logit_len {
                logits.resize(logit_len, 0.0);
            }
            let logits = &mut logits[..logit_len];
            let uq: &[i8] = &uq[..ed];
            let (mut main, mut partial) = match config.softmax {
                SoftmaxMode::Lazy => {
                    lazy.reset(ed);
                    chunk_lazy.reset(ed);
                    (AccumMut::Lazy(lazy), AccumMut::Lazy(chunk_lazy))
                }
                SoftmaxMode::Online => {
                    online.reset(ed);
                    chunk_online.reset(ed);
                    (AccumMut::Online(online), AccumMut::Online(chunk_online))
                }
            };
            let t0 = trace.begin();
            let raw_threshold = self
                .engine
                .resolve_threshold_prefix_quant(m_in, ns, uq, u_scale, &mut stats, logits)?;
            trace.record(Phase::Skip, t0, 0);
            let query_norm = segment::query_norm_upper_i8(uq, u_scale);

            for seg in plan.segments() {
                budget.check()?;
                stats.segments_total += 1;
                if plan.prune() {
                    if let Some(running_max) = main.running_max() {
                        if segment::can_prune(running_max, seg.logit_upper_bound(query_norm)) {
                            stats.segments_pruned += 1;
                            stats.rows_pruned += seg.rows as u64;
                            continue;
                        }
                    }
                }
                let seg_start = seg.start;
                let seg_end = seg.start + seg.rows;

                std::thread::scope(|scope| {
                    let (tx, rx) = sync_channel::<StagedChunkI8>(self.depth);
                    let (recycle_tx, recycle_rx) = sync_channel::<StagedChunkI8>(self.depth);
                    for _ in 0..self.depth {
                        let _ = recycle_tx.send(StagedChunkI8 {
                            n: 0,
                            in_q: Vec::with_capacity(chunk * ed),
                            in_scales: Vec::with_capacity(chunk),
                            out_q: Vec::with_capacity(chunk * ed),
                            out_scales: Vec::with_capacity(chunk),
                        });
                    }

                    scope.spawn(move || {
                        let mut row = seg_start;
                        while row < seg_end {
                            let Ok(mut staged) = recycle_rx.recv() else {
                                break;
                            };
                            let n = chunk.min(seg_end - row);
                            staged.n = n;
                            staged.in_q.clear();
                            staged.in_q.extend_from_slice(m_in.rows_slice(row, n));
                            staged.in_scales.clear();
                            staged
                                .in_scales
                                .extend_from_slice(m_in.scales_slice(row, n));
                            staged.out_q.clear();
                            staged.out_q.extend_from_slice(m_out.rows_slice(row, n));
                            staged.out_scales.clear();
                            staged
                                .out_scales
                                .extend_from_slice(m_out.scales_slice(row, n));
                            if tx.send(staged).is_err() {
                                break;
                            }
                            row += n;
                        }
                    });

                    let mut aborted = None;
                    for staged in rx.iter() {
                        if let Err(e) = budget.check() {
                            aborted = Some(e);
                            break;
                        }
                        partial.reset(ed);
                        self.engine.process_chunk_quant(
                            &staged.in_q,
                            &staged.in_scales,
                            &staged.out_q,
                            &staged.out_scales,
                            staged.n,
                            uq,
                            u_scale,
                            raw_threshold,
                            &mut partial,
                            &mut stats,
                            &mut logits[..staged.n],
                            trace,
                        );
                        let t0 = trace.begin();
                        main.merge_from(&partial);
                        trace.record(Phase::Merge, t0, 1);
                        if let Err(e) = check_denom(main.denom(), "chunk merge") {
                            aborted = Some(e);
                            break;
                        }
                        let _ = recycle_tx.send(staged);
                    }
                    drop(rx);
                    aborted
                })
                .map_or(Ok(()), Err)?;

                let t0 = trace.begin();
                main.wire_roundtrip();
                trace.record(Phase::SegmentMerge, t0, 1);
            }
            denominator = main.denom();
        }

        // Quantized staging: depth buffers × two memories × (codes + scale).
        stats.intermediate_bytes += (self.depth * (chunk * ed + chunk * 4) * 2) as u64;
        let mut o = scratch.take_out(ed);
        let t0 = trace.begin();
        scratch.finish_main(config.softmax, &mut o);
        trace.record(Phase::Divide, t0, ed as u64);
        check_output(&o)?;
        stats.divisions += ed as u64;
        stats.flops += ed as u64;
        Ok(ColumnOutput {
            o,
            denominator,
            stats,
        })
    }

    fn config(&self) -> crate::MnnFastConfig {
        self.engine.config()
    }

    fn kind(&self) -> EngineKind {
        EngineKind::Streaming
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MnnFastConfig, SkipPolicy, SoftmaxMode};
    use mnn_tensor::assert_slice_approx_eq;

    fn memories(ns: usize, ed: usize) -> (Matrix, Matrix, Vec<f32>) {
        let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 3 + c) as f32 * 0.17).sin());
        let m_out = Matrix::from_fn(ns, ed, |r, c| ((r + 7 * c) as f32 * 0.11).cos());
        let u: Vec<f32> = (0..ed).map(|i| (i as f32 * 0.29).cos() * 0.5).collect();
        (m_in, m_out, u)
    }

    #[test]
    fn streamed_equals_sequential_bitwise() {
        let (m_in, m_out, u) = memories(123, 8);
        for chunk in [1usize, 10, 64, 123, 999] {
            let config = MnnFastConfig::new(chunk);
            let seq = ColumnEngine::new(config)
                .forward(&m_in, &m_out, &u)
                .unwrap();
            let st = StreamingEngine::new(config)
                .forward(&m_in, &m_out, &u)
                .unwrap();
            assert_eq!(seq.o, st.o, "chunk {chunk}");
            assert_eq!(seq.denominator, st.denominator);
            assert_eq!(seq.stats.rows_total, st.stats.rows_total);
            assert_eq!(seq.stats.chunks, st.stats.chunks);
        }
    }

    #[test]
    fn streamed_with_skipping_and_online() {
        let (m_in, m_out, u) = memories(77, 6);
        let config = MnnFastConfig::new(13)
            .with_skip(SkipPolicy::Probability(0.01))
            .with_softmax(SoftmaxMode::Online);
        let seq = ColumnEngine::new(config)
            .forward(&m_in, &m_out, &u)
            .unwrap();
        let st = StreamingEngine::new(config)
            .forward(&m_in, &m_out, &u)
            .unwrap();
        assert_eq!(seq.o, st.o);
        assert_eq!(seq.stats.rows_skipped, st.stats.rows_skipped);
    }

    #[test]
    fn depth_is_configurable_and_harmless() {
        let (m_in, m_out, u) = memories(40, 4);
        let config = MnnFastConfig::new(8);
        let expect = ColumnEngine::new(config)
            .forward(&m_in, &m_out, &u)
            .unwrap();
        for depth in [1usize, 2, 3, 8] {
            let st = StreamingEngine::new(config)
                .with_depth(depth)
                .forward(&m_in, &m_out, &u)
                .unwrap();
            assert_slice_approx_eq(&st.o, &expect.o, 1e-6);
            assert_eq!(
                StreamingEngine::new(config).with_depth(depth).depth(),
                depth
            );
        }
        assert_eq!(StreamingEngine::new(config).with_depth(0).depth(), 1);
    }

    #[test]
    fn staging_buffers_counted_as_intermediates() {
        let (m_in, m_out, u) = memories(40, 4);
        let config = MnnFastConfig::new(8);
        let seq = ColumnEngine::new(config)
            .forward(&m_in, &m_out, &u)
            .unwrap();
        let st = StreamingEngine::new(config)
            .forward(&m_in, &m_out, &u)
            .unwrap();
        assert!(st.stats.intermediate_bytes > seq.stats.intermediate_bytes);
    }

    #[test]
    fn shape_errors_propagate() {
        let (m_in, m_out, _) = memories(10, 4);
        let st = StreamingEngine::new(MnnFastConfig::new(4));
        assert!(st.forward(&m_in, &m_out, &[0.0; 3]).is_err());
    }
}

//! Work and traffic accounting for the MnnFast engine.

/// Counters accumulated by one forward pass (or merged across passes).
///
/// These feed three reproductions: the computation-reduction axis of Fig 7
/// (`weighted_sum_rows_done` vs `rows_total`), the intermediate-spill
/// comparison of Fig 5/11 (`intermediate_bytes`), and the division-count
/// argument of Section 3.1 (`divisions` ∝ `ed` instead of ∝ `ns`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InferenceStats {
    /// Total memory rows examined (`ns` per question).
    pub rows_total: u64,
    /// Rows whose weighted-sum contribution was skipped (zero-skipping).
    pub rows_skipped: u64,
    /// Multiply-add FLOPs actually executed (all steps).
    pub flops: u64,
    /// Weighted-sum FLOPs actually executed (subset of `flops`).
    pub ws_flops: u64,
    /// Weighted-sum FLOPs avoided by zero-skipping.
    pub flops_skipped: u64,
    /// Bytes of `M_IN`/`M_OUT` streamed through the engine.
    pub memory_bytes: u64,
    /// Peak bytes of live intermediate data (chunk buffers) — `O(chunk)`
    /// for the column-based algorithm vs `O(ns)` for the baseline.
    pub intermediate_bytes: u64,
    /// Softmax division operations performed.
    pub divisions: u64,
    /// Number of chunks processed.
    pub chunks: u64,
    /// Memory segments visited by the segmented execution plane (an
    /// unsegmented pass counts as one segment).
    pub segments_total: u64,
    /// Segments skipped entirely by zone-map pruning (their score upper
    /// bound could not survive the running softmax max).
    pub segments_pruned: u64,
    /// Rows contained in pruned segments — work avoided without ever
    /// loading the segment. Disjoint from `rows_total`/`rows_skipped`,
    /// which only count rows of segments actually visited.
    pub rows_pruned: u64,
    /// Clusters probed by the top-K candidate index (zero on exact passes).
    pub index_probes: u64,
    /// Candidate rows rescored exactly after an index probe — the rows the
    /// fused kernels actually touched on a sparse pass.
    pub candidates_scored: u64,
    /// Rows the index excluded from exact rescoring entirely (store rows
    /// minus candidates rescored). Disjoint from `rows_skipped` (which
    /// counts zero-skipping within visited rows) and `rows_pruned` (zone-map
    /// pruning within an exact pass).
    pub rows_skipped_by_index: u64,
}

impl InferenceStats {
    /// Fraction of weighted-sum rows skipped (`0.0` if nothing processed).
    pub fn skip_fraction(&self) -> f64 {
        if self.rows_total == 0 {
            0.0
        } else {
            self.rows_skipped as f64 / self.rows_total as f64
        }
    }

    /// Fraction of *output* (weighted-sum) computation eliminated, the
    /// y-axis of Fig 7's "computation reduction" curve.
    pub fn computation_reduction(&self) -> f64 {
        let total = self.ws_flops + self.flops_skipped;
        if total == 0 {
            0.0
        } else {
            self.flops_skipped as f64 / total as f64
        }
    }

    /// Merges counters from another pass (e.g. per-thread partials).
    pub fn merge(&mut self, other: &InferenceStats) {
        self.rows_total += other.rows_total;
        self.rows_skipped += other.rows_skipped;
        self.flops += other.flops;
        self.ws_flops += other.ws_flops;
        self.flops_skipped += other.flops_skipped;
        self.memory_bytes += other.memory_bytes;
        // Peak live intermediates across merged partials is the max, not the
        // sum, when partials ran sequentially; concurrent merging callers
        // add explicitly. Keep the max as the conservative default.
        self.intermediate_bytes = self.intermediate_bytes.max(other.intermediate_bytes);
        self.divisions += other.divisions;
        self.chunks += other.chunks;
        self.segments_total += other.segments_total;
        self.segments_pruned += other.segments_pruned;
        self.rows_pruned += other.rows_pruned;
        self.index_probes += other.index_probes;
        self.candidates_scored += other.candidates_scored;
        self.rows_skipped_by_index += other.rows_skipped_by_index;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_handle_zero() {
        let s = InferenceStats::default();
        assert_eq!(s.skip_fraction(), 0.0);
        assert_eq!(s.computation_reduction(), 0.0);
    }

    #[test]
    fn fractions_compute() {
        let s = InferenceStats {
            rows_total: 100,
            rows_skipped: 81,
            flops: 19,
            ws_flops: 19,
            flops_skipped: 81,
            ..Default::default()
        };
        assert!((s.skip_fraction() - 0.81).abs() < 1e-12);
        assert!((s.computation_reduction() - 0.81).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = InferenceStats {
            rows_total: 10,
            intermediate_bytes: 128,
            chunks: 2,
            ..Default::default()
        };
        let b = InferenceStats {
            rows_total: 5,
            intermediate_bytes: 64,
            chunks: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_total, 15);
        assert_eq!(a.chunks, 3);
        assert_eq!(a.intermediate_bytes, 128, "peak, not sum");
    }
}

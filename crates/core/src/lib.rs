//! MnnFast: the paper's three optimizations for large-scale memory networks.
//!
//! Given the embedded memories `M_IN`/`M_OUT` (built by `mnn-memnn`) and a
//! question state `u`, this crate computes the response vector
//! `o = softmax(u·M_INᵀ)·M_OUT` with:
//!
//! 1. **Column-based algorithm** ([`engine`]) — process the memories in
//!    row chunks, keep only chunk-sized intermediates, and defer the softmax
//!    division to the very end (*lazy softmax*, Equation 4 of the paper).
//! 2. **Zero-skipping** ([`SkipPolicy`]) — bypass the `ed`-wide
//!    multiply-accumulate for memory entries whose attention weight falls
//!    below a threshold.
//! 3. **Streaming** ([`streaming`]) — overlap loading the next chunk with
//!    computing the current one (double buffering), hiding memory latency.
//! 4. **Scale-out** ([`parallel`]) — partition chunks across worker threads
//!    and merge the partial accumulators, the paper's multi-unit scaling
//!    argument (Section 3.1, last paragraph).
//!
//! All variants implement one trait, [`Executor`] ([`exec`]): callers pick
//! a variant declaratively with an [`ExecPlan`] (or let [`EngineKind::Auto`]
//! choose from the memory size and thread count), reuse buffers across
//! questions through a [`Scratch`] arena, and get per-phase wall-time
//! breakdowns via [`Trace`] — zero-cost when disabled.
//!
//! The embedding-cache optimization operates on the memory hierarchy rather
//! than the dataflow; it lives in `mnn-memsim` (simulated cache) and
//! `mnn-accel` (FPGA model).
//!
//! # Example
//!
//! ```
//! use mnn_tensor::Matrix;
//! use mnnfast::{ColumnEngine, MnnFastConfig};
//!
//! let m_in = Matrix::from_fn(100, 8, |r, c| ((r + c) as f32).sin() * 0.1);
//! let m_out = Matrix::from_fn(100, 8, |r, c| ((r * c) as f32).cos() * 0.1);
//! let u = vec![0.05f32; 8];
//!
//! let engine = ColumnEngine::new(MnnFastConfig::new(16));
//! let result = engine.forward(&m_in, &m_out, &u).unwrap();
//! assert_eq!(result.o.len(), 8);
//! // All 100 rows were processed; none skipped without a threshold.
//! assert_eq!(result.stats.rows_total, 100);
//! assert_eq!(result.stats.rows_skipped, 0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod config;
mod stats;

pub mod batch;
pub mod budget;
pub mod engine;
pub mod exec;
pub mod hops;
pub mod index;
pub mod parallel;
pub mod partials;
pub mod segment;
pub mod store;
pub mod streaming;

pub use batch::{BatchEngine, BatchOutput};
pub use budget::{Budget, CancelToken};
pub use config::{MnnFastConfig, Precision, SkipPolicy, SoftmaxMode};
pub use engine::{ColumnEngine, ColumnOutput, EngineError};
pub use exec::{
    EngineKind, ExecPlan, Executor, LatencyHistogram, Phase, PhaseHistograms, PlanExecutor,
    Scratch, Trace,
};
pub use hops::{
    multi_hop, multi_hop_batch_budgeted, multi_hop_batch_segmented_budgeted, multi_hop_budgeted,
    multi_hop_quant_batch_segmented_budgeted, multi_hop_quant_segmented_budgeted,
    multi_hop_quant_topk_segmented_budgeted, multi_hop_segmented_budgeted, multi_hop_simple,
    multi_hop_topk_segmented_budgeted, HopsOutput,
};
pub use index::{ClusterIndex, ProbeResult};
pub use parallel::ParallelEngine;
pub use partials::{
    forward_chunk_partials_budgeted, forward_chunk_quant_partials_budgeted, PartialFold,
};
pub use segment::{Segment, SegmentMap, SegmentPlan};
pub use stats::InferenceStats;
pub use store::{MemoryStore, SegmentedStore};
pub use streaming::StreamingEngine;

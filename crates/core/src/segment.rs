//! Segment routing and zone-map pruning for the segmented execution plane.
//!
//! The segmented plane partitions story memory into contiguous,
//! *chunk-aligned* row ranges ([`Segment`]s). Chunk alignment is what keeps
//! segmented execution bitwise identical to the unsegmented engines: every
//! segment boundary coincides with a chunk boundary, so the per-chunk fold
//! order — and therefore the f32 rounding history — is exactly the one the
//! plain prefix pass produces.
//!
//! Each segment carries *zone-map* metadata: an upper bound on the Euclidean
//! norm of its `M_IN` rows. Combined with the query norm this bounds every
//! logit the segment can produce (Cauchy–Schwarz:
//! `u · m ≤ ‖u‖ · ‖m‖ ≤ ‖u‖ · max_in_norm`), which lets the online-softmax
//! engines skip whole segments — the segment-level analogue of zero-skip.
//!
//! # The pruning rule and why it is bitwise-safe
//!
//! A segment with logit upper bound `ub` may be pruned when the running
//! online-softmax max `m` satisfies
//!
//! ```text
//! ub < m − (110 + |m| · 1e-4)        (evaluated in f64)
//! ```
//!
//! with both sides finite. f32 `exp(x)` underflows to exactly `+0.0` for
//! `x < ≈ −103.97`, so with the 110 margin every row of a pruned segment
//! would have contributed a relative weight of exactly `+0.0`: the
//! denominator update is `+= 0.0` (a no-op) and the weighted-sum update adds
//! `±0.0` (a no-op for every value the accumulator can reach under
//! round-to-nearest). The running max cannot rise either, because every
//! logit in the segment is `≤ ub < m`. Skipping the segment therefore
//! leaves the accumulator *bit for bit* in the state the unsegmented pass
//! reaches. The `|m| · 1e-4` term absorbs the f32 rounding of the dot
//! products at large logit magnitudes, and both norms carry a
//! [`NORM_SLACK`] factor on top of an f64 evaluation so the bound itself is
//! conservative.
//!
//! Two structural consequences, both load-bearing:
//!
//! * **Lazy mode never prunes.** The lazy softmax has no running max, so
//!   there is nothing to compare against ([`SegmentPlan::prune`] is simply
//!   inert there) — and its raw weights `e^x` are never exactly zero for
//!   finite `x ≥ 0` bounds anyway.
//! * **The first contributing segment is never pruned.** Before any row is
//!   folded the running max is `−∞`, which fails the finiteness test.

use mnn_tensor::Matrix;

/// Multiplicative slack applied to every norm bound, covering the f32→f64
/// conversion and the final f64→f32 rounding of the stored bounds.
pub const NORM_SLACK: f64 = 1.001;

/// The logit-gap margin of the pruning rule. f32 `exp` returns exactly
/// `+0.0` below ≈ −103.97; 110 leaves headroom on top of the norm slack.
pub const PRUNE_MARGIN: f64 = 110.0;

/// One routed memory segment: a contiguous, chunk-aligned row range plus
/// its zone-map metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First memory row of the segment.
    pub start: usize,
    /// Number of rows in the segment.
    pub rows: usize,
    /// Upper bound on the Euclidean norm of the segment's `M_IN` rows
    /// (`+∞` when unknown or not finite, which disables pruning for the
    /// segment).
    pub max_in_norm: f32,
}

impl Segment {
    /// The segment's logit upper bound for a query with norm bound
    /// `query_norm` (from [`query_norm_upper`]), by Cauchy–Schwarz.
    pub fn logit_upper_bound(&self, query_norm: f64) -> f64 {
        query_norm * self.max_in_norm as f64
    }
}

/// The routed segmentation of a memory prefix: contiguous chunk-aligned
/// [`Segment`]s covering rows `0..rows()`, in row order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SegmentMap {
    segments: Vec<Segment>,
    rows: usize,
}

impl SegmentMap {
    /// Builds a map over `norms.len()` rows (where `norms[i]` is an upper
    /// bound on row `i`'s Euclidean norm, e.g. from [`row_norm_upper`]),
    /// split into at most `n_segments` chunk-aligned segments of near-equal
    /// size.
    ///
    /// `n_segments` is clamped to the number of chunks (a segment never
    /// splits a chunk) and to at least 1. Rows whose norm is NaN poison
    /// their segment's bound to `+∞`, disabling pruning for that segment.
    pub fn from_norms(norms: &[f32], n_segments: usize, chunk_size: usize) -> Self {
        let rows = norms.len();
        let chunk = chunk_size.max(1);
        let chunks_total = rows.div_ceil(chunk);
        let mut segments = Vec::new();
        if chunks_total > 0 {
            let n = n_segments.clamp(1, chunks_total);
            let rows_per_seg = chunks_total.div_ceil(n) * chunk;
            let mut start = 0usize;
            while start < rows {
                let len = rows_per_seg.min(rows - start);
                let mut max_in_norm = 0.0f32;
                for &x in &norms[start..start + len] {
                    if x.is_nan() {
                        max_in_norm = f32::INFINITY;
                        break;
                    }
                    max_in_norm = max_in_norm.max(x);
                }
                segments.push(Segment {
                    start,
                    rows: len,
                    max_in_norm,
                });
                start += len;
            }
        }
        SegmentMap { segments, rows }
    }

    /// Builds a map directly from pre-built segments — the constructor the
    /// clustered top-K index uses for its *gappy* chunk-covering plans.
    ///
    /// Unlike [`SegmentMap::from_norms`], the segments need not tile a
    /// prefix: gaps between segments are allowed (rows in a gap are simply
    /// never visited), which is exactly how the sparse-attention path
    /// expresses "rescore only the covered chunk runs". [`SegmentMap::rows`]
    /// is the number of *covered* rows (the sum of segment lengths), which
    /// is what the engines size their pass over. Every engine's segmented
    /// loop walks `seg.start..seg.start + seg.rows` directly, so gappy maps
    /// execute bitwise-identically to exact attention restricted to the
    /// covered runs — provided the starts are ascending, non-overlapping
    /// and chunk-aligned, which this constructor checks.
    ///
    /// # Panics
    ///
    /// Panics if segments are empty-length, out of order, overlapping, or
    /// start off a `chunk_size` boundary.
    pub fn from_segments(segments: Vec<Segment>, chunk_size: usize) -> Self {
        let chunk = chunk_size.max(1);
        let mut rows = 0usize;
        let mut next_free = 0usize;
        for seg in &segments {
            assert!(seg.rows > 0, "empty segment at row {}", seg.start);
            assert!(
                seg.start >= next_free,
                "segment at {} overlaps or precedes the previous one",
                seg.start
            );
            assert!(
                seg.start % chunk == 0,
                "segment start {} is not aligned to chunk size {chunk}",
                seg.start
            );
            next_free = seg.start + seg.rows;
            rows += seg.rows;
        }
        SegmentMap { segments, rows }
    }

    /// Builds a map over the first `rows` rows of `m_in`, computing the
    /// per-row norm bounds on the fly (convenience for tests and benches;
    /// the serving store maintains the norms incrementally).
    ///
    /// # Panics
    ///
    /// Panics if `rows > m_in.rows()`.
    pub fn from_matrix(m_in: &Matrix, rows: usize, n_segments: usize, chunk_size: usize) -> Self {
        let norms: Vec<f32> = (0..rows).map(|r| row_norm_upper(m_in.row(r))).collect();
        Self::from_norms(&norms, n_segments, chunk_size)
    }

    /// The segments, in row order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total rows covered by the map.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the map covers no rows.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

/// How a forward pass is routed over segments: either the trivial
/// single-range plan (the classic prefix pass, allocation-free) or a routed
/// [`SegmentMap`], optionally with zone-map pruning enabled.
#[derive(Debug, Clone, Copy)]
pub struct SegmentPlan<'a> {
    source: Source<'a>,
    prune: bool,
}

#[derive(Debug, Clone, Copy)]
enum Source<'a> {
    Unsegmented { rows: usize },
    Routed { map: &'a SegmentMap },
}

impl SegmentPlan<'static> {
    /// The trivial plan: one segment covering rows `0..rows`, no zone map,
    /// no pruning. `forward_prefix` is exactly this plan.
    pub fn unsegmented(rows: usize) -> Self {
        SegmentPlan {
            source: Source::Unsegmented { rows },
            prune: false,
        }
    }
}

impl<'a> SegmentPlan<'a> {
    /// A plan routed over `map`, with zone-map pruning on or off.
    pub fn routed(map: &'a SegmentMap, prune: bool) -> Self {
        SegmentPlan {
            source: Source::Routed { map },
            prune,
        }
    }

    /// Total rows the pass covers.
    pub fn rows(&self) -> usize {
        match self.source {
            Source::Unsegmented { rows } => rows,
            Source::Routed { map } => map.rows(),
        }
    }

    /// Whether zone-map pruning is enabled (inert in lazy-softmax mode).
    pub fn prune(&self) -> bool {
        self.prune
    }

    /// Number of segments the pass visits (0 when there are no rows).
    pub fn n_segments(&self) -> usize {
        match self.source {
            Source::Unsegmented { rows } => usize::from(rows > 0),
            Source::Routed { map } => map.len(),
        }
    }

    /// Iterates the segments in row order. The unsegmented plan yields one
    /// all-covering segment with an infinite norm bound (never prunable).
    pub fn segments(&self) -> SegmentIter<'a> {
        match self.source {
            Source::Unsegmented { rows } => SegmentIter::Single(if rows > 0 {
                Some(Segment {
                    start: 0,
                    rows,
                    max_in_norm: f32::INFINITY,
                })
            } else {
                None
            }),
            Source::Routed { map } => SegmentIter::Routed(map.segments().iter()),
        }
    }
}

/// Iterator over a [`SegmentPlan`]'s segments.
#[derive(Debug)]
pub enum SegmentIter<'a> {
    /// The trivial plan's single segment (or nothing for an empty prefix).
    Single(Option<Segment>),
    /// A routed map's segments.
    Routed(std::slice::Iter<'a, Segment>),
}

impl Iterator for SegmentIter<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        match self {
            SegmentIter::Single(s) => s.take(),
            SegmentIter::Routed(it) => it.next().copied(),
        }
    }
}

/// Upper bound on a memory row's Euclidean norm: the f64 norm times
/// [`NORM_SLACK`], rounded to f32. NaN data yields NaN (which disables
/// pruning downstream).
pub fn row_norm_upper(row: &[f32]) -> f32 {
    let sumsq: f64 = row.iter().map(|&x| x as f64 * x as f64).sum();
    (sumsq.sqrt() * NORM_SLACK) as f32
}

/// Upper bound on the query's Euclidean norm, in f64 (computed once per
/// pass).
pub fn query_norm_upper(u: &[f32]) -> f64 {
    let sumsq: f64 = u.iter().map(|&x| x as f64 * x as f64).sum();
    sumsq.sqrt() * NORM_SLACK
}

/// Upper bound on a *quantized* query's Euclidean norm, in f64.
///
/// The quantized path's logits are inner products of the quantized query
/// (`uq[k] * u_scale`) against dequantized memory rows, so Cauchy–Schwarz
/// must be applied to the quantized query, not the original `u` — the
/// rounding that produced `uq` can push individual components either way.
/// `Σ uq[k]²` is exact in f64 (codes are ≤ 127), so this bound is exact up
/// to the one rounding in `u_scale` itself, covered by [`NORM_SLACK`]. A
/// non-finite `u_scale` (non-finite query) yields a non-finite bound, which
/// disables pruning downstream.
///
/// Zone maps are built from the *f32* row norms, but a dequantized row can
/// be longer than its f32 source: per-element rounding adds up to `s/2`,
/// so its norm is at most `‖x‖ + s·√ed/2 ≤ ‖x‖·(1 + √ed/254)` (since
/// `s = maxabs/127 ≤ ‖x‖/127`). That inflation multiplies the *other*
/// side of the Cauchy–Schwarz product, so folding it into the query bound
/// here keeps f32-norm zone maps conservative on the quant plane for any
/// memory, not just ones whose logits sit inside the prune margin's
/// headroom.
pub fn query_norm_upper_i8(uq: &[i8], u_scale: f32) -> f64 {
    let ed = uq.len() as f64;
    let dequant_slack = 1.0 + ed.sqrt() / 254.0;
    let sumsq: f64 = uq.iter().map(|&q| q as f64 * q as f64).sum();
    sumsq.sqrt() * u_scale as f64 * NORM_SLACK * dequant_slack
}

/// The zone-map pruning rule: may a segment whose logit upper bound is `ub`
/// be skipped given the running online-softmax max `running_max`?
///
/// See the module docs for the bitwise-safety argument. Returns `false`
/// whenever either side is not finite — in particular before the first
/// segment contributes (`running_max == −∞`) and for segments with unknown
/// (`+∞`/NaN) bounds.
pub fn can_prune(running_max: f32, ub: f64) -> bool {
    running_max.is_finite()
        && ub.is_finite()
        && ub < running_max as f64 - (PRUNE_MARGIN + (running_max as f64).abs() * 1e-4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_are_chunk_aligned_and_cover_all_rows() {
        for rows in [0usize, 1, 9, 10, 11, 64, 100, 1000] {
            for n_segments in [1usize, 3, 8, 17, 1000] {
                let norms = vec![1.0f32; rows];
                let map = SegmentMap::from_norms(&norms, n_segments, 10);
                let mut next = 0usize;
                for seg in map.segments() {
                    assert_eq!(seg.start, next, "contiguous");
                    assert_eq!(seg.start % 10, 0, "chunk-aligned start");
                    assert!(seg.rows > 0, "no empty segments");
                    next = seg.start + seg.rows;
                }
                assert_eq!(next, rows, "full coverage");
                assert_eq!(map.rows(), rows);
                let max_segments = rows.div_ceil(10);
                assert!(map.len() <= n_segments.max(1).min(max_segments.max(1)));
            }
        }
    }

    #[test]
    fn zone_map_bounds_dominate_row_norms() {
        let m = Matrix::from_fn(37, 5, |r, c| ((r * 3 + c) as f32 * 0.4).sin() * (r as f32));
        let map = SegmentMap::from_matrix(&m, 37, 4, 8);
        for seg in map.segments() {
            for r in seg.start..seg.start + seg.rows {
                let norm: f64 = m
                    .row(r)
                    .iter()
                    .map(|&x| (x as f64).powi(2))
                    .sum::<f64>()
                    .sqrt();
                assert!(
                    seg.max_in_norm as f64 >= norm,
                    "segment bound {} < row {r} norm {norm}",
                    seg.max_in_norm
                );
            }
        }
    }

    #[test]
    fn nan_norms_disable_pruning_for_the_segment() {
        let norms = [1.0f32, f32::NAN, 2.0];
        let map = SegmentMap::from_norms(&norms, 1, 10);
        assert_eq!(map.segments()[0].max_in_norm, f32::INFINITY);
        assert!(!can_prune(1000.0, map.segments()[0].logit_upper_bound(1.0)));
    }

    #[test]
    fn prune_rule_requires_a_deep_finite_gap() {
        // No running max yet: never prune.
        assert!(!can_prune(f32::NEG_INFINITY, -1e6));
        // Unknown bound: never prune.
        assert!(!can_prune(10.0, f64::INFINITY));
        assert!(!can_prune(10.0, f64::NAN));
        // Gap smaller than the margin: keep.
        assert!(!can_prune(10.0, -90.0));
        // Gap beyond the margin: prune.
        assert!(can_prune(10.0, -101.0));
        assert!(can_prune(0.0, -110.5));
        // Exactly at the margin stays (strict inequality).
        assert!(!can_prune(0.0, -110.0));
    }

    #[test]
    fn unsegmented_plan_is_one_unprunable_segment() {
        let plan = SegmentPlan::unsegmented(42);
        assert_eq!(plan.rows(), 42);
        assert!(!plan.prune());
        let segs: Vec<Segment> = plan.segments().collect();
        assert_eq!(segs.len(), 1);
        assert_eq!(plan.n_segments(), 1);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs[0].rows, 42);
        assert!(!can_prune(1e30, segs[0].logit_upper_bound(1.0)));

        let empty = SegmentPlan::unsegmented(0);
        assert_eq!(empty.segments().count(), 0);
        assert_eq!(empty.n_segments(), 0);
    }

    #[test]
    fn gappy_maps_count_covered_rows_only() {
        let seg = |start: usize, rows: usize| Segment {
            start,
            rows,
            max_in_norm: f32::INFINITY,
        };
        let map = SegmentMap::from_segments(vec![seg(0, 20), seg(40, 10), seg(80, 7)], 10);
        assert_eq!(map.rows(), 37, "rows() is covered rows, not the span");
        assert_eq!(map.len(), 3);
        let plan = SegmentPlan::routed(&map, false);
        assert_eq!(plan.rows(), 37);
        assert_eq!(plan.segments().map(|s| s.rows).sum::<usize>(), 37);

        let empty = SegmentMap::from_segments(Vec::new(), 10);
        assert_eq!(empty.rows(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "overlaps or precedes")]
    fn gappy_maps_reject_overlap() {
        let seg = |start: usize, rows: usize| Segment {
            start,
            rows,
            max_in_norm: f32::INFINITY,
        };
        let _ = SegmentMap::from_segments(vec![seg(0, 20), seg(10, 10)], 10);
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn gappy_maps_reject_misaligned_starts() {
        let seg = |start: usize, rows: usize| Segment {
            start,
            rows,
            max_in_norm: f32::INFINITY,
        };
        let _ = SegmentMap::from_segments(vec![seg(5, 10)], 10);
    }

    #[test]
    fn routed_plan_reflects_its_map() {
        let norms = vec![1.0f32; 50];
        let map = SegmentMap::from_norms(&norms, 3, 10);
        let plan = SegmentPlan::routed(&map, true);
        assert!(plan.prune());
        assert_eq!(plan.rows(), 50);
        assert_eq!(plan.n_segments(), map.len());
        assert_eq!(plan.segments().count(), map.len());
    }
}

//! Multi-hop inference on top of any [`Executor`].
//!
//! The paper's inference operation can "iterate over several times for
//! better results" (Section 2.1): hop `k` computes
//! `o_k = softmax(u_k · M_INᵀ) · M_OUT` and feeds `u_{k+1} = u_k + o_k`
//! into the next hop. Every MnnFast optimization applies per hop, so this
//! module lifts the single-hop engines to hop chains through the same
//! [`Executor`] trait object the serving layer dispatches on — one seam,
//! no parallel trait hierarchy.

use crate::budget::Budget;
use crate::engine::EngineError;
use crate::exec::{Executor, Scratch, Trace};
use crate::index::ClusterIndex;
use crate::segment::SegmentPlan;
use crate::stats::InferenceStats;
use mnn_tensor::{Matrix, QuantMatrix};

/// Result of a multi-hop pass.
#[derive(Debug, Clone, PartialEq)]
pub struct HopsOutput {
    /// Response vector of the final hop.
    pub o: Vec<f32>,
    /// Question state *entering* the final hop, so the output layer
    /// computes `W · (o + u_last)` exactly as the baseline does.
    pub u_last: Vec<f32>,
    /// Question state after the final hop (`u_last + o`).
    pub u_final: Vec<f32>,
    /// Per-hop response vectors, in hop order.
    pub per_hop: Vec<Vec<f32>>,
    /// Counters merged over all hops.
    pub stats: InferenceStats,
}

/// Runs `hops` memory hops with `exec` over the first `rows` memory
/// entries, chaining `u ← u + o`, reusing `scratch` across hops and
/// accumulating per-phase timings into `trace`.
///
/// Matches `mnn-memnn`'s baseline hop semantics exactly (layer-wise tied
/// memories: the same `M_IN`/`M_OUT` serve every hop). Pass
/// `m_in.rows()` as `rows` for full matrices; serving layers pass the
/// populated prefix of their capacity-doubled stores.
///
/// # Errors
///
/// Returns [`EngineError`] from the underlying executor, or a
/// configuration error if `hops == 0`.
#[allow(clippy::too_many_arguments)]
pub fn multi_hop(
    exec: &dyn Executor,
    m_in: &Matrix,
    m_out: &Matrix,
    rows: usize,
    u0: &[f32],
    hops: usize,
    scratch: &mut Scratch,
    trace: &mut Trace,
) -> Result<HopsOutput, EngineError> {
    multi_hop_budgeted(
        exec,
        m_in,
        m_out,
        rows,
        u0,
        hops,
        scratch,
        trace,
        &Budget::unlimited(),
    )
}

/// [`multi_hop`] under an execution [`Budget`]: one budget covers the whole
/// hop chain, checked once per chunk inside every hop's forward pass (the
/// serving layer's per-question deadline spans all hops of the question).
///
/// # Errors
///
/// As [`multi_hop`], plus [`EngineError::DeadlineExceeded`] /
/// [`EngineError::Cancelled`] when the budget fails mid-chain and
/// [`EngineError::NumericFault`] when an accumulator goes non-finite.
#[allow(clippy::too_many_arguments)]
pub fn multi_hop_budgeted(
    exec: &dyn Executor,
    m_in: &Matrix,
    m_out: &Matrix,
    rows: usize,
    u0: &[f32],
    hops: usize,
    scratch: &mut Scratch,
    trace: &mut Trace,
    budget: &Budget,
) -> Result<HopsOutput, EngineError> {
    multi_hop_segmented_budgeted(
        exec,
        m_in,
        m_out,
        &SegmentPlan::unsegmented(rows),
        u0,
        hops,
        scratch,
        trace,
        budget,
    )
}

/// [`multi_hop_budgeted`] driven by a [`SegmentPlan`]: every hop runs
/// through [`Executor::forward_segmented_budgeted`], so a routed plan's
/// zone maps can prune segments on each hop independently (each hop has a
/// fresh question state and therefore a fresh running max).
///
/// # Errors
///
/// As [`multi_hop_budgeted`].
#[allow(clippy::too_many_arguments)]
pub fn multi_hop_segmented_budgeted(
    exec: &dyn Executor,
    m_in: &Matrix,
    m_out: &Matrix,
    plan: &SegmentPlan<'_>,
    u0: &[f32],
    hops: usize,
    scratch: &mut Scratch,
    trace: &mut Trace,
    budget: &Budget,
) -> Result<HopsOutput, EngineError> {
    if hops == 0 {
        return Err(EngineError::Config("hops must be positive".into()));
    }
    let mut u = u0.to_vec();
    let mut u_last = u.clone();
    let mut per_hop = Vec::with_capacity(hops);
    let mut stats = InferenceStats::default();
    let mut o = Vec::new();

    for _ in 0..hops {
        let out = exec.forward_segmented_budgeted(m_in, m_out, plan, &u, scratch, trace, budget)?;
        // Sequential hops: counters add, peak intermediates take the max
        // (which is what `merge` does).
        stats.merge(&out.stats);
        u_last = u.clone();
        for (ui, oi) in u.iter_mut().zip(&out.o) {
            *ui += oi;
        }
        per_hop.push(out.o.clone());
        // The hop's output buffer came from the scratch pool; hand it back
        // so the next hop (or question) reuses the allocation.
        scratch.recycle(std::mem::replace(&mut o, out.o));
    }

    Ok(HopsOutput {
        o,
        u_last,
        u_final: u,
        per_hop,
        stats,
    })
}

/// [`multi_hop_segmented_budgeted`] over the *quantized* memory plane:
/// every hop runs through
/// [`Executor::forward_quant_segmented_budgeted`]. The hop chain's question
/// state stays in f32 (`u ← u + o`); each hop re-quantizes its own query,
/// so per-hop quantization error never compounds through the memories —
/// only through the f32 hop outputs, the same way any bounded per-hop
/// error would.
///
/// # Errors
///
/// As [`multi_hop_budgeted`], plus [`EngineError::Config`] when the
/// executor has no quantized path.
#[allow(clippy::too_many_arguments)]
pub fn multi_hop_quant_segmented_budgeted(
    exec: &dyn Executor,
    m_in: &QuantMatrix,
    m_out: &QuantMatrix,
    plan: &SegmentPlan<'_>,
    u0: &[f32],
    hops: usize,
    scratch: &mut Scratch,
    trace: &mut Trace,
    budget: &Budget,
) -> Result<HopsOutput, EngineError> {
    if hops == 0 {
        return Err(EngineError::Config("hops must be positive".into()));
    }
    let mut u = u0.to_vec();
    let mut u_last = u.clone();
    let mut per_hop = Vec::with_capacity(hops);
    let mut stats = InferenceStats::default();
    let mut o = Vec::new();

    for _ in 0..hops {
        let out =
            exec.forward_quant_segmented_budgeted(m_in, m_out, plan, &u, scratch, trace, budget)?;
        stats.merge(&out.stats);
        u_last = u.clone();
        for (ui, oi) in u.iter_mut().zip(&out.o) {
            *ui += oi;
        }
        per_hop.push(out.o.clone());
        scratch.recycle(std::mem::replace(&mut o, out.o));
    }

    Ok(HopsOutput {
        o,
        u_last,
        u_final: u,
        per_hop,
        stats,
    })
}

/// [`multi_hop_segmented_budgeted`] through the sparse top-K attention
/// path: every hop runs
/// [`Executor::forward_topk_segmented_budgeted`], *re-probing the
/// candidate index with the hop's own question state* — hop `k+1`'s query
/// `u + o` attends where *it* points, not where hop `k` pointed, which is
/// what makes multi-hop chains work at all (each hop retrieves a different
/// memory neighborhood).
///
/// # Errors
///
/// As [`multi_hop_budgeted`], plus the top-K admission errors of
/// [`Executor::forward_topk_segmented_budgeted`] —
/// [`EngineError::IndexDeclined`] aborts the *whole chain* (a half-sparse,
/// half-exact chain would be neither answer), and callers rerun the chain
/// on the exact path.
#[allow(clippy::too_many_arguments)]
pub fn multi_hop_topk_segmented_budgeted(
    exec: &dyn Executor,
    m_in: &Matrix,
    m_out: &Matrix,
    index: &ClusterIndex,
    u0: &[f32],
    hops: usize,
    topk: usize,
    nprobe: usize,
    scratch: &mut Scratch,
    trace: &mut Trace,
    budget: &Budget,
) -> Result<HopsOutput, EngineError> {
    if hops == 0 {
        return Err(EngineError::Config("hops must be positive".into()));
    }
    let mut u = u0.to_vec();
    let mut u_last = u.clone();
    let mut per_hop = Vec::with_capacity(hops);
    let mut stats = InferenceStats::default();
    let mut o = Vec::new();

    for _ in 0..hops {
        let out = exec.forward_topk_segmented_budgeted(
            m_in, m_out, index, &u, topk, nprobe, scratch, trace, budget,
        )?;
        stats.merge(&out.stats);
        u_last = u.clone();
        for (ui, oi) in u.iter_mut().zip(&out.o) {
            *ui += oi;
        }
        per_hop.push(out.o.clone());
        scratch.recycle(std::mem::replace(&mut o, out.o));
    }

    Ok(HopsOutput {
        o,
        u_last,
        u_final: u,
        per_hop,
        stats,
    })
}

/// [`multi_hop_topk_segmented_budgeted`] over the *quantized* memory
/// plane: every hop probes the (f32-centroid) index with its own question
/// state and rescores candidates through
/// [`Executor::forward_quant_topk_segmented_budgeted`] on the int8
/// kernels.
///
/// # Errors
///
/// As [`multi_hop_topk_segmented_budgeted`], plus [`EngineError::Config`]
/// when the executor has no quantized path.
#[allow(clippy::too_many_arguments)]
pub fn multi_hop_quant_topk_segmented_budgeted(
    exec: &dyn Executor,
    m_in: &QuantMatrix,
    m_out: &QuantMatrix,
    index: &ClusterIndex,
    u0: &[f32],
    hops: usize,
    topk: usize,
    nprobe: usize,
    scratch: &mut Scratch,
    trace: &mut Trace,
    budget: &Budget,
) -> Result<HopsOutput, EngineError> {
    if hops == 0 {
        return Err(EngineError::Config("hops must be positive".into()));
    }
    let mut u = u0.to_vec();
    let mut u_last = u.clone();
    let mut per_hop = Vec::with_capacity(hops);
    let mut stats = InferenceStats::default();
    let mut o = Vec::new();

    for _ in 0..hops {
        let out = exec.forward_quant_topk_segmented_budgeted(
            m_in, m_out, index, &u, topk, nprobe, scratch, trace, budget,
        )?;
        stats.merge(&out.stats);
        u_last = u.clone();
        for (ui, oi) in u.iter_mut().zip(&out.o) {
            *ui += oi;
        }
        per_hop.push(out.o.clone());
        scratch.recycle(std::mem::replace(&mut o, out.o));
    }

    Ok(HopsOutput {
        o,
        u_last,
        u_final: u,
        per_hop,
        stats,
    })
}

/// [`multi_hop_batch_segmented_budgeted`] over the quantized memory plane:
/// every hop of the batch runs through
/// [`Executor::forward_quant_batch_segmented_budgeted`].
///
/// # Errors
///
/// As [`multi_hop_batch_budgeted`], plus [`EngineError::Config`] when the
/// executor has no quantized path.
#[allow(clippy::too_many_arguments)]
pub fn multi_hop_quant_batch_segmented_budgeted(
    exec: &dyn Executor,
    m_in: &QuantMatrix,
    m_out: &QuantMatrix,
    plan: &SegmentPlan<'_>,
    questions: &[Vec<f32>],
    hops: usize,
    scratch: &mut Scratch,
    trace: &mut Trace,
    budgets: &[Budget],
) -> Result<Vec<Result<HopsOutput, EngineError>>, EngineError> {
    if hops == 0 {
        return Err(EngineError::Config("hops must be positive".into()));
    }
    if budgets.len() != questions.len() {
        return Err(EngineError::Config(format!(
            "budget count {} != question count {}",
            budgets.len(),
            questions.len()
        )));
    }
    let nq = questions.len();
    let mut us: Vec<Vec<f32>> = questions.to_vec();
    let mut u_lasts: Vec<Vec<f32>> = questions.to_vec();
    let mut per_hops: Vec<Vec<Vec<f32>>> = vec![Vec::with_capacity(hops); nq];
    let mut stats = vec![InferenceStats::default(); nq];
    let mut os: Vec<Vec<f32>> = vec![Vec::new(); nq];
    let mut errors: Vec<Option<EngineError>> = (0..nq).map(|_| None).collect();

    for _ in 0..hops {
        let idx: Vec<usize> = (0..nq).filter(|&q| errors[q].is_none()).collect();
        if idx.is_empty() {
            break;
        }
        let sub_questions: Vec<Vec<f32>> = idx.iter().map(|&q| us[q].clone()).collect();
        let sub_budgets: Vec<Budget> = idx.iter().map(|&q| budgets[q].clone()).collect();
        let results = exec.forward_quant_batch_segmented_budgeted(
            m_in,
            m_out,
            plan,
            &sub_questions,
            scratch,
            trace,
            &sub_budgets,
        )?;
        for (&q, result) in idx.iter().zip(results) {
            match result {
                Ok(out) => {
                    stats[q].merge(&out.stats);
                    u_lasts[q].clone_from(&us[q]);
                    for (ui, oi) in us[q].iter_mut().zip(&out.o) {
                        *ui += oi;
                    }
                    per_hops[q].push(out.o.clone());
                    scratch.recycle(std::mem::replace(&mut os[q], out.o));
                }
                Err(e) => errors[q] = Some(e),
            }
        }
    }

    let mut outputs = Vec::with_capacity(nq);
    for (q, err) in errors.into_iter().enumerate() {
        match err {
            Some(e) => outputs.push(Err(e)),
            None => outputs.push(Ok(HopsOutput {
                o: std::mem::take(&mut os[q]),
                u_last: std::mem::take(&mut u_lasts[q]),
                u_final: std::mem::take(&mut us[q]),
                per_hop: std::mem::take(&mut per_hops[q]),
                stats: stats[q],
            })),
        }
    }
    Ok(outputs)
}

/// Batched multi-hop: runs every question's hop chain through
/// [`Executor::forward_batch_budgeted`], so each hop streams the memories
/// once per *batch* instead of once per question (`budgets[q]` governs
/// `questions[q]` across its entire chain).
///
/// Per-question failures are isolated: a question whose budget expires or
/// whose accumulator faults in hop `k` carries that typed error in its slot
/// and is dropped from the remaining hops, while its batchmates keep
/// hopping. Slots come back in question order.
///
/// # Errors
///
/// The outer `Err` is batch-level, as [`Executor::forward_batch_budgeted`],
/// plus a configuration error if `hops == 0`. Per-question budget/numeric
/// errors are in the inner `Result`s.
#[allow(clippy::too_many_arguments)]
pub fn multi_hop_batch_budgeted(
    exec: &dyn Executor,
    m_in: &Matrix,
    m_out: &Matrix,
    rows: usize,
    questions: &[Vec<f32>],
    hops: usize,
    scratch: &mut Scratch,
    trace: &mut Trace,
    budgets: &[Budget],
) -> Result<Vec<Result<HopsOutput, EngineError>>, EngineError> {
    multi_hop_batch_segmented_budgeted(
        exec,
        m_in,
        m_out,
        &SegmentPlan::unsegmented(rows),
        questions,
        hops,
        scratch,
        trace,
        budgets,
    )
}

/// [`multi_hop_batch_budgeted`] driven by a [`SegmentPlan`]: every hop of
/// the batch runs through [`Executor::forward_batch_segmented_budgeted`],
/// so routed plans prune per question per hop.
///
/// # Errors
///
/// As [`multi_hop_batch_budgeted`].
#[allow(clippy::too_many_arguments)]
pub fn multi_hop_batch_segmented_budgeted(
    exec: &dyn Executor,
    m_in: &Matrix,
    m_out: &Matrix,
    plan: &SegmentPlan<'_>,
    questions: &[Vec<f32>],
    hops: usize,
    scratch: &mut Scratch,
    trace: &mut Trace,
    budgets: &[Budget],
) -> Result<Vec<Result<HopsOutput, EngineError>>, EngineError> {
    if hops == 0 {
        return Err(EngineError::Config("hops must be positive".into()));
    }
    if budgets.len() != questions.len() {
        return Err(EngineError::Config(format!(
            "budget count {} != question count {}",
            budgets.len(),
            questions.len()
        )));
    }
    let nq = questions.len();
    let mut us: Vec<Vec<f32>> = questions.to_vec();
    let mut u_lasts: Vec<Vec<f32>> = questions.to_vec();
    let mut per_hops: Vec<Vec<Vec<f32>>> = vec![Vec::with_capacity(hops); nq];
    let mut stats = vec![InferenceStats::default(); nq];
    let mut os: Vec<Vec<f32>> = vec![Vec::new(); nq];
    let mut errors: Vec<Option<EngineError>> = (0..nq).map(|_| None).collect();

    for _ in 0..hops {
        // Compact the still-healthy questions into the hop's sub-batch; a
        // slot that already failed stays failed and does no further work.
        let idx: Vec<usize> = (0..nq).filter(|&q| errors[q].is_none()).collect();
        if idx.is_empty() {
            break;
        }
        let sub_questions: Vec<Vec<f32>> = idx.iter().map(|&q| us[q].clone()).collect();
        let sub_budgets: Vec<Budget> = idx.iter().map(|&q| budgets[q].clone()).collect();
        let results = exec.forward_batch_segmented_budgeted(
            m_in,
            m_out,
            plan,
            &sub_questions,
            scratch,
            trace,
            &sub_budgets,
        )?;
        for (&q, result) in idx.iter().zip(results) {
            match result {
                Ok(out) => {
                    stats[q].merge(&out.stats);
                    u_lasts[q].clone_from(&us[q]);
                    for (ui, oi) in us[q].iter_mut().zip(&out.o) {
                        *ui += oi;
                    }
                    per_hops[q].push(out.o.clone());
                    scratch.recycle(std::mem::replace(&mut os[q], out.o));
                }
                Err(e) => errors[q] = Some(e),
            }
        }
    }

    let mut outputs = Vec::with_capacity(nq);
    for (q, err) in errors.into_iter().enumerate() {
        match err {
            Some(e) => outputs.push(Err(e)),
            None => outputs.push(Ok(HopsOutput {
                o: std::mem::take(&mut os[q]),
                u_last: std::mem::take(&mut u_lasts[q]),
                u_final: std::mem::take(&mut us[q]),
                per_hop: std::mem::take(&mut per_hops[q]),
                stats: stats[q],
            })),
        }
    }
    Ok(outputs)
}

/// One-shot convenience over [`multi_hop`]: fresh scratch, tracing off,
/// all memory rows.
///
/// # Errors
///
/// As [`multi_hop`].
pub fn multi_hop_simple(
    exec: &dyn Executor,
    m_in: &Matrix,
    m_out: &Matrix,
    u0: &[f32],
    hops: usize,
) -> Result<HopsOutput, EngineError> {
    let mut scratch = Scratch::new();
    let mut trace = Trace::disabled();
    multi_hop(
        exec,
        m_in,
        m_out,
        m_in.rows(),
        u0,
        hops,
        &mut scratch,
        &mut trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ColumnEngine, EngineKind, ExecPlan, MnnFastConfig, ParallelEngine, Phase, SkipPolicy,
        StreamingEngine,
    };
    use mnn_tensor::softmax::softmax_in_place;
    use mnn_tensor::{assert_slice_approx_eq, kernels};

    fn memories(ns: usize, ed: usize) -> (Matrix, Matrix, Vec<f32>) {
        let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 3 + c) as f32 * 0.11).sin() * 0.5);
        let m_out = Matrix::from_fn(ns, ed, |r, c| ((r + 2 * c) as f32 * 0.07).cos() * 0.5);
        let u: Vec<f32> = (0..ed).map(|i| (i as f32 * 0.4).sin() * 0.3).collect();
        (m_in, m_out, u)
    }

    /// Reference multi-hop with the textbook dataflow.
    fn reference_hops(m_in: &Matrix, m_out: &Matrix, u0: &[f32], hops: usize) -> Vec<f32> {
        let mut u = u0.to_vec();
        let mut o = vec![0.0f32; m_out.cols()];
        for _ in 0..hops {
            let mut p = vec![0.0f32; m_in.rows()];
            kernels::gemv(m_in, &u, &mut p).unwrap();
            softmax_in_place(&mut p);
            kernels::gevm(&p, m_out, &mut o).unwrap();
            for (ui, &oi) in u.iter_mut().zip(&o) {
                *ui += oi;
            }
        }
        u
    }

    #[test]
    fn multi_hop_matches_reference_for_all_executors() {
        let (m_in, m_out, u) = memories(60, 8);
        let config = MnnFastConfig::new(16);
        let plan_exec = ExecPlan::new(config).with_kind(EngineKind::Auto).executor();
        let executors: [&dyn Executor; 4] = [
            &ColumnEngine::new(config),
            &StreamingEngine::new(config),
            &ParallelEngine::new(config.with_threads(2)),
            &plan_exec,
        ];
        for hops in [1usize, 2, 3] {
            let expect = reference_hops(&m_in, &m_out, &u, hops);
            for exec in executors {
                let out = multi_hop_simple(exec, &m_in, &m_out, &u, hops).unwrap();
                assert_slice_approx_eq(&out.u_final, &expect, 1e-3);
                assert_eq!(out.per_hop.len(), hops);
            }
        }
    }

    #[test]
    fn u_last_plus_o_equals_u_final() {
        let (m_in, m_out, u) = memories(30, 4);
        let engine = ColumnEngine::new(MnnFastConfig::new(8));
        let out = multi_hop_simple(&engine, &m_in, &m_out, &u, 3).unwrap();
        for ((last, o), fin) in out.u_last.iter().zip(&out.o).zip(&out.u_final) {
            assert!((last + o - fin).abs() < 1e-6);
        }
    }

    #[test]
    fn stats_accumulate_across_hops() {
        let (m_in, m_out, u) = memories(40, 4);
        let engine = ColumnEngine::new(MnnFastConfig::new(10));
        let one = multi_hop_simple(&engine, &m_in, &m_out, &u, 1).unwrap();
        let three = multi_hop_simple(&engine, &m_in, &m_out, &u, 3).unwrap();
        assert_eq!(three.stats.rows_total, 3 * one.stats.rows_total);
        assert_eq!(three.stats.divisions, 3 * one.stats.divisions);
        // Peak intermediates do not triple: buffers are reused per hop.
        assert_eq!(three.stats.intermediate_bytes, one.stats.intermediate_bytes);
    }

    #[test]
    fn zero_hops_is_an_error() {
        let (m_in, m_out, u) = memories(10, 4);
        let engine = ColumnEngine::new(MnnFastConfig::new(4));
        assert!(matches!(
            multi_hop_simple(&engine, &m_in, &m_out, &u, 0),
            Err(EngineError::Config(_))
        ));
    }

    #[test]
    fn skipping_applies_on_every_hop() {
        let (m_in, m_out, u) = memories(50, 4);
        let engine =
            ColumnEngine::new(MnnFastConfig::new(10).with_skip(SkipPolicy::Probability(0.015)));
        let out = multi_hop_simple(&engine, &m_in, &m_out, &u, 2).unwrap();
        assert_eq!(out.stats.rows_total, 100);
        assert!(out.stats.rows_skipped > 0);
    }

    #[test]
    fn batched_hops_match_sequential_hops() {
        let (m_in, m_out, _) = memories(60, 8);
        let questions: Vec<Vec<f32>> = (0..4)
            .map(|q| {
                (0..8)
                    .map(|i| ((q * 8 + i) as f32 * 0.17).sin() * 0.3)
                    .collect()
            })
            .collect();
        let exec = ExecPlan::new(MnnFastConfig::new(16)).executor();
        let mut scratch = Scratch::new();
        let mut trace = Trace::enabled();
        let budgets = vec![Budget::unlimited(); questions.len()];
        let batched = multi_hop_batch_budgeted(
            &exec,
            &m_in,
            &m_out,
            m_in.rows(),
            &questions,
            3,
            &mut scratch,
            &mut trace,
            &budgets,
        )
        .unwrap();
        assert_eq!(batched.len(), questions.len());
        for (q, result) in batched.iter().enumerate() {
            let out = result.as_ref().unwrap();
            let single = multi_hop_simple(&exec, &m_in, &m_out, &questions[q], 3).unwrap();
            assert_slice_approx_eq(&out.u_final, &single.u_final, 1e-4);
            assert_slice_approx_eq(&out.o, &single.o, 1e-4);
            assert_eq!(out.per_hop.len(), 3);
            assert_eq!(out.stats.rows_total, single.stats.rows_total);
        }
        assert!(trace.count(Phase::BatchGemm) > 0);
    }

    #[test]
    fn batched_hops_isolate_a_cancelled_question() {
        use crate::budget::CancelToken;
        let (m_in, m_out, _) = memories(40, 4);
        let questions: Vec<Vec<f32>> = (0..3)
            .map(|q| (0..4).map(|i| ((q + i) as f32 * 0.2).cos() * 0.4).collect())
            .collect();
        let exec = ExecPlan::new(MnnFastConfig::new(10)).executor();
        let token = CancelToken::new();
        token.cancel();
        let budgets = vec![
            Budget::unlimited(),
            Budget::unlimited().with_cancel(token),
            Budget::unlimited(),
        ];
        let batched = multi_hop_batch_budgeted(
            &exec,
            &m_in,
            &m_out,
            m_in.rows(),
            &questions,
            2,
            &mut Scratch::new(),
            &mut Trace::disabled(),
            &budgets,
        )
        .unwrap();
        assert!(matches!(batched[1], Err(EngineError::Cancelled)));
        for q in [0usize, 2] {
            let out = batched[q].as_ref().unwrap();
            let single = multi_hop_simple(&exec, &m_in, &m_out, &questions[q], 2).unwrap();
            assert_slice_approx_eq(&out.u_final, &single.u_final, 1e-4);
        }
    }

    #[test]
    fn hops_over_prefix_and_traced() {
        let (m_in, m_out, u) = memories(50, 4);
        let engine = ColumnEngine::new(MnnFastConfig::new(10));
        let mut scratch = Scratch::new();
        let mut trace = Trace::enabled();
        let out = multi_hop(&engine, &m_in, &m_out, 30, &u, 2, &mut scratch, &mut trace).unwrap();
        assert_eq!(out.stats.rows_total, 60);
        assert_eq!(trace.count(Phase::FusedChunk), 60);
        assert_eq!(trace.count(Phase::Divide), 8, "two hops of ed divisions");
        // The trailing hop's output buffer was recycled into the pool.
        assert!(scratch.pooled_outputs() >= 1);
    }
}

//! Multi-hop inference on top of any [`Executor`].
//!
//! The paper's inference operation can "iterate over several times for
//! better results" (Section 2.1): hop `k` computes
//! `o_k = softmax(u_k · M_INᵀ) · M_OUT` and feeds `u_{k+1} = u_k + o_k`
//! into the next hop. Every MnnFast optimization applies per hop, so this
//! module lifts the single-hop engines to hop chains through the same
//! [`Executor`] trait object the serving layer dispatches on — one seam,
//! no parallel trait hierarchy.

use crate::budget::Budget;
use crate::engine::EngineError;
use crate::exec::{Executor, Scratch, Trace};
use crate::stats::InferenceStats;
use mnn_tensor::Matrix;

/// Result of a multi-hop pass.
#[derive(Debug, Clone, PartialEq)]
pub struct HopsOutput {
    /// Response vector of the final hop.
    pub o: Vec<f32>,
    /// Question state *entering* the final hop, so the output layer
    /// computes `W · (o + u_last)` exactly as the baseline does.
    pub u_last: Vec<f32>,
    /// Question state after the final hop (`u_last + o`).
    pub u_final: Vec<f32>,
    /// Per-hop response vectors, in hop order.
    pub per_hop: Vec<Vec<f32>>,
    /// Counters merged over all hops.
    pub stats: InferenceStats,
}

/// Runs `hops` memory hops with `exec` over the first `rows` memory
/// entries, chaining `u ← u + o`, reusing `scratch` across hops and
/// accumulating per-phase timings into `trace`.
///
/// Matches `mnn-memnn`'s baseline hop semantics exactly (layer-wise tied
/// memories: the same `M_IN`/`M_OUT` serve every hop). Pass
/// `m_in.rows()` as `rows` for full matrices; serving layers pass the
/// populated prefix of their capacity-doubled stores.
///
/// # Errors
///
/// Returns [`EngineError`] from the underlying executor, or a
/// configuration error if `hops == 0`.
#[allow(clippy::too_many_arguments)]
pub fn multi_hop(
    exec: &dyn Executor,
    m_in: &Matrix,
    m_out: &Matrix,
    rows: usize,
    u0: &[f32],
    hops: usize,
    scratch: &mut Scratch,
    trace: &mut Trace,
) -> Result<HopsOutput, EngineError> {
    multi_hop_budgeted(
        exec,
        m_in,
        m_out,
        rows,
        u0,
        hops,
        scratch,
        trace,
        &Budget::unlimited(),
    )
}

/// [`multi_hop`] under an execution [`Budget`]: one budget covers the whole
/// hop chain, checked once per chunk inside every hop's forward pass (the
/// serving layer's per-question deadline spans all hops of the question).
///
/// # Errors
///
/// As [`multi_hop`], plus [`EngineError::DeadlineExceeded`] /
/// [`EngineError::Cancelled`] when the budget fails mid-chain and
/// [`EngineError::NumericFault`] when an accumulator goes non-finite.
#[allow(clippy::too_many_arguments)]
pub fn multi_hop_budgeted(
    exec: &dyn Executor,
    m_in: &Matrix,
    m_out: &Matrix,
    rows: usize,
    u0: &[f32],
    hops: usize,
    scratch: &mut Scratch,
    trace: &mut Trace,
    budget: &Budget,
) -> Result<HopsOutput, EngineError> {
    if hops == 0 {
        return Err(EngineError::Config("hops must be positive".into()));
    }
    let mut u = u0.to_vec();
    let mut u_last = u.clone();
    let mut per_hop = Vec::with_capacity(hops);
    let mut stats = InferenceStats::default();
    let mut o = Vec::new();

    for _ in 0..hops {
        let out = exec.forward_prefix_budgeted(m_in, m_out, rows, &u, scratch, trace, budget)?;
        // Sequential hops: counters add, peak intermediates take the max
        // (which is what `merge` does).
        stats.merge(&out.stats);
        u_last = u.clone();
        for (ui, oi) in u.iter_mut().zip(&out.o) {
            *ui += oi;
        }
        per_hop.push(out.o.clone());
        // The hop's output buffer came from the scratch pool; hand it back
        // so the next hop (or question) reuses the allocation.
        scratch.recycle(std::mem::replace(&mut o, out.o));
    }

    Ok(HopsOutput {
        o,
        u_last,
        u_final: u,
        per_hop,
        stats,
    })
}

/// One-shot convenience over [`multi_hop`]: fresh scratch, tracing off,
/// all memory rows.
///
/// # Errors
///
/// As [`multi_hop`].
pub fn multi_hop_simple(
    exec: &dyn Executor,
    m_in: &Matrix,
    m_out: &Matrix,
    u0: &[f32],
    hops: usize,
) -> Result<HopsOutput, EngineError> {
    let mut scratch = Scratch::new();
    let mut trace = Trace::disabled();
    multi_hop(
        exec,
        m_in,
        m_out,
        m_in.rows(),
        u0,
        hops,
        &mut scratch,
        &mut trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ColumnEngine, EngineKind, ExecPlan, MnnFastConfig, ParallelEngine, Phase, SkipPolicy,
        StreamingEngine,
    };
    use mnn_tensor::softmax::softmax_in_place;
    use mnn_tensor::{assert_slice_approx_eq, kernels};

    fn memories(ns: usize, ed: usize) -> (Matrix, Matrix, Vec<f32>) {
        let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 3 + c) as f32 * 0.11).sin() * 0.5);
        let m_out = Matrix::from_fn(ns, ed, |r, c| ((r + 2 * c) as f32 * 0.07).cos() * 0.5);
        let u: Vec<f32> = (0..ed).map(|i| (i as f32 * 0.4).sin() * 0.3).collect();
        (m_in, m_out, u)
    }

    /// Reference multi-hop with the textbook dataflow.
    fn reference_hops(m_in: &Matrix, m_out: &Matrix, u0: &[f32], hops: usize) -> Vec<f32> {
        let mut u = u0.to_vec();
        let mut o = vec![0.0f32; m_out.cols()];
        for _ in 0..hops {
            let mut p = vec![0.0f32; m_in.rows()];
            kernels::gemv(m_in, &u, &mut p).unwrap();
            softmax_in_place(&mut p);
            kernels::gevm(&p, m_out, &mut o).unwrap();
            for (ui, &oi) in u.iter_mut().zip(&o) {
                *ui += oi;
            }
        }
        u
    }

    #[test]
    fn multi_hop_matches_reference_for_all_executors() {
        let (m_in, m_out, u) = memories(60, 8);
        let config = MnnFastConfig::new(16);
        let plan_exec = ExecPlan::new(config).with_kind(EngineKind::Auto).executor();
        let executors: [&dyn Executor; 4] = [
            &ColumnEngine::new(config),
            &StreamingEngine::new(config),
            &ParallelEngine::new(config.with_threads(2)),
            &plan_exec,
        ];
        for hops in [1usize, 2, 3] {
            let expect = reference_hops(&m_in, &m_out, &u, hops);
            for exec in executors {
                let out = multi_hop_simple(exec, &m_in, &m_out, &u, hops).unwrap();
                assert_slice_approx_eq(&out.u_final, &expect, 1e-3);
                assert_eq!(out.per_hop.len(), hops);
            }
        }
    }

    #[test]
    fn u_last_plus_o_equals_u_final() {
        let (m_in, m_out, u) = memories(30, 4);
        let engine = ColumnEngine::new(MnnFastConfig::new(8));
        let out = multi_hop_simple(&engine, &m_in, &m_out, &u, 3).unwrap();
        for ((last, o), fin) in out.u_last.iter().zip(&out.o).zip(&out.u_final) {
            assert!((last + o - fin).abs() < 1e-6);
        }
    }

    #[test]
    fn stats_accumulate_across_hops() {
        let (m_in, m_out, u) = memories(40, 4);
        let engine = ColumnEngine::new(MnnFastConfig::new(10));
        let one = multi_hop_simple(&engine, &m_in, &m_out, &u, 1).unwrap();
        let three = multi_hop_simple(&engine, &m_in, &m_out, &u, 3).unwrap();
        assert_eq!(three.stats.rows_total, 3 * one.stats.rows_total);
        assert_eq!(three.stats.divisions, 3 * one.stats.divisions);
        // Peak intermediates do not triple: buffers are reused per hop.
        assert_eq!(three.stats.intermediate_bytes, one.stats.intermediate_bytes);
    }

    #[test]
    fn zero_hops_is_an_error() {
        let (m_in, m_out, u) = memories(10, 4);
        let engine = ColumnEngine::new(MnnFastConfig::new(4));
        assert!(matches!(
            multi_hop_simple(&engine, &m_in, &m_out, &u, 0),
            Err(EngineError::Config(_))
        ));
    }

    #[test]
    fn skipping_applies_on_every_hop() {
        let (m_in, m_out, u) = memories(50, 4);
        let engine =
            ColumnEngine::new(MnnFastConfig::new(10).with_skip(SkipPolicy::Probability(0.015)));
        let out = multi_hop_simple(&engine, &m_in, &m_out, &u, 2).unwrap();
        assert_eq!(out.stats.rows_total, 100);
        assert!(out.stats.rows_skipped > 0);
    }

    #[test]
    fn hops_over_prefix_and_traced() {
        let (m_in, m_out, u) = memories(50, 4);
        let engine = ColumnEngine::new(MnnFastConfig::new(10));
        let mut scratch = Scratch::new();
        let mut trace = Trace::enabled();
        let out = multi_hop(&engine, &m_in, &m_out, 30, &u, 2, &mut scratch, &mut trace).unwrap();
        assert_eq!(out.stats.rows_total, 60);
        assert_eq!(trace.count(Phase::FusedChunk), 60);
        assert_eq!(trace.count(Phase::Divide), 8, "two hops of ed divisions");
        // The trailing hop's output buffer was recycled into the pool.
        assert!(scratch.pooled_outputs() >= 1);
    }
}

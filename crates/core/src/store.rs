//! Growable, segment-aware storage for the embedded memories.
//!
//! [`SegmentedStore`] keeps the capacity-doubled `M_IN`/`M_OUT` row store
//! and, alongside it, the *zone-map* metadata the segmented execution plane
//! needs: a per-row upper bound on the `M_IN` embedding norm, maintained
//! incrementally on every push/evict/clear. From those norms the store can
//! stamp out a routed [`SegmentMap`] (chunk-aligned segments, each carrying
//! the max norm of its rows — and therefore, by Cauchy–Schwarz, the max
//! possible logit against any query) without rescanning the matrix. A
//! monotone version counter lets sessions cache the map and rebuild it only
//! when the store has actually changed.

use crate::index::ClusterIndex;
use crate::segment::row_norm_upper;
use crate::SegmentMap;
use mnn_tensor::{Matrix, QuantMatrix};

/// The int8 mirror of the populated prefix: per-row symmetric codes and
/// scales for both memories, plus the store version it was synchronized
/// at. The mirror is only served while `synced_at` matches the store's
/// version counter — a mirror that missed a mutation is *stale* and must
/// never reach an engine.
#[derive(Debug, Clone)]
struct QuantMirror {
    m_in_q: QuantMatrix,
    m_out_q: QuantMatrix,
    synced_at: u64,
}

/// Capacity-doubled row store for `M_IN`/`M_OUT` with per-row zone-map
/// norms.
///
/// Rows append in O(ed) amortized; the engines attend over the populated
/// prefix via `ColumnEngine::forward_prefix` (or a routed segment plan), so
/// no per-question copy is ever made. A bounded store evicts its oldest
/// rows (sliding-window memory) when full.
#[derive(Debug, Clone)]
pub struct SegmentedStore {
    m_in: Matrix,
    m_out: Matrix,
    len: usize,
    max_rows: Option<usize>,
    /// Per-row upper bound on the `M_IN` row norm (parallel to rows
    /// `0..len`), maintained on push/evict/clear.
    norms: Vec<f32>,
    /// Bumped on every mutation; cached [`SegmentMap`]s key on it.
    version: u64,
    /// Optional int8 mirror for [`Precision::Int8`] serving, maintained
    /// incrementally on push/evict/clear once enabled.
    ///
    /// [`Precision::Int8`]: crate::Precision::Int8
    quant: Option<QuantMirror>,
    /// Optional clustered top-K candidate index for sparse attention,
    /// maintained incrementally on push/evict once enabled (a `clear`
    /// drops it — retrained on demand). Version-stamped exactly like the
    /// quant mirror: a stale index is never served.
    index: Option<ClusterIndex>,
}

/// The pre-segmentation name of [`SegmentedStore`], kept as an alias so
/// existing call sites and docs keep reading naturally.
pub type MemoryStore = SegmentedStore;

impl SegmentedStore {
    /// Creates an empty store for `ed`-dimensional rows. `max_rows` bounds
    /// the memory (oldest rows are evicted past the bound); `None` grows
    /// without limit.
    ///
    /// # Panics
    ///
    /// Panics if `ed == 0` or `max_rows == Some(0)`.
    pub fn new(ed: usize, max_rows: Option<usize>) -> Self {
        assert!(ed > 0, "embedding dimension must be positive");
        assert!(max_rows != Some(0), "max_rows must be positive");
        let initial = 16usize.min(max_rows.unwrap_or(16));
        Self {
            m_in: Matrix::zeros(initial, ed),
            m_out: Matrix::zeros(initial, ed),
            len: 0,
            max_rows,
            norms: Vec::new(),
            version: 0,
            quant: None,
            index: None,
        }
    }

    /// Number of populated rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Embedding dimension.
    pub fn embedding_dim(&self) -> usize {
        self.m_in.cols()
    }

    /// Current allocated capacity in rows.
    pub fn capacity(&self) -> usize {
        self.m_in.rows()
    }

    /// The input memory (attend over rows `0..len()` only).
    pub fn m_in(&self) -> &Matrix {
        &self.m_in
    }

    /// The output memory (attend over rows `0..len()` only).
    pub fn m_out(&self) -> &Matrix {
        &self.m_out
    }

    /// Per-row `M_IN` norm upper bounds, parallel to rows `0..len()`.
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// Monotone mutation counter: two equal versions guarantee the store
    /// (and therefore any [`SegmentMap`] built from it) is unchanged.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether the int8 mirror exists and reflects the current version.
    pub fn quant_is_synced(&self) -> bool {
        self.quant
            .as_ref()
            .is_some_and(|q| q.synced_at == self.version)
    }

    /// (Re)builds the int8 mirror of the populated prefix and marks it
    /// synchronized. A no-op when the mirror is already current. After
    /// this call every `push`/`evict_front`/`clear` keeps the mirror in
    /// lockstep (re-quantizing appended rows), so the mirror only goes
    /// stale if the store is mutated through a path that bypasses those
    /// methods — which [`Self::quant`]'s version check still catches.
    pub fn enable_quant(&mut self) {
        if self.quant_is_synced() {
            return;
        }
        let ed = self.embedding_dim();
        let mut m_in_q = QuantMatrix::with_capacity(self.len, ed);
        let mut m_out_q = QuantMatrix::with_capacity(self.len, ed);
        for r in 0..self.len {
            m_in_q.push_row(self.m_in.row(r));
            m_out_q.push_row(self.m_out.row(r));
        }
        self.quant = Some(QuantMirror {
            m_in_q,
            m_out_q,
            synced_at: self.version,
        });
    }

    /// Drops the int8 mirror (e.g. when a session switches back to f32
    /// serving), releasing its memory.
    pub fn disable_quant(&mut self) {
        self.quant = None;
    }

    /// The int8 mirror of `(M_IN, M_OUT)`, or `None` if it was never
    /// enabled *or* is stale (the store mutated since the last sync).
    /// Callers that get `None` must either fall back to the f32 plane or
    /// call [`Self::enable_quant`] to rebuild.
    pub fn quant(&self) -> Option<(&QuantMatrix, &QuantMatrix)> {
        self.quant
            .as_ref()
            .filter(|q| q.synced_at == self.version)
            .map(|q| (&q.m_in_q, &q.m_out_q))
    }

    /// Bytes resident in the int8 mirror (codes + scales, both memories);
    /// 0 when the mirror is disabled.
    pub fn quant_resident_bytes(&self) -> u64 {
        self.quant.as_ref().map_or(0, |q| {
            q.m_in_q.resident_bytes() + q.m_out_q.resident_bytes()
        })
    }

    /// Whether the top-K candidate index exists and reflects the current
    /// store version.
    pub fn index_is_synced(&self) -> bool {
        self.index
            .as_ref()
            .is_some_and(|ix| ix.is_synced(self.version))
    }

    /// Ensures the top-K candidate index exists, is synchronized, and its
    /// centroids still fit the data: an O(1) no-op when the index is
    /// current, a full [`ClusterIndex::build`] when it is missing, stale
    /// (a mutation bypassed the incremental maintenance), or *drifted*
    /// (the memory more than doubled or halved since its centroids were
    /// trained — still coherent, but no longer clustering the data it
    /// sees). After this call every `push`/`evict_front` keeps the index
    /// in lockstep; `clear` drops it entirely (nothing left to cluster).
    pub fn enable_index(&mut self) {
        let current = self
            .index
            .as_ref()
            .is_some_and(|ix| ix.is_synced(self.version) && !ix.is_drifted());
        if current {
            return;
        }
        self.index = Some(ClusterIndex::build(&self.m_in, self.len, self.version));
    }

    /// Drops the top-K candidate index (e.g. when a session leaves sparse
    /// serving), releasing its memory.
    pub fn disable_index(&mut self) {
        self.index = None;
    }

    /// The top-K candidate index, or `None` if it was never enabled *or*
    /// is stale (the store mutated since the last sync). Callers that get
    /// `None` must either serve exact attention or call
    /// [`Self::enable_index`] to rebuild.
    pub fn index(&self) -> Option<&ClusterIndex> {
        self.index.as_ref().filter(|ix| ix.is_synced(self.version))
    }

    /// Builds a routed [`SegmentMap`] over the populated prefix from the
    /// incrementally maintained norms: `n_segments` chunk-aligned segments
    /// (clamped to the chunk count), each stamped with the max row-norm
    /// bound of its rows.
    ///
    /// `chunk_size` must be the executing engine's chunk size so segment
    /// boundaries land on chunk boundaries and the sequential fold order —
    /// and therefore the bitwise answer — is preserved.
    pub fn segment_map(&self, n_segments: usize, chunk_size: usize) -> SegmentMap {
        SegmentMap::from_norms(&self.norms, n_segments, chunk_size)
    }

    /// Appends one embedded sentence (its `A`-side and `C`-side vectors),
    /// evicting the oldest row first if the store is at its bound.
    ///
    /// Returns the number of rows evicted (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if the row lengths differ from the embedding dimension.
    pub fn push(&mut self, in_row: &[f32], out_row: &[f32]) -> usize {
        let ed = self.embedding_dim();
        assert_eq!(in_row.len(), ed, "push: bad in_row length");
        assert_eq!(out_row.len(), ed, "push: bad out_row length");

        let mut evicted = 0;
        if let Some(max) = self.max_rows {
            if self.len == max {
                self.evict_front(1);
                evicted = 1;
            }
        }
        if self.len == self.capacity() {
            self.grow();
        }
        self.m_in.row_mut(self.len).copy_from_slice(in_row);
        self.m_out.row_mut(self.len).copy_from_slice(out_row);
        let synced = self.quant_is_synced();
        let index_synced = self.index_is_synced();
        self.norms.push(row_norm_upper(in_row));
        self.len += 1;
        self.version += 1;
        if synced {
            let q = self.quant.as_mut().expect("synced implies present");
            q.m_in_q.push_row(in_row);
            q.m_out_q.push_row(out_row);
            q.synced_at = self.version;
        }
        if index_synced {
            let ix = self.index.as_mut().expect("synced implies present");
            ix.push(in_row, self.version);
        }
        evicted
    }

    /// Drops the `n` oldest rows (sliding-window forgetting), shifting the
    /// remainder forward.
    pub fn evict_front(&mut self, n: usize) {
        let n = n.min(self.len);
        if n == 0 {
            return;
        }
        let ed = self.embedding_dim();
        let remaining = self.len - n;
        let synced = self.quant_is_synced();
        let index_synced = self.index_is_synced();
        for matrix in [&mut self.m_in, &mut self.m_out] {
            let flat = matrix.as_mut_slice();
            flat.copy_within(n * ed..(n + remaining) * ed, 0);
        }
        self.norms.drain(..n);
        self.len = remaining;
        self.version += 1;
        if synced {
            let q = self.quant.as_mut().expect("synced implies present");
            q.m_in_q.evict_front(n);
            q.m_out_q.evict_front(n);
            q.synced_at = self.version;
        }
        if index_synced {
            let ix = self.index.as_mut().expect("synced implies present");
            ix.evict_front(n, self.version);
        }
    }

    /// Removes all rows (capacity is kept). Drops the top-K candidate
    /// index: with nothing left to cluster, retraining on demand beats
    /// maintaining empty posting lists.
    pub fn clear(&mut self) {
        let synced = self.quant_is_synced();
        self.len = 0;
        self.norms.clear();
        self.version += 1;
        if synced {
            let q = self.quant.as_mut().expect("synced implies present");
            q.m_in_q.clear();
            q.m_out_q.clear();
            q.synced_at = self.version;
        }
        self.index = None;
    }

    fn grow(&mut self) {
        let ed = self.embedding_dim();
        let mut new_cap = (self.capacity() * 2).max(16);
        if let Some(max) = self.max_rows {
            new_cap = new_cap.min(max);
        }
        for matrix in [&mut self.m_in, &mut self.m_out] {
            let mut bigger = Matrix::zeros(new_cap, ed);
            bigger.as_mut_slice()[..self.len * ed]
                .copy_from_slice(&matrix.as_slice()[..self.len * ed]);
            *matrix = bigger;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(ed: usize, v: f32) -> Vec<f32> {
        vec![v; ed]
    }

    #[test]
    fn append_grows_capacity_geometrically() {
        let mut store = MemoryStore::new(4, None);
        let c0 = store.capacity();
        for i in 0..100 {
            store.push(&row(4, i as f32), &row(4, -(i as f32)));
        }
        assert_eq!(store.len(), 100);
        assert!(store.capacity() >= 100);
        assert!(store.capacity() <= 8 * c0.max(16));
        // Data integrity across growth.
        assert_eq!(store.m_in().row(37), &[37.0; 4]);
        assert_eq!(store.m_out().row(99), &[-99.0; 4]);
    }

    #[test]
    fn bounded_store_evicts_oldest() {
        let mut store = MemoryStore::new(2, Some(3));
        for i in 0..5 {
            let evicted = store.push(&row(2, i as f32), &row(2, i as f32));
            assert_eq!(evicted, usize::from(i >= 3));
        }
        assert_eq!(store.len(), 3);
        assert!(store.capacity() <= 3);
        // Rows 2, 3, 4 survive in order.
        assert_eq!(store.m_in().row(0), &[2.0; 2]);
        assert_eq!(store.m_in().row(2), &[4.0; 2]);
    }

    #[test]
    fn evict_front_shifts_rows() {
        let mut store = MemoryStore::new(2, None);
        for i in 0..4 {
            store.push(&row(2, i as f32), &row(2, 10.0 + i as f32));
        }
        store.evict_front(2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.m_in().row(0), &[2.0; 2]);
        assert_eq!(store.m_out().row(1), &[13.0; 2]);
        // Evicting more than len clamps.
        store.evict_front(10);
        assert!(store.is_empty());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut store = MemoryStore::new(2, None);
        for i in 0..20 {
            store.push(&row(2, i as f32), &row(2, 0.0));
        }
        let cap = store.capacity();
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.capacity(), cap);
    }

    #[test]
    fn evict_to_empty_then_reuse() {
        let mut store = MemoryStore::new(3, None);
        for i in 0..5 {
            store.push(&row(3, i as f32), &row(3, -(i as f32)));
        }
        store.evict_front(5);
        assert!(store.is_empty());
        // Evicting an already-empty store is a no-op, not a panic.
        store.evict_front(1);
        assert!(store.is_empty());
        // The emptied store accepts fresh rows at index 0.
        store.push(&row(3, 7.0), &row(3, -7.0));
        assert_eq!(store.len(), 1);
        assert_eq!(store.m_in().row(0), &[7.0; 3]);
        assert_eq!(store.m_out().row(0), &[-7.0; 3]);
    }

    #[test]
    fn capacity_redoubles_after_eviction() {
        let mut store = MemoryStore::new(2, None);
        for i in 0..40 {
            store.push(&row(2, i as f32), &row(2, i as f32));
        }
        let cap = store.capacity();
        assert!(cap >= 40);
        // Eviction shrinks the populated prefix but keeps the allocation.
        store.evict_front(35);
        assert_eq!(store.len(), 5);
        assert_eq!(store.capacity(), cap);
        assert_eq!(store.m_in().row(0), &[35.0; 2]);
        // Refilling past the old capacity doubles again without losing the
        // surviving rows.
        for i in 0..2 * cap {
            store.push(&row(2, 100.0 + i as f32), &row(2, 0.0));
        }
        assert!(store.capacity() > cap);
        assert_eq!(store.len(), 5 + 2 * cap);
        assert_eq!(store.m_in().row(0), &[35.0; 2]);
        assert_eq!(store.m_in().row(5), &[100.0; 2]);
    }

    #[test]
    fn bounded_store_interleaves_eviction_and_growth() {
        // Bound larger than the initial capacity: growth and eviction
        // interact (grow to the bound, then slide).
        let mut store = MemoryStore::new(2, Some(20));
        for i in 0..50 {
            store.push(&row(2, i as f32), &row(2, i as f32));
        }
        assert_eq!(store.len(), 20);
        assert!(store.capacity() <= 20);
        // The window holds exactly the last 20 rows, in order.
        for r in 0..20 {
            assert_eq!(store.m_in().row(r), &[(30 + r) as f32; 2]);
        }
    }

    #[test]
    fn norms_track_rows_through_push_evict_clear() {
        let mut store = SegmentedStore::new(2, None);
        for i in 0..6 {
            store.push(&row(2, i as f32), &row(2, 0.0));
        }
        assert_eq!(store.norms().len(), 6);
        // Each norm bound dominates the true row norm.
        for (r, &nb) in store.norms().iter().enumerate() {
            let true_norm = (2.0 * (r as f32).powi(2)).sqrt();
            assert!(nb >= true_norm, "row {r}: {nb} < {true_norm}");
        }
        // Eviction drops the leading norms in lockstep with the rows.
        store.evict_front(2);
        assert_eq!(store.norms().len(), 4);
        let expect = (2.0 * 4.0f32).sqrt();
        assert!(store.norms()[0] >= expect && store.norms()[0] <= expect * 1.01);
        store.clear();
        assert!(store.norms().is_empty());
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut store = SegmentedStore::new(2, None);
        let v0 = store.version();
        store.push(&row(2, 1.0), &row(2, 0.0));
        let v1 = store.version();
        assert!(v1 > v0);
        store.evict_front(1);
        let v2 = store.version();
        assert!(v2 > v1);
        store.clear();
        assert!(store.version() > v2);
        // Reads do not bump.
        let _ = store.segment_map(4, 2);
        assert_eq!(store.version(), v2 + 1);
    }

    #[test]
    fn segment_map_covers_the_populated_prefix() {
        let mut store = SegmentedStore::new(3, None);
        for i in 0..70 {
            store.push(&row(3, (i % 7) as f32 * 0.3), &row(3, 0.0));
        }
        let map = store.segment_map(4, 16);
        assert_eq!(map.rows(), 70);
        let covered: usize = map.segments().iter().map(|s| s.rows).sum();
        assert_eq!(covered, 70);
        for s in map.segments() {
            assert_eq!(s.start % 16, 0, "segment starts must be chunk-aligned");
            for r in s.start..s.start + s.rows {
                assert!(s.max_in_norm >= store.norms()[r]);
            }
        }
    }

    #[test]
    fn quant_mirror_tracks_push_evict_clear() {
        let mut store = SegmentedStore::new(3, None);
        for i in 0..10 {
            store.push(&row(3, 0.1 * i as f32), &row(3, -0.1 * i as f32));
        }
        assert!(store.quant().is_none(), "mirror starts disabled");
        store.enable_quant();
        assert!(store.quant_is_synced());
        {
            let (q_in, q_out) = store.quant().unwrap();
            assert_eq!(q_in.rows(), 10);
            assert_eq!(q_out.rows(), 10);
        }
        // Mutations re-quantize incrementally: the mirror never serves
        // stale rows (the regression the version counter guards against).
        store.push(&row(3, 5.0), &row(3, -5.0));
        assert!(store.quant_is_synced());
        {
            let (q_in, _) = store.quant().unwrap();
            assert_eq!(q_in.rows(), 11);
            // Row 10 is [5,5,5] → codes all 127, scale 5/127.
            assert!(q_in.row(10).iter().all(|&c| c == 127));
            assert!((q_in.scale(10) - 5.0 / 127.0).abs() < 1e-7);
        }
        store.evict_front(4);
        assert!(store.quant_is_synced());
        assert_eq!(store.quant().unwrap().0.rows(), 7);
        // Surviving mirror rows line up with the surviving f32 rows.
        let (q_in, _) = store.quant().unwrap();
        for r in 0..7 {
            let mut dq = vec![0.0f32; 3];
            mnn_tensor::quant::dequantize_row(q_in.row(r), q_in.scale(r), &mut dq);
            for (a, b) in dq.iter().zip(store.m_in().row(r)) {
                assert!((a - b).abs() <= q_in.scale(r) * 0.5 + 1e-7);
            }
        }
        store.clear();
        assert!(store.quant_is_synced());
        assert_eq!(store.quant().unwrap().0.rows(), 0);
        assert_eq!(store.quant_resident_bytes(), 0);
    }

    #[test]
    fn stale_quant_mirror_is_never_served() {
        // Force staleness by desynchronizing clones: a mirror whose
        // synced_at no longer matches the store version must vanish from
        // `quant()` until `enable_quant` rebuilds it.
        let mut store = SegmentedStore::new(2, None);
        store.push(&row(2, 1.0), &row(2, 2.0));
        store.enable_quant();
        let mut desynced = store.clone();
        // Simulate a bypassing mutation: poke the version via the only
        // public lever (a mutation after temporarily dropping the mirror).
        desynced.disable_quant();
        desynced.push(&row(2, 9.0), &row(2, 9.0));
        assert!(desynced.quant().is_none());
        desynced.enable_quant();
        let (q_in, _) = desynced.quant().unwrap();
        assert_eq!(q_in.rows(), 2);
        assert!(q_in.row(1).iter().all(|&c| c == 127));
    }

    #[test]
    fn quant_resident_bytes_counts_codes_and_scales() {
        let mut store = SegmentedStore::new(8, None);
        for i in 0..5 {
            store.push(&row(8, 0.3 + i as f32 * 0.1), &row(8, 0.2));
        }
        assert_eq!(store.quant_resident_bytes(), 0);
        store.enable_quant();
        // Two mirrors × 5 rows × (8 code bytes + 4 scale bytes).
        assert_eq!(store.quant_resident_bytes(), 2 * 5 * (8 + 4));
    }

    #[test]
    fn index_tracks_push_evict_and_drops_on_clear() {
        let mut store = SegmentedStore::new(3, None);
        for i in 0..30 {
            store.push(&row(3, 0.1 * i as f32), &row(3, 0.0));
        }
        assert!(store.index().is_none(), "index starts disabled");
        store.enable_index();
        assert!(store.index_is_synced());
        assert_eq!(store.index().unwrap().len(), 30);
        store.index().unwrap().check_coherence().unwrap();

        // Incremental maintenance keeps the index serving across mutations.
        store.push(&row(3, 9.0), &row(3, 0.0));
        assert!(store.index_is_synced());
        assert_eq!(store.index().unwrap().len(), 31);
        store.evict_front(5);
        assert!(store.index_is_synced());
        assert_eq!(store.index().unwrap().len(), 26);
        store.index().unwrap().check_coherence().unwrap();

        store.clear();
        assert!(store.index().is_none(), "clear drops the index");
        assert!(!store.index_is_synced());
    }

    #[test]
    fn enable_index_is_a_noop_when_current_and_rebuilds_on_drift() {
        let mut store = SegmentedStore::new(2, None);
        for i in 0..40 {
            store.push(&row(2, i as f32 * 0.05), &row(2, 0.0));
        }
        store.enable_index();
        let trained = store.index().unwrap().trained_rows();
        store.enable_index();
        assert_eq!(
            store.index().unwrap().trained_rows(),
            trained,
            "no-op while current"
        );
        // Push past double the trained size: the next enable must retrain.
        for i in 0..41 {
            store.push(&row(2, 2.0 + i as f32 * 0.05), &row(2, 0.0));
        }
        assert!(
            store.index_is_synced(),
            "maintenance continued while drifting"
        );
        assert!(store.index().unwrap().is_drifted());
        store.enable_index();
        assert_eq!(store.index().unwrap().trained_rows(), 81, "retrained");
        assert!(!store.index().unwrap().is_drifted());
    }

    #[test]
    fn stale_index_is_never_served() {
        let mut store = SegmentedStore::new(2, None);
        for i in 0..10 {
            store.push(&row(2, i as f32 * 0.1), &row(2, 0.0));
        }
        store.enable_index();
        let mut desynced = store.clone();
        // A mutation while the index is temporarily dropped leaves any
        // later-restored copy stale; `index()`'s version filter catches it.
        desynced.disable_index();
        desynced.push(&row(2, 1.0), &row(2, 0.0));
        assert!(desynced.index().is_none());
        desynced.enable_index();
        assert_eq!(desynced.index().unwrap().len(), 11);
    }

    #[test]
    #[should_panic(expected = "bad in_row length")]
    fn wrong_row_length_panics() {
        let mut store = MemoryStore::new(4, None);
        store.push(&[1.0, 2.0], &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "max_rows must be positive")]
    fn zero_bound_panics() {
        let _ = MemoryStore::new(4, Some(0));
    }
}

//! Cooperative execution budgets: deadlines and cancellation.
//!
//! The serving scenario (paper Section 4.1.1) is online QA under
//! multi-tenant load: a single slow question must not stall the pool, and a
//! caller that has given up must be able to reclaim the worker. Both needs
//! are met with one cooperative mechanism threaded through the
//! [`crate::Executor`] seam:
//!
//! * [`Budget`] — an optional wall-clock deadline plus an optional
//!   [`CancelToken`], checked **once per chunk** by every engine variant
//!   (column, streaming, scale-out, fused or two-pass). The chunk is the
//!   natural quantum: it bounds the response latency of a check by one
//!   chunk's work (micro­seconds at serving shapes) while keeping the
//!   fault-free overhead to one clock read per chunk — measured ≤ 2% in
//!   `BENCH_robustness.json`.
//! * [`CancelToken`] — a cheaply clonable flag a caller can trip from
//!   another thread to abandon an in-flight question.
//!
//! An exceeded deadline surfaces as
//! [`EngineError::DeadlineExceeded`](crate::EngineError::DeadlineExceeded),
//! a tripped token as [`EngineError::Cancelled`](crate::EngineError::Cancelled).
//! Both are *clean* exits: no partial output escapes, scratch buffers are
//! reset on the next pass, and the session's cumulative statistics are
//! untouched.
//!
//! [`Budget::unlimited`] is the hot-path default: its check is two
//! predictable branches and never reads the clock, so existing callers of
//! [`crate::Executor::forward_prefix`] pay nothing.

use crate::engine::EngineError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheaply clonable cancellation flag.
///
/// Clones share the same underlying flag: cancel any clone and every
/// in-flight forward pass holding one observes it at its next per-chunk
/// check.
///
/// ```
/// use mnnfast::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been tripped.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A per-request execution budget: optional deadline, optional cancellation.
///
/// Engines call [`Budget::check`] once per chunk. The unlimited budget's
/// check never reads the clock; an armed deadline costs one `Instant::now()`
/// per chunk.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    limit: Option<Duration>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget that never expires and cannot be cancelled — the hot-path
    /// default behind [`crate::Executor::forward_prefix`].
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget expiring `limit` from now.
    pub fn with_deadline(limit: Duration) -> Self {
        Budget {
            deadline: Instant::now().checked_add(limit),
            limit: Some(limit),
            ..Budget::default()
        }
    }

    /// Attaches a cancellation token (builder-style).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configured time limit, if any.
    pub fn limit(&self) -> Option<Duration> {
        self.limit
    }

    /// Whether this budget can ever fail a check.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// Time left before the deadline (`None` when no deadline is armed;
    /// zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The per-chunk check: cancellation first (no clock read), then the
    /// deadline.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cancelled`] if the token tripped,
    /// [`EngineError::DeadlineExceeded`] if the deadline passed.
    #[inline]
    pub fn check(&self) -> Result<(), EngineError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(EngineError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(EngineError::DeadlineExceeded {
                    budget: self.limit.unwrap_or_default(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check().is_ok());
        assert_eq!(b.limit(), None);
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn expired_deadline_fails_check() {
        let b = Budget::with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(
            b.check(),
            Err(EngineError::DeadlineExceeded { .. })
        ));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_passes() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert!(!b.is_unlimited());
        assert!(b.check().is_ok());
        assert_eq!(b.limit(), Some(Duration::from_secs(3600)));
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancellation_is_observed_by_clones() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        assert!(b.check().is_ok());
        token.cancel();
        assert_eq!(b.check(), Err(EngineError::Cancelled));
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::with_deadline(Duration::ZERO).with_cancel(token);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(b.check(), Err(EngineError::Cancelled));
    }
}

//! Per-chunk partial production and global-order folding — the engine
//! seam the coordinator/worker split is built on.
//!
//! The bitwise-parity discipline of this codebase is that every engine
//! variant folds *per-chunk* softmax partials into one running total in
//! global chunk-index order (f32 addition is not associative, so any other
//! association would change the answer bits). A distributed plane
//! therefore cannot ship per-worker pre-folded sums; it ships the chunk
//! partials themselves:
//!
//! - a worker runs [`forward_chunk_partials_budgeted`] over its local rows
//!   and gets one serializable [`PartialState`] per chunk — each bitwise
//!   identical to the partial the single-node engine would have produced
//!   for that chunk, because both run the exact same
//!   `ColumnEngine::process_chunk_flat` kernel on the same rows;
//! - the coordinator arranges every received partial in global chunk order
//!   and folds them through a [`PartialFold`], which reproduces the
//!   single-node merge loop (merge plane + per-merge denominator guard +
//!   final division) exactly.
//!
//! Row placement makes "local chunks are global chunks" true by
//! construction: global chunk `c` (rows `c·chunk_size ..`) lives on shard
//! `c % shards`, and rows arrive in global order, so each shard's store is
//! a concatenation of whole global chunks (plus, at most, the globally
//! last, still-filling chunk at its end). Chunking the local store with
//! the same `chunk_size` then reproduces global chunk boundaries.
//!
//! [`SkipPolicy::Probability`] is rejected here: resolving it needs a
//! denominator pre-pass over the *entire* memory, which a worker that owns
//! only its shard cannot run. `None` and `RawWeight` thresholds are
//! per-row-local and distribute freely.

use crate::budget::Budget;
use crate::config::{SkipPolicy, SoftmaxMode};
use crate::engine::{check_denom, check_output, check_rows, check_rows_quant};
use crate::engine::{AccumMut, ColumnEngine, EngineError};
use crate::exec::{Scratch, Trace};
use crate::stats::InferenceStats;
use mnn_tensor::partial::{merge_lazy_into, merge_online_into};
use mnn_tensor::softmax::{LazyAccumulator, OnlineSoftmax};
use mnn_tensor::{Matrix, PartialState, QuantMatrix, ShapeError};

/// Rejects skip policies whose threshold cannot be resolved from one shard.
fn check_local_skip(engine: &ColumnEngine) -> Result<Option<f32>, EngineError> {
    match engine.config().skip {
        SkipPolicy::None => Ok(None),
        SkipPolicy::RawWeight(th) => Ok(Some(th)),
        SkipPolicy::Probability(_) => Err(EngineError::Config(
            "SkipPolicy::Probability needs a global denominator pre-pass and cannot \
             run on a single shard; use SkipPolicy::RawWeight or None"
                .to_string(),
        )),
    }
}

/// Runs the column engine over the first `rows` rows of `m_in`/`m_out`,
/// appending one [`PartialState`] per chunk to `out` instead of folding
/// them. Each appended partial is bitwise identical to the chunk partial
/// the single-node [`ColumnEngine`] computes for the same rows; a
/// [`PartialFold`] fed every chunk of the full memory in global order
/// reproduces the single-node answer exactly.
///
/// Returns the work counters for the pass (chunk/flop/traffic accounting
/// identical to the single-node engine; the final division is counted by
/// [`PartialFold::finish_into`], not here).
///
/// # Errors
///
/// Propagates the engine's shape/config checks, rejects
/// [`SkipPolicy::Probability`] (see the module docs), and abandons the
/// pass at a chunk boundary on budget expiry or cancellation.
#[allow(clippy::too_many_arguments)]
pub fn forward_chunk_partials_budgeted(
    engine: &ColumnEngine,
    m_in: &Matrix,
    m_out: &Matrix,
    rows: usize,
    u: &[f32],
    scratch: &mut Scratch,
    trace: &mut Trace,
    budget: &Budget,
    out: &mut Vec<PartialState>,
) -> Result<InferenceStats, EngineError> {
    engine.check(m_in, m_out, u)?;
    check_rows(m_in, rows, "forward_chunk_partials")?;
    let raw_threshold = check_local_skip(engine)?;
    let config = engine.config();
    let ed = u.len();
    let chunk = config.chunk_size;
    let mut stats = InferenceStats::default();
    let (logits, _main, mut partial) =
        scratch.split_chunked(config.softmax, ed, chunk.min(rows.max(1)));
    let mut row = 0usize;
    while row < rows {
        budget.check()?;
        let n = chunk.min(rows - row);
        partial.reset(ed);
        engine.process_chunk_flat(
            m_in.rows_slice(row, n),
            m_out.rows_slice(row, n),
            n,
            u,
            raw_threshold,
            &mut partial,
            &mut stats,
            &mut logits[..n],
            trace,
        );
        out.push(clone_partial(&partial));
        row += n;
    }
    Ok(stats)
}

/// [`forward_chunk_partials_budgeted`] over the int8 quantized memory
/// plane: the same per-chunk contract, produced by the quantized chunk
/// kernel (`ColumnEngine::process_chunk_quant`), so the partials match the
/// single-node quantized pass bit for bit.
///
/// # Errors
///
/// As [`forward_chunk_partials_budgeted`].
#[allow(clippy::too_many_arguments)]
pub fn forward_chunk_quant_partials_budgeted(
    engine: &ColumnEngine,
    m_in: &QuantMatrix,
    m_out: &QuantMatrix,
    rows: usize,
    u: &[f32],
    scratch: &mut Scratch,
    trace: &mut Trace,
    budget: &Budget,
    out: &mut Vec<PartialState>,
) -> Result<InferenceStats, EngineError> {
    engine.check_quant(m_in, m_out, u)?;
    check_rows_quant(m_in, rows, "forward_chunk_partials_quant")?;
    let raw_threshold = check_local_skip(engine)?;
    let config = engine.config();
    let ed = u.len();
    let chunk = config.chunk_size;
    let mut stats = InferenceStats::default();
    let u_scale = scratch.quant_query(u);
    let logit_len = chunk.min(rows.max(1));
    let Scratch {
        logits,
        chunk_lazy,
        chunk_online,
        uq,
        ..
    } = scratch;
    if logits.len() < logit_len {
        logits.resize(logit_len, 0.0);
    }
    let logits = &mut logits[..logit_len];
    let uq: &[i8] = &uq[..ed];
    let mut partial = match config.softmax {
        SoftmaxMode::Lazy => {
            chunk_lazy.reset(ed);
            AccumMut::Lazy(chunk_lazy)
        }
        SoftmaxMode::Online => {
            chunk_online.reset(ed);
            AccumMut::Online(chunk_online)
        }
    };
    let mut row = 0usize;
    while row < rows {
        budget.check()?;
        let n = chunk.min(rows - row);
        partial.reset(ed);
        engine.process_chunk_quant(
            m_in.rows_slice(row, n),
            m_in.scales_slice(row, n),
            m_out.rows_slice(row, n),
            m_out.scales_slice(row, n),
            n,
            uq,
            u_scale,
            raw_threshold,
            &mut partial,
            &mut stats,
            &mut logits[..n],
            trace,
        );
        out.push(clone_partial(&partial));
        row += n;
    }
    Ok(stats)
}

fn clone_partial(acc: &AccumMut<'_>) -> PartialState {
    match acc {
        AccumMut::Lazy(a) => PartialState::Lazy((**a).clone()),
        AccumMut::Online(a) => PartialState::Online((**a).clone()),
    }
}

/// The coordinator-side running total: absorbs chunk [`PartialState`]s in
/// global chunk order and finishes with the lazy division — the exact
/// merge loop of the single-node engines, including the per-merge
/// denominator guard and the final output guard.
#[derive(Debug, Clone)]
pub struct PartialFold {
    acc: FoldAcc,
    absorbed: u64,
}

#[derive(Debug, Clone)]
enum FoldAcc {
    Lazy(LazyAccumulator),
    Online(OnlineSoftmax),
}

impl PartialFold {
    /// An empty fold of width `ed` for the given softmax mode.
    pub fn new(mode: SoftmaxMode, ed: usize) -> Self {
        PartialFold {
            acc: match mode {
                SoftmaxMode::Lazy => FoldAcc::Lazy(LazyAccumulator::new(ed)),
                SoftmaxMode::Online => FoldAcc::Online(OnlineSoftmax::new(ed)),
            },
            absorbed: 0,
        }
    }

    /// The softmax mode this fold accumulates in.
    pub fn mode(&self) -> SoftmaxMode {
        match self.acc {
            FoldAcc::Lazy(_) => SoftmaxMode::Lazy,
            FoldAcc::Online(_) => SoftmaxMode::Online,
        }
    }

    /// Output dimension.
    pub fn dim(&self) -> usize {
        match &self.acc {
            FoldAcc::Lazy(a) => a.dim(),
            FoldAcc::Online(a) => a.dim(),
        }
    }

    /// Number of chunk partials absorbed so far.
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Current running denominator.
    pub fn denom(&self) -> f32 {
        match &self.acc {
            FoldAcc::Lazy(a) => a.denom(),
            FoldAcc::Online(a) => a.denom(),
        }
    }

    /// Folds one chunk partial into the running total through the
    /// [`mnn_tensor::partial`] merge plane (identical to the in-process
    /// merge chokepoint), then runs the same per-merge denominator guard
    /// the engines run.
    ///
    /// # Errors
    ///
    /// [`EngineError::Shape`] on a mode or dimension mismatch,
    /// [`EngineError::NumericFault`] when the merged denominator goes
    /// non-finite (a poisoned chunk).
    pub fn absorb(&mut self, partial: &PartialState) -> Result<(), EngineError> {
        if partial.dim() != self.dim() {
            return Err(ShapeError::new(
                "PartialFold::absorb",
                format!("partial of dim {}", self.dim()),
                format!("partial of dim {}", partial.dim()),
            )
            .into());
        }
        match (&mut self.acc, partial) {
            (FoldAcc::Lazy(a), PartialState::Lazy(b)) => merge_lazy_into(a, b),
            (FoldAcc::Online(a), PartialState::Online(b)) => merge_online_into(a, b),
            (FoldAcc::Lazy(_), PartialState::Online(_)) => {
                return Err(ShapeError::new(
                    "PartialFold::absorb",
                    "lazy partial",
                    "online partial",
                )
                .into())
            }
            (FoldAcc::Online(_), PartialState::Lazy(_)) => {
                return Err(ShapeError::new(
                    "PartialFold::absorb",
                    "online partial",
                    "lazy partial",
                )
                .into())
            }
        }
        self.absorbed += 1;
        check_denom(self.denom(), "chunk merge")
    }

    /// The final lazy division: writes the normalized response into `out`
    /// and returns the denominator that was divided out. Charges the `ed`
    /// divisions to `stats`, mirroring the single-node engines' accounting.
    ///
    /// # Errors
    ///
    /// [`EngineError::NumericFault`] if the normalized output is
    /// non-finite (same guard as the single-node engines).
    pub fn finish_into(
        &self,
        out: &mut Vec<f32>,
        stats: &mut InferenceStats,
    ) -> Result<f32, EngineError> {
        match &self.acc {
            FoldAcc::Lazy(a) => a.finish_into(out),
            FoldAcc::Online(a) => a.finish_into(out),
        }
        check_output(out)?;
        let ed = self.dim() as u64;
        stats.divisions += ed;
        stats.flops += ed;
        Ok(self.denom())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MnnFastConfig;
    use crate::exec::Executor;
    use crate::segment::SegmentPlan;

    fn fixtures(ns: usize, ed: usize) -> (Matrix, Matrix, Vec<f32>) {
        let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 31 + c * 7) as f32 * 0.13).sin() * 0.4);
        let m_out = Matrix::from_fn(ns, ed, |r, c| ((r * 17 + c * 3) as f32 * 0.29).cos() * 0.6);
        let u: Vec<f32> = (0..ed)
            .map(|c| ((c * 11) as f32 * 0.07).sin() * 0.5)
            .collect();
        (m_in, m_out, u)
    }

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    fn quantize(m: &Matrix) -> QuantMatrix {
        let mut q = QuantMatrix::with_capacity(m.rows(), m.cols());
        for r in 0..m.rows() {
            q.push_row(m.row(r));
        }
        q
    }

    #[test]
    fn folded_chunk_partials_match_single_node_bitwise() {
        // Awkward row count: the final chunk is short.
        let (m_in, m_out, u) = fixtures(103, 16);
        for mode in [SoftmaxMode::Lazy, SoftmaxMode::Online] {
            for fused in [true, false] {
                let config = MnnFastConfig::new(16).with_softmax(mode).with_fused(fused);
                let engine = ColumnEngine::new(config);
                let mut scratch = Scratch::new();
                let reference = engine
                    .forward_prefix_budgeted(
                        &m_in,
                        &m_out,
                        103,
                        &u,
                        &mut scratch,
                        &mut Trace::disabled(),
                        &Budget::unlimited(),
                    )
                    .unwrap();

                let mut partials = Vec::new();
                let stats = forward_chunk_partials_budgeted(
                    &engine,
                    &m_in,
                    &m_out,
                    103,
                    &u,
                    &mut scratch,
                    &mut Trace::disabled(),
                    &Budget::unlimited(),
                    &mut partials,
                )
                .unwrap();
                assert_eq!(partials.len(), 103usize.div_ceil(16));
                assert_eq!(stats.chunks, partials.len() as u64);

                let mut fold = PartialFold::new(mode, 16);
                for p in &partials {
                    fold.absorb(p).unwrap();
                }
                let mut o = Vec::new();
                let mut fold_stats = InferenceStats::default();
                let denom = fold.finish_into(&mut o, &mut fold_stats).unwrap();
                assert_eq!(bits(&o), bits(&reference.o), "mode {mode:?} fused {fused}");
                assert_eq!(denom.to_bits(), reference.denominator.to_bits());
                assert_eq!(fold_stats.divisions, 16);
            }
        }
    }

    #[test]
    fn sharded_partials_refolded_in_global_order_match_single_node() {
        // The dist routing invariant at the engine layer: rows are dealt to
        // shards a whole chunk at a time (global chunk c → shard c % S);
        // workers chunk their local stores independently; the coordinator
        // interleaves the partial streams back into global chunk order.
        let (m_in, m_out, u) = fixtures(130, 8);
        let chunk = 16usize;
        let shards = 4usize;
        let config = MnnFastConfig::new(chunk);
        let engine = ColumnEngine::new(config);
        let mut scratch = Scratch::new();
        let reference = engine
            .forward_prefix_budgeted(
                &m_in,
                &m_out,
                130,
                &u,
                &mut scratch,
                &mut Trace::disabled(),
                &Budget::unlimited(),
            )
            .unwrap();

        // Deal global chunks round-robin into per-shard row stores.
        let mut shard_in: Vec<Vec<f32>> = vec![Vec::new(); shards];
        let mut shard_out: Vec<Vec<f32>> = vec![Vec::new(); shards];
        let chunks_total = 130usize.div_ceil(chunk);
        for c in 0..chunks_total {
            let start = c * chunk;
            let n = chunk.min(130 - start);
            let s = c % shards;
            shard_in[s].extend_from_slice(m_in.rows_slice(start, n));
            shard_out[s].extend_from_slice(m_out.rows_slice(start, n));
        }

        // Each shard produces its chunk partials independently.
        let mut per_shard: Vec<Vec<PartialState>> = Vec::new();
        for s in 0..shards {
            let rows = shard_in[s].len() / 8;
            let mi = Matrix::from_fn(rows, 8, |r, c| shard_in[s][r * 8 + c]);
            let mo = Matrix::from_fn(rows, 8, |r, c| shard_out[s][r * 8 + c]);
            let mut ps = Vec::new();
            forward_chunk_partials_budgeted(
                &engine,
                &mi,
                &mo,
                rows,
                &u,
                &mut scratch,
                &mut Trace::disabled(),
                &Budget::unlimited(),
                &mut ps,
            )
            .unwrap();
            per_shard.push(ps);
        }

        // Coordinator: global chunk c is shard (c % S)'s (c / S)-th partial.
        let mut fold = PartialFold::new(SoftmaxMode::Lazy, 8);
        for c in 0..chunks_total {
            // Roundtrip through the wire encoding, as the real RPC does —
            // the codec is bit-exact, so parity must survive it.
            let encoded = per_shard[c % shards][c / shards].to_bytes();
            let decoded = PartialState::from_bytes(&encoded).unwrap();
            fold.absorb(&decoded).unwrap();
        }
        assert_eq!(fold.absorbed(), chunks_total as u64);
        let mut o = Vec::new();
        let mut stats = InferenceStats::default();
        let denom = fold.finish_into(&mut o, &mut stats).unwrap();
        assert_eq!(bits(&o), bits(&reference.o));
        assert_eq!(denom.to_bits(), reference.denominator.to_bits());
    }

    #[test]
    fn quant_chunk_partials_match_single_node_quant_bitwise() {
        let (m_in, m_out, u) = fixtures(77, 12);
        let (q_in, q_out) = (quantize(&m_in), quantize(&m_out));
        for mode in [SoftmaxMode::Lazy, SoftmaxMode::Online] {
            let config = MnnFastConfig::new(16).with_softmax(mode);
            let engine = ColumnEngine::new(config);
            let mut scratch = Scratch::new();
            let reference = engine
                .forward_quant_segmented_budgeted(
                    &q_in,
                    &q_out,
                    &SegmentPlan::unsegmented(77),
                    &u,
                    &mut scratch,
                    &mut Trace::disabled(),
                    &Budget::unlimited(),
                )
                .unwrap();

            let mut partials = Vec::new();
            forward_chunk_quant_partials_budgeted(
                &engine,
                &q_in,
                &q_out,
                77,
                &u,
                &mut scratch,
                &mut Trace::disabled(),
                &Budget::unlimited(),
                &mut partials,
            )
            .unwrap();
            assert_eq!(partials.len(), 77usize.div_ceil(16));

            let mut fold = PartialFold::new(mode, 12);
            for p in &partials {
                fold.absorb(p).unwrap();
            }
            let mut o = Vec::new();
            let mut stats = InferenceStats::default();
            fold.finish_into(&mut o, &mut stats).unwrap();
            assert_eq!(bits(&o), bits(&reference.o), "mode {mode:?}");
        }
    }

    #[test]
    fn probability_skip_is_rejected() {
        let (m_in, m_out, u) = fixtures(32, 4);
        let config = MnnFastConfig::new(16).with_skip(SkipPolicy::Probability(0.01));
        let engine = ColumnEngine::new(config);
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        let err = forward_chunk_partials_budgeted(
            &engine,
            &m_in,
            &m_out,
            32,
            &u,
            &mut scratch,
            &mut Trace::disabled(),
            &Budget::unlimited(),
            &mut out,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "got {err:?}");

        // RawWeight is per-row-local and distributes: partials still fold
        // to the single-node answer.
        let config = MnnFastConfig::new(16).with_skip(SkipPolicy::RawWeight(0.5));
        let engine = ColumnEngine::new(config);
        let reference = engine
            .forward_prefix_budgeted(
                &m_in,
                &m_out,
                32,
                &u,
                &mut scratch,
                &mut Trace::disabled(),
                &Budget::unlimited(),
            )
            .unwrap();
        let mut partials = Vec::new();
        forward_chunk_partials_budgeted(
            &engine,
            &m_in,
            &m_out,
            32,
            &u,
            &mut scratch,
            &mut Trace::disabled(),
            &Budget::unlimited(),
            &mut partials,
        )
        .unwrap();
        let mut fold = PartialFold::new(SoftmaxMode::Lazy, 4);
        for p in &partials {
            fold.absorb(p).unwrap();
        }
        let mut o = Vec::new();
        let mut stats = InferenceStats::default();
        fold.finish_into(&mut o, &mut stats).unwrap();
        assert_eq!(bits(&o), bits(&reference.o));
    }

    #[test]
    fn fold_mismatches_are_typed_errors() {
        let mut fold = PartialFold::new(SoftmaxMode::Lazy, 4);
        // Mode mismatch.
        let online = PartialState::Online(OnlineSoftmax::new(4));
        assert!(matches!(fold.absorb(&online), Err(EngineError::Shape(_))));
        // Dim mismatch.
        let wrong_dim = PartialState::Lazy(LazyAccumulator::new(5));
        assert!(matches!(
            fold.absorb(&wrong_dim),
            Err(EngineError::Shape(_))
        ));
        assert_eq!(fold.absorbed(), 0);
        // A poisoned partial trips the denominator guard at absorb time.
        let mut bad = LazyAccumulator::new(4);
        bad.add_weighted(f32::NAN, &[0.0; 4]);
        let poisoned = PartialState::Lazy(bad);
        assert!(matches!(
            fold.absorb(&poisoned),
            Err(EngineError::NumericFault { .. })
        ));
    }

    #[test]
    fn budget_expiry_abandons_at_chunk_boundary() {
        let (m_in, m_out, u) = fixtures(64, 4);
        let engine = ColumnEngine::new(MnnFastConfig::new(8));
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        let cancel = crate::CancelToken::new();
        cancel.cancel();
        let budget = Budget::unlimited().with_cancel(cancel.clone());
        let err = forward_chunk_partials_budgeted(
            &engine,
            &m_in,
            &m_out,
            64,
            &u,
            &mut scratch,
            &mut Trace::disabled(),
            &budget,
            &mut out,
        )
        .unwrap_err();
        assert_eq!(err, EngineError::Cancelled);
        assert!(out.is_empty());
    }
}

//! The column-based inference engine (paper Fig 5(b)).
//!
//! `M_IN`/`M_OUT` are walked in row chunks. Per chunk the engine computes
//! the inner products `x_i = u · m_i^IN`, exponentiates, and immediately
//! folds each entry into a softmax accumulator (lazy or online) together
//! with its `m_i^OUT` row — optionally skipping the `ed`-wide accumulation
//! when the attention weight is below the zero-skip threshold. A single
//! division pass at the very end produces the response vector `o`.
//!
//! [`ColumnEngine`] is the base [`crate::Executor`]: the streaming and
//! scale-out variants wrap it and reuse its per-chunk kernel, so all three
//! produce bitwise-identical results.

use crate::budget::Budget;
use crate::config::{MnnFastConfig, SkipPolicy, SoftmaxMode};
use crate::exec::{EngineKind, Executor, Phase, Scratch, Trace};
use crate::segment::{self, SegmentPlan};
use crate::stats::InferenceStats;
use mnn_tensor::softmax::{LazyAccumulator, OnlineSoftmax};
use mnn_tensor::{kernels, Matrix, QuantMatrix, ShapeError};
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Errors reported by the engine variants.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The engine configuration failed validation.
    Config(String),
    /// Operand shapes disagree.
    Shape(ShapeError),
    /// `M_IN` and `M_OUT` have different shapes.
    MemoryMismatch {
        /// `M_IN` shape.
        m_in: (usize, usize),
        /// `M_OUT` shape.
        m_out: (usize, usize),
    },
    /// The pass overran its [`crate::Budget`] deadline and was abandoned at
    /// a chunk boundary.
    DeadlineExceeded {
        /// The time limit that was configured on the budget.
        budget: Duration,
    },
    /// The pass's [`crate::CancelToken`] was tripped.
    Cancelled,
    /// A non-finite value (NaN/∞) was detected in the softmax accumulator.
    ///
    /// This is the runtime guard for the fused fast-exp clamp contract: a
    /// poisoned logit turns the lazy-softmax denominator non-finite, which
    /// every variant checks at merge time, so garbage never silently
    /// propagates into an answer. The serving layer reacts by retrying once
    /// on the scalar stable path (two-pass + running-max softmax).
    NumericFault {
        /// Where the non-finite value was caught (`"chunk merge"` or
        /// `"normalize"`).
        stage: &'static str,
    },
    /// A scale-out worker thread panicked mid-chunk.
    ///
    /// The panic is contained with `catch_unwind` so one poisoned chunk
    /// kernel cannot take down the whole serving process; the pass is
    /// abandoned (peers stop at their next chunk boundary) and the serving
    /// layer degrades through the same retry ladder as
    /// [`EngineError::NumericFault`].
    WorkerPanicked,
    /// The top-K candidate index declined to answer this pass.
    ///
    /// Not a failure: the sparse path refuses to serve an approximate
    /// answer it cannot stand behind — the index is empty, `topk` covers
    /// the whole memory anyway, or the probe's confidence margin collapsed
    /// (centroid-score ties make the cluster cut arbitrary). The serving
    /// layer reacts by rerunning the question through exact attention,
    /// one rung down the degradation ladder.
    IndexDeclined {
        /// Why the index stepped aside (static, log-friendly).
        reason: &'static str,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            EngineError::Shape(e) => write!(f, "{e}"),
            EngineError::MemoryMismatch { m_in, m_out } => write!(
                f,
                "memory shape mismatch: M_IN is {}x{}, M_OUT is {}x{}",
                m_in.0, m_in.1, m_out.0, m_out.1
            ),
            EngineError::DeadlineExceeded { budget } => {
                write!(f, "deadline exceeded: budget was {budget:?}")
            }
            EngineError::Cancelled => write!(f, "request cancelled"),
            EngineError::NumericFault { stage } => {
                write!(f, "numeric fault: non-finite value detected at {stage}")
            }
            EngineError::WorkerPanicked => {
                write!(f, "scale-out worker panicked mid-chunk; pass abandoned")
            }
            EngineError::IndexDeclined { reason } => {
                write!(f, "top-K index declined: {reason}; use exact attention")
            }
        }
    }
}

impl Error for EngineError {}

impl From<ShapeError> for EngineError {
    fn from(e: ShapeError) -> Self {
        EngineError::Shape(e)
    }
}

/// Result of a column-based forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnOutput {
    /// The response vector `o` (length `ed`).
    pub o: Vec<f32>,
    /// The softmax denominator that was divided out (lazy mode: `Σ e^{x_j}`;
    /// online mode: `Σ e^{x_j - max}`).
    pub denominator: f32,
    /// Work/traffic counters for this pass.
    pub stats: InferenceStats,
}

/// Borrowing softmax accumulator abstracting over the two formulations;
/// the accumulators themselves live in a [`Scratch`] and are reused.
#[derive(Debug)]
pub(crate) enum AccumMut<'a> {
    Lazy(&'a mut LazyAccumulator),
    Online(&'a mut OnlineSoftmax),
}

impl AccumMut<'_> {
    /// Adds an entry; returns `true` if the weighted sum was skipped.
    ///
    /// `raw_threshold` compares against `e^{logit}` (lazy) or the relative
    /// weight `e^{logit - max}` (online).
    pub(crate) fn add(&mut self, logit: f32, row: &[f32], raw_threshold: Option<f32>) -> bool {
        match self {
            AccumMut::Lazy(acc) => {
                let w = logit.exp();
                if let Some(th) = raw_threshold {
                    if w < th {
                        acc.add_skipped(w);
                        return true;
                    }
                }
                acc.add_weighted(w, row);
                false
            }
            AccumMut::Online(acc) => {
                if let Some(th) = raw_threshold {
                    if acc.relative_weight(logit) < th {
                        acc.add_skipped(logit);
                        return true;
                    }
                }
                acc.add(logit, row);
                false
            }
        }
    }

    /// Fused single-pass chunk accumulate: inner products, exponentiation
    /// and weighted accumulation in one traversal, delegating to the
    /// accumulators' fused kernels
    /// ([`LazyAccumulator::accumulate_chunk`] /
    /// [`OnlineSoftmax::accumulate_chunk`]). `raw_threshold` has the same
    /// semantics as [`AccumMut::add`]. Returns the number of skipped rows.
    pub(crate) fn accumulate_chunk(
        &mut self,
        in_flat: &[f32],
        out_flat: &[f32],
        n: usize,
        u: &[f32],
        raw_threshold: Option<f32>,
    ) -> u64 {
        match self {
            AccumMut::Lazy(acc) => acc.accumulate_chunk(in_flat, out_flat, n, u, raw_threshold),
            AccumMut::Online(acc) => acc.accumulate_chunk(in_flat, out_flat, n, u, raw_threshold),
        }
    }

    /// Adds one *quantized* entry given its precomputed logit; returns
    /// `true` if the weighted sum was skipped. The int8 counterpart of
    /// [`AccumMut::add`] for the two-pass path: the weight math is identical,
    /// the `M_OUT` row is dequantized on the fly through the shared scalar
    /// dequant-axpy (bitwise identical across SIMD backends).
    pub(crate) fn add_i8(
        &mut self,
        logit: f32,
        row_q: &[i8],
        row_scale: f32,
        raw_threshold: Option<f32>,
    ) -> bool {
        match self {
            AccumMut::Lazy(acc) => {
                let w = logit.exp();
                if let Some(th) = raw_threshold {
                    if w < th {
                        acc.add_skipped(w);
                        return true;
                    }
                }
                acc.add_weighted_i8(w, row_q, row_scale);
                false
            }
            AccumMut::Online(acc) => {
                if let Some(th) = raw_threshold {
                    if acc.relative_weight(logit) < th {
                        acc.add_skipped(logit);
                        return true;
                    }
                }
                acc.add_i8(logit, row_q, row_scale);
                false
            }
        }
    }

    /// Fused single-pass chunk accumulate over *quantized* operands,
    /// delegating to the accumulators' int8 fused kernels
    /// ([`LazyAccumulator::accumulate_chunk_i8`] /
    /// [`OnlineSoftmax::accumulate_chunk_i8`]). Returns the number of
    /// skipped rows.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn accumulate_chunk_i8(
        &mut self,
        in_q: &[i8],
        in_scales: &[f32],
        out_q: &[i8],
        out_scales: &[f32],
        n: usize,
        uq: &[i8],
        u_scale: f32,
        raw_threshold: Option<f32>,
    ) -> u64 {
        match self {
            AccumMut::Lazy(acc) => acc.accumulate_chunk_i8(
                in_q,
                in_scales,
                out_q,
                out_scales,
                n,
                uq,
                u_scale,
                raw_threshold,
            ),
            AccumMut::Online(acc) => acc.accumulate_chunk_i8(
                in_q,
                in_scales,
                out_q,
                out_scales,
                n,
                uq,
                u_scale,
                raw_threshold,
            ),
        }
    }

    pub(crate) fn denom(&self) -> f32 {
        match self {
            AccumMut::Lazy(acc) => acc.denom(),
            AccumMut::Online(acc) => acc.denom(),
        }
    }

    /// Resets to an empty accumulator of width `ed`.
    pub(crate) fn reset(&mut self, ed: usize) {
        match self {
            AccumMut::Lazy(acc) => acc.reset(ed),
            AccumMut::Online(acc) => acc.reset(ed),
        }
    }

    /// Merges a finished chunk partial into this running total through the
    /// [`mnn_tensor::partial`] merge plane (the one merge code path shared
    /// by every engine variant and, in the opt-in wire-merge mode, routed
    /// through the serialized [`mnn_tensor::PartialState`] encoding).
    ///
    /// Every engine variant folds per-chunk partials through this method in
    /// chunk-index order, so the rounding history — and therefore the output
    /// bits — are identical across [`crate::EngineKind`]s and thread counts.
    pub(crate) fn merge_from(&mut self, other: &AccumMut<'_>) {
        match (self, other) {
            (AccumMut::Lazy(a), AccumMut::Lazy(b)) => mnn_tensor::partial::merge_lazy_into(a, b),
            (AccumMut::Online(a), AccumMut::Online(b)) => {
                mnn_tensor::partial::merge_online_into(a, b)
            }
            _ => unreachable!("softmax mode is fixed for a pass"),
        }
    }

    /// The running softmax max zone-map pruning compares segment bounds
    /// against. `None` in lazy mode, where pruning can never fire (see
    /// [`crate::segment`]).
    pub(crate) fn running_max(&self) -> Option<f32> {
        match self {
            AccumMut::Lazy(_) => None,
            AccumMut::Online(acc) => Some(acc.max_logit()),
        }
    }

    /// When the opt-in wire-merge mode is on, replaces the accumulator with
    /// its serialization roundtrip — the segment-boundary handoff proving
    /// the [`mnn_tensor::partial`] wire format answer-faithful.
    pub(crate) fn wire_roundtrip(&mut self) {
        if !mnn_tensor::partial::wire_merge_enabled() {
            return;
        }
        match self {
            AccumMut::Lazy(acc) => **acc = mnn_tensor::partial::roundtrip_lazy(acc),
            AccumMut::Online(acc) => **acc = mnn_tensor::partial::roundtrip_online(acc),
        }
    }
}

/// Checks the `rows` prefix bound shared by every engine variant.
pub(crate) fn check_rows(
    m_in: &Matrix,
    rows: usize,
    context: &'static str,
) -> Result<(), EngineError> {
    if rows > m_in.rows() {
        return Err(ShapeError::new(
            context,
            format!("rows <= {}", m_in.rows()),
            format!("rows = {rows}"),
        )
        .into());
    }
    Ok(())
}

/// [`check_rows`] for the quantized memory plane.
pub(crate) fn check_rows_quant(
    m_in: &QuantMatrix,
    rows: usize,
    context: &'static str,
) -> Result<(), EngineError> {
    if rows > m_in.rows() {
        return Err(ShapeError::new(
            context,
            format!("rows <= {}", m_in.rows()),
            format!("rows = {rows}"),
        )
        .into());
    }
    Ok(())
}

/// The column-based inference engine.
///
/// Construction is cheap; one engine can serve many forward passes and is
/// `Send + Sync` (it holds only the configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnEngine {
    config: MnnFastConfig,
}

impl ColumnEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: MnnFastConfig) -> Self {
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> MnnFastConfig {
        self.config
    }

    /// Computes `o = softmax(u · M_INᵀ) · M_OUT` with the column-based
    /// algorithm, allocating fresh scratch buffers (one-shot convenience;
    /// serving loops should call [`Executor::forward_prefix`] with a
    /// reused [`Scratch`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the configuration is invalid, the two
    /// memories disagree in shape, or `u` does not match the embedding
    /// dimension.
    pub fn forward(
        &self,
        m_in: &Matrix,
        m_out: &Matrix,
        u: &[f32],
    ) -> Result<ColumnOutput, EngineError> {
        let mut scratch = Scratch::new();
        let mut trace = Trace::disabled();
        Executor::forward_prefix(self, m_in, m_out, m_in.rows(), u, &mut scratch, &mut trace)
    }

    /// Computes forward passes for a batch of questions. Results are in
    /// question order.
    ///
    /// # Errors
    ///
    /// As [`ColumnEngine::forward`].
    pub fn forward_batch(
        &self,
        m_in: &Matrix,
        m_out: &Matrix,
        questions: &[Vec<f32>],
    ) -> Result<Vec<ColumnOutput>, EngineError> {
        let mut scratch = Scratch::new();
        let mut trace = Trace::disabled();
        questions
            .iter()
            .map(|u| {
                Executor::forward_prefix(
                    self,
                    m_in,
                    m_out,
                    m_in.rows(),
                    u,
                    &mut scratch,
                    &mut trace,
                )
            })
            .collect()
    }

    /// Validates shapes and configuration.
    pub(crate) fn check(
        &self,
        m_in: &Matrix,
        m_out: &Matrix,
        u: &[f32],
    ) -> Result<(), EngineError> {
        self.config.validate().map_err(EngineError::Config)?;
        if m_in.shape() != m_out.shape() {
            return Err(EngineError::MemoryMismatch {
                m_in: m_in.shape(),
                m_out: m_out.shape(),
            });
        }
        if u.len() != m_in.cols() {
            return Err(ShapeError::new(
                "ColumnEngine::forward",
                format!("u of length {}", m_in.cols()),
                format!("u of length {}", u.len()),
            )
            .into());
        }
        Ok(())
    }

    /// [`ColumnEngine::check`] for the quantized memory plane.
    pub(crate) fn check_quant(
        &self,
        m_in: &QuantMatrix,
        m_out: &QuantMatrix,
        u: &[f32],
    ) -> Result<(), EngineError> {
        self.config.validate().map_err(EngineError::Config)?;
        if (m_in.rows(), m_in.cols()) != (m_out.rows(), m_out.cols()) {
            return Err(EngineError::MemoryMismatch {
                m_in: (m_in.rows(), m_in.cols()),
                m_out: (m_out.rows(), m_out.cols()),
            });
        }
        if u.len() != m_in.cols() {
            return Err(ShapeError::new(
                "ColumnEngine::forward_quant",
                format!("u of length {}", m_in.cols()),
                format!("u of length {}", u.len()),
            )
            .into());
        }
        Ok(())
    }

    /// Resolves [`SkipPolicy`] into a raw-weight threshold over the first
    /// `rows` rows, running the denominator pre-pass for
    /// [`SkipPolicy::Probability`] in the caller's `logits` buffer
    /// (`chunk.min(rows.max(1))` elements — no allocation).
    pub(crate) fn resolve_threshold_prefix(
        &self,
        m_in: &Matrix,
        rows: usize,
        u: &[f32],
        stats: &mut InferenceStats,
        logits: &mut [f32],
    ) -> Result<Option<f32>, EngineError> {
        match self.config.skip {
            SkipPolicy::None => Ok(None),
            SkipPolicy::RawWeight(th) => Ok(Some(th)),
            SkipPolicy::Probability(th) => {
                // Pass 1: denominator sweep (inner products + exp only).
                let ed = u.len();
                let chunk = self.config.chunk_size;
                let mut max_logit = f32::NEG_INFINITY;
                let mut denom_rel = 0.0f64; // relative to running max, online-style
                let mut raw_denom = 0.0f64;
                let mut start = 0usize;
                while start < rows {
                    let n = chunk.min(rows - start);
                    let flat = m_in.rows_slice(start, n);
                    let buf = &mut logits[..n];
                    kernels::gemv_chunk(flat, n, u, buf);
                    stats.flops += kernels::gemv_flops(n, ed);
                    stats.memory_bytes += (n * ed * 4) as u64;
                    for &x in buf.iter() {
                        if x > max_logit {
                            denom_rel *= ((max_logit - x) as f64).exp();
                            max_logit = x;
                        }
                        denom_rel += ((x - max_logit) as f64).exp();
                        raw_denom += (x as f64).exp();
                        stats.flops += 1;
                    }
                    start += n;
                }
                match self.config.softmax {
                    // p_i = e^{x_i} / Σe^{x_j}  <  th  ⟺  e^{x_i} < th·Σ.
                    SoftmaxMode::Lazy => Ok(Some((th as f64 * raw_denom) as f32)),
                    // Relative weight e^{x_i - max} < th · Σe^{x_j - max}.
                    SoftmaxMode::Online => Ok(Some((th as f64 * denom_rel) as f32)),
                }
            }
        }
    }

    /// [`ColumnEngine::resolve_threshold_prefix`] over the quantized plane:
    /// the [`SkipPolicy::Probability`] denominator sweep runs on the int8
    /// GEMV, so the resolved threshold is consistent with the logits the
    /// quantized main pass will compute (skip decisions are made against
    /// quantized logits on both passes, keeping the quantized run
    /// self-consistent and deterministic).
    pub(crate) fn resolve_threshold_prefix_quant(
        &self,
        m_in: &QuantMatrix,
        rows: usize,
        uq: &[i8],
        u_scale: f32,
        stats: &mut InferenceStats,
        logits: &mut [f32],
    ) -> Result<Option<f32>, EngineError> {
        match self.config.skip {
            SkipPolicy::None => Ok(None),
            SkipPolicy::RawWeight(th) => Ok(Some(th)),
            SkipPolicy::Probability(th) => {
                let ed = uq.len();
                let chunk = self.config.chunk_size;
                let mut max_logit = f32::NEG_INFINITY;
                let mut denom_rel = 0.0f64;
                let mut raw_denom = 0.0f64;
                let mut start = 0usize;
                while start < rows {
                    let n = chunk.min(rows - start);
                    let buf = &mut logits[..n];
                    kernels::gemv_chunk_i8(
                        m_in.rows_slice(start, n),
                        m_in.scales_slice(start, n),
                        n,
                        uq,
                        u_scale,
                        buf,
                    );
                    stats.flops += kernels::gemv_flops(n, ed);
                    stats.memory_bytes += (n * (ed + 4)) as u64;
                    for &x in buf.iter() {
                        if x > max_logit {
                            denom_rel *= ((max_logit - x) as f64).exp();
                            max_logit = x;
                        }
                        denom_rel += ((x - max_logit) as f64).exp();
                        raw_denom += (x as f64).exp();
                        stats.flops += 1;
                    }
                    start += n;
                }
                match self.config.softmax {
                    SoftmaxMode::Lazy => Ok(Some((th as f64 * raw_denom) as f32)),
                    SoftmaxMode::Online => Ok(Some((th as f64 * denom_rel) as f32)),
                }
            }
        }
    }

    /// Processes one flat chunk (`n` rows of `M_IN` and `M_OUT`, row-major)
    /// into `acc`. This is the unit of work shared by the sequential,
    /// streaming and scale-out paths.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree with `n`/`u.len()`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn process_chunk_flat(
        &self,
        in_flat: &[f32],
        out_flat: &[f32],
        n: usize,
        u: &[f32],
        raw_threshold: Option<f32>,
        acc: &mut AccumMut<'_>,
        stats: &mut InferenceStats,
        logits: &mut [f32],
        trace: &mut Trace,
    ) {
        let ed = u.len();
        assert_eq!(out_flat.len(), n * ed, "process_chunk_flat: bad out chunk");
        if self.config.fused {
            let t0 = trace.begin();
            let skipped = acc.accumulate_chunk(in_flat, out_flat, n, u, raw_threshold);
            trace.record(Phase::FusedChunk, t0, n as u64);
            trace.bump(Phase::Skip, skipped);
            // Aggregate counters computed from (n, skipped) — numerically
            // identical to the two-pass accounting below.
            let kept = n as u64 - skipped;
            stats.flops += kernels::gemv_flops(n, ed) + n as u64 + kept * 2 * ed as u64;
            stats.ws_flops += kept * 2 * ed as u64;
            stats.flops_skipped += skipped * 2 * ed as u64;
            stats.rows_total += n as u64;
            stats.rows_skipped += skipped;
            stats.memory_bytes += (n * ed * 4) as u64 + kept * (ed * 4) as u64;
            stats.chunks += 1;
            // Fusion removes the chunk-wide logits intermediate: only an
            // 8-row logit block plus the accumulator row stay live.
            stats.intermediate_bytes = stats.intermediate_bytes.max((8 * 4 + ed * 4) as u64);
            return;
        }
        let t0 = trace.begin();
        kernels::gemv_chunk(in_flat, n, u, logits);
        trace.record(Phase::InnerProduct, t0, n as u64);
        stats.flops += kernels::gemv_flops(n, ed);
        stats.memory_bytes += (n * ed * 4) as u64;
        stats.chunks += 1;
        stats.intermediate_bytes = stats
            .intermediate_bytes
            .max((logits.len() * 4 + ed * 4) as u64);

        let t0 = trace.begin();
        let mut chunk_skipped = 0u64;
        for (i, &x) in logits.iter().enumerate() {
            stats.flops += 1; // exp
            let skipped = acc.add(x, &out_flat[i * ed..(i + 1) * ed], raw_threshold);
            stats.rows_total += 1;
            if skipped {
                chunk_skipped += 1;
                stats.rows_skipped += 1;
                stats.flops_skipped += 2 * ed as u64;
            } else {
                stats.flops += 2 * ed as u64;
                stats.ws_flops += 2 * ed as u64;
                stats.memory_bytes += (ed * 4) as u64;
            }
        }
        trace.record(Phase::ExpAccumulate, t0, n as u64 - chunk_skipped);
        trace.bump(Phase::Skip, chunk_skipped);
    }

    /// [`ColumnEngine::process_chunk_flat`] over quantized operands: `n`
    /// rows of int8 codes plus their per-row scales for both memories. The
    /// flop accounting matches the f32 path (same mathematical work); the
    /// traffic accounting charges `ed + 4` bytes per row touched — the int8
    /// codes plus the f32 scale — which is where the ~4x bandwidth saving
    /// shows up in [`InferenceStats::memory_bytes`].
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree with `n`/`uq.len()`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn process_chunk_quant(
        &self,
        in_q: &[i8],
        in_scales: &[f32],
        out_q: &[i8],
        out_scales: &[f32],
        n: usize,
        uq: &[i8],
        u_scale: f32,
        raw_threshold: Option<f32>,
        acc: &mut AccumMut<'_>,
        stats: &mut InferenceStats,
        logits: &mut [f32],
        trace: &mut Trace,
    ) {
        let ed = uq.len();
        assert_eq!(out_q.len(), n * ed, "process_chunk_quant: bad out chunk");
        if self.config.fused {
            let t0 = trace.begin();
            let skipped = acc.accumulate_chunk_i8(
                in_q,
                in_scales,
                out_q,
                out_scales,
                n,
                uq,
                u_scale,
                raw_threshold,
            );
            trace.record(Phase::FusedChunk, t0, n as u64);
            trace.bump(Phase::Skip, skipped);
            let kept = n as u64 - skipped;
            stats.flops += kernels::gemv_flops(n, ed) + n as u64 + kept * 2 * ed as u64;
            stats.ws_flops += kept * 2 * ed as u64;
            stats.flops_skipped += skipped * 2 * ed as u64;
            stats.rows_total += n as u64;
            stats.rows_skipped += skipped;
            stats.memory_bytes += (n * (ed + 4)) as u64 + kept * (ed + 4) as u64;
            stats.chunks += 1;
            stats.intermediate_bytes = stats.intermediate_bytes.max((8 * 4 + ed * 4) as u64);
            return;
        }
        let t0 = trace.begin();
        kernels::gemv_chunk_i8(in_q, in_scales, n, uq, u_scale, logits);
        trace.record(Phase::InnerProduct, t0, n as u64);
        stats.flops += kernels::gemv_flops(n, ed);
        stats.memory_bytes += (n * (ed + 4)) as u64;
        stats.chunks += 1;
        stats.intermediate_bytes = stats
            .intermediate_bytes
            .max((logits.len() * 4 + ed * 4) as u64);

        let t0 = trace.begin();
        let mut chunk_skipped = 0u64;
        for (i, &x) in logits.iter().enumerate() {
            stats.flops += 1; // exp
            let skipped = acc.add_i8(
                x,
                &out_q[i * ed..(i + 1) * ed],
                out_scales[i],
                raw_threshold,
            );
            stats.rows_total += 1;
            if skipped {
                chunk_skipped += 1;
                stats.rows_skipped += 1;
                stats.flops_skipped += 2 * ed as u64;
            } else {
                stats.flops += 2 * ed as u64;
                stats.ws_flops += 2 * ed as u64;
                stats.memory_bytes += (ed + 4) as u64;
            }
        }
        trace.record(Phase::ExpAccumulate, t0, n as u64 - chunk_skipped);
        trace.bump(Phase::Skip, chunk_skipped);
    }
}

/// Merge-time numeric guard shared by every engine variant: a poisoned
/// logit (NaN, or an overflowed exponent) always drives the softmax
/// denominator non-finite, so one scalar check per merge catches it.
#[inline]
pub(crate) fn check_denom(denom: f32, stage: &'static str) -> Result<(), EngineError> {
    if denom.is_finite() {
        Ok(())
    } else {
        Err(EngineError::NumericFault { stage })
    }
}

/// Final-output numeric guard: `O(ed)` scan after the single lazy division.
/// Catches faults that leave the denominator finite (e.g. a NaN confined to
/// an `M_OUT` row's weighted sum).
#[inline]
pub(crate) fn check_output(o: &[f32]) -> Result<(), EngineError> {
    if o.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(EngineError::NumericFault { stage: "normalize" })
    }
}

impl Executor for ColumnEngine {
    fn forward_prefix_budgeted(
        &self,
        m_in: &Matrix,
        m_out: &Matrix,
        rows: usize,
        u: &[f32],
        scratch: &mut Scratch,
        trace: &mut Trace,
        budget: &Budget,
    ) -> Result<ColumnOutput, EngineError> {
        self.forward_segmented_budgeted(
            m_in,
            m_out,
            &SegmentPlan::unsegmented(rows),
            u,
            scratch,
            trace,
            budget,
        )
    }

    fn forward_segmented_budgeted(
        &self,
        m_in: &Matrix,
        m_out: &Matrix,
        plan: &SegmentPlan<'_>,
        u: &[f32],
        scratch: &mut Scratch,
        trace: &mut Trace,
        budget: &Budget,
    ) -> Result<ColumnOutput, EngineError> {
        self.check(m_in, m_out, u)?;
        check_rows(m_in, plan.rows(), "ColumnEngine::forward_prefix")?;
        let rows = plan.rows();
        let ed = u.len();
        let chunk = self.config.chunk_size;
        let mut stats = InferenceStats::default();
        let denominator;
        {
            let (logits, mut main, mut partial) =
                scratch.split_chunked(self.config.softmax, ed, chunk.min(rows.max(1)));
            let t0 = trace.begin();
            // The skip-threshold pre-pass covers *all* plan rows, pruned
            // segments included, so resolved thresholds match the
            // unsegmented pass bit for bit.
            let raw_threshold = self.resolve_threshold_prefix(m_in, rows, u, &mut stats, logits)?;
            trace.record(Phase::Skip, t0, 0);
            let query_norm = segment::query_norm_upper(u);
            for seg in plan.segments() {
                budget.check()?;
                stats.segments_total += 1;
                if plan.prune() {
                    if let Some(running_max) = main.running_max() {
                        if segment::can_prune(running_max, seg.logit_upper_bound(query_norm)) {
                            stats.segments_pruned += 1;
                            stats.rows_pruned += seg.rows as u64;
                            continue;
                        }
                    }
                }
                let seg_end = seg.start + seg.rows;
                let mut row = seg.start;
                while row < seg_end {
                    budget.check()?;
                    let n = chunk.min(seg_end - row);
                    partial.reset(ed);
                    self.process_chunk_flat(
                        m_in.rows_slice(row, n),
                        m_out.rows_slice(row, n),
                        n,
                        u,
                        raw_threshold,
                        &mut partial,
                        &mut stats,
                        &mut logits[..n],
                        trace,
                    );
                    let t0 = trace.begin();
                    main.merge_from(&partial);
                    trace.record(Phase::Merge, t0, 1);
                    check_denom(main.denom(), "chunk merge")?;
                    row += n;
                }
                let t0 = trace.begin();
                main.wire_roundtrip();
                trace.record(Phase::SegmentMerge, t0, 1);
            }
            denominator = main.denom();
        }
        let mut o = scratch.take_out(ed);
        let t0 = trace.begin();
        scratch.finish_main(self.config.softmax, &mut o);
        trace.record(Phase::Divide, t0, ed as u64);
        check_output(&o)?;
        // The lazy division: ed operations, NOT ns (Section 3.1's
        // division-count reduction).
        stats.divisions += ed as u64;
        stats.flops += ed as u64;
        Ok(ColumnOutput {
            o,
            denominator,
            stats,
        })
    }

    fn forward_quant_segmented_budgeted(
        &self,
        m_in: &QuantMatrix,
        m_out: &QuantMatrix,
        plan: &SegmentPlan<'_>,
        u: &[f32],
        scratch: &mut Scratch,
        trace: &mut Trace,
        budget: &Budget,
    ) -> Result<ColumnOutput, EngineError> {
        self.check_quant(m_in, m_out, u)?;
        check_rows_quant(m_in, plan.rows(), "ColumnEngine::forward_quant")?;
        let rows = plan.rows();
        let ed = u.len();
        let chunk = self.config.chunk_size;
        let mut stats = InferenceStats::default();
        // A non-finite query quantizes to scale +∞ over zero codes, which
        // drives every logit non-finite and surfaces as a NumericFault at
        // the first merge — same contract as the f32 path.
        let u_scale = scratch.quant_query(u);
        let denominator;
        {
            let logit_len = chunk.min(rows.max(1));
            let Scratch {
                logits,
                lazy,
                online,
                chunk_lazy,
                chunk_online,
                uq,
                ..
            } = scratch;
            if logits.len() < logit_len {
                logits.resize(logit_len, 0.0);
            }
            let logits = &mut logits[..logit_len];
            let uq: &[i8] = &uq[..ed];
            let (mut main, mut partial) = match self.config.softmax {
                SoftmaxMode::Lazy => {
                    lazy.reset(ed);
                    chunk_lazy.reset(ed);
                    (AccumMut::Lazy(lazy), AccumMut::Lazy(chunk_lazy))
                }
                SoftmaxMode::Online => {
                    online.reset(ed);
                    chunk_online.reset(ed);
                    (AccumMut::Online(online), AccumMut::Online(chunk_online))
                }
            };
            let t0 = trace.begin();
            let raw_threshold =
                self.resolve_threshold_prefix_quant(m_in, rows, uq, u_scale, &mut stats, logits)?;
            trace.record(Phase::Skip, t0, 0);
            // Zone maps are built from exactly-dequantized row norms, so
            // Cauchy–Schwarz must use the quantized query's own norm: those
            // are the vectors the int8 kernels actually dot.
            let query_norm = segment::query_norm_upper_i8(uq, u_scale);
            for seg in plan.segments() {
                budget.check()?;
                stats.segments_total += 1;
                if plan.prune() {
                    if let Some(running_max) = main.running_max() {
                        if segment::can_prune(running_max, seg.logit_upper_bound(query_norm)) {
                            stats.segments_pruned += 1;
                            stats.rows_pruned += seg.rows as u64;
                            continue;
                        }
                    }
                }
                let seg_end = seg.start + seg.rows;
                let mut row = seg.start;
                while row < seg_end {
                    budget.check()?;
                    let n = chunk.min(seg_end - row);
                    partial.reset(ed);
                    self.process_chunk_quant(
                        m_in.rows_slice(row, n),
                        m_in.scales_slice(row, n),
                        m_out.rows_slice(row, n),
                        m_out.scales_slice(row, n),
                        n,
                        uq,
                        u_scale,
                        raw_threshold,
                        &mut partial,
                        &mut stats,
                        &mut logits[..n],
                        trace,
                    );
                    let t0 = trace.begin();
                    main.merge_from(&partial);
                    trace.record(Phase::Merge, t0, 1);
                    check_denom(main.denom(), "chunk merge")?;
                    row += n;
                }
                let t0 = trace.begin();
                main.wire_roundtrip();
                trace.record(Phase::SegmentMerge, t0, 1);
            }
            denominator = main.denom();
        }
        let mut o = scratch.take_out(ed);
        let t0 = trace.begin();
        scratch.finish_main(self.config.softmax, &mut o);
        trace.record(Phase::Divide, t0, ed as u64);
        check_output(&o)?;
        stats.divisions += ed as u64;
        stats.flops += ed as u64;
        Ok(ColumnOutput {
            o,
            denominator,
            stats,
        })
    }

    fn config(&self) -> MnnFastConfig {
        self.config
    }

    fn kind(&self) -> EngineKind {
        EngineKind::Column
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_tensor::{assert_slice_approx_eq, softmax};

    fn reference_forward(m_in: &Matrix, m_out: &Matrix, u: &[f32]) -> Vec<f32> {
        let mut p = vec![0.0f32; m_in.rows()];
        kernels::gemv(m_in, u, &mut p).unwrap();
        softmax::softmax_in_place(&mut p);
        let mut o = vec![0.0f32; m_out.cols()];
        kernels::gevm(&p, m_out, &mut o).unwrap();
        o
    }

    fn test_memories(ns: usize, ed: usize) -> (Matrix, Matrix, Vec<f32>) {
        let m_in = Matrix::from_fn(ns, ed, |r, c| ((r * 13 + c * 7) as f32 * 0.37).sin() * 0.8);
        let m_out = Matrix::from_fn(ns, ed, |r, c| ((r * 5 + c * 11) as f32 * 0.21).cos() * 0.6);
        let u: Vec<f32> = (0..ed).map(|i| (i as f32 * 0.3).sin()).collect();
        (m_in, m_out, u)
    }

    fn forward_prefix(
        engine: &ColumnEngine,
        m_in: &Matrix,
        m_out: &Matrix,
        rows: usize,
        u: &[f32],
    ) -> Result<ColumnOutput, EngineError> {
        let mut scratch = Scratch::new();
        let mut trace = Trace::disabled();
        Executor::forward_prefix(engine, m_in, m_out, rows, u, &mut scratch, &mut trace)
    }

    #[test]
    fn column_matches_baseline_all_chunk_sizes() {
        let (m_in, m_out, u) = test_memories(97, 12);
        let expect = reference_forward(&m_in, &m_out, &u);
        for chunk in [1usize, 7, 16, 97, 200] {
            let engine = ColumnEngine::new(MnnFastConfig::new(chunk));
            let out = engine.forward(&m_in, &m_out, &u).unwrap();
            assert_slice_approx_eq(&out.o, &expect, 1e-4);
        }
    }

    #[test]
    fn online_mode_matches_baseline() {
        let (m_in, m_out, u) = test_memories(64, 8);
        let expect = reference_forward(&m_in, &m_out, &u);
        let engine = ColumnEngine::new(MnnFastConfig::new(10).with_softmax(SoftmaxMode::Online));
        let out = engine.forward(&m_in, &m_out, &u).unwrap();
        assert_slice_approx_eq(&out.o, &expect, 1e-4);
    }

    #[test]
    fn zero_threshold_skips_nothing() {
        let (m_in, m_out, u) = test_memories(50, 6);
        let engine =
            ColumnEngine::new(MnnFastConfig::new(8).with_skip(SkipPolicy::Probability(0.0)));
        let out = engine.forward(&m_in, &m_out, &u).unwrap();
        assert_eq!(out.stats.rows_skipped, 0);
        let expect = reference_forward(&m_in, &m_out, &u);
        assert_slice_approx_eq(&out.o, &expect, 1e-4);
    }

    #[test]
    fn probability_skip_matches_oracle() {
        // Build memories with one dominant row so probabilities are spiky.
        let ed = 6;
        let ns = 40;
        let mut m_in = Matrix::from_fn(ns, ed, |r, c| ((r + c) as f32 * 0.1).sin() * 0.2);
        for v in m_in.row_mut(17) {
            *v = 1.0; // strongly aligned with u below
        }
        let m_out = Matrix::from_fn(ns, ed, |r, c| (r as f32 - c as f32) * 0.05);
        let u = vec![1.0f32; ed];

        let th = 0.05f32;
        let engine =
            ColumnEngine::new(MnnFastConfig::new(8).with_skip(SkipPolicy::Probability(th)));
        let out = engine.forward(&m_in, &m_out, &u).unwrap();

        // Oracle: compute true probabilities, count those under threshold.
        let mut p = vec![0.0f32; ns];
        kernels::gemv(&m_in, &u, &mut p).unwrap();
        softmax::softmax_in_place(&mut p);
        let expected_skipped = p.iter().filter(|&&x| x < th).count() as u64;
        assert_eq!(out.stats.rows_skipped, expected_skipped);
        assert!(out.stats.rows_skipped > 0, "test must exercise skipping");

        // The output must equal an oracle that applies the same skipping:
        // weighted sum over kept rows, divided by the FULL denominator.
        let mut oracle = vec![0.0f32; ed];
        for (i, &pi) in p.iter().enumerate() {
            if pi >= th {
                kernels::axpy(pi, m_out.row(i), &mut oracle);
            }
        }
        assert_slice_approx_eq(&out.o, &oracle, 1e-3);
    }

    #[test]
    fn raw_weight_skip_in_lazy_mode() {
        let (m_in, m_out, u) = test_memories(30, 4);
        // Threshold 1.0 skips all rows with negative logits.
        let engine = ColumnEngine::new(MnnFastConfig::new(5).with_skip(SkipPolicy::RawWeight(1.0)));
        let out = engine.forward(&m_in, &m_out, &u).unwrap();
        let mut logits = vec![0.0f32; 30];
        kernels::gemv(&m_in, &u, &mut logits).unwrap();
        let expect_skipped = logits.iter().filter(|&&x| x.exp() < 1.0).count() as u64;
        assert_eq!(out.stats.rows_skipped, expect_skipped);
    }

    #[test]
    fn stats_account_for_work() {
        let (m_in, m_out, u) = test_memories(24, 8);
        let engine = ColumnEngine::new(MnnFastConfig::new(8));
        let out = engine.forward(&m_in, &m_out, &u).unwrap();
        let s = out.stats;
        assert_eq!(s.rows_total, 24);
        assert_eq!(s.chunks, 3);
        assert_eq!(s.divisions, 8, "divisions ∝ ed, not ns");
        assert_eq!(s.ws_flops, 2 * 24 * 8);
        // gemv + exp + ws + final division
        assert_eq!(s.flops, 2 * 24 * 8 + 24 + 2 * 24 * 8 + 8);
        assert_eq!(s.memory_bytes, (24 * 8 * 4 + 24 * 8 * 4) as u64);
        // Intermediates are chunk-sized, far below ns*4*3.
        assert!(s.intermediate_bytes <= (8 * 4 + 8 * 4) as u64);
    }

    #[test]
    fn skipping_reduces_memory_traffic() {
        let (m_in, m_out, u) = test_memories(60, 8);
        let none = ColumnEngine::new(MnnFastConfig::new(10))
            .forward(&m_in, &m_out, &u)
            .unwrap();
        let skip =
            ColumnEngine::new(MnnFastConfig::new(10).with_skip(SkipPolicy::Probability(0.02)))
                .forward(&m_in, &m_out, &u)
                .unwrap();
        assert!(skip.stats.rows_skipped > 0);
        // Two-pass probability mode re-reads M_IN, but saves M_OUT rows.
        let m_out_bytes_none = none.stats.memory_bytes - 60 * 8 * 4;
        let m_in_pass_bytes = 60 * 8 * 4;
        let m_out_bytes_skip = skip.stats.memory_bytes - 2 * m_in_pass_bytes;
        assert!(m_out_bytes_skip < m_out_bytes_none);
    }

    #[test]
    fn shape_errors_are_reported() {
        let (m_in, m_out, u) = test_memories(10, 4);
        let engine = ColumnEngine::new(MnnFastConfig::new(4));
        let bad_u = vec![0.0f32; 5];
        assert!(matches!(
            engine.forward(&m_in, &m_out, &bad_u),
            Err(EngineError::Shape(_))
        ));
        let m_out_bad = Matrix::zeros(11, 4);
        assert!(matches!(
            engine.forward(&m_in, &m_out_bad, &u),
            Err(EngineError::MemoryMismatch { .. })
        ));
        let bad_cfg = ColumnEngine::new(MnnFastConfig::new(0));
        assert!(matches!(
            bad_cfg.forward(&m_in, &m_out, &u),
            Err(EngineError::Config(_))
        ));
    }

    #[test]
    fn forward_prefix_equals_forward_on_truncated_memories() {
        let (m_in, m_out, u) = test_memories(50, 6);
        for rows in [0usize, 1, 17, 50] {
            let engine = ColumnEngine::new(MnnFastConfig::new(8));
            let prefix = forward_prefix(&engine, &m_in, &m_out, rows, &u).unwrap();
            // Reference: physically truncated matrices.
            if rows > 0 {
                let ti = Matrix::from_flat(rows, 6, m_in.rows_slice(0, rows)).unwrap();
                let to = Matrix::from_flat(rows, 6, m_out.rows_slice(0, rows)).unwrap();
                let full = engine.forward(&ti, &to, &u).unwrap();
                assert_eq!(prefix.o, full.o, "rows {rows}");
                assert_eq!(prefix.stats.rows_total, rows as u64);
            } else {
                assert_eq!(prefix.o, vec![0.0; 6]);
            }
        }
        // Out-of-range prefix errors.
        let engine = ColumnEngine::new(MnnFastConfig::new(8));
        assert!(matches!(
            forward_prefix(&engine, &m_in, &m_out, 51, &u),
            Err(EngineError::Shape(_))
        ));
    }

    #[test]
    fn forward_prefix_with_probability_skip() {
        let (m_in, m_out, u) = test_memories(60, 4);
        let engine =
            ColumnEngine::new(MnnFastConfig::new(7).with_skip(SkipPolicy::Probability(0.02)));
        let rows = 33;
        let prefix = forward_prefix(&engine, &m_in, &m_out, rows, &u).unwrap();
        let ti = Matrix::from_flat(rows, 4, m_in.rows_slice(0, rows)).unwrap();
        let to = Matrix::from_flat(rows, 4, m_out.rows_slice(0, rows)).unwrap();
        let full = engine.forward(&ti, &to, &u).unwrap();
        assert_eq!(prefix.o, full.o);
        assert_eq!(prefix.stats.rows_skipped, full.stats.rows_skipped);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let (m_in, m_out, u) = test_memories(77, 8);
        let engine =
            ColumnEngine::new(MnnFastConfig::new(13).with_skip(SkipPolicy::Probability(0.01)));
        let plain = engine.forward(&m_in, &m_out, &u).unwrap();
        let mut scratch = Scratch::new();
        let mut trace = Trace::disabled();
        for _ in 0..3 {
            let reused = Executor::forward_prefix(
                &engine,
                &m_in,
                &m_out,
                m_in.rows(),
                &u,
                &mut scratch,
                &mut trace,
            )
            .unwrap();
            assert_eq!(reused.o, plain.o);
            assert_eq!(reused.stats.rows_skipped, plain.stats.rows_skipped);
            scratch.recycle(reused.o);
        }
    }

    #[test]
    fn trace_attributes_phases() {
        let (m_in, m_out, u) = test_memories(90, 8);
        // Default (fused) path: all per-chunk work lands in FusedChunk.
        let engine =
            ColumnEngine::new(MnnFastConfig::new(16).with_skip(SkipPolicy::Probability(0.01)));
        let mut scratch = Scratch::new();
        let mut trace = Trace::enabled();
        let out = Executor::forward_prefix(
            &engine,
            &m_in,
            &m_out,
            m_in.rows(),
            &u,
            &mut scratch,
            &mut trace,
        )
        .unwrap();
        assert_eq!(trace.count(Phase::FusedChunk), 90);
        assert_eq!(trace.count(Phase::InnerProduct), 0);
        assert_eq!(trace.count(Phase::ExpAccumulate), 0);
        assert_eq!(trace.count(Phase::Skip), out.stats.rows_skipped);
        assert_eq!(trace.count(Phase::Divide), 8);
        assert!(trace.nanos(Phase::FusedChunk) > 0);
        assert!(
            trace.nanos(Phase::Skip) > 0,
            "probability pre-pass is timed"
        );
        assert!(trace.total_nanos() > 0);

        // Two-pass path: InnerProduct/ExpAccumulate carry the work instead.
        let engine = ColumnEngine::new(
            MnnFastConfig::new(16)
                .with_skip(SkipPolicy::Probability(0.01))
                .with_fused(false),
        );
        let mut trace = Trace::enabled();
        let out = Executor::forward_prefix(
            &engine,
            &m_in,
            &m_out,
            m_in.rows(),
            &u,
            &mut scratch,
            &mut trace,
        )
        .unwrap();
        assert_eq!(trace.count(Phase::FusedChunk), 0);
        assert_eq!(trace.count(Phase::InnerProduct), 90);
        assert_eq!(
            trace.count(Phase::ExpAccumulate) + trace.count(Phase::Skip),
            90
        );
        assert_eq!(trace.count(Phase::Skip), out.stats.rows_skipped);
        assert!(trace.nanos(Phase::InnerProduct) > 0);
    }

    #[test]
    fn fused_matches_two_pass() {
        let (m_in, m_out, u) = test_memories(97, 8);
        for (skip, softmax) in [
            (SkipPolicy::None, SoftmaxMode::Lazy),
            (SkipPolicy::None, SoftmaxMode::Online),
            (SkipPolicy::RawWeight(0.9), SoftmaxMode::Lazy),
            (SkipPolicy::Probability(0.01), SoftmaxMode::Lazy),
            (SkipPolicy::Probability(0.01), SoftmaxMode::Online),
        ] {
            let cfg = MnnFastConfig::new(16).with_skip(skip).with_softmax(softmax);
            let fused = ColumnEngine::new(cfg).forward(&m_in, &m_out, &u).unwrap();
            let two_pass = ColumnEngine::new(cfg.with_fused(false))
                .forward(&m_in, &m_out, &u)
                .unwrap();
            // Work accounting is path-independent by construction.
            assert_eq!(fused.stats.rows_total, two_pass.stats.rows_total);
            assert_eq!(fused.stats.rows_skipped, two_pass.stats.rows_skipped);
            assert_eq!(fused.stats.flops, two_pass.stats.flops);
            assert_eq!(fused.stats.memory_bytes, two_pass.stats.memory_bytes);
            // Outputs agree to kernel tolerance (bitwise on the scalar
            // backend; the AVX2 fused path uses the fast exp).
            assert_slice_approx_eq(&fused.o, &two_pass.o, 1e-4);
            assert!(mnn_tensor::approx_eq(
                fused.denominator,
                two_pass.denominator,
                1e-4
            ));
        }
    }

    #[test]
    fn forward_batch_matches_individual() {
        let (m_in, m_out, _) = test_memories(20, 4);
        let questions: Vec<Vec<f32>> = (0..3)
            .map(|q| (0..4).map(|i| ((q * 4 + i) as f32 * 0.2).cos()).collect())
            .collect();
        let engine = ColumnEngine::new(MnnFastConfig::new(6));
        let batch = engine.forward_batch(&m_in, &m_out, &questions).unwrap();
        for (q, out) in questions.iter().zip(&batch) {
            let single = engine.forward(&m_in, &m_out, q).unwrap();
            assert_eq!(single.o, out.o);
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = EngineError::MemoryMismatch {
            m_in: (2, 3),
            m_out: (4, 3),
        };
        assert!(e.to_string().contains("2x3"));
        let c = EngineError::Config("chunk_size must be positive".into());
        assert!(c.to_string().contains("chunk_size"));
    }
}
